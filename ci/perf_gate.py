#!/usr/bin/env python3
"""Perf regression gate with per-phase attribution for the engine smoke.

Compares a freshly measured ``engine_smoke`` output against the committed
baseline and fails (exit 1) when a gated metric regresses beyond its
tolerance:

* ``steps_per_sec`` and ``cache_hit_ratio`` must not drop below
  ``baseline * (1 - tol)``;
* ``flush_apply_ns_row``, ``cache_fill_ns_row``, ``mean_gentry_ns``, and
  ``p95_stall_ns`` must not rise above ``baseline * (1 + tol)`` (each
  skipped when the baseline predates the metric or recorded 0).

Both files may carry several workload profiles under ``"profiles"``
(``2gpu`` — the historical smoke workload — and ``8gpu`` — the paper's
commodity testbed width). Every profile present in the *current* file is
gated against the matching baseline profile; a profile the baseline lacks
is recorded but not gated. Flat files written before the multi-profile
schema are read as a bare ``2gpu`` profile, so an old committed baseline
still gates the 2-GPU numbers of a new measurement (and vice versa).

A ``gentry_mem`` block in the current file is gated against the absolute
CriteoTB feasibility bound: ``bytes_per_key`` must stay below
``FRUGAL_PERF_MAX_GENTRY_BYTES_PER_KEY`` (default 32 — the DESIGN.md §14
budget), independent of any baseline.

Tolerances are fractional and resolve per metric, most specific first:
``FRUGAL_PERF_TOL_<PROFILE>_<METRIC>`` (e.g.
``FRUGAL_PERF_TOL_8GPU_STEPS_PER_SEC`` — the wide profile oversubscribes
small CI hosts heavily, so its wall-clock noise floor is higher) >
``FRUGAL_PERF_TOL_<METRIC>`` > ``FRUGAL_PERF_TOL`` > the per-metric
default below. The calibrated/modeled metrics (``mean_gentry_ns``,
``p95_stall_ns``) default much wider than the wall-clock ones: they shift
with calibration constants and scheduler noise, so their gates catch
collapses, not drift.

When both files carry the per-phase ledger (``current.phases``, written by
``engine_smoke`` since the critical-path profiler landed), the gate prints
a per-phase delta table — mean and p95 ns per step for every engine phase
— and attributes any top-level failure to the phases that moved most.
Phase means are also soft-gated: a phase whose baseline mean is at least
``PHASE_MIN_NS`` (1000 ns — below that, a ratio is noise) must not grow
past ``baseline * (1 + phase_tol)`` where ``phase_tol`` resolves via
``FRUGAL_PERF_TOL_PHASE_<NAME>`` > ``FRUGAL_PERF_TOL_PHASE`` (default
2.0). Baselines without phases skip all of this gracefully.

On top of the relative soft gates, the decentralized-reduce phases carry
**hard absolute ceilings** on the 8gpu profile (``HARD_PHASE_CEILINGS``):
``barrier_a`` and ``leader_apply`` mean ns/step each have an absolute
bound, and their sum must stay at or under 3 ms — the leader-serial merge
and apply used to cost 5.67 + 4.11 ms/step there, and a regression that
re-serializes either phase must fail CI even if a new committed baseline
would otherwise ratchet the relative gates. Ceilings are independent of
the baseline file (like ``gentry_mem``) and override via the env var
named per bound (e.g. ``FRUGAL_PERF_MAX_8GPU_BARRIER_A_PLUS_LEADER_APPLY_NS``).

The delta table is additionally written to the path in
``FRUGAL_PERF_TABLE_OUT`` (when set) so CI can upload it as an artifact.

Usage::

    python3 ci/perf_gate.py [BASELINE_JSON] [CURRENT_JSON]

Defaults: ``BENCH_engine.json`` (committed baseline) and
``BENCH_engine.ci.json`` (fresh measurement).
"""

import json
import os
import sys

# (metric, direction, default fractional tolerance). "floor": current must
# stay above baseline * (1 - tol); "ceil": below baseline * (1 + tol).
GATED = [
    ("steps_per_sec", "floor", 0.35),
    ("flush_apply_ns_row", "ceil", 0.35),
    ("mean_gentry_ns", "ceil", 1.00),
    ("p95_stall_ns", "ceil", 1.00),
    # Hit ratio is deterministic for a fixed seed+policy, so its floor is
    # tight: a drop means a cache/sharding logic change, not noise.
    ("cache_hit_ratio", "floor", 0.05),
    # Fill cost is a short wall-clock measurement (hundreds of rows per
    # run): gate collapses, not drift.
    ("cache_fill_ns_row", "ceil", 1.00),
]

# fifo_* track the arrival-order flush ablation, profiled_steps_per_sec the
# instrumented run: recorded every run for the trajectory, never gated.
INFORMATIONAL = ["fifo_steps_per_sec", "fifo_p95_stall_ns", "profiled_steps_per_sec"]

PHASE_TOL_DEFAULT = 2.0
PHASE_MIN_NS = 1000.0

# Hard absolute ceilings on phase means (ns/step), per profile — the
# decentralization contract. Unlike the relative soft gates these cannot be
# ratcheted by committing a regressed baseline: the serial-leader merge the
# sharded reduce replaced cost 5.67 ms/step of barrier_a and 4.11 ms/step
# of leader_apply at 8 trainers, and the combined bound pins both phases to
# the post-decentralization regime (≤ 3 ms together). Each bound's env var
# overrides it for unusually slow CI hosts.
HARD_PHASE_CEILINGS = {
    "8gpu": [
        (("barrier_a",), 3_000_000.0, "FRUGAL_PERF_MAX_8GPU_BARRIER_A_NS"),
        (("leader_apply",), 1_000_000.0, "FRUGAL_PERF_MAX_8GPU_LEADER_APPLY_NS"),
        (
            ("barrier_a", "leader_apply"),
            3_000_000.0,
            "FRUGAL_PERF_MAX_8GPU_BARRIER_A_PLUS_LEADER_APPLY_NS",
        ),
    ],
}


def load_doc(path):
    with open(path) as f:
        return json.load(f)


def profiles_of(doc, path):
    """Profile-name -> profile-object map, treating legacy flat files
    (no ``profiles`` key) as a bare 2-GPU profile."""
    if "profiles" in doc:
        return doc["profiles"]
    if "current" in doc:
        return {"2gpu": doc}
    sys.exit(f"perf-gate: {path} has neither 'profiles' nor 'current'")


def tol_for(metric, default, profile=None):
    env = None
    if profile is not None:
        env = os.environ.get(f"FRUGAL_PERF_TOL_{profile.upper()}_{metric.upper()}")
    if env is None:
        env = os.environ.get(f"FRUGAL_PERF_TOL_{metric.upper()}")
    if env is None:
        env = os.environ.get("FRUGAL_PERF_TOL")
    return float(env) if env is not None else default


def phase_tol_for(phase):
    env = os.environ.get(f"FRUGAL_PERF_TOL_PHASE_{phase.upper()}")
    if env is None:
        env = os.environ.get("FRUGAL_PERF_TOL_PHASE")
    return float(env) if env is not None else PHASE_TOL_DEFAULT


def gate_metrics(base, cur, profile=None):
    """Top-level metric gates. Returns (lines, failures)."""
    lines, failures = [], []
    for name, direction, default in GATED:
        tol = tol_for(name, default, profile)
        b = float(base.get(name, 0.0))
        c = float(cur.get(name, 0.0))
        if b <= 0.0:
            lines.append(f"{name + ':':<20} baseline has none; current {c:.1f} (recorded, not gated)")
            continue
        if direction == "floor":
            bound = (1.0 - tol) * b
            lines.append(
                f"{name + ':':<20} baseline {b:10.1f}  current {c:10.1f}  floor {bound:10.1f}  (tol {tol})"
            )
            if c < bound:
                failures.append(f"{name} {c:.1f} < floor {bound:.1f} (baseline {b:.1f}, tol {tol})")
        else:
            bound = (1.0 + tol) * b
            lines.append(
                f"{name + ':':<20} baseline {b:10.1f}  current {c:10.1f}  ceil  {bound:10.1f}  (tol {tol})"
            )
            if c > bound:
                failures.append(f"{name} {c:.1f} > ceil {bound:.1f} (baseline {b:.1f}, tol {tol})")
    for name in INFORMATIONAL:
        lines.append(
            f"{name + ':':<20} baseline {float(base.get(name, 0)):10.1f}  "
            f"current {float(cur.get(name, 0)):10.1f}  (informational)"
        )
    return lines, failures


def phase_delta_table(base_phases, cur_phases):
    """Per-phase delta rows sorted by the magnitude of the mean move.

    Returns (table_lines, phase_failures, ranked) where ranked is
    [(phase, delta_mean_ns, pct_or_None), ...] most-moved first.
    """
    names = list(cur_phases.keys())
    for n in base_phases:
        if n not in names:
            names.append(n)
    rows = []
    failures = []
    for name in names:
        b = base_phases.get(name, {})
        c = cur_phases.get(name, {})
        b_mean = float(b.get("mean_ns", 0.0))
        c_mean = float(c.get("mean_ns", 0.0))
        b_p95 = float(b.get("p95_ns", 0.0))
        c_p95 = float(c.get("p95_ns", 0.0))
        delta = c_mean - b_mean
        pct = (delta / b_mean * 100.0) if b_mean > 0 else None
        rows.append((name, b_mean, c_mean, delta, pct, b_p95, c_p95))
        if b_mean >= PHASE_MIN_NS:
            tol = phase_tol_for(name)
            ceil = (1.0 + tol) * b_mean
            if c_mean > ceil:
                failures.append(
                    f"phase {name} mean {c_mean:.0f} ns > ceil {ceil:.0f} ns "
                    f"(baseline {b_mean:.0f}, tol {tol})"
                )
    rows.sort(key=lambda r: abs(r[3]), reverse=True)

    lines = [
        "per-phase delta (ns per step, sorted by |Δmean|):",
        f"  {'phase':<14} {'base mean':>10} {'cur mean':>10} {'Δmean':>10} {'Δ%':>8} {'base p95':>10} {'cur p95':>10}",
    ]
    for name, b_mean, c_mean, delta, pct, b_p95, c_p95 in rows:
        pct_s = f"{pct:+7.1f}%" if pct is not None else "     new"
        lines.append(
            f"  {name:<14} {b_mean:>10.0f} {c_mean:>10.0f} {delta:>+10.0f} {pct_s:>8} {b_p95:>10.0f} {c_p95:>10.0f}"
        )
    ranked = [(r[0], r[3], r[4]) for r in rows]
    return lines, failures, ranked


def attribute(failures, ranked):
    """Names the phases most plausibly behind the failed top-level gates."""
    movers = [(n, d, p) for n, d, p in ranked if d > 0][:3]
    if not movers:
        return ["attribution: no phase grew vs baseline (regression is outside the ledger's phases)"]
    lines = ["attribution: phases that grew most vs baseline:"]
    for name, delta, pct in movers:
        pct_s = f" ({pct:+.1f}%)" if pct is not None else ""
        lines.append(f"  {name}: {delta:+.0f} ns per step{pct_s}")
    return lines


def gate_profile(name, base_profile, cur_profile):
    """Gates one profile. Returns (lines, failures); profile-less baselines
    record without gating."""
    lines = [f"=== profile {name} ==="]
    cur = cur_profile.get("current")
    if cur is None:
        return lines + ["  current file has no 'current' block (skipped)"], []

    base = (base_profile or {}).get("current")
    if base is None:
        lines.append(f"profile {name}: baseline has no such profile; recorded, not gated")
        for metric, _, _ in GATED:
            lines.append(f"{metric + ':':<20} current {float(cur.get(metric, 0.0)):10.1f} (recorded)")
        # Absolute ceilings hold even without a baseline profile.
        hard_lines, hard_failures = gate_hard_phases(name, cur.get("phases") or {})
        return lines + hard_lines, [f"[{name}] {f}" for f in hard_failures]

    metric_lines, failures = gate_metrics(base, cur, name)
    failures = [f"[{name}] {f}" for f in failures]
    lines += metric_lines

    base_phases = base.get("phases") or {}
    cur_phases = cur.get("phases") or {}
    if cur_phases:
        if base_phases:
            table_lines, phase_failures, ranked = phase_delta_table(base_phases, cur_phases)
            failures.extend(f"[{name}] {f}" for f in phase_failures)
            if failures:
                table_lines += attribute(failures, ranked)
            lines += table_lines
        else:
            lines.append("per-phase: baseline has no ledger; current phases recorded, not gated")
        hard_lines, hard_failures = gate_hard_phases(name, cur_phases)
        lines += hard_lines
        failures.extend(f"[{name}] {f}" for f in hard_failures)
    elif HARD_PHASE_CEILINGS.get(name):
        # A profile with hard ceilings must carry a ledger: skipping it
        # silently would turn the absolute bounds off.
        lines.append("per-phase: current run carries no ledger (profiling disabled?)")
        failures.append(f"[{name}] hard phase ceilings configured but run carries no ledger")
    else:
        lines.append("per-phase: current run carries no ledger (profiling disabled?)")
    return lines, failures


def gate_hard_phases(name, cur_phases):
    """Absolute phase-mean ceilings for one profile (baseline-independent).

    Returns (lines, failures). A profile with no configured ceilings, or a
    run that carries no ledger, records nothing — the soft relative gates
    still cover it."""
    lines, failures = [], []
    for phases, default_bound, env in HARD_PHASE_CEILINGS.get(name, []):
        bound = float(os.environ.get(env, default_bound))
        total = sum(float(cur_phases.get(p, {}).get("mean_ns", 0.0)) for p in phases)
        label = "+".join(phases)
        missing = [p for p in phases if p not in cur_phases]
        if missing:
            failures.append(
                f"hard ceiling {label}: phase(s) {', '.join(missing)} absent from ledger "
                "(renamed or dropped?)"
            )
            continue
        lines.append(
            f"hard ceiling {label + ':':<28} mean {total:>10.0f} ns/step  ceil {bound:>10.0f} (absolute)"
        )
        if total > bound:
            failures.append(
                f"hard ceiling {label} mean {total:.0f} ns/step > {bound:.0f} "
                f"(override: {env})"
            )
    return lines, failures


def gate_gentry_mem(cur_doc):
    """Absolute memory-feasibility gate on the g-entry store probe."""
    mem = cur_doc.get("gentry_mem")
    if not mem:
        return ["gentry_mem: not recorded"], []
    bound = float(os.environ.get("FRUGAL_PERF_MAX_GENTRY_BYTES_PER_KEY", "32"))
    bpk = float(mem.get("bytes_per_key", 0.0))
    keys = int(mem.get("keys", 0))
    lines = [
        f"gentry_mem:          {bpk:.2f} bytes/key at {keys} keys  bound {bound:.1f} (absolute)"
    ]
    failures = []
    if bpk <= 0.0:
        failures.append(f"gentry_mem bytes_per_key {bpk} is not a positive measurement")
    elif bpk >= bound:
        failures.append(f"gentry_mem {bpk:.2f} bytes/key >= bound {bound:.1f}")
    return lines, failures


def main():
    baseline_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_engine.json"
    current_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_engine.ci.json"

    base_doc = load_doc(baseline_path)
    cur_doc = load_doc(current_path)
    base_profiles = profiles_of(base_doc, baseline_path)
    cur_profiles = profiles_of(cur_doc, current_path)

    all_lines, failures = [], []
    for name, cur_profile in cur_profiles.items():
        lines, fails = gate_profile(name, base_profiles.get(name), cur_profile)
        all_lines += lines
        failures += fails
    for name in base_profiles:
        if name not in cur_profiles:
            all_lines.append(f"=== profile {name} ===")
            all_lines.append("  baseline-only profile: current file did not measure it")
            failures.append(f"[{name}] profile present in baseline but missing from current")

    mem_lines, mem_fails = gate_gentry_mem(cur_doc)
    all_lines += mem_lines
    failures += mem_fails

    for line in all_lines:
        print(line)

    table_out = os.environ.get("FRUGAL_PERF_TABLE_OUT")
    if table_out:
        with open(table_out, "w") as f:
            f.write("\n".join(all_lines) + "\n")
        print(f"perf-gate: wrote delta table to {table_out}")

    if failures:
        for f in failures:
            print(f"perf-gate FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print("perf-gate: OK")


if __name__ == "__main__":
    main()
