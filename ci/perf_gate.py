#!/usr/bin/env python3
"""Perf regression gate for the engine smoke benchmark.

Compares a freshly measured ``engine_smoke`` output against the committed
baseline and fails (exit 1) when either tracked metric regresses beyond
the tolerance:

* ``steps_per_sec`` must not drop below ``baseline * (1 - tol)``;
* ``flush_apply_ns_row`` must not rise above ``baseline * (1 + tol)``
  (skipped when the baseline predates the metric or recorded 0, e.g. a
  write-through run).

``mean_gentry_ns`` and ``p95_stall_ns`` are reported for context but not
gated: both are calibrated/modeled quantities that shift when the
calibration constants change, and gating them would punish intentional
re-calibration rather than real regressions.

Usage::

    python3 ci/perf_gate.py [BASELINE_JSON] [CURRENT_JSON]

Defaults: ``BENCH_engine.json`` (committed baseline) and
``BENCH_engine.ci.json`` (fresh measurement). Tolerance comes from
``FRUGAL_PERF_TOL`` (fractional, default 0.35 — CI boxes are noisy; the
gate exists to catch collapses, not single-digit-percent drift).
"""

import json
import os
import sys


def load_current(path):
    with open(path) as f:
        doc = json.load(f)
    if "current" not in doc:
        sys.exit(f"perf-gate: {path} has no 'current' block")
    return doc["current"]


def main():
    baseline_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_engine.json"
    current_path = sys.argv[2] if len(sys.argv) > 2 else "BENCH_engine.ci.json"
    tol = float(os.environ.get("FRUGAL_PERF_TOL", "0.35"))

    base = load_current(baseline_path)
    cur = load_current(current_path)
    failures = []

    b = float(base["steps_per_sec"])
    c = float(cur["steps_per_sec"])
    floor = (1.0 - tol) * b
    print(f"steps_per_sec:      baseline {b:10.1f}  current {c:10.1f}  floor {floor:10.1f}")
    if c < floor:
        failures.append(f"steps_per_sec {c:.1f} < floor {floor:.1f} (baseline {b:.1f}, tol {tol})")

    b = float(base.get("flush_apply_ns_row", 0.0))
    c = float(cur.get("flush_apply_ns_row", 0.0))
    if b > 0.0:
        ceil = (1.0 + tol) * b
        print(f"flush_apply_ns_row: baseline {b:10.1f}  current {c:10.1f}  ceil  {ceil:10.1f}")
        if c > ceil:
            failures.append(
                f"flush_apply_ns_row {c:.1f} > ceil {ceil:.1f} (baseline {b:.1f}, tol {tol})"
            )
    else:
        print(f"flush_apply_ns_row: baseline has none; current {c:.1f} (recorded, not gated)")

    # fifo_* track the arrival-order flush ablation: recorded each run so
    # the trajectory shows what the P2F priorities buy, never gated.
    for name in ("mean_gentry_ns", "p95_stall_ns", "fifo_steps_per_sec", "fifo_p95_stall_ns"):
        print(
            f"{name + ':':<19} baseline {float(base.get(name, 0)):10.1f}  "
            f"current {float(cur.get(name, 0)):10.1f}  (informational)"
        )

    if failures:
        for f in failures:
            print(f"perf-gate FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    print("perf-gate: OK")


if __name__ == "__main__":
    main()
