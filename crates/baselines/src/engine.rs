//! The comparator systems of the paper's evaluation (§4.1), re-implemented
//! on the shared substrate.
//!
//! | Paper system    | Here                               | Structure |
//! |-----------------|------------------------------------|-----------|
//! | PyTorch         | [`BaselineKind::NoCache`]          | no GPU cache; every lookup/update takes the CPU-involved host path |
//! | DGL-KE          | [`BaselineKind::NoCache`]          | same engine, KG workload/model |
//! | HugeCTR         | [`BaselineKind::Cached`]           | sharded multi-GPU cache, `all_to_all` key/embedding exchange (Fig 2b), CPU-involved miss path on commodity GPUs, UVA on datacenter GPUs |
//! | DGL-KE-cached   | [`BaselineKind::Cached`]           | same engine, KG workload/model |
//! | PyTorch-UVM     | [`BaselineKind::Uvm`]              | unified-memory paging: a 4 KiB page migrates per embedding |
//!
//! All of them are synchronous: updates are aggregated per key in canonical
//! order and applied to the host store at each step, so every baseline is
//! bit-identical to the serial reference — matching the paper's note that
//! "all competitor systems meet the synchronous training consistency".
//!
//! The engines run the *numerics* for real (the store genuinely trains) and
//! account hardware time with the cost model; they have no background
//! concurrency, so a single thread iterating over the simulated GPUs is
//! faithful.

use frugal_core::{EmbeddingModel, TrainReport, Workload};
use frugal_data::Key;
use frugal_embed::{CachePolicy, GpuCache, GradAggregator, HostStore, Sharding};
use frugal_sim::{CostModel, HostPath, IterBreakdown, Nanos, RunStats, Topology};
use frugal_telemetry::{Phase, SpanArgs, Telemetry};
use std::collections::HashMap;

/// Which baseline architecture to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// No GPU cache; CPU-involved host access for everything
    /// (PyTorch / DGL-KE).
    NoCache,
    /// Sharded multi-GPU cache with all_to_all exchange
    /// (HugeCTR / DGL-KE-cached).
    Cached,
    /// CUDA unified memory paging (PyTorch-UVM).
    Uvm,
}

/// Configuration of a baseline engine.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Which system to model.
    pub kind: BaselineKind,
    /// Hardware model.
    pub cost: CostModel,
    /// Cache size as a fraction of total parameters (Cached only).
    pub cache_ratio: f64,
    /// Cache policy (Cached only).
    pub cache_policy: CachePolicy,
    /// SGD learning rate.
    pub lr: f32,
    /// Steps to train.
    pub steps: u64,
    /// Parameter-init seed.
    pub seed: u64,
    /// Telemetry handle (off by default); same semantics as
    /// `FrugalConfig::telemetry`.
    pub telemetry: Telemetry,
}

impl BaselineConfig {
    /// PyTorch-like (or DGL-KE-like) baseline on `topology`.
    pub fn pytorch(topology: Topology, steps: u64) -> Self {
        BaselineConfig {
            kind: BaselineKind::NoCache,
            cost: CostModel::new(topology),
            cache_ratio: 0.0,
            cache_policy: CachePolicy::StaticHot,
            lr: 0.1,
            steps,
            seed: 42,
            telemetry: Telemetry::off(),
        }
    }

    /// HugeCTR-like (or DGL-KE-cached-like) baseline on `topology`.
    pub fn hugectr(topology: Topology, steps: u64) -> Self {
        BaselineConfig {
            kind: BaselineKind::Cached,
            cost: CostModel::new(topology),
            cache_ratio: 0.05,
            cache_policy: CachePolicy::StaticHot,
            lr: 0.1,
            steps,
            seed: 42,
            telemetry: Telemetry::off(),
        }
    }

    /// PyTorch-UVM-like baseline on `topology`.
    pub fn uvm(topology: Topology, steps: u64) -> Self {
        BaselineConfig {
            kind: BaselineKind::Uvm,
            cost: CostModel::new(topology),
            cache_ratio: 0.0,
            cache_policy: CachePolicy::StaticHot,
            lr: 0.1,
            steps,
            seed: 42,
            telemetry: Telemetry::off(),
        }
    }

    /// Number of GPUs in the configured topology.
    pub fn n_gpus(&self) -> usize {
        self.cost.topology().n_gpus()
    }
}

/// A baseline training engine.
///
/// # Examples
///
/// ```
/// use frugal_baselines::{BaselineConfig, BaselineEngine};
/// use frugal_core::PullToTarget;
/// use frugal_data::{KeyDistribution, SyntheticTrace};
/// use frugal_sim::Topology;
///
/// let trace = SyntheticTrace::new(1_000, KeyDistribution::Zipf(0.9), 32, 2, 1)?;
/// let cfg = BaselineConfig::hugectr(Topology::commodity(2), 10);
/// let engine = BaselineEngine::new(cfg, 1_000, 8);
/// let report = engine.run(&trace, &PullToTarget::new(8, 7));
/// assert!(report.throughput() > 0.0);
/// # Ok::<(), frugal_data::DistError>(())
/// ```
#[derive(Debug)]
pub struct BaselineEngine {
    cfg: BaselineConfig,
    store: HostStore,
}

impl BaselineEngine {
    /// Creates an engine with a fresh host store of `n_keys × dim`.
    pub fn new(cfg: BaselineConfig, n_keys: u64, dim: usize) -> Self {
        let mut store = HostStore::new(n_keys, dim, cfg.seed);
        store.attach_telemetry(&cfg.telemetry);
        BaselineEngine { cfg, store }
    }

    /// The host parameter store (inspect after [`BaselineEngine::run`]).
    pub fn store(&self) -> &HostStore {
        &self.store
    }

    /// The engine configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    /// Trains `workload` with `model` and returns the run report.
    ///
    /// # Panics
    ///
    /// Panics if the workload GPU count differs from the configured
    /// topology or the model dimension differs from the store.
    pub fn run(&self, workload: &dyn Workload, model: &dyn EmbeddingModel) -> TrainReport {
        let cfg = &self.cfg;
        let n = cfg.n_gpus();
        assert_eq!(workload.n_gpus(), n, "workload/topology GPU count mismatch");
        let dim = model.dim();
        assert_eq!(dim, self.store.dim(), "model/store dim mismatch");
        let row_bytes = (dim * 4) as u64;
        let sharding = Sharding::new(n);
        let n_keys = workload.n_keys();
        let topo_uva = cfg.cost.topology().supports_host_uva()
            && !cfg.cost.topology().gpu_spec().is_commodity();
        let miss_path = if topo_uva {
            HostPath::Uva // datacenter GPUs: unthrottled UVA (paper §2.3)
        } else {
            HostPath::CpuInvolved
        };

        // Per-GPU caches (Cached only).
        let mut caches: Vec<GpuCache> = (0..n)
            .map(|_| {
                let mut c = GpuCache::new(
                    sharding.cache_capacity(n_keys, cfg.cache_ratio),
                    dim,
                    cfg.cache_policy,
                );
                c.set_hot_threshold(sharding.hot_threshold(n_keys, cfg.cache_ratio));
                c
            })
            .collect();

        let rec = cfg.telemetry.recorder("baseline");
        let mut stats = RunStats::new(workload.samples_per_step());
        let mut iters = Vec::with_capacity(cfg.steps as usize);
        let mut total_hits = 0u64;
        let mut total_misses = 0u64;
        let mut total_fills = 0u64;
        let mut total_fill_ns = 0u64;
        let mut first_loss = 0.0f32;
        let mut final_loss = 0.0f32;
        let cost = &cfg.cost;
        let batch_per_gpu = workload.samples_per_step() / n as u64;

        for s in 0..cfg.steps {
            let mut merged = GradAggregator::new(dim);
            let mut loss_sum = 0.0f32;
            let mut it = IterBreakdown::default();

            // ---- Per-owner query routing (Cached only): every GPU's keys
            // are resolved at the owner's cache, as in Fig 2b.
            let sample_span = rec.span(Phase::Sample);
            let mut per_gpu_unique: Vec<Vec<Key>> = Vec::with_capacity(n);
            for g in 0..n {
                let keys = workload.keys(s, g);
                let mut unique = Vec::with_capacity(keys.len());
                let mut seen: HashMap<Key, usize> = HashMap::with_capacity(keys.len());
                for &k in &keys {
                    seen.entry(k).or_insert_with(|| {
                        unique.push(k);
                        unique.len() - 1
                    });
                }
                per_gpu_unique.push(unique);
            }
            drop(sample_span);
            let mut owner_hits = vec![0u64; n];
            let mut owner_misses = vec![0u64; n];
            let mut owner_queries = vec![0u64; n];
            if cfg.kind == BaselineKind::Cached {
                let _span = rec.span(Phase::CacheQuery);
                let mut routed: Vec<Vec<Key>> = (0..n).map(|_| Vec::new()).collect();
                let mut routed_seen: Vec<std::collections::HashSet<Key>> =
                    (0..n).map(|_| std::collections::HashSet::new()).collect();
                for unique in &per_gpu_unique {
                    for &k in unique {
                        let o = sharding.owner(k);
                        if routed_seen[o].insert(k) {
                            routed[o].push(k);
                        }
                    }
                }
                for (o, keys) in routed.iter().enumerate() {
                    owner_queries[o] = keys.len() as u64;
                    for &k in keys {
                        if caches[o].get(&k).is_some() {
                            owner_hits[o] += 1;
                        } else {
                            owner_misses[o] += 1;
                            if caches[o].admits(k) {
                                let t_fill = std::time::Instant::now();
                                let outcome =
                                    caches[o].fill_into(k, |dst| self.store.read_row(k, dst));
                                total_fill_ns += t_fill.elapsed().as_nanos() as u64;
                                if !matches!(outcome, frugal_embed::InsertOutcome::Rejected) {
                                    total_fills += 1;
                                }
                            }
                        }
                    }
                }
            }

            // ---- Per-GPU forward/backward (real math; values come from the
            // always-current host store, caches are performance artifacts).
            for g in 0..n {
                let keys = workload.keys(s, g);
                let unique = &per_gpu_unique[g];
                let u = unique.len() as u64;
                let mut rows = vec![0.0f32; keys.len() * dim];
                let hr_span =
                    rec.span_with(Phase::HostRead, SpanArgs::one("rows", keys.len() as u64));
                for (i, &key) in keys.iter().enumerate() {
                    self.store.read_row(key, &mut rows[i * dim..(i + 1) * dim]);
                }
                drop(hr_span);
                let compute_span = rec.span(Phase::Compute);
                let grads = model.forward_backward(g, s, &keys, &rows);
                loss_sum += grads.loss;
                let mut agg = GradAggregator::new(dim);
                for (i, &key) in keys.iter().enumerate() {
                    agg.add(key, &grads.emb_grads[i * dim..(i + 1) * dim]);
                }
                merged.merge(agg);
                drop(compute_span);

                // ---- Modeled hardware time for GPU g this step.
                let mut comm = if model.dense_param_bytes() > 0 {
                    cost.all_to_all(model.dense_param_bytes())
                } else {
                    Nanos::ZERO
                };
                let host;
                let mut cache_t = Nanos::ZERO;
                let mut other = cost.dnn_time(
                    model.dense_flops_per_sample() * batch_per_gpu as f64,
                    model.dense_layers().max(1),
                );
                match cfg.kind {
                    BaselineKind::NoCache => {
                        // Gather + scatter through the CPU for all keys.
                        host = cost.host_read(HostPath::CpuInvolved, u, row_bytes, n)
                            + cost.host_write(HostPath::CpuInvolved, u, row_bytes, n);
                    }
                    BaselineKind::Uvm => {
                        host = cost.host_read(HostPath::Uvm, u, row_bytes, n)
                            + cost.host_write(HostPath::Uvm, u, row_bytes, n);
                    }
                    BaselineKind::Cached => {
                        // Fig 2b pipeline: ➊ bucket keys (CPU), ➋ all_to_all
                        // keys, ➌ owner cache query, ➍ all_to_all embeddings
                        // (and gradients on the way back), ➎ reorder (CPU).
                        let remote =
                            unique.iter().filter(|&&k| !sharding.is_local(k, g)).count() as u64;
                        comm += cost.all_to_all(u * 8) + cost.all_to_all(remote * row_bytes) * 2;
                        cache_t = cost.cache_query(owner_queries[g]);
                        host = cost.host_read(miss_path, owner_misses[g], row_bytes, n)
                            + cost.host_write(miss_path, owner_misses[g], row_bytes, n);
                        other += Nanos::from_micros_f64(cost.params().cpu_dispatch_us * 2.0);
                    }
                }
                it.comm = it.comm.max(comm);
                it.host_dram = it.host_dram.max(host);
                it.cache = it.cache.max(cache_t);
                it.other = it.other.max(other);
            }

            // CPU-shared per-iteration software: framework row work and the
            // coordinated cache update run on the host's service pool, so
            // they are charged once per step, not per GPU.
            let total_rows: u64 = per_gpu_unique.iter().map(|u| u.len() as u64).sum();
            match cfg.kind {
                BaselineKind::NoCache | BaselineKind::Uvm => {
                    it.other += cost.framework_nocache(total_rows);
                }
                BaselineKind::Cached => {
                    it.other += cost.framework_cached(total_rows);
                    it.cache += cost.cache_coordinated_update(total_rows);
                }
            }

            model.end_step(s);

            // ---- Synchronous update application (canonical order) — the
            // write-through "flush" every baseline pays on the critical path.
            let updates = merged.into_arrival_order();
            let apply_span = rec.span_with(
                Phase::FlushApply,
                SpanArgs::one("rows", updates.len() as u64),
            );
            for (key, grad) in updates {
                self.store.write_row(key, |row| {
                    for (p, &g) in row.iter_mut().zip(&grad) {
                        *p -= cfg.lr * g;
                    }
                });
                if cfg.kind == BaselineKind::Cached {
                    let o = sharding.owner(key);
                    if let Some(row) = caches[o].get_mut(&key) {
                        for (p, &g) in row.iter_mut().zip(&grad) {
                            *p -= cfg.lr * g;
                        }
                    }
                }
            }
            drop(apply_span);

            total_hits += owner_hits.iter().sum::<u64>();
            total_misses += owner_misses.iter().sum::<u64>();
            let loss = loss_sum / n as f32;
            if s == 0 {
                first_loss = loss;
            }
            final_loss = loss;
            iters.push(it);
        }

        for it in &iters {
            stats.push(*it);
        }
        let hit_ratio = if total_hits + total_misses == 0 {
            0.0
        } else {
            total_hits as f64 / (total_hits + total_misses) as f64
        };
        if let Some(reg) = cfg.telemetry.registry() {
            reg.counter("cache.hits").add(total_hits);
            reg.counter("cache.misses").add(total_misses);
            reg.counter("cache.fills").add(total_fills);
            reg.counter("cache.fill_ns").add(total_fill_ns);
        }
        TrainReport {
            stats,
            hit_ratio,
            cache_fills: total_fills,
            cache_fill_ns: total_fill_ns,
            // Baselines have no stall to overlap; prefetch is a P²F-only
            // mechanism.
            cache_prefetch_fills: 0,
            mean_gentry_update: Nanos::ZERO,
            violations: 0,
            races: self.store.race_count(),
            // Baselines apply updates synchronously; nothing is flushed in
            // the background.
            flush_rows: 0,
            flush_apply_ns: 0,
            first_loss,
            final_loss,
            telemetry: cfg.telemetry.summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frugal_core::{train_serial, PullToTarget};
    use frugal_data::{KeyDistribution, SyntheticTrace};

    fn trace(n_keys: u64, batch: usize, n: usize) -> SyntheticTrace {
        SyntheticTrace::new(n_keys, KeyDistribution::Zipf(0.9), batch, n, 3).unwrap()
    }

    #[test]
    fn all_baselines_match_serial_reference() {
        let t = trace(300, 32, 2);
        let model = PullToTarget::new(4, 1);
        let serial = train_serial(&t, &model, 15, 0.1, 42);
        for kind in [
            BaselineKind::NoCache,
            BaselineKind::Cached,
            BaselineKind::Uvm,
        ] {
            let mut cfg = BaselineConfig::pytorch(Topology::commodity(2), 15);
            cfg.kind = kind;
            cfg.cache_ratio = 0.1;
            let engine = BaselineEngine::new(cfg, 300, 4);
            engine.run(&t, &model);
            for key in 0..300 {
                assert_eq!(
                    engine.store().row_vec(key),
                    serial.store.row_vec(key),
                    "{kind:?} diverged at key {key}"
                );
            }
        }
    }

    #[test]
    fn baselines_converge() {
        let t = trace(200, 32, 2);
        let model = PullToTarget::new(4, 2);
        // 60 steps: enough for a 30% loss drop on any reasonable PRNG
        // stream (the vendored rand shim is not bit-compatible with
        // upstream StdRng, so the exact trace differs from the original).
        let engine =
            BaselineEngine::new(BaselineConfig::pytorch(Topology::commodity(2), 60), 200, 4);
        let r = engine.run(&t, &model);
        assert!(
            r.final_loss < r.first_loss * 0.7,
            "first {} final {}",
            r.first_loss,
            r.final_loss
        );
    }

    #[test]
    fn cached_baseline_gets_hits() {
        let t = trace(1_000, 128, 2);
        let model = PullToTarget::new(4, 2);
        let mut cfg = BaselineConfig::hugectr(Topology::commodity(2), 20);
        cfg.cache_ratio = 0.1;
        let engine = BaselineEngine::new(cfg, 1_000, 4);
        let r = engine.run(&t, &model);
        assert!(r.hit_ratio > 0.05, "hit ratio {}", r.hit_ratio);
    }

    #[test]
    fn uvm_is_dramatically_slower() {
        // Exp #1: PyTorch-UVM is "two orders of magnitude slower".
        let t = trace(100_000, 1024, 2);
        let model = PullToTarget::new(4, 2);
        let base = BaselineEngine::new(
            BaselineConfig::pytorch(Topology::commodity(2), 3),
            100_000,
            4,
        );
        let uvm = BaselineEngine::new(BaselineConfig::uvm(Topology::commodity(2), 3), 100_000, 4);
        let tb = base.run(&t, &model).throughput();
        let tu = uvm.run(&t, &model).throughput();
        assert!(tb / tu > 20.0, "base {tb} vs uvm {tu}");
    }

    #[test]
    fn hugectr_slower_on_commodity_than_datacenter() {
        // Fig 3a: up to 37% throughput drop on commodity GPUs.
        let model = PullToTarget::new(4, 2);
        let t = trace(10_000, 512, 4);
        let c = BaselineEngine::new(
            BaselineConfig::hugectr(Topology::commodity(4), 5),
            10_000,
            4,
        );
        let d = BaselineEngine::new(
            BaselineConfig::hugectr(Topology::datacenter(4), 5),
            10_000,
            4,
        );
        let tc = c.run(&t, &model).throughput();
        let td = d.run(&t, &model).throughput();
        assert!(
            tc < td,
            "commodity {tc} should be slower than datacenter {td}"
        );
        let drop = 1.0 - tc / td;
        assert!(drop > 0.1, "drop {drop} too small");
    }

    #[test]
    fn stall_is_zero_for_baselines() {
        let t = trace(100, 16, 2);
        let model = PullToTarget::new(4, 2);
        let engine =
            BaselineEngine::new(BaselineConfig::hugectr(Topology::commodity(2), 5), 100, 4);
        let r = engine.run(&t, &model);
        assert_eq!(r.mean_stall(), Nanos::ZERO);
        assert_eq!(r.mean_gentry_update, Nanos::ZERO);
    }
}
