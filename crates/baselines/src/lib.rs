//! # frugal-baselines — the paper's comparator systems
//!
//! Re-implementations of the systems Frugal is evaluated against
//! (paper §4.1), built on the same substrate (`frugal-sim` hardware model,
//! `frugal-embed` storage, `frugal-core` model/workload seams) so the
//! comparison isolates the *architecture*, exactly as the paper did by
//! re-implementing HugeCTR's multi-GPU cache inside PyTorch:
//!
//! * **PyTorch / DGL-KE** — no GPU cache, CPU-involved host access.
//! * **HugeCTR / DGL-KE-cached** — sharded multi-GPU cache with
//!   `all_to_all` exchange (Fig 2b).
//! * **PyTorch-UVM** — unified-memory paging.

#![warn(missing_docs)]

mod engine;

pub use engine::{BaselineConfig, BaselineEngine, BaselineKind};
