//! `cargo bench --bench ablations` — design-choice ablations beyond the
//! paper's numbered experiments (cache policy, dequeue batching, lookahead
//! L, sparse optimizer).

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::ablation_cache_policy(&scale) {
        println!("{table}");
    }
    for table in frugal_bench::experiments::ablation_flush_batch(&scale) {
        println!("{table}");
    }
    for table in frugal_bench::experiments::ablation_lookahead(&scale) {
        println!("{table}");
    }
    for table in frugal_bench::experiments::ablation_optimizer(&scale) {
        println!("{table}");
    }
    for table in frugal_bench::experiments::ablation_flush_strategy(&scale) {
        println!("{table}");
    }
}
