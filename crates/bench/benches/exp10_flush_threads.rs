//! `cargo bench --bench exp10_flush_threads` — regenerates this paper artifact.

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::exp10_flush_threads(&scale) {
        println!("{table}");
    }
}
