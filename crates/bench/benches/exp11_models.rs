//! `cargo bench --bench exp11_models` — regenerates this paper artifact.

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::exp11_models(&scale) {
        println!("{table}");
    }
}
