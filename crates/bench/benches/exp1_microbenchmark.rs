//! `cargo bench --bench exp1_microbenchmark` — regenerates this paper artifact.

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::exp1_microbenchmark(&scale) {
        println!("{table}");
    }
}
