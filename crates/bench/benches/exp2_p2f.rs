//! `cargo bench --bench exp2_p2f` — regenerates this paper artifact.

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::exp2_p2f(&scale) {
        println!("{table}");
    }
}
