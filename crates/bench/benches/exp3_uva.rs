//! `cargo bench --bench exp3_uva` — regenerates this paper artifact.

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::exp3_uva(&scale) {
        println!("{table}");
    }
}
