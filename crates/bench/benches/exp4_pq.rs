//! `cargo bench --bench exp4_pq` — regenerates this paper artifact.

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::exp4_pq(&scale) {
        println!("{table}");
    }
}
