//! `cargo bench --bench exp5_breakdown` — regenerates this paper artifact.

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::exp5_breakdown(&scale) {
        println!("{table}");
    }
}
