//! `cargo bench --bench exp6_kg` — regenerates this paper artifact.

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::exp6_kg(&scale) {
        println!("{table}");
    }
}
