//! `cargo bench --bench exp7_rec` — regenerates this paper artifact.

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::exp7_rec(&scale) {
        println!("{table}");
    }
}
