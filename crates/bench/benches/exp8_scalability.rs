//! `cargo bench --bench exp8_scalability` — regenerates this paper artifact.

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::exp8_scalability(&scale) {
        println!("{table}");
    }
}
