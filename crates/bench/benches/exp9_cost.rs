//! `cargo bench --bench exp9_cost` — regenerates this paper artifact.

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::exp9_cost(&scale) {
        println!("{table}");
    }
}
