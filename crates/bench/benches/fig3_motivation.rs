//! `cargo bench --bench fig3_motivation` — regenerates this paper artifact.

fn main() {
    let scale = frugal_bench::env_scale();
    for table in frugal_bench::experiments::fig3_motivation(&scale) {
        println!("{table}");
    }
}
