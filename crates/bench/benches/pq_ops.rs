//! Criterion microbenchmarks of the priority-queue operations (§3.4):
//! enqueue / adjust / dequeue on the two-level PQ vs the tree heap, plus
//! the scan-range-compression ablation the paper credits with a 28 %
//! dequeue-time reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frugal_pq::{PriorityQueue, TreeHeap, TwoLevelPq, INFINITE};
use std::hint::black_box;

const MAX_STEP: u64 = 100_000;
const POPULATION: u64 = 50_000;

fn filled<P: PriorityQueue>(pq: &P) {
    for k in 0..POPULATION {
        let p = if k % 7 == 0 { INFINITE } else { k % 64 };
        pq.enqueue(k, p);
    }
}

fn bench_enqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("enqueue");
    g.bench_function(BenchmarkId::new("two_level", POPULATION), |b| {
        b.iter_batched(
            || TwoLevelPq::new(MAX_STEP),
            |pq| {
                for k in 0..10_000u64 {
                    pq.enqueue(black_box(k), k % 64);
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function(BenchmarkId::new("tree_heap", POPULATION), |b| {
        b.iter_batched(
            TreeHeap::new,
            |pq| {
                for k in 0..10_000u64 {
                    pq.enqueue(black_box(k), k % 64);
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_adjust(c: &mut Criterion) {
    let mut g = c.benchmark_group("adjust_priority");
    g.bench_function("two_level", |b| {
        let pq = TwoLevelPq::new(MAX_STEP);
        filled(&pq);
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            for k in 0..1_000u64 {
                let old = if round == 1 {
                    if k % 7 == 0 {
                        INFINITE
                    } else {
                        k % 64
                    }
                } else {
                    64 + ((round - 2 + k) % MAX_STEP.saturating_sub(64))
                };
                let new = 64 + ((round - 1 + k) % MAX_STEP.saturating_sub(64));
                pq.adjust(black_box(k), old, new);
            }
        })
    });
    g.bench_function("tree_heap", |b| {
        let pq = TreeHeap::new();
        filled(&pq);
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            for k in 0..1_000u64 {
                pq.adjust(black_box(k), 0, 64 + ((round + k) % 1_000));
            }
        })
    });
    g.finish();
}

fn bench_dequeue(c: &mut Criterion) {
    let mut g = c.benchmark_group("dequeue_batch");
    for (name, compressed) in [
        ("two_level_compressed", true),
        ("two_level_full_scan", false),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let pq = TwoLevelPq::new(MAX_STEP);
                    // Sparse population across the whole step range: exactly
                    // the case scan-range compression targets.
                    for k in 0..4_000u64 {
                        pq.enqueue(k, (k * 23) % MAX_STEP);
                    }
                    pq.set_upper_bound(MAX_STEP);
                    pq
                },
                |pq| {
                    let mut out = Vec::with_capacity(64);
                    // Compression raises the lower bound as it drains; the
                    // full-scan variant resets it by reinserting low.
                    while {
                        out.clear();
                        pq.dequeue_batch(64, &mut out);
                        if !compressed && !out.is_empty() {
                            // Defeat the lower-bound optimisation.
                            pq.enqueue(out[0].0, 0);
                            pq.dequeue_batch(1, &mut out);
                        }
                        !out.is_empty()
                    } {}
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.bench_function("tree_heap", |b| {
        b.iter_batched(
            || {
                let pq = TreeHeap::new();
                for k in 0..4_000u64 {
                    pq.enqueue(k, (k * 23) % MAX_STEP);
                }
                pq
            },
            |pq| {
                let mut out = Vec::with_capacity(64);
                while {
                    out.clear();
                    pq.dequeue_batch(64, &mut out);
                    !out.is_empty()
                } {}
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_enqueue, bench_adjust, bench_dequeue
}
criterion_main!(benches);
