//! `cargo bench --bench table1_gpu_specs` — paper Table 1.

fn main() {
    println!("{}", frugal_bench::experiments::table1_gpu_specs());
}
