//! `cargo bench --bench table2_datasets` — paper Table 2.

fn main() {
    println!("{}", frugal_bench::experiments::table2_datasets());
}
