//! The cache-policy ablation as a standalone CI artifact: policy × skew ×
//! ratio hit-ratio grid through the full P²F engine, printed as the table
//! EXPERIMENTS.md records and CI archives.
//!
//! ```sh
//! cargo run --release --bin cache_ablation               # default scale
//! FRUGAL_BENCH_QUICK=1 cargo run --release --bin cache_ablation
//! ```
//!
//! Exits non-zero if the grid violates the ordering the policies are
//! designed around on the skewed cells (Zipf ≥ 0.9): the Belady oracle is
//! the per-cell upper bound, and frequency-aware admission must not lose
//! to plain LRU (churn protection is exactly what it buys on skewed
//! traffic). A wobble on one cell is tolerated via a small epsilon; a
//! systematic inversion fails the job.

use frugal_bench::experiments::ablation_cache_policy;

/// Column order must match the table built by `ablation_cache_policy`.
const COL_LRU: usize = 3;
const COL_FREQ: usize = 4;
const COL_ORACLE: usize = 5;

fn parse_pct(cell: &str) -> f64 {
    cell.trim()
        .trim_end_matches('%')
        .parse()
        .expect("hit-ratio cell")
}

fn main() {
    let scale = frugal_bench::env_scale();
    let tables = ablation_cache_policy(&scale);
    let mut failures = Vec::new();
    for t in &tables {
        println!("{t}");
        for row in 0..t.n_rows() {
            let dist = t.cell(row, 0).expect("dist cell");
            let lru = parse_pct(t.cell(row, COL_LRU).expect("lru cell"));
            let freq = parse_pct(t.cell(row, COL_FREQ).expect("freq cell"));
            let oracle = parse_pct(t.cell(row, COL_ORACLE).expect("oracle cell"));
            // Oracle is the upper bound everywhere; freq >= lru on the
            // skews its admission filter targets. 0.5pp epsilon absorbs
            // run-to-run wobble from prefetch timing.
            let eps = 0.5;
            if oracle + eps < lru || oracle + eps < freq {
                failures.push(format!(
                    "{dist} row {row}: oracle {oracle:.1}% below online policies (lru {lru:.1}%, freq {freq:.1}%)"
                ));
            }
            let skewed = dist.contains("0.9");
            if skewed && freq + eps < lru {
                failures.push(format!(
                    "{dist} row {row}: freq {freq:.1}% lost to lru {lru:.1}% on a skewed trace"
                ));
            }
        }
    }
    if !failures.is_empty() {
        eprintln!("cache ablation ordering violations:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("cache ablation: policy ordering holds on all rows");
}
