//! Fixed-seed engine perf smoke: the per-PR perf trajectory tracker.
//!
//! Runs the full Frugal engine on deterministic workloads and writes
//! `BENCH_engine.json` with the numbers the perf trajectory tracks. Two
//! profiles are measured per invocation:
//!
//! * `2gpu` — the historical smoke workload (2 GPUs, 10k keys, Zipf 0.9,
//!   batch 256), keeping the trajectory comparable across the repo's life;
//! * `8gpu` — the paper's commodity testbed width (8 GPUs, 40k keys,
//!   batch 1024, 4 flushers), the configuration the scaling work is gated
//!   on. Its step count defaults to half the 2-GPU count (the cohort is
//!   4× wider, so wall-clock per step grows on small hosts) and can be
//!   pinned with `FRUGAL_SMOKE_STEPS_8GPU`.
//!
//! Each profile records:
//!
//! * `steps_per_sec` — wall-clock engine steps per second (best of
//!   `FRUGAL_SMOKE_REPEATS` runs, to cut scheduler noise),
//! * `mean_gentry_ns` — mean per-step g-entry registration time
//!   (calibrated, the paper's Exp #4a metric),
//! * `p95_stall_ns` — 95th-percentile modeled training stall,
//! * `flush_apply_ns_row` — mean flush-apply cost per row (claim +
//!   optimizer step + host-store write), the flush-path efficiency
//!   metric (taken from the same best-throughput run),
//! * `cache_hit_ratio` — aggregate GPU-cache hit ratio (gated as a floor:
//!   a policy or sharding regression that silently craters cache locality
//!   shows up here before it shows up in throughput),
//! * `cache_fill_ns_row` — mean host→arena copy cost per accepted cache
//!   fill (the zero-alloc flat-arena fill path).
//!
//! The `fifo_*` fields record the arrival-order flush ablation on the
//! same workload; the perf gate reports them but never gates on them.
//!
//! After the timed repeats, one additional run per profile executes with
//! full telemetry attached and emits the critical-path **phase ledger**: a
//! `"phases"` object with per-step mean/p50/p95/p99/max nanoseconds for
//! every engine phase (sample → leader_apply on trainers, dequeue/apply on
//! flushers). `ci/perf_gate.py` uses it to attribute a throughput or
//! stall regression to the phase(s) that moved. `profiled_steps_per_sec`
//! records that run's throughput so the profiling overhead itself is
//! visible (it must stay within a few percent of `steps_per_sec`).
//!
//! A `gentry_mem` block records the compact g-entry store's resident
//! bytes per key at `FRUGAL_SMOKE_MEM_KEYS` keys (default 1M; the
//! DESIGN.md §14 numbers were produced with 1M/10M/100M) — the CriteoTB
//! feasibility measurement behind the < 32 bytes/key acceptance bound.
//!
//! Environment knobs: `FRUGAL_SMOKE_STEPS` (default 200),
//! `FRUGAL_SMOKE_STEPS_8GPU` (default half of `FRUGAL_SMOKE_STEPS`),
//! `FRUGAL_SMOKE_WARMUP` (warmup steps before the timed repeats; default
//! full profile length — see `measure_profile`),
//! `FRUGAL_SMOKE_REPEATS` (default 3), `FRUGAL_SMOKE_MEM_KEYS` (default
//! 1e6), `FRUGAL_SMOKE_OUT` (default `BENCH_engine.json`),
//! `FRUGAL_SMOKE_BASELINE` (path to a previous output whose `current`
//! blocks are embedded as `baseline` for side-by-side comparison; flat
//! files predating the multi-profile schema are read as a bare `2gpu`
//! profile), `FRUGAL_SMOKE_TRACE` (path to write the 2-GPU profiled run's
//! Chrome trace — open in `chrome://tracing` or Perfetto to see the
//! cross-thread unblock arrows).

use frugal_core::{FrugalConfig, FrugalEngine, GEntryStore, PullToTarget};
use frugal_data::{KeyDistribution, SyntheticTrace};
use frugal_pq::TwoLevelPq;
use frugal_telemetry::{LedgerPhase, Telemetry};
use std::sync::Arc;
use std::time::Instant;

const DIM: usize = 32;
const SEED: u64 = 7;

/// One smoke workload configuration.
#[derive(Debug, Clone, Copy)]
struct Profile {
    name: &'static str,
    n_gpus: usize,
    n_keys: u64,
    batch: usize,
    flush_threads: usize,
    steps: u64,
    /// Per-GPU cache capacity as a fraction of the embedding table. Set
    /// explicitly per profile (not left at the `commodity` default) so the
    /// smoke exercises a *warm* cache: with the default 5% the early
    /// profiles recorded `cache_hit_ratio: 0.0000`, which made the perf
    /// gate's hit-ratio floor vacuous.
    cache_ratio: f64,
    /// Whether this profile's instrumented run exports the Chrome trace.
    trace: bool,
}

#[derive(Debug, Clone, Copy)]
struct SmokeNumbers {
    steps_per_sec: f64,
    mean_gentry_ns: u64,
    p95_stall_ns: u64,
    flush_apply_ns_row: f64,
    cache_hit_ratio: f64,
    cache_fill_ns_row: f64,
    /// Arrival-order flush ablation on the same workload — recorded for
    /// the trajectory (the perf gate reports it but does not gate on it).
    fifo_steps_per_sec: f64,
    fifo_p95_stall_ns: u64,
}

/// One per-phase row of the profiled run's ledger summary.
#[derive(Debug, Clone)]
struct PhaseRow {
    name: &'static str,
    steps: u64,
    mean_ns: u64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn smoke_cfg(p: &Profile) -> FrugalConfig {
    let mut cfg = FrugalConfig::commodity(p.n_gpus, p.steps);
    cfg.flush_threads = p.flush_threads;
    cfg.cache_ratio = p.cache_ratio;
    cfg.seed = SEED;
    cfg
}

fn make_trace(p: &Profile) -> SyntheticTrace {
    SyntheticTrace::new(
        p.n_keys,
        KeyDistribution::Zipf(0.9),
        p.batch,
        p.n_gpus,
        SEED,
    )
    .expect("valid trace")
}

fn run_once(p: &Profile) -> SmokeNumbers {
    let trace = make_trace(p);
    let model = PullToTarget::new(DIM, SEED);
    let engine = FrugalEngine::new(smoke_cfg(p), p.n_keys, DIM);
    let t0 = Instant::now();
    let report = engine.run(&trace, &model);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.stats.len(), p.steps as usize);
    assert_eq!(report.violations, 0);

    // The arrival-order ablation on the same workload, timed once per run:
    // informational trajectory numbers (never gated).
    let fifo_engine = FrugalEngine::new(smoke_cfg(p).fifo(), p.n_keys, DIM);
    let t1 = Instant::now();
    let fifo_report = fifo_engine.run(&trace, &model);
    let fifo_wall = t1.elapsed().as_secs_f64();
    assert_eq!(fifo_report.stats.len(), p.steps as usize);

    SmokeNumbers {
        steps_per_sec: p.steps as f64 / wall.max(1e-9),
        mean_gentry_ns: report.mean_gentry_update.as_nanos(),
        p95_stall_ns: report.stats.stall_percentile(0.95).as_nanos(),
        flush_apply_ns_row: report.mean_flush_apply_ns_row(),
        cache_hit_ratio: report.hit_ratio,
        cache_fill_ns_row: report.mean_cache_fill_ns_row(),
        fifo_steps_per_sec: p.steps as f64 / fifo_wall.max(1e-9),
        fifo_p95_stall_ns: fifo_report.stats.stall_percentile(0.95).as_nanos(),
    }
}

/// One fully instrumented run: phase ledger, stall provenance, and (when
/// `FRUGAL_SMOKE_TRACE` is set) a Chrome trace with unblock flow arrows.
/// Kept separate from the timed repeats so profiling cost never taints
/// the gated `steps_per_sec`.
fn run_profiled_once(p: &Profile) -> (f64, Telemetry) {
    let telemetry = Telemetry::new();
    let trace = make_trace(p);
    let model = PullToTarget::new(DIM, SEED);
    let cfg = smoke_cfg(p).with_telemetry(telemetry.clone());
    let engine = FrugalEngine::new(cfg, p.n_keys, DIM);
    let t0 = Instant::now();
    let report = engine.run(&trace, &model);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.stats.len(), p.steps as usize);
    (p.steps as f64 / wall.max(1e-9), telemetry)
}

/// Best of `repeats` instrumented runs — the *same* sample count as the
/// untimed measurement, so `profiled_steps_per_sec` vs `steps_per_sec`
/// reflects profiling overhead rather than best-of-N sampling bias or
/// scheduler noise. The kept run's ledger and Chrome trace are the ones
/// exported.
fn run_profiled(p: &Profile, repeats: u64) -> (f64, Vec<PhaseRow>) {
    let mut best = run_profiled_once(p);
    for _ in 1..repeats {
        let next = run_profiled_once(p);
        if next.0 > best.0 {
            best = next;
        }
    }
    let (sps, telemetry) = best;

    if p.trace {
        if let Ok(path) = std::env::var("FRUGAL_SMOKE_TRACE") {
            if !path.is_empty() {
                match telemetry.write_chrome_trace(&path) {
                    Ok(true) => eprintln!("wrote chrome trace: {path}"),
                    Ok(false) => eprintln!("chrome trace skipped (telemetry off)"),
                    Err(e) => eprintln!("chrome trace write failed: {e}"),
                }
            }
        }
    }

    let mut rows = Vec::with_capacity(LedgerPhase::COUNT);
    if let Some(summary) = telemetry.ledger_summary() {
        for p in summary.phases {
            rows.push(PhaseRow {
                name: p.phase.name(),
                steps: p.steps,
                mean_ns: p.mean_ns as u64,
                p50_ns: p.p50_ns,
                p95_ns: p.p95_ns,
                p99_ns: p.p99_ns,
                max_ns: p.max_ns,
            });
        }
    }
    (sps, rows)
}

/// The g-entry memory probe: builds a store shaped like a mid-training
/// lookahead window over `keys` keys — every key carries a registered
/// read, one in 64 also carries a pending write (sharing one gradient
/// allocation, so the measurement isolates store metadata) — and reports
/// the analytic resident bytes plus a best-effort process-RSS delta.
fn gentry_mem_probe(keys: u64) -> (usize, f64, i64) {
    let rss_before = proc_rss_bytes();
    let store = GEntryStore::new();
    // max_step bounds PQ allocation, not the probe; reads spread over a
    // lookahead-sized step window like the engine produces.
    let pq = TwoLevelPq::new(1024);
    let grad: Arc<[f32]> = vec![0.0f32; DIM].into();
    for k in 0..keys {
        store.add_read(k, k % 11, &pq);
        if k % 64 == 0 {
            store.add_write(k, k % 11, Arc::clone(&grad), &pq);
        }
    }
    let resident = store.resident_bytes();
    let rss_delta = proc_rss_bytes() - rss_before;
    assert_eq!(store.len(), keys as usize);
    (resident, resident as f64 / keys as f64, rss_delta)
}

/// Resident set size in bytes from `/proc/self/statm` (0 where absent).
fn proc_rss_bytes() -> i64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| {
            let pages: i64 = s.split_whitespace().nth(1)?.parse().ok()?;
            Some(pages * 4096)
        })
        .unwrap_or(0)
}

/// Extracts `"field": <number>` from the `"current"` object of a previous
/// smoke output (the files are flat and machine-written; a full JSON parser
/// is not warranted for a handful of known keys). `json` is one profile's
/// slice (see [`extract_profile`]).
fn extract_number(json: &str, field: &str) -> Option<f64> {
    let cur = json.find("\"current\"")?;
    let tail = &json[cur..];
    let pos = tail.find(&format!("\"{field}\""))?;
    let rest = &tail[pos + field.len() + 2..];
    let colon = rest.find(':')?;
    let val: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    val.parse().ok()
}

/// Copies the `"phases": { ... }` object out of the `"current"` block of a
/// previous smoke output verbatim (balanced-brace scan; the files are
/// machine-written with no braces inside strings). Baselines written
/// before the phase ledger existed simply have no such object.
fn extract_phases(json: &str) -> Option<String> {
    let cur = json.find("\"current\"")?;
    let tail = &json[cur..];
    let pos = tail.find("\"phases\"")?;
    let rest = &tail[pos..];
    balanced_object(rest)
}

/// The `{ ... }` object starting at the first `{` of `s`, braces balanced.
fn balanced_object(s: &str) -> Option<String> {
    let open = s.find('{')?;
    let mut depth = 0usize;
    for (i, c) in s[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(s[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Slices one profile's object out of a previous smoke output.
///
/// Multi-profile files carry `"profiles": {"2gpu": {...}, "8gpu": {...}}`;
/// the named object is returned verbatim. Files written before the
/// multi-profile schema are flat — their whole document *is* the 2-GPU
/// profile, so they are returned whole for `"2gpu"` and absent for any
/// other name. Either way the result is fed to [`extract_number`] /
/// [`extract_phases`], which scan for the `"current"` block inside.
fn extract_profile(json: &str, name: &str) -> Option<String> {
    match json.find("\"profiles\"") {
        Some(pos) => {
            let tail = &json[pos..];
            let profiles = balanced_object(tail)?;
            let ppos = profiles.find(&format!("\"{name}\""))?;
            balanced_object(&profiles[ppos..])
        }
        None if name == "2gpu" => Some(json.to_string()),
        None => None,
    }
}

fn phases_json(rows: &[PhaseRow], indent: &str) -> String {
    let mut s = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "{indent}  \"{}\": {{\"steps\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}\n",
            r.name,
            r.steps,
            r.mean_ns,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            r.max_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str(indent);
    s.push('}');
    s
}

/// Renders one result block. `phases` is pre-rendered JSON (either from
/// this run's ledger or copied verbatim from a baseline file); scalar
/// fields stay first so the flat `extract_number` parser keeps working on
/// both old and new files.
fn block(n: &SmokeNumbers, profiled_steps_per_sec: f64, phases: Option<&str>, ind: &str) -> String {
    let mut s = format!(
        "{{\n{ind}  \"steps_per_sec\": {:.2},\n{ind}  \"mean_gentry_ns\": {},\n{ind}  \"p95_stall_ns\": {},\n{ind}  \"flush_apply_ns_row\": {:.2},\n{ind}  \"cache_hit_ratio\": {:.4},\n{ind}  \"cache_fill_ns_row\": {:.2},\n{ind}  \"fifo_steps_per_sec\": {:.2},\n{ind}  \"fifo_p95_stall_ns\": {},\n{ind}  \"profiled_steps_per_sec\": {:.2}",
        n.steps_per_sec,
        n.mean_gentry_ns,
        n.p95_stall_ns,
        n.flush_apply_ns_row,
        n.cache_hit_ratio,
        n.cache_fill_ns_row,
        n.fifo_steps_per_sec,
        n.fifo_p95_stall_ns,
        profiled_steps_per_sec
    );
    if let Some(p) = phases {
        s.push_str(&format!(",\n{ind}  \"phases\": "));
        s.push_str(p);
    }
    s.push_str(&format!("\n{ind}}}"));
    s
}

/// Measures one profile end to end and renders its JSON object (workload,
/// optional baseline block sliced from `baseline_json`, current block).
fn measure_profile(p: &Profile, repeats: u64, baseline_json: Option<&str>) -> String {
    eprintln!(
        "profile {}: {} gpus, {} keys, batch {}, {} steps",
        p.name, p.n_gpus, p.n_keys, p.batch, p.steps
    );
    // Warmup run (page-faults the store, primes the allocator, and lets
    // the OS scheduler settle thread placement), then take the best of
    // `repeats` measured runs. Full-length by default: the truncated
    // 20-step warmup left the wider profiles under-warmed, so the
    // *profiled* run — which executes after all the timed repeats — beat
    // the timed best by >20% (warmup bias, not profiling speedup).
    // `FRUGAL_SMOKE_WARMUP` overrides the warmup step count.
    let warmup = Profile {
        steps: env_u64("FRUGAL_SMOKE_WARMUP", p.steps).max(1),
        ..*p
    };
    let _ = run_once(&warmup);
    let mut best: Option<SmokeNumbers> = None;
    for i in 0..repeats {
        let n = run_once(p);
        eprintln!(
            "  run {}/{}: {:.1} steps/s, gentry {} ns, p95 stall {} ns, flush {:.1} ns/row, hit {:.1}%, fill {:.1} ns/row, fifo {:.1} steps/s",
            i + 1,
            repeats,
            n.steps_per_sec,
            n.mean_gentry_ns,
            n.p95_stall_ns,
            n.flush_apply_ns_row,
            n.cache_hit_ratio * 100.0,
            n.cache_fill_ns_row,
            n.fifo_steps_per_sec
        );
        best = Some(match best {
            Some(b) if b.steps_per_sec >= n.steps_per_sec => b,
            _ => n,
        });
    }
    let current = best.expect("at least one run");

    // The instrumented run, after the timed repeats so its overhead cannot
    // taint them.
    let (profiled_sps, phase_rows) = run_profiled(p, repeats);
    eprintln!(
        "  profiled run: {:.1} steps/s ({:+.1}% vs best untimed)",
        profiled_sps,
        (profiled_sps / current.steps_per_sec - 1.0) * 100.0
    );
    for r in &phase_rows {
        eprintln!(
            "    phase {:>14}: mean {:>9} ns  p50 {:>9}  p95 {:>9}  p99 {:>9}  max {:>10}",
            r.name, r.mean_ns, r.p50_ns, r.p95_ns, r.p99_ns, r.max_ns
        );
    }

    let profile_baseline = baseline_json.and_then(|j| extract_profile(j, p.name));
    let baseline = profile_baseline.as_ref().and_then(|json| {
        Some(SmokeNumbers {
            steps_per_sec: extract_number(json, "steps_per_sec")?,
            mean_gentry_ns: extract_number(json, "mean_gentry_ns")? as u64,
            p95_stall_ns: extract_number(json, "p95_stall_ns")? as u64,
            // Optional: baselines written before these fields existed
            // compare as 0 (the perf gate skips a zero baseline).
            flush_apply_ns_row: extract_number(json, "flush_apply_ns_row").unwrap_or(0.0),
            cache_hit_ratio: extract_number(json, "cache_hit_ratio").unwrap_or(0.0),
            cache_fill_ns_row: extract_number(json, "cache_fill_ns_row").unwrap_or(0.0),
            fifo_steps_per_sec: extract_number(json, "fifo_steps_per_sec").unwrap_or(0.0),
            fifo_p95_stall_ns: extract_number(json, "fifo_p95_stall_ns").unwrap_or(0.0) as u64,
        })
    });
    let baseline_profiled = profile_baseline
        .as_ref()
        .and_then(|json| extract_number(json, "profiled_steps_per_sec"))
        .unwrap_or(0.0);
    let baseline_phases = profile_baseline.as_ref().and_then(|j| extract_phases(j));

    let mut s = format!(
        "{{\n      \"workload\": {{\n        \"n_gpus\": {},\n        \"zipf\": 0.9,\n        \"steps\": {},\n        \"n_keys\": {},\n        \"batch\": {},\n        \"flush_threads\": {},\n        \"cache_ratio\": {},\n        \"seed\": {SEED}\n      }},\n",
        p.n_gpus, p.steps, p.n_keys, p.batch, p.flush_threads, p.cache_ratio
    );
    if let Some(b) = &baseline {
        s.push_str(&format!(
            "      \"baseline\": {},\n",
            block(b, baseline_profiled, baseline_phases.as_deref(), "      ")
        ));
        println!(
            "{} baseline: {:.1} steps/s, gentry {} ns, p95 stall {} ns, flush {:.1} ns/row",
            p.name, b.steps_per_sec, b.mean_gentry_ns, b.p95_stall_ns, b.flush_apply_ns_row
        );
    }
    let cur_phases = phases_json(&phase_rows, "        ");
    s.push_str(&format!(
        "      \"current\": {}\n    }}",
        block(&current, profiled_sps, Some(&cur_phases), "      ")
    ));
    println!(
        "{} current: {:.1} steps/s, gentry {} ns, p95 stall {} ns, flush {:.1} ns/row, hit {:.1}%, fill {:.1} ns/row, fifo {:.1} steps/s",
        p.name,
        current.steps_per_sec,
        current.mean_gentry_ns,
        current.p95_stall_ns,
        current.flush_apply_ns_row,
        current.cache_hit_ratio * 100.0,
        current.cache_fill_ns_row,
        current.fifo_steps_per_sec
    );
    s
}

fn main() {
    let steps = env_u64("FRUGAL_SMOKE_STEPS", 200);
    let repeats = env_u64("FRUGAL_SMOKE_REPEATS", 3).max(1);
    let mem_keys = env_u64("FRUGAL_SMOKE_MEM_KEYS", 1_000_000).max(1);
    let out_path =
        std::env::var("FRUGAL_SMOKE_OUT").unwrap_or_else(|_| "BENCH_engine.json".to_string());

    let profiles = [
        Profile {
            name: "2gpu",
            n_gpus: 2,
            n_keys: 10_000,
            batch: 256,
            flush_threads: 2,
            steps,
            // 20% of 10k keys = 2000 rows per GPU: under Zipf 0.9 the hot
            // head fits, so the profile measures a working cache (hits,
            // fills, and evictions) instead of an always-missing one.
            cache_ratio: 0.20,
            trace: true,
        },
        Profile {
            name: "8gpu",
            n_gpus: 8,
            n_keys: 40_000,
            batch: 1_024,
            flush_threads: 4,
            steps: env_u64("FRUGAL_SMOKE_STEPS_8GPU", (steps / 2).max(20)),
            // 5% of 40k keys = 2000 rows per GPU. Doubling this bought
            // almost no extra hits (the Zipf-0.9 head past the hot set is
            // nearly flat, and cache ownership splits it 8 ways) while the
            // larger resident set tripled cache_apply/fill cost — so the
            // wide profile keeps the paper's 5% and the non-zero hit floor
            // comes from the hot head it does capture.
            cache_ratio: 0.05,
            trace: false,
        },
    ];

    let baseline_json = std::env::var("FRUGAL_SMOKE_BASELINE")
        .ok()
        .and_then(|p| std::fs::read_to_string(p).ok());

    let mut json = String::from("{\n  \"bench\": \"engine_smoke\",\n  \"profiles\": {\n");
    for (i, p) in profiles.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {}{}\n",
            p.name,
            measure_profile(p, repeats, baseline_json.as_deref()),
            if i + 1 < profiles.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");

    let (resident, bytes_per_key, rss_delta) = gentry_mem_probe(mem_keys);
    eprintln!(
        "gentry mem probe: {mem_keys} keys, {resident} resident bytes ({bytes_per_key:.1} B/key), rss delta {rss_delta}"
    );
    json.push_str(&format!(
        "  \"gentry_mem\": {{\n    \"keys\": {mem_keys},\n    \"resident_bytes\": {resident},\n    \"bytes_per_key\": {bytes_per_key:.2},\n    \"rss_delta_bytes\": {rss_delta}\n  }}\n}}\n"
    ));
    std::fs::write(&out_path, &json).expect("write smoke output");
    println!("wrote {out_path}: gentry store {bytes_per_key:.1} bytes/key at {mem_keys} keys");
}
