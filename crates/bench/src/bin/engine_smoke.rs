//! Fixed-seed engine perf smoke: the per-PR perf trajectory tracker.
//!
//! Runs the full Frugal engine on a deterministic workload (2 GPUs,
//! Zipf 0.9, 200 steps by default) and writes `BENCH_engine.json` with the
//! numbers the perf trajectory tracks:
//!
//! * `steps_per_sec` — wall-clock engine steps per second (best of
//!   `FRUGAL_SMOKE_REPEATS` runs, to cut scheduler noise),
//! * `mean_gentry_ns` — mean per-step g-entry registration time
//!   (calibrated, the paper's Exp #4a metric),
//! * `p95_stall_ns` — 95th-percentile modeled training stall,
//! * `flush_apply_ns_row` — mean flush-apply cost per row (claim +
//!   optimizer step + host-store write), the flush-path efficiency
//!   metric (taken from the same best-throughput run).
//!
//! The `fifo_*` fields record the arrival-order flush ablation on the
//! same workload; the perf gate reports them but never gates on them.
//!
//! After the timed repeats, one additional run executes with full
//! telemetry attached and emits the critical-path **phase ledger**: a
//! `"phases"` object with per-step mean/p50/p95/p99/max nanoseconds for
//! every engine phase (sample → leader_apply on trainers, dequeue/apply on
//! flushers). `ci/perf_gate.py` uses it to attribute a throughput or
//! stall regression to the phase(s) that moved. `profiled_steps_per_sec`
//! records that run's throughput so the profiling overhead itself is
//! visible (it must stay within a few percent of `steps_per_sec`).
//!
//! Environment knobs: `FRUGAL_SMOKE_STEPS` (default 200),
//! `FRUGAL_SMOKE_REPEATS` (default 3), `FRUGAL_SMOKE_OUT` (default
//! `BENCH_engine.json`), `FRUGAL_SMOKE_BASELINE` (path to a previous
//! output whose `current` block is embedded as `baseline` for
//! side-by-side comparison), `FRUGAL_SMOKE_TRACE` (path to write the
//! profiled run's Chrome trace — open in `chrome://tracing` or Perfetto
//! to see the cross-thread unblock arrows).

use frugal_core::{FrugalConfig, FrugalEngine, PullToTarget};
use frugal_data::{KeyDistribution, SyntheticTrace};
use frugal_telemetry::{LedgerPhase, Telemetry};
use std::time::Instant;

const N_KEYS: u64 = 10_000;
const BATCH: usize = 256;
const N_GPUS: usize = 2;
const DIM: usize = 32;
const SEED: u64 = 7;

#[derive(Debug, Clone, Copy)]
struct SmokeNumbers {
    steps_per_sec: f64,
    mean_gentry_ns: u64,
    p95_stall_ns: u64,
    flush_apply_ns_row: f64,
    /// Arrival-order flush ablation on the same workload — recorded for
    /// the trajectory (the perf gate reports it but does not gate on it).
    fifo_steps_per_sec: f64,
    fifo_p95_stall_ns: u64,
}

/// One per-phase row of the profiled run's ledger summary.
#[derive(Debug, Clone)]
struct PhaseRow {
    name: &'static str,
    steps: u64,
    mean_ns: u64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn smoke_cfg(steps: u64) -> FrugalConfig {
    let mut cfg = FrugalConfig::commodity(N_GPUS, steps);
    cfg.flush_threads = 2;
    cfg.seed = SEED;
    cfg
}

fn run_once(steps: u64) -> SmokeNumbers {
    let trace = SyntheticTrace::new(N_KEYS, KeyDistribution::Zipf(0.9), BATCH, N_GPUS, SEED)
        .expect("valid trace");
    let model = PullToTarget::new(DIM, SEED);
    let engine = FrugalEngine::new(smoke_cfg(steps), N_KEYS, DIM);
    let t0 = Instant::now();
    let report = engine.run(&trace, &model);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.stats.len(), steps as usize);
    assert_eq!(report.violations, 0);

    // The arrival-order ablation on the same workload, timed once per run:
    // informational trajectory numbers (never gated).
    let fifo_engine = FrugalEngine::new(smoke_cfg(steps).fifo(), N_KEYS, DIM);
    let t1 = Instant::now();
    let fifo_report = fifo_engine.run(&trace, &model);
    let fifo_wall = t1.elapsed().as_secs_f64();
    assert_eq!(fifo_report.stats.len(), steps as usize);

    SmokeNumbers {
        steps_per_sec: steps as f64 / wall.max(1e-9),
        mean_gentry_ns: report.mean_gentry_update.as_nanos(),
        p95_stall_ns: report.stats.stall_percentile(0.95).as_nanos(),
        flush_apply_ns_row: report.mean_flush_apply_ns_row(),
        fifo_steps_per_sec: steps as f64 / fifo_wall.max(1e-9),
        fifo_p95_stall_ns: fifo_report.stats.stall_percentile(0.95).as_nanos(),
    }
}

/// One fully instrumented run: phase ledger, stall provenance, and (when
/// `FRUGAL_SMOKE_TRACE` is set) a Chrome trace with unblock flow arrows.
/// Kept separate from the timed repeats so profiling cost never taints
/// the gated `steps_per_sec`.
fn run_profiled_once(steps: u64) -> (f64, Telemetry) {
    let telemetry = Telemetry::new();
    let trace = SyntheticTrace::new(N_KEYS, KeyDistribution::Zipf(0.9), BATCH, N_GPUS, SEED)
        .expect("valid trace");
    let model = PullToTarget::new(DIM, SEED);
    let cfg = smoke_cfg(steps).with_telemetry(telemetry.clone());
    let engine = FrugalEngine::new(cfg, N_KEYS, DIM);
    let t0 = Instant::now();
    let report = engine.run(&trace, &model);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.stats.len(), steps as usize);
    (steps as f64 / wall.max(1e-9), telemetry)
}

/// Best of `repeats` instrumented runs — the *same* sample count as the
/// untimed measurement, so `profiled_steps_per_sec` vs `steps_per_sec`
/// reflects profiling overhead rather than best-of-N sampling bias or
/// scheduler noise. The kept run's ledger and Chrome trace are the ones
/// exported.
fn run_profiled(steps: u64, repeats: u64) -> (f64, Vec<PhaseRow>) {
    let mut best = run_profiled_once(steps);
    for _ in 1..repeats {
        let next = run_profiled_once(steps);
        if next.0 > best.0 {
            best = next;
        }
    }
    let (sps, telemetry) = best;

    if let Ok(path) = std::env::var("FRUGAL_SMOKE_TRACE") {
        if !path.is_empty() {
            match telemetry.write_chrome_trace(&path) {
                Ok(true) => eprintln!("wrote chrome trace: {path}"),
                Ok(false) => eprintln!("chrome trace skipped (telemetry off)"),
                Err(e) => eprintln!("chrome trace write failed: {e}"),
            }
        }
    }

    let mut rows = Vec::with_capacity(LedgerPhase::COUNT);
    if let Some(summary) = telemetry.ledger_summary() {
        for p in summary.phases {
            rows.push(PhaseRow {
                name: p.phase.name(),
                steps: p.steps,
                mean_ns: p.mean_ns as u64,
                p50_ns: p.p50_ns,
                p95_ns: p.p95_ns,
                p99_ns: p.p99_ns,
                max_ns: p.max_ns,
            });
        }
    }
    (sps, rows)
}

/// Extracts `"field": <number>` from the `"current"` object of a previous
/// smoke output (the files are flat and machine-written; a full JSON parser
/// is not warranted for a handful of known keys).
fn extract_number(json: &str, field: &str) -> Option<f64> {
    let cur = json.find("\"current\"")?;
    let tail = &json[cur..];
    let pos = tail.find(&format!("\"{field}\""))?;
    let rest = &tail[pos + field.len() + 2..];
    let colon = rest.find(':')?;
    let val: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    val.parse().ok()
}

/// Copies the `"phases": { ... }` object out of the `"current"` block of a
/// previous smoke output verbatim (balanced-brace scan; the files are
/// machine-written with no braces inside strings). Baselines written
/// before the phase ledger existed simply have no such object.
fn extract_phases(json: &str) -> Option<String> {
    let cur = json.find("\"current\"")?;
    let tail = &json[cur..];
    let pos = tail.find("\"phases\"")?;
    let rest = &tail[pos..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[open..=open + i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

fn phases_json(rows: &[PhaseRow], indent: &str) -> String {
    let mut s = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "{indent}  \"{}\": {{\"steps\": {}, \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}{}\n",
            r.name,
            r.steps,
            r.mean_ns,
            r.p50_ns,
            r.p95_ns,
            r.p99_ns,
            r.max_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str(indent);
    s.push('}');
    s
}

/// Renders one result block. `phases` is pre-rendered JSON (either from
/// this run's ledger or copied verbatim from a baseline file); scalar
/// fields stay first so the flat `extract_number` parser keeps working on
/// both old and new files.
fn block(n: &SmokeNumbers, profiled_steps_per_sec: f64, phases: Option<&str>) -> String {
    let mut s = format!(
        "{{\n    \"steps_per_sec\": {:.2},\n    \"mean_gentry_ns\": {},\n    \"p95_stall_ns\": {},\n    \"flush_apply_ns_row\": {:.2},\n    \"fifo_steps_per_sec\": {:.2},\n    \"fifo_p95_stall_ns\": {},\n    \"profiled_steps_per_sec\": {:.2}",
        n.steps_per_sec,
        n.mean_gentry_ns,
        n.p95_stall_ns,
        n.flush_apply_ns_row,
        n.fifo_steps_per_sec,
        n.fifo_p95_stall_ns,
        profiled_steps_per_sec
    );
    if let Some(p) = phases {
        s.push_str(",\n    \"phases\": ");
        s.push_str(p);
    }
    s.push_str("\n  }");
    s
}

fn main() {
    let steps = env_u64("FRUGAL_SMOKE_STEPS", 200);
    let repeats = env_u64("FRUGAL_SMOKE_REPEATS", 3).max(1);
    let out_path =
        std::env::var("FRUGAL_SMOKE_OUT").unwrap_or_else(|_| "BENCH_engine.json".to_string());

    // Warmup run (page-faults the store, primes the allocator), then take
    // the best of `repeats` measured runs.
    let _ = run_once(steps.min(20));
    let mut best: Option<SmokeNumbers> = None;
    for i in 0..repeats {
        let n = run_once(steps);
        eprintln!(
            "run {}/{}: {:.1} steps/s, gentry {} ns, p95 stall {} ns, flush {:.1} ns/row, fifo {:.1} steps/s",
            i + 1,
            repeats,
            n.steps_per_sec,
            n.mean_gentry_ns,
            n.p95_stall_ns,
            n.flush_apply_ns_row,
            n.fifo_steps_per_sec
        );
        best = Some(match best {
            Some(b) if b.steps_per_sec >= n.steps_per_sec => b,
            _ => n,
        });
    }
    let current = best.expect("at least one run");

    // The instrumented run, after the timed repeats so its overhead cannot
    // taint them.
    let (profiled_sps, phase_rows) = run_profiled(steps, repeats);
    eprintln!(
        "profiled run: {:.1} steps/s ({:+.1}% vs best untimed)",
        profiled_sps,
        (profiled_sps / current.steps_per_sec - 1.0) * 100.0
    );
    for r in &phase_rows {
        eprintln!(
            "  phase {:>14}: mean {:>9} ns  p50 {:>9}  p95 {:>9}  p99 {:>9}  max {:>10}",
            r.name, r.mean_ns, r.p50_ns, r.p95_ns, r.p99_ns, r.max_ns
        );
    }

    let baseline_json = std::env::var("FRUGAL_SMOKE_BASELINE")
        .ok()
        .and_then(|p| std::fs::read_to_string(p).ok());
    let baseline = baseline_json.as_ref().and_then(|json| {
        Some(SmokeNumbers {
            steps_per_sec: extract_number(json, "steps_per_sec")?,
            mean_gentry_ns: extract_number(json, "mean_gentry_ns")? as u64,
            p95_stall_ns: extract_number(json, "p95_stall_ns")? as u64,
            // Optional: baselines written before these fields existed
            // compare as 0 (the perf gate skips a zero baseline).
            flush_apply_ns_row: extract_number(json, "flush_apply_ns_row").unwrap_or(0.0),
            fifo_steps_per_sec: extract_number(json, "fifo_steps_per_sec").unwrap_or(0.0),
            fifo_p95_stall_ns: extract_number(json, "fifo_p95_stall_ns").unwrap_or(0.0) as u64,
        })
    });
    let baseline_profiled = baseline_json
        .as_ref()
        .and_then(|json| extract_number(json, "profiled_steps_per_sec"))
        .unwrap_or(0.0);
    let baseline_phases = baseline_json.as_ref().and_then(|json| extract_phases(json));

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"engine_smoke\",\n  \"workload\": {{\n    \"n_gpus\": {N_GPUS},\n    \"zipf\": 0.9,\n    \"steps\": {steps},\n    \"n_keys\": {N_KEYS},\n    \"batch\": {BATCH},\n    \"seed\": {SEED}\n  }},\n"
    ));
    if let Some(b) = &baseline {
        json.push_str(&format!(
            "  \"baseline\": {},\n",
            block(b, baseline_profiled, baseline_phases.as_deref())
        ));
    }
    let cur_phases = phases_json(&phase_rows, "    ");
    json.push_str(&format!(
        "  \"current\": {}\n}}\n",
        block(&current, profiled_sps, Some(&cur_phases))
    ));
    std::fs::write(&out_path, &json).expect("write smoke output");
    println!(
        "wrote {out_path}: {:.1} steps/s, gentry {} ns, p95 stall {} ns, flush {:.1} ns/row, fifo {:.1} steps/s",
        current.steps_per_sec,
        current.mean_gentry_ns,
        current.p95_stall_ns,
        current.flush_apply_ns_row,
        current.fifo_steps_per_sec
    );
    if let Some(b) = baseline {
        println!(
            "baseline: {:.1} steps/s, gentry {} ns, p95 stall {} ns, flush {:.1} ns/row",
            b.steps_per_sec, b.mean_gentry_ns, b.p95_stall_ns, b.flush_apply_ns_row
        );
    }
}
