//! Fixed-seed engine perf smoke: the per-PR perf trajectory tracker.
//!
//! Runs the full Frugal engine on a deterministic workload (2 GPUs,
//! Zipf 0.9, 200 steps by default) and writes `BENCH_engine.json` with the
//! three numbers the perf trajectory tracks from this PR onward:
//!
//! * `steps_per_sec` — wall-clock engine steps per second (best of
//!   `FRUGAL_SMOKE_REPEATS` runs, to cut scheduler noise),
//! * `mean_gentry_ns` — mean per-step g-entry registration time
//!   (calibrated, the paper's Exp #4a metric),
//! * `p95_stall_ns` — 95th-percentile modeled training stall,
//! * `flush_apply_ns_row` — mean flush-apply cost per row (claim +
//!   optimizer step + host-store write), the flush-path efficiency
//!   metric (taken from the same best-throughput run).
//!
//! The `fifo_*` fields record the arrival-order flush ablation on the
//! same workload; the perf gate reports them but never gates on them.
//!
//! Environment knobs: `FRUGAL_SMOKE_STEPS` (default 200),
//! `FRUGAL_SMOKE_REPEATS` (default 3), `FRUGAL_SMOKE_OUT` (default
//! `BENCH_engine.json`), `FRUGAL_SMOKE_BASELINE` (path to a previous
//! output whose `current` block is embedded as `baseline` for
//! side-by-side comparison).

use frugal_core::{FrugalConfig, FrugalEngine, PullToTarget};
use frugal_data::{KeyDistribution, SyntheticTrace};
use std::time::Instant;

const N_KEYS: u64 = 10_000;
const BATCH: usize = 256;
const N_GPUS: usize = 2;
const DIM: usize = 32;
const SEED: u64 = 7;

#[derive(Debug, Clone, Copy)]
struct SmokeNumbers {
    steps_per_sec: f64,
    mean_gentry_ns: u64,
    p95_stall_ns: u64,
    flush_apply_ns_row: f64,
    /// Arrival-order flush ablation on the same workload — recorded for
    /// the trajectory (the perf gate reports it but does not gate on it).
    fifo_steps_per_sec: f64,
    fifo_p95_stall_ns: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn smoke_cfg(steps: u64) -> FrugalConfig {
    let mut cfg = FrugalConfig::commodity(N_GPUS, steps);
    cfg.flush_threads = 2;
    cfg.seed = SEED;
    cfg
}

fn run_once(steps: u64) -> SmokeNumbers {
    let trace = SyntheticTrace::new(N_KEYS, KeyDistribution::Zipf(0.9), BATCH, N_GPUS, SEED)
        .expect("valid trace");
    let model = PullToTarget::new(DIM, SEED);
    let engine = FrugalEngine::new(smoke_cfg(steps), N_KEYS, DIM);
    let t0 = Instant::now();
    let report = engine.run(&trace, &model);
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.stats.len(), steps as usize);
    assert_eq!(report.violations, 0);

    // The arrival-order ablation on the same workload, timed once per run:
    // informational trajectory numbers (never gated).
    let fifo_engine = FrugalEngine::new(smoke_cfg(steps).fifo(), N_KEYS, DIM);
    let t1 = Instant::now();
    let fifo_report = fifo_engine.run(&trace, &model);
    let fifo_wall = t1.elapsed().as_secs_f64();
    assert_eq!(fifo_report.stats.len(), steps as usize);

    SmokeNumbers {
        steps_per_sec: steps as f64 / wall.max(1e-9),
        mean_gentry_ns: report.mean_gentry_update.as_nanos(),
        p95_stall_ns: report.stats.stall_percentile(0.95).as_nanos(),
        flush_apply_ns_row: report.mean_flush_apply_ns_row(),
        fifo_steps_per_sec: steps as f64 / fifo_wall.max(1e-9),
        fifo_p95_stall_ns: fifo_report.stats.stall_percentile(0.95).as_nanos(),
    }
}

/// Extracts `"field": <number>` from the `"current"` object of a previous
/// smoke output (the files are flat and machine-written; a full JSON parser
/// is not warranted for three known keys).
fn extract_number(json: &str, field: &str) -> Option<f64> {
    let cur = json.find("\"current\"")?;
    let tail = &json[cur..];
    let pos = tail.find(&format!("\"{field}\""))?;
    let rest = &tail[pos + field.len() + 2..];
    let colon = rest.find(':')?;
    let val: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    val.parse().ok()
}

fn block(n: &SmokeNumbers) -> String {
    format!(
        "{{\n    \"steps_per_sec\": {:.2},\n    \"mean_gentry_ns\": {},\n    \"p95_stall_ns\": {},\n    \"flush_apply_ns_row\": {:.2},\n    \"fifo_steps_per_sec\": {:.2},\n    \"fifo_p95_stall_ns\": {}\n  }}",
        n.steps_per_sec,
        n.mean_gentry_ns,
        n.p95_stall_ns,
        n.flush_apply_ns_row,
        n.fifo_steps_per_sec,
        n.fifo_p95_stall_ns
    )
}

fn main() {
    let steps = env_u64("FRUGAL_SMOKE_STEPS", 200);
    let repeats = env_u64("FRUGAL_SMOKE_REPEATS", 3).max(1);
    let out_path =
        std::env::var("FRUGAL_SMOKE_OUT").unwrap_or_else(|_| "BENCH_engine.json".to_string());

    // Warmup run (page-faults the store, primes the allocator), then take
    // the best of `repeats` measured runs.
    let _ = run_once(steps.min(20));
    let mut best: Option<SmokeNumbers> = None;
    for i in 0..repeats {
        let n = run_once(steps);
        eprintln!(
            "run {}/{}: {:.1} steps/s, gentry {} ns, p95 stall {} ns, flush {:.1} ns/row, fifo {:.1} steps/s",
            i + 1,
            repeats,
            n.steps_per_sec,
            n.mean_gentry_ns,
            n.p95_stall_ns,
            n.flush_apply_ns_row,
            n.fifo_steps_per_sec
        );
        best = Some(match best {
            Some(b) if b.steps_per_sec >= n.steps_per_sec => b,
            _ => n,
        });
    }
    let current = best.expect("at least one run");

    let baseline = std::env::var("FRUGAL_SMOKE_BASELINE")
        .ok()
        .and_then(|p| std::fs::read_to_string(p).ok())
        .and_then(|json| {
            Some(SmokeNumbers {
                steps_per_sec: extract_number(&json, "steps_per_sec")?,
                mean_gentry_ns: extract_number(&json, "mean_gentry_ns")? as u64,
                p95_stall_ns: extract_number(&json, "p95_stall_ns")? as u64,
                // Optional: baselines written before these fields existed
                // compare as 0 (the perf gate skips a zero baseline).
                flush_apply_ns_row: extract_number(&json, "flush_apply_ns_row").unwrap_or(0.0),
                fifo_steps_per_sec: extract_number(&json, "fifo_steps_per_sec").unwrap_or(0.0),
                fifo_p95_stall_ns: extract_number(&json, "fifo_p95_stall_ns").unwrap_or(0.0) as u64,
            })
        });

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"engine_smoke\",\n  \"workload\": {{\n    \"n_gpus\": {N_GPUS},\n    \"zipf\": 0.9,\n    \"steps\": {steps},\n    \"n_keys\": {N_KEYS},\n    \"batch\": {BATCH},\n    \"seed\": {SEED}\n  }},\n"
    ));
    if let Some(b) = &baseline {
        json.push_str(&format!("  \"baseline\": {},\n", block(b)));
    }
    json.push_str(&format!("  \"current\": {}\n}}\n", block(&current)));
    std::fs::write(&out_path, &json).expect("write smoke output");
    println!(
        "wrote {out_path}: {:.1} steps/s, gentry {} ns, p95 stall {} ns, flush {:.1} ns/row, fifo {:.1} steps/s",
        current.steps_per_sec,
        current.mean_gentry_ns,
        current.p95_stall_ns,
        current.flush_apply_ns_row,
        current.fifo_steps_per_sec
    );
    if let Some(b) = baseline {
        println!(
            "baseline: {:.1} steps/s, gentry {} ns, p95 stall {} ns, flush {:.1} ns/row",
            b.steps_per_sec, b.mean_gentry_ns, b.p95_stall_ns, b.flush_apply_ns_row
        );
    }
}
