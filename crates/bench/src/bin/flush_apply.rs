//! Flush-apply microbenchmark: per-row cost of the flush path in isolation.
//!
//! Two levels per optimizer (SGD and Adagrad), both reported as ns/row:
//!
//! * `*_kernel_ns_row` — the raw row kernel ([`frugal_embed::kernels`])
//!   over resident rows, no queues or stores. This is the vectorization
//!   floor the flush path is chasing.
//! * `*_flush_ns_row` — the flusher's end-to-end inner path: guarded pq
//!   dequeue → key-sorted `take_writes_into` claim → optimizer apply into
//!   the [`HostStore`] seqlock write. The gap to the kernel number is pure
//!   coordination overhead (pq, g-entry bookkeeping, store versioning).
//!
//! Writes `BENCH_flush_apply.json` (best of `FRUGAL_FLUSH_REPEATS` runs).
//! Environment knobs: `FRUGAL_FLUSH_ROWS` (default 20000),
//! `FRUGAL_FLUSH_DIM` (default 32), `FRUGAL_FLUSH_REPEATS` (default 3),
//! `FRUGAL_FLUSH_OUT` (default `BENCH_flush_apply.json`).

use frugal_core::{GEntryStore, InflightTable, PendingWrites};
use frugal_embed::{kernels, AdagradRule, HostStore, SgdRule, UpdateRule};
use frugal_pq::{PriorityQueue, TwoLevelPq};
use std::sync::Arc;
use std::time::Instant;

const SEED: u64 = 7;
const LR: f32 = 0.05;
const FLUSH_BATCH: usize = 256;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Raw kernel cost: one optimizer step over every row, no coordination.
fn kernel_ns_row(rows: usize, dim: usize, adagrad: bool) -> f64 {
    let mut data = vec![0.1f32; rows * dim];
    let mut acc = vec![0.0f32; rows * dim];
    let grad: Vec<f32> = (0..dim).map(|i| 0.01 * (i as f32 + 1.0)).collect();
    let t0 = Instant::now();
    for r in 0..rows {
        let row = &mut data[r * dim..(r + 1) * dim];
        if adagrad {
            kernels::adagrad_step(row, &mut acc[r * dim..(r + 1) * dim], &grad, LR, 1e-8);
        } else {
            kernels::sgd_step(row, &grad, LR);
        }
    }
    let ns = t0.elapsed().as_nanos() as f64;
    // Defeat dead-code elimination of the row updates.
    assert!(data.iter().sum::<f32>().is_finite());
    ns / rows as f64
}

/// End-to-end flush path: register `rows` single-write g-entries, then
/// drain them exactly the way `flusher_loop` does — guarded dequeue,
/// key-sorted claim into reusable scratch, apply via the shared rule into
/// the host store. Only the drain is timed.
fn flush_ns_row(rows: usize, dim: usize, adagrad: bool) -> f64 {
    let gstore = GEntryStore::new();
    let pq = TwoLevelPq::new(4);
    let store = HostStore::new(rows as u64, dim, SEED);
    let rule: Arc<dyn UpdateRule> = if adagrad {
        Arc::new(AdagradRule::new(LR, rows as u64, dim))
    } else {
        Arc::new(SgdRule::new(LR))
    };
    let inflight = InflightTable::new(1);
    let grad: Arc<[f32]> = (0..dim)
        .map(|i| 0.01 * (i as f32 + 1.0))
        .collect::<Vec<_>>()
        .into();
    for key in 0..rows as u64 {
        gstore.add_read(key, 1, &pq);
        gstore.add_write(key, 0, Arc::clone(&grad), &pq);
    }

    let mut out: Vec<(u64, u64)> = Vec::with_capacity(FLUSH_BATCH);
    let mut writes: PendingWrites = Vec::new();
    let mut claims: Vec<(u64, usize, usize)> = Vec::with_capacity(FLUSH_BATCH);
    let mut applied = 0usize;
    let t0 = Instant::now();
    while gstore.pending_keys() > 0 {
        out.clear();
        pq.dequeue_batch_guarded(FLUSH_BATCH, &mut out, inflight.guard(0));
        if out.is_empty() {
            break;
        }
        out.sort_unstable();
        writes.clear();
        claims.clear();
        for &(key, p) in &out {
            let start = writes.len();
            let n = gstore.take_writes_into(key, p, &mut writes);
            if n > 0 {
                claims.push((key, start, start + n));
            }
        }
        for &(key, start, end) in &claims {
            store.write_row(key, |row| {
                for (_step, g) in &writes[start..end] {
                    rule.apply(key, row, g);
                }
            });
        }
        applied += claims.len();
        inflight.clear(0);
    }
    let ns = t0.elapsed().as_nanos() as f64;
    assert_eq!(
        applied, rows,
        "every registered row must flush exactly once"
    );
    ns / rows as f64
}

fn main() {
    let rows = env_u64("FRUGAL_FLUSH_ROWS", 20_000) as usize;
    let dim = env_u64("FRUGAL_FLUSH_DIM", 32) as usize;
    let repeats = env_u64("FRUGAL_FLUSH_REPEATS", 3).max(1);
    let out_path =
        std::env::var("FRUGAL_FLUSH_OUT").unwrap_or_else(|_| "BENCH_flush_apply.json".to_string());

    // Warmup primes the allocator and branch predictors; then best-of-N.
    let _ = flush_ns_row(rows.min(1_000), dim, true);
    let mut best = [f64::INFINITY; 4];
    for i in 0..repeats {
        let ns = [
            kernel_ns_row(rows, dim, false),
            kernel_ns_row(rows, dim, true),
            flush_ns_row(rows, dim, false),
            flush_ns_row(rows, dim, true),
        ];
        eprintln!(
            "run {}/{}: kernel sgd {:.1} adagrad {:.1} | flush sgd {:.1} adagrad {:.1} (ns/row)",
            i + 1,
            repeats,
            ns[0],
            ns[1],
            ns[2],
            ns[3]
        );
        for (b, n) in best.iter_mut().zip(ns) {
            *b = b.min(n);
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"flush_apply\",\n  \"workload\": {{\n    \"rows\": {rows},\n    \"dim\": {dim},\n    \"flush_batch\": {FLUSH_BATCH},\n    \"repeats\": {repeats},\n    \"seed\": {SEED}\n  }},\n  \"current\": {{\n    \"sgd_kernel_ns_row\": {:.2},\n    \"adagrad_kernel_ns_row\": {:.2},\n    \"sgd_flush_ns_row\": {:.2},\n    \"adagrad_flush_ns_row\": {:.2}\n  }}\n}}\n",
        best[0], best[1], best[2], best[3]
    );
    std::fs::write(&out_path, &json).expect("write flush_apply output");
    println!(
        "wrote {out_path}: kernel sgd {:.1} adagrad {:.1} | flush sgd {:.1} adagrad {:.1} (ns/row)",
        best[0], best[1], best[2], best[3]
    );
}
