//! Ablations beyond the paper's numbered experiments, covering design
//! choices DESIGN.md calls out: cache admission policy, batched dequeue
//! size, and the sample-queue lookahead `L`.

use super::Scale;
use crate::systems::{run_system, RunOptions, System};
use crate::table::{fmt_throughput, ExpTable};
use frugal_core::{FrugalConfig, FrugalEngine, PullToTarget};
use frugal_data::{KeyDistribution, SyntheticTrace};
use frugal_embed::CachePolicy;

/// Cache eviction policy × key skew × cache ratio, through the full P²F
/// engine: per-policy hit ratios for every cell of the grid. The paper
/// fixes HugeCTR's static policy for all systems; this ablation shows how
/// much headroom adaptive policies leave on the table, with the Belady
/// oracle (fed perfect next-use knowledge from the lookahead ring) as the
/// upper bound no online policy can beat.
pub fn ablation_cache_policy(scale: &Scale) -> Vec<ExpTable> {
    let dim = 32usize;
    let model = PullToTarget::new(dim, 7);
    let mut t = ExpTable::new(
        "Ablation: cache policy x skew x ratio (hit ratio %)",
        &[
            "distribution",
            "ratio",
            "static-hot",
            "lru",
            "freq",
            "oracle",
        ],
    );
    for dist in [
        KeyDistribution::Zipf(0.8),
        KeyDistribution::Zipf(0.9),
        KeyDistribution::Zipf(0.99),
    ] {
        let trace = SyntheticTrace::new(
            scale.micro_keys,
            dist,
            *scale.batches.last().expect("non-empty"),
            scale.gpus,
            67,
        )
        .expect("valid trace");
        for ratio in [0.01, 0.05, 0.10] {
            let mut cells = vec![dist.label(), format!("{ratio:.2}")];
            for policy in CachePolicy::ALL {
                let mut opts = RunOptions::commodity(scale.gpus, scale.steps * 5);
                opts.flush_threads = 4;
                opts.cache_ratio = ratio;
                opts.cache_policy = policy;
                let r = run_system(System::Frugal, &opts, &trace, &model);
                cells.push(format!("{:.1}%", r.hit_ratio * 100.0));
            }
            t.row(cells);
        }
    }
    t.note(
        "full P2F engine; oracle = Belady fed from the lookahead window (upper bound), \
         freq = frequency-aware admission+eviction, static-hot = paper setup",
    );
    vec![t]
}

/// Batched dequeue (§3.4: "Dequeue can be batched to remove the repeated
/// scanning overhead"): flusher batch size vs stall and throughput.
pub fn ablation_flush_batch(scale: &Scale) -> Vec<ExpTable> {
    let dim = 32usize;
    let model = PullToTarget::new(dim, 7);
    let trace = SyntheticTrace::new(
        scale.micro_keys,
        KeyDistribution::Zipf(0.9),
        *scale.batches.last().expect("non-empty"),
        scale.gpus,
        71,
    )
    .expect("valid trace");
    let mut t = ExpTable::new(
        "Ablation: flusher dequeue batch size",
        &["batch", "throughput", "stall us"],
    );
    for flush_batch in [1usize, 8, 64, 256] {
        let mut cfg = FrugalConfig::commodity(scale.gpus, scale.steps * 2);
        cfg.flush_threads = 4;
        cfg.flush_batch = flush_batch;
        let engine = FrugalEngine::new(cfg, scale.micro_keys, dim);
        let r = engine.run(&trace, &model);
        t.row(vec![
            flush_batch.to_string(),
            fmt_throughput(r.throughput()),
            format!("{:.0}", r.mean_stall().as_micros_f64()),
        ]);
    }
    t.note("paper §3.4: batching removes repeated scan overhead; batch=1 pays one scan per entry");
    vec![t]
}

/// Sample-queue lookahead `L` (paper default 10): too small starves the
/// priority signal (everything looks ∞ until the last moment); large values
/// only cost queue memory.
pub fn ablation_lookahead(scale: &Scale) -> Vec<ExpTable> {
    let dim = 32usize;
    let model = PullToTarget::new(dim, 7);
    let trace = SyntheticTrace::new(
        scale.micro_keys,
        KeyDistribution::Zipf(0.9),
        *scale.batches.last().expect("non-empty"),
        scale.gpus,
        73,
    )
    .expect("valid trace");
    let mut t = ExpTable::new(
        "Ablation: sample-queue lookahead L",
        &["L", "throughput", "stall us"],
    );
    for lookahead in [1u64, 2, 5, 10, 20] {
        let mut opts = RunOptions::commodity(scale.gpus, scale.steps * 2);
        opts.lookahead = lookahead;
        let r = run_system(System::Frugal, &opts, &trace, &model);
        t.row(vec![
            lookahead.to_string(),
            fmt_throughput(r.throughput()),
            format!("{:.0}", r.mean_stall().as_micros_f64()),
        ]);
    }
    t.note("paper §3.2 sets L = 10 by default");
    vec![t]
}

/// The flush-strategy ablation: P²F vs arrival-order FIFO vs write-through
/// on the same Zipf workload. All three are synchronously consistent; the
/// table shows what each pays for it. FIFO flushes proactively like P²F
/// but enqueues at write-step priority, so *every* pending row gates the
/// next step — isolating the paper's claim (§3.3) that the read-driven
/// priorities, not background flushing per se, are what keep the wait
/// cheap.
pub fn ablation_flush_strategy(scale: &Scale) -> Vec<ExpTable> {
    let dim = 32usize;
    let model = PullToTarget::new(dim, 7);
    let trace = SyntheticTrace::new(
        scale.micro_keys,
        KeyDistribution::Zipf(0.9),
        *scale.batches.last().expect("non-empty"),
        scale.gpus,
        83,
    )
    .expect("valid trace");
    let mut t = ExpTable::new(
        "Ablation: flush strategy (priority vs arrival order vs sync)",
        &["strategy", "throughput", "stall us", "flushed rows"],
    );
    for system in [System::Frugal, System::FrugalFifo, System::FrugalSync] {
        let mut opts = RunOptions::commodity(scale.gpus, scale.steps * 2);
        opts.flush_threads = 4;
        let r = run_system(system, &opts, &trace, &model);
        t.row(vec![
            system.rec_label().to_owned(),
            fmt_throughput(r.throughput()),
            format!("{:.0}", r.mean_stall().as_micros_f64()),
            r.flush_rows.to_string(),
        ]);
    }
    t.note("FIFO is proactive yet unselective: all pending writes gate the next step, the stall P2F's read-driven priorities avoid");
    vec![t]
}

/// SGD vs Adagrad through the full Frugal engine: the optimizer extension.
pub fn ablation_optimizer(scale: &Scale) -> Vec<ExpTable> {
    use frugal_core::OptimizerKind;
    let dim = 32usize;
    let model = PullToTarget::new(dim, 7);
    let trace = SyntheticTrace::new(
        scale.micro_keys.min(100_000),
        KeyDistribution::Zipf(0.9),
        scale.batches[0],
        scale.gpus,
        79,
    )
    .expect("valid trace");
    let mut t = ExpTable::new(
        "Ablation: sparse optimizer (loss trajectory through Frugal)",
        &["optimizer", "first loss", "final loss", "throughput"],
    );
    for (name, kind) in [
        ("SGD", OptimizerKind::Sgd),
        ("Adagrad", OptimizerKind::Adagrad),
    ] {
        let mut cfg = FrugalConfig::commodity(scale.gpus, scale.steps * 4);
        cfg.flush_threads = 4;
        cfg.optimizer = kind;
        cfg.lr = 1.0;
        let engine = FrugalEngine::new(cfg, trace.n_keys(), dim);
        let r = engine.run(&trace, &model);
        t.row(vec![
            name.to_owned(),
            format!("{:.4}", r.first_loss),
            format!("{:.4}", r.final_loss),
            fmt_throughput(r.throughput()),
        ]);
    }
    t.note("both run through identical P2F machinery; Adagrad keeps per-row state on host and cache paths");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablations_run_at_quick_scale() {
        assert_eq!(ablation_cache_policy(&Scale::quick())[0].n_rows(), 9);
        assert_eq!(ablation_flush_batch(&Scale::quick())[0].n_rows(), 4);
        assert_eq!(ablation_lookahead(&Scale::quick())[0].n_rows(), 5);
        assert_eq!(ablation_optimizer(&Scale::quick())[0].n_rows(), 2);
        assert_eq!(ablation_flush_strategy(&Scale::quick())[0].n_rows(), 3);
    }

    #[test]
    fn fifo_pays_the_stall_p2f_avoids() {
        // The ablation's headline: on a skewed workload, arrival-order
        // flushing stalls more than read-driven priorities, because cold
        // pending rows nobody is about to read still gate the next step.
        // A single *throttled* flusher guarantees a backlog survives
        // between steps regardless of host speed (an unthrottled one
        // drains the quick-scale queue completely, and with zero backlog
        // both strategies stall near zero and scheduler noise decides the
        // comparison). With the drain budget capped, P2F spends it on the
        // rows the next step reads while FIFO spends it in arrival order
        // and counts the whole backlog as stall.
        let scale = Scale::quick();
        let model = PullToTarget::new(32, 7);
        let trace = SyntheticTrace::new(
            scale.micro_keys,
            KeyDistribution::Zipf(0.9),
            512,
            scale.gpus,
            83,
        )
        .unwrap();
        let mut cfg = FrugalConfig::commodity(scale.gpus, 16);
        cfg.flush_threads = 1;
        cfg.flush_throttle_us = 200;
        let p2f = FrugalEngine::new(cfg.clone(), scale.micro_keys, 32).run(&trace, &model);
        let fifo = FrugalEngine::new(cfg.fifo(), scale.micro_keys, 32).run(&trace, &model);
        assert!(fifo.flush_rows > 0, "FIFO must flush in the background");
        assert!(
            fifo.mean_stall() > p2f.mean_stall(),
            "FIFO stall {:?} should exceed P2F stall {:?}",
            fifo.mean_stall(),
            p2f.mean_stall()
        );
    }
}
