//! Fig 3 (motivation) and Exp #1 (Fig 8, microbenchmark).

use super::Scale;
use crate::systems::{run_system, RunOptions, System};
use crate::table::{fmt_throughput, ExpTable};
use frugal_core::PullToTarget;
use frugal_data::{KeyDistribution, SyntheticTrace};
use frugal_sim::{CostModel, Topology};

/// Fig 3: why existing systems underperform on commodity GPUs.
///
/// (a) HugeCTR-style training throughput on 4×A30 vs 4×RTX 3090;
/// (b) all_to_all bandwidth by transfer size;
/// (c) iteration-time breakdown on both GPU classes.
pub fn fig3_motivation(scale: &Scale) -> Vec<ExpTable> {
    let mut out = Vec::new();
    let dim = 32usize;
    let model = PullToTarget::new(dim, 7);
    let n = scale.gpus.min(4); // the paper's motivation uses 4 GPUs

    // (a) throughput + (c) breakdown.
    let mut ta = ExpTable::new(
        "Fig 3a: HugeCTR throughput, datacenter vs commodity (samples/s)",
        &["batch", "A30 (datacenter)", "RTX3090 (commodity)", "drop %"],
    );
    let mut tc = ExpTable::new(
        "Fig 3c: iteration breakdown (ms): comm / hostDRAM / cache / other",
        &["batch", "A30", "RTX3090"],
    );
    for &batch in &scale.batches {
        let trace = SyntheticTrace::new(scale.micro_keys, KeyDistribution::Zipf(0.9), batch, n, 11)
            .expect("valid trace");
        let d = run_system(
            System::HugeCtr,
            &RunOptions::datacenter(n, scale.steps),
            &trace,
            &model,
        );
        let c = run_system(
            System::HugeCtr,
            &RunOptions::commodity(n, scale.steps),
            &trace,
            &model,
        );
        let (td, tc_) = (d.throughput(), c.throughput());
        ta.row(vec![
            batch.to_string(),
            fmt_throughput(td),
            fmt_throughput(tc_),
            format!("{:.0}", (1.0 - tc_ / td) * 100.0),
        ]);
        let fmt_bd = |r: &frugal_core::TrainReport| {
            let m = r.mean_iter();
            format!(
                "{:.2}/{:.2}/{:.2}/{:.2}",
                m.comm.as_millis_f64(),
                m.host_dram.as_millis_f64(),
                m.cache.as_millis_f64(),
                m.other.as_millis_f64()
            )
        };
        tc.row(vec![batch.to_string(), fmt_bd(&d), fmt_bd(&c)]);
    }
    ta.note("paper: up to 37% throughput drop on commodity GPUs");
    tc.note("paper: the gap is dominated by collective comm + host DRAM (54-72%)");
    out.push(ta);

    // (b) all_to_all bandwidth curve.
    let mut tb = ExpTable::new(
        "Fig 3b: all_to_all bandwidth (GB/s per GPU)",
        &["transfer MiB", "A30 (P2P)", "RTX3090 (bounced)", "ratio"],
    );
    let dc = CostModel::new(Topology::datacenter(4));
    let cm = CostModel::new(Topology::commodity(4));
    for mib in [1u64, 4, 16, 64, 100] {
        let bytes = mib << 20;
        let bd = dc.all_to_all_bandwidth_gbps(bytes);
        let bc = cm.all_to_all_bandwidth_gbps(bytes);
        tb.row(vec![
            mib.to_string(),
            format!("{bd:.2}"),
            format!("{bc:.2}"),
            format!("{:.2}", bc / bd),
        ]);
    }
    tb.note("paper: commodity all_to_all is ~54% of datacenter bandwidth");
    out.push(tb);
    out.push(tc);
    out
}

/// Exp #1 (Fig 8): microbenchmark throughput across key distributions,
/// cache ratios, batch sizes, and systems.
pub fn exp1_microbenchmark(scale: &Scale) -> Vec<ExpTable> {
    let dim = 32usize;
    let model = PullToTarget::new(dim, 7);
    let mut out = Vec::new();
    for dist in [
        KeyDistribution::Uniform,
        KeyDistribution::Zipf(0.9),
        KeyDistribution::Zipf(0.99),
    ] {
        for cache_ratio in [0.01, 0.05] {
            let mut t = ExpTable::new(
                format!(
                    "Fig 8 ({}, cache {:.0}%): throughput (samples/s)",
                    dist.label(),
                    cache_ratio * 100.0
                ),
                &["batch", "PyTorch", "HugeCTR", "Frugal-Sync", "Frugal"],
            );
            for &batch in &scale.batches {
                let trace = SyntheticTrace::new(scale.micro_keys, dist, batch, scale.gpus, 13)
                    .expect("valid trace");
                let mut cells = vec![batch.to_string()];
                for system in System::microbench_set() {
                    let mut opts = RunOptions::commodity(scale.gpus, scale.steps);
                    opts.cache_ratio = cache_ratio;
                    let r = run_system(system, &opts, &trace, &model);
                    cells.push(fmt_throughput(r.throughput()));
                }
                t.row(cells);
            }
            t.note(scale.note());
            t.note("paper: Frugal beats PyTorch/HugeCTR/Frugal-Sync by 1.5-10.2x / 4.3-11.3x / 3.3-5.1x");
            out.push(t);
        }
    }
    // UVM sidebar: two orders of magnitude slower.
    let trace = SyntheticTrace::new(
        scale.micro_keys,
        KeyDistribution::Zipf(0.9),
        *scale.batches.last().expect("non-empty batches"),
        scale.gpus,
        13,
    )
    .expect("valid trace");
    let mut t = ExpTable::new(
        "Exp 1 sidebar: PyTorch-UVM page-granularity penalty",
        &["system", "throughput"],
    );
    for system in [System::PyTorch, System::PyTorchUvm] {
        let r = run_system(
            system,
            &RunOptions::commodity(scale.gpus, scale.steps),
            &trace,
            &model,
        );
        t.row(vec![
            system.rec_label().to_owned(),
            fmt_throughput(r.throughput()),
        ]);
    }
    t.note("paper: UVM is two orders of magnitude slower (4 KiB pages per ~128 B embedding)");
    out.push(t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shapes_hold_at_quick_scale() {
        let tables = fig3_motivation(&Scale::quick());
        assert_eq!(tables.len(), 3);
        // Fig 3a: commodity slower than datacenter at the largest batch.
        let ta = &tables[0];
        let last = ta.n_rows() - 1;
        let drop = ta.cell_f64(last, 3).expect("drop cell");
        assert!(drop > 0.0, "commodity should be slower, drop={drop}");
        // Fig 3b: ratio ~0.5 at 100 MiB.
        let tb = &tables[1];
        let ratio = tb.cell_f64(tb.n_rows() - 1, 3).expect("ratio");
        assert!((0.4..0.7).contains(&ratio));
    }

    #[test]
    fn exp1_runs_all_cells_at_quick_scale() {
        let tables = exp1_microbenchmark(&Scale::quick());
        // 3 dists x 2 ratios + UVM sidebar.
        assert_eq!(tables.len(), 7);
        for t in &tables[..6] {
            assert_eq!(t.n_rows(), Scale::quick().batches.len());
        }
    }
}
