//! One function per table/figure of the paper's evaluation.
//!
//! Every function returns [`ExpTable`](crate::table::ExpTable)s whose rows
//! mirror the paper's
//! x-axis and series, with notes recording the scale substitutions (smaller
//! key spaces, fewer steps) made to fit this host. `cargo bench` runs them
//! all; EXPERIMENTS.md records paper-vs-measured.

mod ablations;
mod micro;
mod overall;
mod sensitivity;
mod tables;
mod tech;

pub use ablations::{
    ablation_cache_policy, ablation_flush_batch, ablation_flush_strategy, ablation_lookahead,
    ablation_optimizer,
};
pub use micro::{exp1_microbenchmark, fig3_motivation};
pub use overall::{exp6_kg, exp7_rec, exp8_scalability, exp9_cost};
pub use sensitivity::{exp10_flush_threads, exp11_models};
pub use tables::{table1_gpu_specs, table2_datasets};
pub use tech::{exp2_p2f, exp3_uva, exp4_pq, exp5_breakdown};

/// Global scale knobs for the experiment suite.
///
/// The paper's testbed has 8 GPUs, 64 cores, and datasets up to 882 M IDs;
/// this harness runs everything on whatever machine hosts it, so sizes are
/// scaled down. `Scale::default()` targets a single-digit-minutes full
/// suite on a small machine; [`Scale::quick`] is for smoke tests.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Synthetic-microbenchmark key-space size (paper: 10 M).
    pub micro_keys: u64,
    /// GPUs for non-scalability experiments (paper: 8).
    pub gpus: usize,
    /// Steps measured per configuration.
    pub steps: u64,
    /// Batch-size sweep (paper: 128..6144).
    pub batches: Vec<usize>,
    /// Cap on REC dataset ID spaces (paper: up to 882 M).
    pub rec_ids: u64,
    /// Cap on KG entity counts (paper: up to 87 M).
    pub kg_entities: u64,
    /// Per-GPU batch for KG/REC end-to-end runs.
    pub rec_batch: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            micro_keys: 1_000_000,
            gpus: 4,
            steps: 5,
            batches: vec![128, 512, 1024, 2048],
            rec_ids: 1_000_000,
            kg_entities: 120_000,
            rec_batch: 1024,
        }
    }
}

impl Scale {
    /// A very small scale for smoke tests.
    pub fn quick() -> Self {
        Scale {
            micro_keys: 20_000,
            gpus: 2,
            steps: 3,
            batches: vec![128, 512],
            rec_ids: 20_000,
            kg_entities: 5_000,
            rec_batch: 128,
        }
    }

    /// Note string describing the downscaling, appended to tables.
    pub fn note(&self) -> String {
        format!(
            "scaled: {} GPUs, {} keys (micro), {} steps/config; paper: 8 GPUs, 10M keys",
            self.gpus, self.micro_keys, self.steps
        )
    }
}
