//! Exp #6–#9: overall performance (Fig 13–16).

use super::Scale;
use crate::systems::{run_system, RunOptions, System};
use crate::table::{fmt_throughput, ExpTable};
use frugal_data::{KgDatasetSpec, KgTrace, RecDatasetSpec, RecTrace};
use frugal_models::{Dlrm, KgModel, KgScorer};

fn kg_specs(scale: &Scale) -> Vec<KgDatasetSpec> {
    vec![
        KgDatasetSpec::fb15k().scaled_to_entities(scale.kg_entities),
        KgDatasetSpec::freebase().scaled_to_entities(scale.kg_entities),
        KgDatasetSpec::wikikg().scaled_to_entities(scale.kg_entities),
    ]
}

fn rec_specs(scale: &Scale) -> Vec<RecDatasetSpec> {
    vec![
        RecDatasetSpec::avazu().scaled_to_ids(scale.rec_ids),
        RecDatasetSpec::criteo().scaled_to_ids(scale.rec_ids),
        RecDatasetSpec::criteo_tb().scaled_to_ids(scale.rec_ids),
    ]
}

/// Exp #6 (Fig 13): knowledge-graph training throughput (TransE).
pub fn exp6_kg(scale: &Scale) -> Vec<ExpTable> {
    let mut out = Vec::new();
    for spec in kg_specs(scale) {
        let batch = if spec.name.starts_with("FB15k") {
            1200
        } else {
            2000
        }
        .min(spec.n_entities as usize / 2)
        .max(16);
        let mut t = ExpTable::new(
            format!("Fig 13 ({}): KG throughput (triples/s)", spec.name),
            &[
                "cache",
                "DGL-KE",
                "DGL-KE-cached",
                "Frugal",
                "Frugal/DGL-KE",
            ],
        );
        for cache_ratio in [0.05, 0.10] {
            let trace = KgTrace::new(spec.clone(), batch, scale.gpus, 29).expect("valid trace");
            let model = KgModel::new(KgScorer::TransE, trace.clone(), 5, false);
            let mut opts = RunOptions::commodity(scale.gpus, scale.steps);
            opts.cache_ratio = cache_ratio;
            let base = run_system(System::PyTorch, &opts, &trace, &model);
            let cached = run_system(System::HugeCtr, &opts, &trace, &model);
            let frugal = run_system(System::Frugal, &opts, &trace, &model);
            t.row(vec![
                format!("{:.0}%", cache_ratio * 100.0),
                fmt_throughput(base.throughput()),
                fmt_throughput(cached.throughput()),
                fmt_throughput(frugal.throughput()),
                format!("{:.2}", frugal.throughput() / base.throughput()),
            ]);
        }
        t.note("paper: Frugal beats DGL-KE 1.2-1.5x and DGL-KE-cached 4.1-7.1x; DGL-KE-cached can trail vanilla DGL-KE");
        t.note(format!("entities scaled to {}", spec.n_entities));
        out.push(t);
    }
    out
}

/// Exp #7 (Fig 14): recommendation-model training throughput (DLRM).
pub fn exp7_rec(scale: &Scale) -> Vec<ExpTable> {
    let mut out = Vec::new();
    for spec in rec_specs(scale) {
        let mut t = ExpTable::new(
            format!("Fig 14 ({}): REC throughput (samples/s)", spec.name),
            &["cache", "PyTorch", "HugeCTR", "Frugal", "Frugal/PyTorch"],
        );
        for cache_ratio in [0.05, 0.10] {
            let trace =
                RecTrace::new(spec.clone(), scale.rec_batch, scale.gpus, 31).expect("valid trace");
            let dim = spec.embedding_dim as usize;
            let model = Dlrm::new(trace.clone(), &[dim, 512, 512, 256, 1], 0.01, 3, false);
            let mut opts = RunOptions::commodity(scale.gpus, scale.steps);
            opts.cache_ratio = cache_ratio;
            let base = run_system(System::PyTorch, &opts, &trace, &model);
            let cached = run_system(System::HugeCtr, &opts, &trace, &model);
            let frugal = run_system(System::Frugal, &opts, &trace, &model);
            t.row(vec![
                format!("{:.0}%", cache_ratio * 100.0),
                fmt_throughput(base.throughput()),
                fmt_throughput(cached.throughput()),
                fmt_throughput(frugal.throughput()),
                format!("{:.2}", frugal.throughput() / base.throughput()),
            ]);
        }
        t.note("paper: Frugal beats PyTorch 4.9-7.4x and HugeCTR 6.1-8.7x");
        t.note(format!("ID space scaled to {}", spec.n_ids));
        out.push(t);
    }
    out
}

/// Exp #8 (Fig 15): scalability across GPU counts.
pub fn exp8_scalability(scale: &Scale) -> Vec<ExpTable> {
    let mut out = Vec::new();

    // (a) KG on Freebase-shaped data.
    let kg_spec = KgDatasetSpec::freebase().scaled_to_entities(scale.kg_entities);
    let mut tkg = ExpTable::new(
        "Fig 15a (KG, Freebase-shaped): throughput by GPU count",
        &["gpus", "DGL-KE", "DGL-KE-cached", "Frugal-Sync", "Frugal"],
    );
    for n in [2usize, 4, 6, 8] {
        let trace = KgTrace::new(kg_spec.clone(), 1024, n, 37).expect("valid trace");
        let model = KgModel::new(KgScorer::TransE, trace.clone(), 5, false);
        let opts = RunOptions::commodity(n, scale.steps);
        let mut cells = vec![n.to_string()];
        for system in [
            System::PyTorch,
            System::HugeCtr,
            System::FrugalSync,
            System::Frugal,
        ] {
            let r = run_system(system, &opts, &trace, &model);
            cells.push(fmt_throughput(r.throughput()));
        }
        tkg.row(cells);
    }
    tkg.note(
        "paper: cache-less systems plateau at >=4 GPUs (root-complex bound); Frugal keeps scaling",
    );
    out.push(tkg);

    // (b) REC on Avazu-shaped data.
    let rec_spec = RecDatasetSpec::avazu().scaled_to_ids(scale.rec_ids);
    let mut trec = ExpTable::new(
        "Fig 15b (REC, Avazu-shaped): throughput by GPU count",
        &["gpus", "PyTorch", "HugeCTR", "Frugal-Sync", "Frugal"],
    );
    for n in [2usize, 4, 6, 8] {
        let trace = RecTrace::new(rec_spec.clone(), scale.rec_batch, n, 41).expect("valid trace");
        let dim = rec_spec.embedding_dim as usize;
        let model = Dlrm::new(trace.clone(), &[dim, 512, 512, 256, 1], 0.01, 3, false);
        let opts = RunOptions::commodity(n, scale.steps);
        let mut cells = vec![n.to_string()];
        for system in [
            System::PyTorch,
            System::HugeCtr,
            System::FrugalSync,
            System::Frugal,
        ] {
            let r = run_system(system, &opts, &trace, &model);
            cells.push(fmt_throughput(r.throughput()));
        }
        trec.row(cells);
    }
    trec.note("paper: Frugal improves 1.2-4.9x across GPU counts, sub-linear due to link limits");
    out.push(trec);
    out
}

/// Exp #9 (Fig 16): cost efficiency — the best existing system on A30s vs
/// Frugal on RTX 3090s, with $/throughput.
pub fn exp9_cost(scale: &Scale) -> Vec<ExpTable> {
    let mut out = Vec::new();
    let a30_price = frugal_sim::GpuSpec::a30().price_usd;
    let r3090_price = frugal_sim::GpuSpec::rtx3090().price_usd;

    // (a) KG: FB15k- and Freebase-shaped.
    let mut tkg = ExpTable::new(
        "Fig 16a (KG): best-on-A30 vs Frugal-on-3090 (triples/s)",
        &[
            "dataset",
            "gpus",
            "A30 best",
            "Frugal 3090",
            "thr ratio",
            "cost-eff x",
        ],
    );
    for spec in [
        KgDatasetSpec::fb15k().scaled_to_entities(scale.kg_entities),
        KgDatasetSpec::freebase().scaled_to_entities(scale.kg_entities),
    ] {
        for n in [2usize, 3, 4] {
            let batch = 1024.min(spec.n_entities as usize / 2).max(16);
            let trace = KgTrace::new(spec.clone(), batch, n, 43).expect("valid trace");
            let model = KgModel::new(KgScorer::TransE, trace.clone(), 5, false);
            let dc = RunOptions::datacenter(n, scale.steps);
            let best_a30 = [System::PyTorch, System::HugeCtr]
                .iter()
                .map(|&s| run_system(s, &dc, &trace, &model).throughput())
                .fold(0.0f64, f64::max);
            let frugal = run_system(
                System::Frugal,
                &RunOptions::commodity(n, scale.steps),
                &trace,
                &model,
            )
            .throughput();
            let thr_ratio = frugal / best_a30;
            let cost_eff =
                (frugal / (n as f64 * r3090_price)) / (best_a30 / (n as f64 * a30_price));
            tkg.row(vec![
                spec.name.clone(),
                n.to_string(),
                fmt_throughput(best_a30),
                fmt_throughput(frugal),
                format!("{thr_ratio:.2}"),
                format!("{cost_eff:.1}"),
            ]);
        }
    }
    tkg.note(
        "paper: Frugal reaches 89-97% of datacenter throughput at 4.0-4.3x better cost-efficiency",
    );
    out.push(tkg);

    // (b) REC: Avazu- and Criteo-shaped.
    let mut trec = ExpTable::new(
        "Fig 16b (REC): best-on-A30 vs Frugal-on-3090 (samples/s)",
        &[
            "dataset",
            "gpus",
            "A30 best",
            "Frugal 3090",
            "thr ratio",
            "cost-eff x",
        ],
    );
    for spec in [
        RecDatasetSpec::avazu().scaled_to_ids(scale.rec_ids),
        RecDatasetSpec::criteo().scaled_to_ids(scale.rec_ids),
    ] {
        for n in [2usize, 3, 4] {
            let trace = RecTrace::new(spec.clone(), scale.rec_batch, n, 47).expect("valid trace");
            let dim = spec.embedding_dim as usize;
            let model = Dlrm::new(trace.clone(), &[dim, 512, 512, 256, 1], 0.01, 3, false);
            let dc = RunOptions::datacenter(n, scale.steps);
            let best_a30 = [System::PyTorch, System::HugeCtr]
                .iter()
                .map(|&s| run_system(s, &dc, &trace, &model).throughput())
                .fold(0.0f64, f64::max);
            let frugal = run_system(
                System::Frugal,
                &RunOptions::commodity(n, scale.steps),
                &trace,
                &model,
            )
            .throughput();
            let thr_ratio = frugal / best_a30;
            let cost_eff =
                (frugal / (n as f64 * r3090_price)) / (best_a30 / (n as f64 * a30_price));
            trec.row(vec![
                spec.name.clone(),
                n.to_string(),
                fmt_throughput(best_a30),
                fmt_throughput(frugal),
                format!("{thr_ratio:.2}"),
                format!("{cost_eff:.1}"),
            ]);
        }
    }
    trec.note(format!(
        "prices: A30 ${a30_price}, RTX 3090 ${r3090_price} (paper §4.5)"
    ));
    out.push(trec);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp6_and_exp7_cover_datasets() {
        assert_eq!(exp6_kg(&Scale::quick()).len(), 3);
        assert_eq!(exp7_rec(&Scale::quick()).len(), 3);
    }

    #[test]
    fn exp8_scales_both_workloads() {
        let t = exp8_scalability(&Scale::quick());
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].n_rows(), 4);
    }

    #[test]
    fn exp9_reports_cost_efficiency() {
        let t = exp9_cost(&Scale::quick());
        assert_eq!(t.len(), 2);
        // Cost-efficiency advantage should be positive in every row.
        for table in &t {
            for row in 0..table.n_rows() {
                let eff = table.cell_f64(row, 5).expect("cost-eff");
                assert!(eff > 0.0);
            }
        }
    }
}
