//! Exp #10–#11: sensitivity analyses (Fig 17–18).

use super::Scale;
use crate::systems::{run_system, RunOptions, System};
use crate::table::{fmt_throughput, ExpTable};
use frugal_data::{KgDatasetSpec, KgTrace, RecDatasetSpec, RecTrace};
use frugal_models::{Dlrm, KgModel, KgScorer};

/// Exp #10 (Fig 17): sensitivity to the number of flushing threads
/// (Avazu-shaped REC workload).
pub fn exp10_flush_threads(scale: &Scale) -> Vec<ExpTable> {
    let spec = RecDatasetSpec::avazu().scaled_to_ids(scale.rec_ids);
    let trace = RecTrace::new(spec.clone(), scale.rec_batch, scale.gpus, 53).expect("valid trace");
    let dim = spec.embedding_dim as usize;
    let model = Dlrm::new(trace.clone(), &[dim, 512, 512, 256, 1], 0.01, 3, false);
    let mut t = ExpTable::new(
        "Fig 17: Frugal throughput by flushing-thread count",
        &["threads", "throughput", "stall us"],
    );
    for threads in [1usize, 2, 4, 8, 12, 16, 24, 30] {
        // Longer runs than the other sweeps: this experiment compares a
        // single system against itself, so run-to-run noise matters more.
        let mut opts = RunOptions::commodity(scale.gpus, scale.steps * 3);
        opts.flush_threads = threads;
        let r = run_system(System::Frugal, &opts, &trace, &model);
        t.row(vec![
            threads.to_string(),
            fmt_throughput(r.throughput()),
            format!("{:.0}", r.mean_stall().as_micros_f64()),
        ]);
    }
    t.note("paper: throughput rises to ~12 threads, then declines as flushers steal CPU");
    vec![t]
}

/// Exp #11 (Fig 18): sensitivity to the embedding model — four KG scorers
/// and DLRM with 2–6 MLP layers.
pub fn exp11_models(scale: &Scale) -> Vec<ExpTable> {
    let mut out = Vec::new();

    // (a) KG scorers on FB15k-shaped data.
    let spec = KgDatasetSpec::fb15k().scaled_to_entities(scale.kg_entities);
    let batch = 512.min(spec.n_entities as usize / 2).max(16);
    let mut tkg = ExpTable::new(
        "Fig 18a: KG model sensitivity (triples/s)",
        &["model", "DGL-KE", "DGL-KE-cached", "Frugal"],
    );
    for scorer in KgScorer::all() {
        let trace = KgTrace::new(spec.clone(), batch, scale.gpus, 59).expect("valid trace");
        let model = KgModel::new(scorer, trace.clone(), 5, false);
        let opts = RunOptions::commodity(scale.gpus, scale.steps);
        tkg.row(vec![
            scorer.name().to_owned(),
            fmt_throughput(run_system(System::PyTorch, &opts, &trace, &model).throughput()),
            fmt_throughput(run_system(System::HugeCtr, &opts, &trace, &model).throughput()),
            fmt_throughput(run_system(System::Frugal, &opts, &trace, &model).throughput()),
        ]);
    }
    tkg.note("paper: Frugal wins for every scorer; the embedding layer dominates");
    out.push(tkg);

    // (b) DLRM depth sweep.
    let spec = RecDatasetSpec::avazu().scaled_to_ids(scale.rec_ids);
    let dim = spec.embedding_dim as usize;
    let mut trec = ExpTable::new(
        "Fig 18b: DLRM depth sensitivity (samples/s)",
        &["layers", "PyTorch", "HugeCTR", "Frugal"],
    );
    for depth in [2usize, 3, 4, 5, 6] {
        // Head widths: dim -> 512 x (depth-2) -> 256 -> 1.
        let mut dims = vec![dim];
        dims.extend(std::iter::repeat_n(512, depth.saturating_sub(2)));
        dims.push(256);
        dims.push(1);
        let trace =
            RecTrace::new(spec.clone(), scale.rec_batch, scale.gpus, 61).expect("valid trace");
        let model = Dlrm::new(trace.clone(), &dims, 0.01, 3, false);
        let opts = RunOptions::commodity(scale.gpus, scale.steps);
        trec.row(vec![
            model.n_layers().to_string(),
            fmt_throughput(run_system(System::PyTorch, &opts, &trace, &model).throughput()),
            fmt_throughput(run_system(System::HugeCtr, &opts, &trace, &model).throughput()),
            fmt_throughput(run_system(System::Frugal, &opts, &trace, &model).throughput()),
        ]);
    }
    trec.note("paper: deeper DNNs shrink the relative gain but never flip the ordering");
    out.push(trec);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp10_sweeps_thread_counts() {
        let t = &exp10_flush_threads(&Scale::quick())[0];
        assert_eq!(t.n_rows(), 8);
    }

    #[test]
    fn exp11_covers_models() {
        let tables = exp11_models(&Scale::quick());
        assert_eq!(tables[0].n_rows(), 4); // four scorers
        assert_eq!(tables[1].n_rows(), 5); // depths 2..6
    }
}
