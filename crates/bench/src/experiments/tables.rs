//! Table 1 (GPU characteristics) and Table 2 (datasets).

use crate::table::ExpTable;
use frugal_data::{KgDatasetSpec, RecDatasetSpec};
use frugal_sim::GpuSpec;

/// Table 1: datacenter vs commodity GPU characteristics.
pub fn table1_gpu_specs() -> ExpTable {
    let mut t = ExpTable::new(
        "Table 1: GPU characteristics (datacenter vs commodity)",
        &[
            "GPU",
            "class",
            "FP16 TFLOPS",
            "FP32 TFLOPS",
            "mem GiB",
            "link GB/s",
            "price $",
            "$/TFLOPS",
            "P2P",
        ],
    );
    for gpu in [
        GpuSpec::a100(),
        GpuSpec::a30(),
        GpuSpec::rtx4090(),
        GpuSpec::rtx3090(),
    ] {
        t.row(vec![
            gpu.name.clone(),
            format!("{:?}", gpu.class),
            format!("{:.0}", gpu.fp16_tflops),
            format!("{:.0}", gpu.fp32_tflops),
            format!("{:.0}", gpu.mem_gib),
            format!("{:.0}", gpu.link_gbps),
            format!("{:.0}", gpu.price_usd),
            format!("{:.0}", gpu.dollars_per_fp32_tflop()),
            format!("{}", gpu.p2p),
        ]);
    }
    t.note("paper Table 1: RTX 4090 at ~19 $/TFLOPS vs A100 at ~103 $/TFLOPS (5.4x)");
    t
}

/// Table 2: datasets used in the real-world applications.
pub fn table2_datasets() -> ExpTable {
    let mut t = ExpTable::new(
        "Table 2: datasets (synthetic stand-ins follow these shapes)",
        &[
            "dataset",
            "kind",
            "ids/entities",
            "samples/triples",
            "features/relations",
            "model size GiB",
        ],
    );
    let gib = |b: u64| format!("{:.1}", b as f64 / (1u64 << 30) as f64);
    for kg in [
        KgDatasetSpec::fb15k(),
        KgDatasetSpec::freebase(),
        KgDatasetSpec::wikikg(),
    ] {
        t.row(vec![
            kg.name.clone(),
            "KG".into(),
            kg.n_entities.to_string(),
            kg.n_triples.to_string(),
            kg.n_relations.to_string(),
            gib(kg.model_bytes()),
        ]);
    }
    for rec in [
        RecDatasetSpec::avazu(),
        RecDatasetSpec::criteo(),
        RecDatasetSpec::criteo_tb(),
    ] {
        t.row(vec![
            rec.name.clone(),
            "REC".into(),
            rec.n_ids.to_string(),
            rec.n_samples.to_string(),
            rec.n_features.to_string(),
            gib(rec.model_bytes()),
        ]);
    }
    t.note("generators in frugal-data reproduce ID-space sizes and skew, not raw data");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_rows() {
        assert_eq!(table1_gpu_specs().n_rows(), 4);
        assert_eq!(table2_datasets().n_rows(), 6);
    }
}
