//! Exp #2–#5: the technique ablations (Fig 9–12).

use super::Scale;
use crate::systems::{run_system, RunOptions, System};
use crate::table::{fmt_throughput, telemetry_table, ExpTable};
use frugal_core::{PqKind, PullToTarget, TrainReport};
use frugal_data::{KeyDistribution, KgDatasetSpec, KgTrace, SyntheticTrace};
use frugal_models::{KgModel, KgScorer};
use frugal_sim::{CostModel, HostPath, Topology};
use frugal_telemetry::Telemetry;

/// Exp #2 (Fig 9): P²F vs write-through flushing — stall time and
/// throughput on a Zipf-0.9 workload with 1 % cache.
pub fn exp2_p2f(scale: &Scale) -> Vec<ExpTable> {
    let model = PullToTarget::new(32, 7);
    let mut stall = ExpTable::new(
        "Fig 9a: training stall per iteration (us, log-scale in paper)",
        &[
            "batch",
            "SyncFlushing",
            "P2F",
            "reduction x",
            "p95 (Sync/P2F)",
            "p99 (Sync/P2F)",
        ],
    );
    let mut thr = ExpTable::new(
        "Fig 9b: training throughput (samples/s)",
        &["batch", "SyncFlushing", "P2F", "speedup x"],
    );
    for &batch in &scale.batches {
        let trace = SyntheticTrace::new(
            scale.micro_keys,
            KeyDistribution::Zipf(0.9),
            batch,
            scale.gpus,
            17,
        )
        .expect("valid trace");
        let mut opts = RunOptions::commodity(scale.gpus, scale.steps);
        opts.cache_ratio = 0.01;
        let sync = run_system(System::FrugalSync, &opts, &trace, &model);
        let p2f = run_system(System::Frugal, &opts, &trace, &model);
        let (ss, sp) = (
            sync.mean_stall().as_micros_f64(),
            p2f.mean_stall().as_micros_f64(),
        );
        let tail = |r: &TrainReport, q: f64| r.stats.stall_percentile(q).as_micros_f64();
        stall.row(vec![
            batch.to_string(),
            format!("{ss:.0}"),
            format!("{sp:.0}"),
            format!("{:.1}", ss / sp.max(1.0)),
            format!("{:.0}/{:.0}", tail(&sync, 0.95), tail(&p2f, 0.95)),
            format!("{:.0}/{:.0}", tail(&sync, 0.99), tail(&p2f, 0.99)),
        ]);
        thr.row(vec![
            batch.to_string(),
            fmt_throughput(sync.throughput()),
            fmt_throughput(p2f.throughput()),
            format!("{:.2}", p2f.throughput() / sync.throughput()),
        ]);
    }
    stall.note("paper: P2F reduces stall 34-101x");
    stall.note("p95/p99 are nearest-rank tails of per-iteration stall (trainer.p2f_wait_ns)");
    thr.note("paper: stall reduction lifts end-to-end throughput 3.5-5.3x");
    vec![stall, thr]
}

/// Exp #3 (Fig 10): UVA-enabled vs CPU-involved host-memory access latency.
pub fn exp3_uva(_scale: &Scale) -> Vec<ExpTable> {
    let cost = CostModel::new(Topology::commodity(4));
    let mut t = ExpTable::new(
        "Fig 10: host memory access latency (us), dim 32",
        &["batch", "CPU-involved", "UVA-enabled", "ratio"],
    );
    for batch in [128u64, 512, 1024, 1536, 2048] {
        let cpu = cost
            .host_read(HostPath::CpuInvolved, batch, 128, 1)
            .as_micros_f64();
        let uva = cost.host_read(HostPath::Uva, batch, 128, 1).as_micros_f64();
        t.row(vec![
            batch.to_string(),
            format!("{cpu:.0}"),
            format!("{uva:.0}"),
            format!("{:.2}", cpu / uva),
        ]);
    }
    t.note("paper: UVA lowers latency 3.1-3.4x (no CPU dispatch, no extra copies)");
    vec![t]
}

/// Exp #4 (Fig 11): two-level PQ vs tree heap, inside the full system on a
/// Freebase-shaped KG workload.
pub fn exp4_pq(scale: &Scale) -> Vec<ExpTable> {
    let spec = KgDatasetSpec::freebase().scaled_to_entities(scale.kg_entities);
    let batch = 512usize;
    let mut t = ExpTable::new(
        "Fig 11: TreeHeap vs two-level PQ (KG Freebase-shaped)",
        &[
            "cache",
            "g-entry update ms (Tree/2L)",
            "stall us (Tree/2L)",
            "throughput (Tree/2L)",
        ],
    );
    for cache_ratio in [0.05, 0.10] {
        let trace = KgTrace::new(spec.clone(), batch, scale.gpus, 23).expect("valid trace");
        let model = KgModel::new(KgScorer::TransE, trace.clone(), 5, false);
        let run = |pq: PqKind| -> TrainReport {
            let mut opts = RunOptions::commodity(scale.gpus, scale.steps);
            opts.cache_ratio = cache_ratio;
            opts.pq = pq;
            run_system(System::Frugal, &opts, &trace, &model)
        };
        let tree = run(PqKind::TreeHeap);
        let two = run(PqKind::TwoLevel);
        t.row(vec![
            format!("{:.0}%", cache_ratio * 100.0),
            format!(
                "{:.2}/{:.2}",
                tree.mean_gentry_update.as_millis_f64(),
                two.mean_gentry_update.as_millis_f64()
            ),
            format!(
                "{:.0}/{:.0}",
                tree.mean_stall().as_micros_f64(),
                two.mean_stall().as_micros_f64()
            ),
            format!(
                "{}/{}",
                fmt_throughput(tree.throughput()),
                fmt_throughput(two.throughput())
            ),
        ]);
    }
    t.note("paper: two-level PQ is 1.2-1.4x faster on g-entry updates, cuts stall 74-107x, lifts throughput 2.1-3.3x");
    t.note(format!(
        "Freebase scaled to {} entities (paper: 86.1M)",
        spec.n_entities
    ));
    vec![t]
}

/// Exp #5 (Fig 12): per-technique time breakdown of one training step,
/// plus a telemetry-instrumented Frugal run at the largest batch showing
/// the measured per-phase latency distributions behind the model.
pub fn exp5_breakdown(scale: &Scale) -> Vec<ExpTable> {
    let model = PullToTarget::new(32, 7);
    let mut t = ExpTable::new(
        "Fig 12: per-step breakdown (ms): comm / hostDRAM / cache / other / stall",
        &["batch", "PyTorch", "HugeCTR", "Frugal-Sync", "Frugal"],
    );
    for &batch in &scale.batches {
        let trace = SyntheticTrace::new(
            scale.micro_keys,
            KeyDistribution::Zipf(0.9),
            batch,
            scale.gpus,
            19,
        )
        .expect("valid trace");
        let mut cells = vec![batch.to_string()];
        for system in System::microbench_set() {
            let r = run_system(
                system,
                &RunOptions::commodity(scale.gpus, scale.steps),
                &trace,
                &model,
            );
            let m = r.mean_iter();
            cells.push(format!(
                "{:.2}/{:.2}/{:.2}/{:.2}/{:.2}",
                m.comm.as_millis_f64(),
                m.host_dram.as_millis_f64(),
                m.cache.as_millis_f64(),
                m.other.as_millis_f64(),
                m.stall.as_millis_f64()
            ));
        }
        t.row(cells);
    }
    t.note("paper: Frugal-Sync cuts forward comm 29-53% and host time up to 76%; Frugal cuts comm 60-85% and host ~98%");

    // One instrumented run: where the modeled breakdown above comes from.
    let batch = *scale.batches.last().expect("scale has batches");
    let trace = SyntheticTrace::new(
        scale.micro_keys,
        KeyDistribution::Zipf(0.9),
        batch,
        scale.gpus,
        19,
    )
    .expect("valid trace");
    let mut opts = RunOptions::commodity(scale.gpus, scale.steps);
    opts.telemetry = Telemetry::new();
    let r = run_system(System::Frugal, &opts, &trace, &model);
    let summary = r.telemetry.expect("telemetry was enabled");
    let tele = telemetry_table(
        format!("Fig 12 (instrumented): Frugal phase latencies, batch {batch}"),
        &summary,
    );
    vec![t, tele]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp2_p2f_reduces_stall_at_quick_scale() {
        // The full throughput gap needs default scale (bigger batches, more
        // GPUs); at smoke scale we check the stall ordering that drives it.
        let tables = exp2_p2f(&Scale::quick());
        let stall = &tables[0];
        let last = stall.n_rows() - 1;
        let sync = stall.cell_f64(last, 1).expect("sync stall");
        let p2f = stall.cell_f64(last, 2).expect("p2f stall");
        assert!(p2f < sync, "P2F stall {p2f} must undercut sync {sync}");
    }

    #[test]
    fn exp3_ratio_in_paper_band() {
        let t = &exp3_uva(&Scale::quick())[0];
        for row in 0..t.n_rows() {
            let ratio = t.cell_f64(row, 3).expect("ratio");
            assert!((2.8..3.8).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn exp4_produces_both_cache_ratios() {
        let t = &exp4_pq(&Scale::quick())[0];
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn exp5_has_all_systems() {
        let tables = exp5_breakdown(&Scale::quick());
        assert_eq!(tables[0].n_rows(), Scale::quick().batches.len());
        // The instrumented run produced at least one phase histogram row.
        assert!(tables[1].n_rows() > 0, "telemetry table is empty");
    }
}
