//! # frugal-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | Target (benches/)        | Paper artifact |
//! |--------------------------|----------------|
//! | `table1_gpu_specs`       | Table 1        |
//! | `table2_datasets`        | Table 2        |
//! | `fig3_motivation`        | Fig 3a/3b/3c   |
//! | `exp1_microbenchmark`    | Fig 8          |
//! | `exp2_p2f`               | Fig 9          |
//! | `exp3_uva`               | Fig 10         |
//! | `exp4_pq`                | Fig 11         |
//! | `exp5_breakdown`         | Fig 12         |
//! | `exp6_kg`                | Fig 13         |
//! | `exp7_rec`               | Fig 14         |
//! | `exp8_scalability`       | Fig 15         |
//! | `exp9_cost`              | Fig 16         |
//! | `exp10_flush_threads`    | Fig 17         |
//! | `exp11_models`           | Fig 18         |
//! | `pq_ops` (criterion)     | §3.4 micro-ops |
//!
//! Run them all with `cargo bench`. Set `FRUGAL_BENCH_QUICK=1` to shrink
//! every sweep for smoke testing.

#![warn(missing_docs)]

pub mod experiments;
pub mod systems;
pub mod table;

use experiments::Scale;

/// The scale selected by the environment (`FRUGAL_BENCH_QUICK=1` shrinks).
pub fn env_scale() -> Scale {
    if std::env::var("FRUGAL_BENCH_QUICK").is_ok() {
        Scale::quick()
    } else {
        Scale::default()
    }
}
