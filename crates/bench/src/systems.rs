//! The named systems of the paper's evaluation and a uniform runner.

use frugal_baselines::{BaselineConfig, BaselineEngine, BaselineKind};
use frugal_core::{EmbeddingModel, FrugalConfig, FrugalEngine, PqKind, TrainReport, Workload};
use frugal_embed::CachePolicy;
use frugal_sim::Topology;
use frugal_telemetry::Telemetry;

/// A competitor system from §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// PyTorch (REC) / DGL-KE (KG): no multi-GPU cache.
    PyTorch,
    /// PyTorch-UVM: unified-memory baseline (Exp #1).
    PyTorchUvm,
    /// HugeCTR (REC) / DGL-KE-cached (KG): multi-GPU cache + all_to_all.
    HugeCtr,
    /// Frugal with write-through flushing.
    FrugalSync,
    /// Frugal with arrival-order (FIFO) background flushing — the priority
    /// ablation: proactive like Frugal, but every pending write gates the
    /// next step.
    FrugalFifo,
    /// The full Frugal system (P²F + two-level PQ).
    Frugal,
}

impl System {
    /// Display label in REC experiments.
    pub fn rec_label(&self) -> &'static str {
        match self {
            System::PyTorch => "PyTorch",
            System::PyTorchUvm => "PyTorch-UVM",
            System::HugeCtr => "HugeCTR",
            System::FrugalSync => "Frugal-Sync",
            System::FrugalFifo => "Frugal-FIFO",
            System::Frugal => "Frugal",
        }
    }

    /// Display label in KG experiments (paper naming).
    pub fn kg_label(&self) -> &'static str {
        match self {
            System::PyTorch => "DGL-KE",
            System::PyTorchUvm => "DGL-KE-UVM",
            System::HugeCtr => "DGL-KE-cached",
            System::FrugalSync => "Frugal-Sync",
            System::FrugalFifo => "Frugal-FIFO",
            System::Frugal => "Frugal",
        }
    }

    /// The four systems of the microbenchmark (Fig 8).
    pub fn microbench_set() -> [System; 4] {
        [
            System::PyTorch,
            System::HugeCtr,
            System::FrugalSync,
            System::Frugal,
        ]
    }
}

/// Knobs shared by all experiment runs.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Server topology (GPU model + count).
    pub topology: Topology,
    /// Steps to train per configuration.
    pub steps: u64,
    /// Cache ratio for cache-enabled systems.
    pub cache_ratio: f64,
    /// Flushing threads for Frugal.
    pub flush_threads: usize,
    /// Priority queue implementation for Frugal.
    pub pq: PqKind,
    /// Cache eviction policy for cache-enabled systems (Frugal variants
    /// and the HugeCTR-style baseline).
    pub cache_policy: CachePolicy,
    /// Sample-queue lookahead.
    pub lookahead: u64,
    /// Telemetry handle threaded into the engine; off by default so bench
    /// sweeps measure the zero-overhead path. Attach [`Telemetry::new`] to
    /// get per-phase spans and a `TelemetrySummary`
    /// (frugal_telemetry::TelemetrySummary) on the report.
    pub telemetry: Telemetry,
}

impl RunOptions {
    /// Paper defaults on `n` commodity GPUs.
    pub fn commodity(n: usize, steps: u64) -> Self {
        RunOptions {
            topology: Topology::commodity(n),
            steps,
            cache_ratio: 0.05,
            flush_threads: 8,
            pq: PqKind::TwoLevel,
            cache_policy: CachePolicy::StaticHot,
            lookahead: 10,
            telemetry: Telemetry::off(),
        }
    }

    /// Paper defaults on `n` datacenter GPUs (A30).
    pub fn datacenter(n: usize, steps: u64) -> Self {
        RunOptions {
            topology: Topology::datacenter(n),
            ..Self::commodity(n, steps)
        }
    }
}

/// Runs `system` on `workload`/`model` and returns the report.
///
/// Workload key-space size and model dimension must describe the store to
/// build.
pub fn run_system(
    system: System,
    opts: &RunOptions,
    workload: &dyn Workload,
    model: &dyn EmbeddingModel,
) -> TrainReport {
    let n_keys = workload.n_keys();
    let dim = model.dim();
    match system {
        System::Frugal | System::FrugalSync | System::FrugalFifo => {
            let mut cfg = FrugalConfig::commodity(opts.topology.n_gpus(), opts.steps);
            cfg.cost = frugal_sim::CostModel::new(opts.topology.clone());
            cfg.cache_ratio = opts.cache_ratio;
            cfg.flush_threads = opts.flush_threads;
            cfg.pq = opts.pq;
            cfg.lookahead = opts.lookahead;
            cfg.cache_policy = opts.cache_policy;
            cfg.telemetry = opts.telemetry.clone();
            match system {
                System::FrugalSync => cfg = cfg.write_through(),
                System::FrugalFifo => cfg = cfg.fifo(),
                _ => {}
            }
            let engine = FrugalEngine::new(cfg, n_keys, dim);
            engine.run(workload, model)
        }
        System::PyTorch | System::PyTorchUvm | System::HugeCtr => {
            let kind = match system {
                System::PyTorch => BaselineKind::NoCache,
                System::PyTorchUvm => BaselineKind::Uvm,
                _ => BaselineKind::Cached,
            };
            let mut cfg = BaselineConfig::pytorch(opts.topology.clone(), opts.steps);
            cfg.kind = kind;
            cfg.cache_ratio = opts.cache_ratio;
            cfg.cache_policy = opts.cache_policy;
            cfg.telemetry = opts.telemetry.clone();
            let engine = BaselineEngine::new(cfg, n_keys, dim);
            engine.run(workload, model)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frugal_core::PullToTarget;
    use frugal_data::{KeyDistribution, SyntheticTrace};

    #[test]
    fn labels() {
        assert_eq!(System::HugeCtr.rec_label(), "HugeCTR");
        assert_eq!(System::HugeCtr.kg_label(), "DGL-KE-cached");
        assert_eq!(System::microbench_set().len(), 4);
    }

    #[test]
    fn runner_covers_all_systems() {
        let trace = SyntheticTrace::new(500, KeyDistribution::Zipf(0.9), 16, 2, 1).unwrap();
        let model = PullToTarget::new(4, 1);
        let mut opts = RunOptions::commodity(2, 4);
        opts.flush_threads = 2;
        for system in [
            System::PyTorch,
            System::PyTorchUvm,
            System::HugeCtr,
            System::FrugalSync,
            System::FrugalFifo,
            System::Frugal,
        ] {
            let r = run_system(system, &opts, &trace, &model);
            assert!(r.throughput() > 0.0, "{system:?}");
        }
    }
}
