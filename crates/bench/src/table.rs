//! Plain-text experiment tables.
//!
//! Every bench target prints one or more [`ExpTable`]s in the shape of the
//! paper's figures: rows are the x-axis points, columns the systems/series.

use std::fmt;

use frugal_telemetry::TelemetrySummary;

/// A rendered experiment result table.
#[derive(Debug, Clone)]
pub struct ExpTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl ExpTable {
    /// Creates an empty table with the given title and column header.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        ExpTable {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a free-form note printed under the table (scale factors,
    /// paper-expected shapes, substitutions).
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Raw cell accessor: `(row, col)` as the rendered string.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// Cell accessor for tests: `(row, col)` as parsed f64 if numeric.
    pub fn cell_f64(&self, row: usize, col: usize) -> Option<f64> {
        self.rows.get(row)?.get(col)?.trim().parse().ok()
    }
}

impl fmt::Display for ExpTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "\n=== {} ===", self.title)?;
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (w, c) in widths.iter().zip(cells) {
                line.push_str(&format!("{c:>w$}  ", w = w));
            }
            writeln!(f, "{}", line.trim_end())
        };
        print_row(f, &self.header)?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  # {n}")?;
        }
        Ok(())
    }
}

/// Renders a [`TelemetrySummary`] as an [`ExpTable`]: one row per phase
/// histogram (count + p50/p95/p99/mean in microseconds), counters and the
/// stall-attribution line as notes.
pub fn telemetry_table(title: impl Into<String>, summary: &TelemetrySummary) -> ExpTable {
    let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
    let mut t = ExpTable::new(
        title,
        &["phase", "count", "p50 us", "p95 us", "p99 us", "mean us"],
    );
    for (name, h) in &summary.metrics.histograms {
        t.row(vec![
            name.clone(),
            h.count.to_string(),
            us(h.p50),
            us(h.p95),
            us(h.p99),
            format!("{:.1}", h.mean() / 1e3),
        ]);
    }
    for (name, v) in &summary.metrics.counters {
        t.note(format!("{name} = {v}"));
    }
    for (name, v) in &summary.metrics.gauges {
        t.note(format!("{name} = {v} (gauge)"));
    }
    if !summary.stalls.is_empty() {
        let mut note = format!(
            "{} P2F stalls, total wait {:.3} ms",
            summary.stalls.len(),
            summary.stalls.total_wait_ns() as f64 / 1e6
        );
        if let Some(l) = summary.stalls.longest() {
            note.push_str(&format!(
                "; longest at step {} blocked on priority {} ({} pending keys)",
                l.step, l.blocking_priority, l.pending_keys
            ));
        }
        t.note(note);
    }
    t
}

/// Formats a samples/second throughput compactly (e.g. `1.25M`, `310k`).
///
/// Unit thresholds sit at the value where the smaller unit would *round*
/// into the larger one, not at the unit boundary itself: `999_500` prints
/// `1.00M` (never `1000k`), and `999.95` prints `1k` (never `1000.0`).
pub fn fmt_throughput(v: f64) -> String {
    if v >= 999_500.0 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 999.95 {
        format!("{:.0}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders() {
        let mut t = ExpTable::new("Demo", &["batch", "frugal"]);
        t.row(vec!["128".into(), "1.5".into()]);
        t.note("scaled down 10x");
        let s = t.to_string();
        assert!(s.contains("Demo") && s.contains("128") && s.contains("# scaled"));
        assert_eq!(t.n_rows(), 1);
        assert_eq!(t.cell_f64(0, 1), Some(1.5));
        assert_eq!(t.cell_f64(0, 5), None);
        assert_eq!(t.title(), "Demo");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = ExpTable::new("Demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn throughput_formatting() {
        assert_eq!(fmt_throughput(1_250_000.0), "1.25M");
        assert_eq!(fmt_throughput(310_000.0), "310k");
        assert_eq!(fmt_throughput(42.0), "42.0");
    }

    #[test]
    fn throughput_unit_boundaries_round_up_cleanly() {
        // Values that round to the next unit must switch units — `1000k`
        // and `1000.0` are never valid outputs.
        assert_eq!(fmt_throughput(999_500.0), "1.00M");
        assert_eq!(fmt_throughput(999_499.0), "999k");
        assert_eq!(fmt_throughput(999.95), "1k");
        assert_eq!(fmt_throughput(999.94), "999.9");
        assert_eq!(fmt_throughput(1_000_000.0), "1.00M");
        assert_eq!(fmt_throughput(1_000.0), "1k");
    }
}
