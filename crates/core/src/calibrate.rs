//! Host calibration for measured software times.
//!
//! The engines *measure* the wall time of Frugal's CPU-side software —
//! g-entry registration and flusher progress — because those are real code
//! whose relative behaviour (two-level PQ vs tree heap, thread-count
//! sensitivity) is exactly what the paper evaluates. But the baselines'
//! software costs are *modeled* in reference-machine (paper-testbed) terms,
//! so raw measurements from an arbitrary host would not be commensurable.
//!
//! This module measures, once per process, how fast this host executes a
//! canonical g-entry registration workload, and exposes the ratio against
//! the reference cost. Engines divide their measured times by this ratio,
//! converting them to reference-machine terms while preserving every
//! *relative* measured effect.

use crate::gentry::GEntryStore;
use frugal_pq::{PriorityQueue, TwoLevelPq};
use std::sync::OnceLock;

/// Number of operations in the calibration probe.
const PROBE_OPS: u64 = 30_000;
/// Gradient width used by the probe (dim 32 embeddings).
const PROBE_DIM: usize = 32;

/// Measured per-op nanoseconds of the canonical registration workload on
/// this host (dim-32 gradients, two-level PQ).
pub fn host_gentry_ns() -> f64 {
    static NS: OnceLock<f64> = OnceLock::new();
    *NS.get_or_init(|| {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(PROBE_OPS + 10);
        let t0 = std::time::Instant::now();
        let mut out = Vec::new();
        for i in 0..PROBE_OPS {
            let key = i % 4_096;
            store.add_read(key, i / 4_096 + 1, &pq);
            store.add_write(key, i / 4_096, vec![0.1f32; PROBE_DIM].into(), &pq);
            if i % 64 == 63 {
                out.clear();
                pq.dequeue_batch(64, &mut out);
                for &(k, p) in &out {
                    let _ = store.take_writes(k, p);
                }
            }
        }
        let per_op = t0.elapsed().as_nanos() as f64 / PROBE_OPS as f64;
        per_op.max(1.0)
    })
}

/// How much slower this host registers g-entries than the reference
/// machine, given the reference per-op cost for the probe's gradient width.
/// Clamped to `[0.25, 64]`.
pub fn host_slowdown(reference_ns_dim32: f64) -> f64 {
    (host_gentry_ns() / reference_ns_dim32.max(1.0)).clamp(0.25, 64.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_stable_and_positive() {
        let a = host_gentry_ns();
        let b = host_gentry_ns();
        assert_eq!(a, b, "OnceLock must cache the probe");
        assert!(a >= 1.0);
    }

    #[test]
    fn slowdown_is_clamped() {
        assert!(host_slowdown(f64::MAX) >= 0.25);
        assert!(host_slowdown(0.0) <= 64.0);
    }
}
