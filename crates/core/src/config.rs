//! Engine configuration.

use frugal_embed::{AdagradRule, CachePolicy, SgdRule, UpdateRule};
use frugal_sim::{CostModel, Topology};
use frugal_telemetry::Telemetry;
use frugal_tensor::RowOptimizer;
use std::sync::Arc;

/// The sparse optimizer applied to embedding rows.
///
/// SGD is stateless, which makes multi-engine bit-equality trivial.
/// Adagrad carries per-row state; the engine keeps independent state for
/// the host path (flushing threads) and each owner's cached copies — both
/// see exactly the per-key gradient sequence of synchronous training, so
/// results remain bit-identical to the serial reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// Plain SGD (`p -= lr * g`), the default.
    Sgd,
    /// Adagrad with per-row accumulated squared gradients.
    Adagrad,
}

impl OptimizerKind {
    /// Builds the thread-safe rule shared by the flushing threads.
    ///
    /// Stateful rules preallocate dense per-row state for `n_keys` rows of
    /// `dim` f32 (see [`frugal_embed::DenseStateTable`]); `checked` builds
    /// that state with seqlock race detection so consistency runs can fold
    /// state races into the report alongside the host store's.
    pub fn build_shared(
        &self,
        lr: f32,
        n_keys: u64,
        dim: usize,
        checked: bool,
    ) -> Arc<dyn UpdateRule> {
        match self {
            OptimizerKind::Sgd => Arc::new(SgdRule::new(lr)),
            OptimizerKind::Adagrad if checked => {
                Arc::new(AdagradRule::new_checked(lr, n_keys, dim))
            }
            OptimizerKind::Adagrad => Arc::new(AdagradRule::new(lr, n_keys, dim)),
        }
    }

    /// Builds a single-threaded optimizer for owner-cache updates, the
    /// write-through leader, and the serial reference.
    pub fn build_local(&self, lr: f32) -> Box<dyn RowOptimizer> {
        match self {
            OptimizerKind::Sgd => Box::new(frugal_tensor::Sgd::new(lr)),
            OptimizerKind::Adagrad => Box::new(frugal_tensor::Adagrad::new(lr)),
        }
    }
}

/// Which concurrent priority queue the engine uses (Exp #4's ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PqKind {
    /// The paper's two-level PQ (§3.4).
    TwoLevel,
    /// The binary tree-heap baseline.
    TreeHeap,
}

/// How updates reach host memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushMode {
    /// The P²F algorithm: deferred, priority-ordered background flushing
    /// (the full Frugal system).
    P2f,
    /// Write-through: every step synchronously applies all updates to host
    /// memory before the next step starts (the Frugal-Sync baseline /
    /// "SyncFlushing" of Exp #2).
    WriteThrough,
    /// The priority ablation: proactive background flushing like
    /// [`FlushMode::P2f`], but in arrival order — every g-entry is enqueued
    /// at priority = its write step and reads are never registered. Still
    /// bit-equal to the serial oracle (step `s` waits until all writes of
    /// steps `< s` are flushed), but it pays the stall P²F's read-driven
    /// priorities avoid: *everything* pending gates the next step, not just
    /// the rows about to be read (paper §3.3's motivation, made runnable).
    Fifo,
}

impl FlushMode {
    /// True when this mode relies on background flushing threads (and on
    /// g-entry registration feeding the priority queue).
    pub fn proactive(self) -> bool {
        !matches!(self, FlushMode::WriteThrough)
    }
}

/// A rejected [`FrugalConfig`] (see [`FrugalConfig::validate`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The topology has zero GPUs — there is nothing to train on.
    NoGpus,
    /// `lookahead == 0`: the sample queue must run at least one step ahead
    /// of training for prefetch-driven priorities to exist.
    ZeroLookahead,
    /// The flush mode relies on background flushers but `flush_threads == 0`
    /// — nothing would ever drain the pending updates.
    NoFlushers(FlushMode),
    /// `cache_ratio` outside `(0, 1]` (also rejects NaN).
    CacheRatio(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoGpus => write!(f, "topology has zero GPUs"),
            ConfigError::ZeroLookahead => {
                write!(
                    f,
                    "lookahead must be >= 1 (the sample queue must run ahead)"
                )
            }
            ConfigError::NoFlushers(mode) => write!(
                f,
                "{mode:?} mode needs flush_threads >= 1 (nothing would drain pending updates)"
            ),
            ConfigError::CacheRatio(r) => {
                write!(f, "cache_ratio {r} outside (0, 1]")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of the Frugal training engine.
#[derive(Debug, Clone)]
pub struct FrugalConfig {
    /// Hardware model (defines GPU count class, link paths, latencies).
    pub cost: CostModel,
    /// Cache size as a fraction of total parameters (paper default 5 %).
    pub cache_ratio: f64,
    /// Cache admission policy.
    pub cache_policy: CachePolicy,
    /// Sample-queue lookahead `L` in steps (paper default 10).
    pub lookahead: u64,
    /// Number of background flushing threads (paper default 8, optimum 12).
    pub flush_threads: usize,
    /// Entries per flusher dequeue (batched dequeue, §3.4).
    pub flush_batch: usize,
    /// Learning rate for embedding rows.
    pub lr: f32,
    /// Sparse optimizer for embedding rows.
    pub optimizer: OptimizerKind,
    /// Steps to train.
    pub steps: u64,
    /// Priority-queue implementation.
    pub pq: PqKind,
    /// Flushing strategy (Frugal vs Frugal-Sync).
    pub flush_mode: FlushMode,
    /// Run the host store in checked (race-detecting) mode and verify the
    /// consistency invariant on every host read.
    pub checked: bool,
    /// Failure injection: skip the P²F wait condition. Consistency is then
    /// expected to break; used to validate the checker.
    pub skip_wait: bool,
    /// Failure injection / testing: sleep this many microseconds after each
    /// flusher batch, simulating a starved or slow flushing pipeline.
    pub flush_throttle_us: u64,
    /// Seed for parameter initialization.
    pub seed: u64,
    /// Telemetry handle: metrics registry, phase spans, and trace ring.
    /// Defaults to [`Telemetry::off`] (near-zero instrumentation cost);
    /// pass [`Telemetry::new`] to collect a
    /// [`TelemetrySummary`](frugal_telemetry::TelemetrySummary) and
    /// Chrome traces in the run's [`TrainReport`](crate::TrainReport).
    pub telemetry: Telemetry,
}

impl FrugalConfig {
    /// Defaults from the paper's evaluation setup (§4.1) on a commodity
    /// topology of `n_gpus` RTX 3090s.
    pub fn commodity(n_gpus: usize, steps: u64) -> Self {
        FrugalConfig {
            cost: CostModel::new(Topology::commodity(n_gpus)),
            cache_ratio: 0.05,
            cache_policy: CachePolicy::StaticHot,
            lookahead: 10,
            flush_threads: 8,
            // Larger dequeue batches amortize the guarded-dequeue and wake
            // overhead per applied row; on time-sliced hosts 256 measured
            // consistently faster than the paper-era 64 with no stall cost
            // (the in-flight marker covers the whole batch either way).
            flush_batch: 256,
            lr: 0.1,
            optimizer: OptimizerKind::Sgd,
            steps,
            pq: PqKind::TwoLevel,
            flush_mode: FlushMode::P2f,
            checked: false,
            skip_wait: false,
            flush_throttle_us: 0,
            seed: 42,
            telemetry: Telemetry::off(),
        }
    }

    /// Enables telemetry collection on this run.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Switches to the write-through Frugal-Sync baseline.
    pub fn write_through(mut self) -> Self {
        self.flush_mode = FlushMode::WriteThrough;
        self
    }

    /// Switches to the arrival-order FIFO flush ablation (see
    /// [`FlushMode::Fifo`]).
    pub fn fifo(mut self) -> Self {
        self.flush_mode = FlushMode::Fifo;
        self
    }

    /// Selects the GPU-cache admission/eviction policy.
    ///
    /// [`CachePolicy::OracleBelady`] is fed by the read-registration
    /// lookahead, so it only sees future batches under
    /// [`FlushMode::P2f`]; under the other modes it degrades to a
    /// never-evicting cache (safe, but pointless).
    pub fn with_cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Checks the configuration's structural invariants, returning the
    /// first violation. [`FrugalEngine::new`](crate::FrugalEngine::new)
    /// calls this and panics on `Err`; binaries call it directly to report
    /// bad arguments gracefully instead of panicking deep inside a run.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_gpus() == 0 {
            return Err(ConfigError::NoGpus);
        }
        if self.lookahead == 0 {
            return Err(ConfigError::ZeroLookahead);
        }
        if self.flush_mode.proactive() && self.flush_threads == 0 {
            return Err(ConfigError::NoFlushers(self.flush_mode));
        }
        if !(self.cache_ratio > 0.0 && self.cache_ratio <= 1.0) {
            return Err(ConfigError::CacheRatio(self.cache_ratio));
        }
        Ok(())
    }

    /// Enables consistency checking (tests).
    pub fn checked(mut self) -> Self {
        self.checked = true;
        self
    }

    /// Number of GPUs in the configured topology.
    pub fn n_gpus(&self) -> usize {
        self.cost.topology().n_gpus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_defaults_match_paper() {
        let c = FrugalConfig::commodity(8, 100);
        assert_eq!(c.n_gpus(), 8);
        assert_eq!(c.cache_ratio, 0.05);
        assert_eq!(c.lookahead, 10);
        assert_eq!(c.flush_threads, 8);
        assert_eq!(c.flush_mode, FlushMode::P2f);
        assert_eq!(c.pq, PqKind::TwoLevel);
    }

    #[test]
    fn optimizer_builders_produce_rules() {
        let shared = OptimizerKind::Adagrad.build_shared(0.1, 100, 4, false);
        assert_eq!(shared.learning_rate(), 0.1);
        let checked = OptimizerKind::Adagrad.build_shared(0.1, 100, 4, true);
        assert_eq!(checked.race_count(), 0);
        let mut local = OptimizerKind::Sgd.build_local(0.5);
        let mut row = vec![1.0f32];
        local.update_row(0, &mut row, &[1.0]);
        assert_eq!(row, vec![0.5]);
    }

    #[test]
    fn cache_policy_builder_sets_policy() {
        let c = FrugalConfig::commodity(2, 10).with_cache_policy(CachePolicy::OracleBelady);
        assert_eq!(c.cache_policy, CachePolicy::OracleBelady);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn builders_toggle_modes() {
        let c = FrugalConfig::commodity(2, 10).write_through().checked();
        assert_eq!(c.flush_mode, FlushMode::WriteThrough);
        assert!(c.checked);
        let f = FrugalConfig::commodity(2, 10).fifo();
        assert_eq!(f.flush_mode, FlushMode::Fifo);
        assert!(f.flush_mode.proactive());
        assert!(!c.flush_mode.proactive());
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_each_invariant() {
        assert_eq!(FrugalConfig::commodity(2, 10).validate(), Ok(()));

        let mut c = FrugalConfig::commodity(2, 10);
        c.lookahead = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroLookahead));

        let mut c = FrugalConfig::commodity(2, 10);
        c.flush_threads = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoFlushers(FlushMode::P2f)));
        // Write-through needs no flushers; FIFO does.
        assert_eq!(c.clone().write_through().validate(), Ok(()));
        assert_eq!(
            c.fifo().validate(),
            Err(ConfigError::NoFlushers(FlushMode::Fifo))
        );

        for bad in [0.0, -0.1, 1.5, f64::NAN] {
            let mut c = FrugalConfig::commodity(2, 10);
            c.cache_ratio = bad;
            assert!(
                matches!(c.validate(), Err(ConfigError::CacheRatio(_))),
                "cache_ratio {bad} must be rejected"
            );
        }
    }
}
