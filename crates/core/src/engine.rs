//! The Frugal training engine (paper §3).
//!
//! One OS thread per simulated GPU ("training process"), a pool of flushing
//! threads, and the P²F protocol between them:
//!
//! * **Forward** — each trainer resolves its batch keys against its local
//!   cache (owned, hot keys) and reads everything else from the host store
//!   with UVA-style zero-copy reads, which are safe because the wait
//!   condition guarantees no key read at step `s` has unflushed updates.
//! * **Backward** — per-GPU gradients are aggregated per key in canonical
//!   order at a step barrier; the barrier leader merges them and publishes
//!   the step's update list, then **every trainer registers the g-entry
//!   writes (and the step `s + L` reads) for the [`GEntryStore`] shards it
//!   owns** using the batch APIs (`add_writes_batch` / `add_reads_batch`)
//!   — the registration work the paper puts on the critical path (Exp #4a)
//!   is sharded across trainers instead of serialized on the leader. Each
//!   trainer also folds its owner-routed aggregated updates into its local
//!   cache in the same pass.
//! * **Flushing threads** — dequeue the highest-priority g-entries and apply
//!   their pending updates to the host store in step order; idle flushers
//!   park on the flush condvar (bounded wait) instead of burning a core.
//! * **Wait condition** — a trainer may start step `s` only when
//!   `PQ.top() > s` (strictly), the exact condition of §3.3, which this
//!   module measures as the training stall.
//!
//! The same engine runs the **Frugal-Sync** baseline (write-through): the
//! leader applies every update to host memory synchronously at the barrier,
//! and the time it takes is the stall.
//!
//! # The parallel-registration step protocol
//!
//! Each step crosses three barriers (A, B, C). The thread the barrier
//! elects can differ at each crossing, so leader state lives in
//! [`RunShared`], not thread-locals:
//!
//! 1. trainers deposit per-GPU aggregates and phase times → **A** →
//! 2. the A-leader merges aggregates (GPU index order — canonical),
//!    publishes the step's [`StepWork`] (update list + `s + L` read lists),
//!    and, in write-through mode, applies updates synchronously → **B** →
//! 3. *every* trainer runs its [`register_phase`]: own-shard write/read
//!    batch registration, own-cache updates, and the own-shard blocking
//!    count for `s + 1`; the B-leader then composes the iteration's phase
//!    maxima (before C, so slow trainers cannot race slot reuse) → **C** →
//! 4. the C-leader finalizes bookkeeping (`set_upper_bound`, stall model,
//!    iteration record) while other trainers already enter step `s + 1` —
//!    nothing it does gates their wait condition.

use crate::config::{FlushMode, FrugalConfig, PqKind};
use crate::gentry::{GEntryStore, PendingWrites, PqOpScratch};
use crate::model::EmbeddingModel;
use crate::report::TrainReport;
use crate::wait::{self, InflightTable};
use crate::workload::Workload;
use frugal_data::Key;
use frugal_embed::{GpuCache, GradAggregator, HostStore, Sharding};
use frugal_pq::{PriorityQueue, TreeHeap, TwoLevelPq};
use frugal_sim::{HostPath, IterBreakdown, Nanos, RunStats};
use frugal_telemetry::{
    Counter, Gauge, Histogram, Phase, Registry, SpanArgs, StallRecord, ThreadRecorder,
};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use std::time::Instant;

/// How long an idle flusher parks on the flush condvar before re-polling.
/// Bounded so shutdown and missed notifications (a registration that lands
/// between the empty dequeue and the park) cannot stall the drain.
const FLUSHER_PARK: std::time::Duration = std::time::Duration::from_micros(100);

/// Registry-backed run counters.
///
/// The engine's *logic* depends on several of these — the cache hit ratio
/// and the measured flusher rates that feed [`virtual_stall`] — so they
/// always live on a metric registry: the run's telemetry registry when
/// telemetry is on, a private one otherwise. Either way each is the same
/// atomic the engine used to hold inline, now visible by name
/// (`cache.hits`, `flusher.dequeue_total_ns`, …) in telemetry snapshots.
#[derive(Debug)]
struct RunMetrics {
    /// Counter `p2f.violations`: consistency-invariant violations seen on
    /// host reads (checked mode).
    violations: Arc<Counter>,
    /// Counter `cache.hits`: unique keys served by a GPU cache.
    hits: Arc<Counter>,
    /// Counter `cache.misses`: unique keys read from host DRAM.
    misses: Arc<Counter>,
    /// Counters `flusher.dequeue_total_ns` / `flusher.apply_total_ns` /
    /// `flush.rows`: measured flusher costs, split into the PQ-dequeue
    /// part (which serializes on a tree heap) and the host-apply part.
    flush_dequeue_ns: Arc<Counter>,
    flush_apply_ns: Arc<Counter>,
    flush_rows: Arc<Counter>,
    /// Counter `flusher.parked_ns`: time idle flushers spent parked on the
    /// flush condvar instead of spinning (the Fig 17 "flushers divert CPU"
    /// effect, avoided).
    flusher_parked_ns: Arc<Counter>,
    /// Histogram `flush.batch_rows`: rows applied per non-empty flush
    /// batch — how much locality the key-sorted batch apply gets to
    /// exploit.
    flush_batch_rows: Arc<Histogram>,
    /// Histogram `flush.apply_row_ns`: each batch's mean per-row apply
    /// cost (claim + optimizer step + host-store write).
    flush_apply_row_ns: Arc<Histogram>,
    /// Counter `gentry.batch_ns`: total wall time trainers spent inside
    /// the sharded batch-registration phase (writes + reads), summed
    /// across trainers and steps.
    gentry_batch_ns: Arc<Counter>,
    /// Gauge `p2f.blocking_rows`: keys of the *next* step that still have
    /// pending writes right after this step's registration — the rows
    /// whose flush gates the next wait condition.
    blocking_rows_next: Arc<Gauge>,
}

impl RunMetrics {
    fn new(registry: &Registry) -> Self {
        RunMetrics {
            violations: registry.counter("p2f.violations"),
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            flush_dequeue_ns: registry.counter("flusher.dequeue_total_ns"),
            flush_apply_ns: registry.counter("flusher.apply_total_ns"),
            flush_rows: registry.counter("flush.rows"),
            flusher_parked_ns: registry.counter("flusher.parked_ns"),
            flush_batch_rows: registry.histogram("flush.batch_rows"),
            flush_apply_row_ns: registry.histogram("flush.apply_row_ns"),
            gentry_batch_ns: registry.counter("gentry.batch_ns"),
            blocking_rows_next: registry.gauge("p2f.blocking_rows"),
        }
    }
}

/// Per-trainer, per-step instrumentation deposited at the barrier.
#[derive(Debug, Clone, Default)]
struct PhaseTimes {
    comm: Nanos,
    host_dram: Nanos,
    cache: Nanos,
    other: Nanos,
    loss: f32,
}

/// The step's shared work product, written by the A-leader between
/// barriers A and B, read by every trainer between B and C. The barriers
/// serialize the write against the reads, so the lock is never contended —
/// it exists to keep the hand-off safe without `unsafe`.
#[derive(Debug, Default)]
struct StepWork {
    /// This step's merged updates in canonical arrival order, each row
    /// shared between the g-entry W set and the owner GPU's cache.
    updates: Vec<(Key, Arc<[f32]>)>,
    /// Raw per-GPU key lists of step `s + L` (the sample-queue prefetch);
    /// empty when `s + L` is past the end of training or in write-through
    /// mode. Gathered once by the leader so trainers do not re-query the
    /// workload `n` times each.
    reads: Vec<Vec<Key>>,
    /// The step the `reads` lists belong to.
    read_step: u64,
}

/// Totals of the flusher cost counters as of the previous step, kept by
/// the leader so [`virtual_stall`] can use a *windowed* per-row estimate
/// (deltas since the previous step) instead of lifetime averages that let
/// early cheap flushes dilute late-run stalls.
#[derive(Debug, Default, Clone, Copy)]
struct FlushWindow {
    dequeue_ns: u64,
    apply_ns: u64,
    rows: u64,
}

/// Advances `win` to the current counter totals and returns the windowed
/// per-row `(dequeue_ns, apply_ns)` estimate. Steps in which no rows were
/// flushed fall back to the lifetime average (there is no fresh signal),
/// and a run with no flushed rows at all estimates zero.
fn windowed_per_row(
    win: &mut FlushWindow,
    dequeue_ns: u64,
    apply_ns: u64,
    rows: u64,
) -> (f64, f64) {
    let d_rows = rows.saturating_sub(win.rows);
    let est = if d_rows > 0 {
        (
            dequeue_ns.saturating_sub(win.dequeue_ns) as f64 / d_rows as f64,
            apply_ns.saturating_sub(win.apply_ns) as f64 / d_rows as f64,
        )
    } else if rows > 0 {
        (
            dequeue_ns as f64 / rows as f64,
            apply_ns as f64 / rows as f64,
        )
    } else {
        (0.0, 0.0)
    };
    *win = FlushWindow {
        dequeue_ns,
        apply_ns,
        rows,
    };
    est
}

/// Rotating-leader state: the barrier can elect a different thread at each
/// of the step's three crossings, so everything a "leader" produces for a
/// later crossing lives here.
#[derive(Debug)]
struct LeaderState {
    /// Cross-GPU merged aggregates (reused arena; drained every step).
    merged: GradAggregator,
    /// Write-through: the modeled synchronous flush stall of this step.
    sync_stall: Nanos,
    /// Rows in this step's update list.
    n_rows: u64,
    /// Phase maxima composed by the B-leader, finalized by the C-leader.
    it: IterBreakdown,
    loss_sum: f32,
    /// Flusher-counter totals at the previous step (see [`FlushWindow`]).
    window: FlushWindow,
}

/// Shared state between trainers, the leader, and flushers for one run.
struct RunShared<'a> {
    cfg: &'a FrugalConfig,
    /// Sparse optimizer for the host path: applied by the flushing threads
    /// (P²F) or the barrier leader (write-through). One rule either way, so
    /// the per-row state `state_snapshot` exposes to cache fills is the
    /// host path's state in both modes.
    rule: std::sync::Arc<dyn frugal_embed::UpdateRule>,
    workload: &'a dyn Workload,
    model: &'a dyn EmbeddingModel,
    store: &'a HostStore,
    gstore: GEntryStore,
    pq: Box<dyn PriorityQueue>,
    sharding: Sharding,
    /// Per-GPU aggregators: trainers swap their full scratch aggregator in
    /// before barrier A; the A-leader drains them in GPU index order. Kept
    /// warm (arena reuse) across steps.
    agg_slots: Vec<Mutex<GradAggregator>>,
    /// Per-GPU phase instrumentation for the current step.
    phase_slots: Vec<Mutex<PhaseTimes>>,
    /// The step's published work (see [`StepWork`]).
    step_work: RwLock<StepWork>,
    /// Rotating-leader state (see [`LeaderState`]).
    leader: Mutex<LeaderState>,
    /// Keys of step `s + 1` with pending writes after registration, summed
    /// across trainers (each counts only its own shards).
    blocking_next: AtomicU64,
    /// Slowest trainer's write-registration time this step — the sharded
    /// critical path (the Exp #4a quantity under parallel registration).
    reg_ns_max: AtomicU64,
    /// Leader-composed per-iteration records.
    iters: Mutex<Vec<(IterBreakdown, f32)>>,
    gentry_times: Mutex<Vec<Nanos>>,
    /// Trainer-wait and flusher-park condvar, notified by flushers after
    /// applying updates and by trainers after registering new entries.
    flush_mutex: Mutex<()>,
    flush_cv: Condvar,
    shutdown: AtomicBool,
    /// Named run counters (see [`RunMetrics`]).
    metrics: RunMetrics,
    /// Per-flusher in-flight markers checked by the wait condition (see
    /// [`InflightTable`]): dequeuing removes an entry from the queue before
    /// its row write completes, so the queue's `top_priority` alone cannot
    /// cover it.
    inflight: InflightTable,
}

/// A trainer's reusable hot-loop buffers: batch dedup, row staging, the
/// gradient aggregator, and the registration-side shard buckets. Everything
/// here is cleared (capacity kept) instead of re-allocated, so after
/// warm-up the per-step loop allocates only what is semantically shared
/// (the per-row `Arc` gradients and the workload's sampled key lists).
struct StepScratch {
    /// Batch dedup: key → slot in `unique`.
    index_of: HashMap<Key, usize>,
    unique: Vec<Key>,
    /// Unique rows, `unique.len() × dim`.
    urows: Vec<f32>,
    /// Per-sample rows, `keys.len() × dim`.
    rows: Vec<f32>,
    /// Cache misses: `(unique index, key)`.
    missing: Vec<(usize, Key)>,
    /// Per-GPU gradient aggregator (swapped with the deposit slot).
    agg: GradAggregator,
    /// Own-shard write batches, one bucket per owned g-entry shard.
    write_bufs: Vec<Vec<(Key, Arc<[f32]>)>>,
    /// Own-shard read batches, one bucket per owned g-entry shard.
    read_bufs: Vec<Vec<Key>>,
    /// Per-step dedup of own-shard lookahead reads.
    read_seen: HashSet<Key>,
    /// Staged PQ operations for the g-entry batch calls.
    pq_ops: PqOpScratch,
    /// Own-shard deduped lookahead key lists by `step % ring len`, written
    /// at registration time and read back for the blocking-rows count —
    /// the cache that replaces `leader_step`'s old re-query of
    /// `workload.keys(s + 1, g)`.
    ring: Vec<Vec<Key>>,
}

impl StepScratch {
    fn new(dim: usize, lookahead: u64, n_gpus: usize, gpu: usize) -> Self {
        let owned = (0..GEntryStore::n_shards())
            .filter(|sid| sid % n_gpus == gpu)
            .count();
        StepScratch {
            index_of: HashMap::new(),
            unique: Vec::new(),
            urows: Vec::new(),
            rows: Vec::new(),
            missing: Vec::new(),
            agg: GradAggregator::new(dim),
            write_bufs: (0..owned).map(|_| Vec::new()).collect(),
            read_bufs: (0..owned).map(|_| Vec::new()).collect(),
            read_seen: HashSet::new(),
            pq_ops: PqOpScratch::default(),
            // Slots for steps s..=s+L plus one of slack so a slot is never
            // rewritten before the blocking count for its step has run.
            ring: (0..lookahead + 2).map(|_| Vec::new()).collect(),
        }
    }
}

/// The Frugal / Frugal-Sync training engine.
///
/// # Examples
///
/// ```
/// use frugal_core::{FrugalConfig, FrugalEngine, PullToTarget, Workload};
/// use frugal_data::{KeyDistribution, SyntheticTrace};
///
/// let trace = SyntheticTrace::new(1_000, KeyDistribution::Zipf(0.9), 32, 2, 1)?;
/// let mut cfg = FrugalConfig::commodity(2, 20);
/// cfg.flush_threads = 2;
/// let model = PullToTarget::new(8, 7);
/// let engine = FrugalEngine::new(cfg, trace.n_keys(), 8);
/// let report = engine.run(&trace, &model);
/// assert!(report.final_loss < report.first_loss);
/// # Ok::<(), frugal_data::DistError>(())
/// ```
#[derive(Debug)]
pub struct FrugalEngine {
    cfg: FrugalConfig,
    store: Arc<HostStore>,
}

impl FrugalEngine {
    /// Creates an engine with a fresh host store of `n_keys × dim`.
    pub fn new(cfg: FrugalConfig, n_keys: u64, dim: usize) -> Self {
        let mut store = if cfg.checked {
            HostStore::new_checked(n_keys, dim, cfg.seed)
        } else {
            HostStore::new(n_keys, dim, cfg.seed)
        };
        store.attach_telemetry(&cfg.telemetry);
        FrugalEngine {
            cfg,
            store: Arc::new(store),
        }
    }

    /// The host parameter store (inspect after [`FrugalEngine::run`]).
    pub fn store(&self) -> &HostStore {
        &self.store
    }

    /// The engine configuration.
    pub fn config(&self) -> &FrugalConfig {
        &self.cfg
    }

    /// Trains `workload` with `model` and returns the run report.
    ///
    /// # Panics
    ///
    /// Panics if the workload GPU count differs from the configured
    /// topology, if the model dimension differs from the store, or if P²F
    /// mode is configured with zero flushing threads.
    pub fn run(&self, workload: &dyn Workload, model: &dyn EmbeddingModel) -> TrainReport {
        let cfg = &self.cfg;
        let n = cfg.n_gpus();
        assert_eq!(workload.n_gpus(), n, "workload/topology GPU count mismatch");
        assert_eq!(model.dim(), self.store.dim(), "model/store dim mismatch");
        if cfg.flush_mode == FlushMode::P2f {
            assert!(cfg.flush_threads >= 1, "P2F needs at least one flusher");
        }

        let max_priority = cfg.steps + cfg.lookahead + 2;
        let mut pq: Box<dyn PriorityQueue> = match cfg.pq {
            PqKind::TwoLevel => Box::new(TwoLevelPq::new(max_priority)),
            PqKind::TreeHeap => Box::new(TreeHeap::new()),
        };
        pq.attach_telemetry(&cfg.telemetry);
        // Run counters live on the telemetry registry when one is attached,
        // on a private registry otherwise (the engine's own logic reads them
        // either way).
        let registry = cfg
            .telemetry
            .registry()
            .unwrap_or_else(|| Arc::new(Registry::new()));

        let shared = RunShared {
            cfg,
            rule: cfg.optimizer.build_shared(
                cfg.lr,
                self.store.n_keys(),
                self.store.dim(),
                cfg.checked,
            ),
            workload,
            model,
            store: &self.store,
            gstore: GEntryStore::new(),
            pq,
            sharding: Sharding::new(n),
            agg_slots: (0..n)
                .map(|_| Mutex::new(GradAggregator::new(model.dim())))
                .collect(),
            phase_slots: (0..n).map(|_| Mutex::new(PhaseTimes::default())).collect(),
            step_work: RwLock::new(StepWork::default()),
            leader: Mutex::new(LeaderState {
                merged: GradAggregator::new(model.dim()),
                sync_stall: Nanos::ZERO,
                n_rows: 0,
                it: IterBreakdown::default(),
                loss_sum: 0.0,
                window: FlushWindow::default(),
            }),
            blocking_next: AtomicU64::new(0),
            reg_ns_max: AtomicU64::new(0),
            iters: Mutex::new(Vec::with_capacity(cfg.steps as usize)),
            gentry_times: Mutex::new(Vec::with_capacity(cfg.steps as usize)),
            flush_mutex: Mutex::new(()),
            flush_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: RunMetrics::new(&registry),
            inflight: InflightTable::new(cfg.flush_threads),
        };

        if cfg.flush_mode == FlushMode::P2f {
            shared.pq.set_upper_bound(cfg.lookahead + 1);
        }

        let barrier = Barrier::new(n);

        std::thread::scope(|scope| {
            let mut flushers = Vec::new();
            if cfg.flush_mode == FlushMode::P2f {
                for i in 0..cfg.flush_threads {
                    let shared = &shared;
                    flushers.push(scope.spawn(move || flusher_loop(shared, i)));
                }
            }
            let trainers: Vec<_> = (0..n)
                .map(|g| {
                    let barrier = &barrier;
                    let shared = &shared;
                    scope.spawn(move || trainer_loop(shared, barrier, g))
                })
                .collect();
            for t in trainers {
                t.join().expect("trainer panicked");
            }
            // Drain: wait for all deferred updates to reach host memory.
            shared.shutdown.store(true, Ordering::Release);
            // Parked flushers re-check shutdown on wake; their park timeout
            // bounds the drain latency even if this signal races a park.
            shared.flush_cv.notify_all();
            for f in flushers {
                f.join().expect("flusher panicked");
            }
            debug_assert_eq!(shared.gstore.pending_keys(), 0);
        });

        // Compose the report.
        let iters = shared.iters.into_inner();
        let mut stats = RunStats::new(workload.samples_per_step());
        let mut first_loss = 0.0;
        let mut final_loss = 0.0;
        for (i, (it, loss)) in iters.iter().enumerate() {
            stats.push(*it);
            if i == 0 {
                first_loss = *loss;
            }
            final_loss = *loss;
        }
        let gentry_times = shared.gentry_times.into_inner();
        let mean_gentry = if gentry_times.is_empty() {
            Nanos::ZERO
        } else {
            gentry_times.iter().copied().sum::<Nanos>() / gentry_times.len() as u64
        };
        let hits = shared.metrics.hits.get();
        let misses = shared.metrics.misses.get();
        let hit_ratio = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        TrainReport {
            stats,
            hit_ratio,
            mean_gentry_update: mean_gentry,
            violations: shared.metrics.violations.get() as usize,
            races: self.store.race_count() + shared.rule.race_count(),
            flush_rows: shared.metrics.flush_rows.get(),
            flush_apply_ns: shared.metrics.flush_apply_ns.get(),
            first_loss,
            final_loss,
            telemetry: cfg.telemetry.summary(),
        }
    }
}

/// One background flushing thread (paper §3.2, component 4).
///
/// The apply path is allocation-free after warm-up: claims drain into a
/// per-flusher reusable scratch (`writes` + `claims`) via
/// [`GEntryStore::take_writes_into`], and the batch is key-sorted before
/// claiming so both the g-entry shards and the dense host/state tables are
/// walked in address order.
///
/// Claim-all-then-apply-all is safe under the in-flight marker: the guarded
/// dequeue publishes the batch's minimum priority *before* extraction and
/// the marker stays up until every row is applied, so a trainer admitted at
/// step `s` has `s <` marker `≤` every batch key's priority (its next-read
/// step) — step `s` reads none of the claimed-but-unapplied rows.
fn flusher_loop(shared: &RunShared<'_>, slot: usize) {
    let rec = shared.cfg.telemetry.recorder(format!("flusher-{slot}"));
    let mut out = Vec::with_capacity(shared.cfg.flush_batch);
    // Reusable claim scratch: the batch's claimed (step, Δ) pairs, flat,
    // plus each claimed key's range into them.
    let mut writes: PendingWrites = Vec::new();
    let mut claims: Vec<(Key, usize, usize)> = Vec::with_capacity(shared.cfg.flush_batch);
    loop {
        out.clear();
        let t_deq = Instant::now();
        // Guarded dequeue: the in-flight marker is published *before* each
        // entry leaves the queue, so there is no instant at which a pending
        // flush is visible to neither `top_priority` nor the marker scan.
        // (Publishing after `dequeue_batch` returned — the engine's old
        // order — left exactly that window; the schedule explorer found a
        // trainer slipping through it. See DESIGN.md §8 race 3.)
        shared.pq.dequeue_batch_guarded(
            shared.cfg.flush_batch,
            &mut out,
            shared.inflight.guard(slot),
        );
        if out.is_empty() {
            if shared.shutdown.load(Ordering::Acquire) && shared.gstore.pending_keys() == 0 {
                return;
            }
            // Park until registration notifies (or the bounded timeout
            // fires — the safety net against a notify that lands between
            // the empty dequeue above and this wait). The old code spun on
            // `yield_now`, which burned a core per idle flusher and
            // diverted CPU from trainers (the paper's Fig 17 effect).
            let t_park = Instant::now();
            let mut guard = shared.flush_mutex.lock();
            if !shared.shutdown.load(Ordering::Acquire) {
                shared.flush_cv.wait_for(&mut guard, FLUSHER_PARK);
            }
            drop(guard);
            shared
                .metrics
                .flusher_parked_ns
                .add(t_park.elapsed().as_nanos() as u64);
            continue;
        }
        // Only non-empty dequeues are recorded: thousands of idle polls
        // would swamp both the histogram and the trace ring.
        shared
            .metrics
            .flush_dequeue_ns
            .add(t_deq.elapsed().as_nanos() as u64);
        rec.record_completed(
            Phase::FlushDequeue,
            t_deq,
            SpanArgs::one("batch", out.len() as u64),
        );
        let t_apply = Instant::now();
        // Key-sorted batch apply: claims then walk the g-entry shards and
        // the dense host/state rows in ascending key (address) order.
        out.sort_unstable();
        writes.clear();
        claims.clear();
        for &(key, bucket_p) in &out {
            let start = writes.len();
            let n = shared.gstore.take_writes_into(key, bucket_p, &mut writes);
            if n > 0 {
                claims.push((key, start, start + n));
            }
        }
        for &(key, start, end) in &claims {
            shared.store.write_row(key, |row| {
                for (_step, grad) in &writes[start..end] {
                    shared.rule.apply(key, row, grad);
                }
            });
        }
        let applied = claims.len() as u64;
        if applied > 0 {
            let apply_ns = t_apply.elapsed().as_nanos() as u64;
            shared.metrics.flush_apply_ns.add(apply_ns);
            shared.metrics.flush_rows.add(applied);
            shared.metrics.flush_batch_rows.record(applied);
            shared.metrics.flush_apply_row_ns.record(apply_ns / applied);
            rec.record_completed(Phase::FlushApply, t_apply, SpanArgs::one("rows", applied));
        }
        shared.inflight.clear(slot);
        if applied > 0 {
            // One consolidated wake, and it must come *after*
            // `inflight.clear`: a trainer's wait condition checks the queue
            // top and then the in-flight markers, so a wake issued while
            // this slot's marker is still up could be consumed, re-observe
            // the stale marker, and leave the trainer waiting out a full
            // park timeout. After the clear, both the queue and the marker
            // reflect the applied rows, so one notify_all suffices (the
            // pre-clear notify the loop used to issue as well was
            // redundant).
            shared.flush_cv.notify_all();
        }
        if shared.cfg.flush_throttle_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(
                shared.cfg.flush_throttle_us,
            ));
        }
    }
}

/// Registers trainer `g`'s owned-shard reads of step `read_step`, drawing
/// the per-GPU key lists from `lists`: filters to owned shards, dedups into
/// the shard buckets, registers each bucket with one batch call, and files
/// the deduped (shard-grouped) keys in the lookahead ring for the later
/// blocking-rows count.
fn register_own_reads(
    shared: &RunShared<'_>,
    g: usize,
    read_step: u64,
    lists: &[Vec<Key>],
    scratch: &mut StepScratch,
) {
    let n = shared.cfg.n_gpus();
    for buf in &mut scratch.read_bufs {
        buf.clear();
    }
    scratch.read_seen.clear();
    for list in lists {
        for &key in list {
            let sid = GEntryStore::shard_of(key);
            if sid % n == g && scratch.read_seen.insert(key) {
                scratch.read_bufs[sid / n].push(key);
            }
        }
    }
    let slot = (read_step % scratch.ring.len() as u64) as usize;
    scratch.ring[slot].clear();
    for buf in &scratch.read_bufs {
        if !buf.is_empty() {
            shared
                .gstore
                .add_reads_batch(read_step, buf, shared.pq.as_ref(), &mut scratch.pq_ops);
            scratch.ring[slot].extend_from_slice(buf);
        }
    }
}

/// The A-leader's work between barriers A and B: merge the per-GPU
/// aggregates in GPU index order (canonical), publish the step's update
/// list and `s + L` read lists as [`StepWork`], and in write-through mode
/// apply the updates to host memory synchronously (the Frugal-Sync stall).
fn leader_prepare(shared: &RunShared<'_>, s: u64) {
    let cfg = shared.cfg;
    let leader = &mut *shared.leader.lock();
    for slot in &shared.agg_slots {
        leader.merged.merge_from(&mut slot.lock());
    }
    shared.model.end_step(s);

    let mut work = shared.step_work.write();
    work.updates.clear();
    leader.merged.drain_arcs(&mut work.updates);
    leader.n_rows = work.updates.len() as u64;

    // Sample queue: gather the raw reads of step s + L once for all
    // trainers (they filter to their own shards between B and C).
    work.reads.clear();
    let rs = s + cfg.lookahead;
    work.read_step = rs;
    if cfg.flush_mode == FlushMode::P2f && rs < cfg.steps {
        for g in 0..cfg.n_gpus() {
            let keys = shared.workload.keys(rs, g);
            work.reads.push(keys);
        }
    }

    leader.sync_stall = Nanos::ZERO;
    if cfg.flush_mode == FlushMode::WriteThrough {
        // The write-through flush the paper describes: every update crosses
        // PCIe to host memory synchronously, with no background overlap —
        // the "long stall" of §3.1 (the real apply below runs at
        // host-memcpy speed and is not representative). Applied through the
        // shared rule — the same host-path state the flushers would use —
        // so stateful optimizers expose correct `state_snapshot`s to cache
        // fills in this mode too.
        for (key, grad) in &work.updates {
            shared.store.write_row(*key, |row| {
                shared.rule.apply(*key, row, grad);
            });
        }
        leader.sync_stall = cfg.cost.sync_flush(leader.n_rows, cfg.n_gpus());
    }
    drop(work);

    shared.blocking_next.store(0, Ordering::Release);
    shared.reg_ns_max.store(0, Ordering::Release);
}

/// Every trainer's work between barriers B and C: apply the owner-routed
/// cache updates, register own-shard g-entry writes (batch), register the
/// own-shard reads of step `s + L` (batch), and count the own-shard keys
/// of step `s + 1` whose pending writes will gate the next wait condition.
///
/// Shard ownership: trainer `g` owns every [`GEntryStore`] shard `sid`
/// with `sid % n_gpus == g`. Shards partition the key space, so exactly
/// one trainer mutates any given g-entry this step — trainers never
/// contend on a shard lock, only (rarely) with flushers draining it.
#[allow(clippy::too_many_arguments)]
fn register_phase(
    shared: &RunShared<'_>,
    rec: &ThreadRecorder,
    s: u64,
    g: usize,
    scratch: &mut StepScratch,
    cache: &mut GpuCache,
    cache_opt: &mut dyn frugal_tensor::RowOptimizer,
) {
    let cfg = shared.cfg;
    let n = cfg.n_gpus();
    let p2f = cfg.flush_mode == FlushMode::P2f;
    let work = shared.step_work.read();
    let t0 = Instant::now();

    // Single pass over the step's updates: fold owner-routed rows into the
    // local cache (the cache sees the same per-key gradient sequence as
    // the host path, keeping both bit-identical) and bucket own-shard rows
    // for batch registration.
    for buf in &mut scratch.write_bufs {
        buf.clear();
    }
    for (key, grad) in &work.updates {
        if shared.sharding.is_local(*key, g) {
            if let Some(row) = cache.get_mut(key) {
                cache_opt.update_row(*key, row, grad);
            }
        }
        if p2f {
            let sid = GEntryStore::shard_of(*key);
            if sid % n == g {
                scratch.write_bufs[sid / n].push((*key, Arc::clone(grad)));
            }
        }
    }
    if p2f {
        // Write registration — the sharded critical path. The slowest
        // trainer's time here is the step's g-entry registration time
        // (what `leader_step` used to spend serially on *all* keys).
        let t_writes = Instant::now();
        let mut own_rows = 0u64;
        for buf in &scratch.write_bufs {
            if !buf.is_empty() {
                own_rows += buf.len() as u64;
                shared
                    .gstore
                    .add_writes_batch(s, buf, shared.pq.as_ref(), &mut scratch.pq_ops);
            }
        }
        shared
            .reg_ns_max
            .fetch_max(t_writes.elapsed().as_nanos() as u64, Ordering::AcqRel);

        // Sample-queue prefetch: the reads of step s + L, own shards only.
        if work.read_step < cfg.steps {
            register_own_reads(shared, g, work.read_step, &work.reads, scratch);
        }
        // Fresh entries (and tightened priorities) may unblock flushers'
        // scan ranges; wake any parked ones.
        shared.flush_cv.notify_all();

        // Blocking rows for step s + 1: reuse the deduped lookahead keys
        // registration filed in the ring — no workload re-query, no fresh
        // dedup set.
        if s + 1 < cfg.steps {
            let slot = ((s + 1) % scratch.ring.len() as u64) as usize;
            let blocked = shared.gstore.count_pending(&scratch.ring[slot]);
            if blocked > 0 {
                shared.blocking_next.fetch_add(blocked, Ordering::AcqRel);
            }
        }
        shared
            .metrics
            .gentry_batch_ns
            .add(t0.elapsed().as_nanos() as u64);
        rec.record_completed(Phase::GEntryUpdate, t0, SpanArgs::one("rows", own_rows));
    }
}

/// The B-leader's compose, run between barriers B and C (after its own
/// [`register_phase`]): fold the per-GPU phase times into the iteration's
/// maxima. This must finish before C — once trainers pass C they may
/// deposit step `s + 1` times into the same slots.
fn compose_phases(shared: &RunShared<'_>) {
    let mut leader = shared.leader.lock();
    let mut it = IterBreakdown::default();
    let mut loss_sum = 0.0f32;
    for slot in &shared.phase_slots {
        let p = slot.lock();
        it.comm = it.comm.max(p.comm);
        it.host_dram = it.host_dram.max(p.host_dram);
        it.cache = it.cache.max(p.cache);
        it.other = it.other.max(p.other);
        loss_sum += p.loss;
    }
    leader.it = it;
    leader.loss_sum = loss_sum;
}

/// The C-leader's bookkeeping after barrier C: raise the PQ scan bound,
/// convert the measured registration maximum to reference-machine terms,
/// model the stall, and push the iteration record. Nothing here gates the
/// other trainers' next step — they are already past C — and the next
/// barrier A cannot complete before this thread arrives, so the next
/// [`leader_prepare`] never races these reads.
fn leader_finish(shared: &RunShared<'_>, s: u64) {
    let cfg = shared.cfg;
    let n = cfg.n_gpus();
    if cfg.flush_mode == FlushMode::P2f {
        shared.pq.set_upper_bound(s + 1 + cfg.lookahead);
        // New low-priority entries may unblock flushers' scan ranges.
        shared.flush_cv.notify_all();
    }

    // Convert the measured registration time to reference-machine terms:
    // divide by how much slower this host runs the canonical registration
    // probe than the reference controller (see `calibrate`). Relative
    // effects — tree heap vs two-level PQ, sharded vs serial registration,
    // batch sizes — are already inside the measurement and survive intact.
    let slowdown = crate::calibrate::host_slowdown(cfg.cost.gentry_op_reference_ns(128));
    let gentry_time = match cfg.flush_mode {
        FlushMode::P2f => {
            let max_ns = shared.reg_ns_max.load(Ordering::Acquire);
            Nanos::from_nanos(max_ns) * (1.0 / slowdown)
        }
        // Write-through has no g-entries; its flush cost is the stall.
        FlushMode::WriteThrough => Nanos::ZERO,
    };
    shared.gentry_times.lock().push(gentry_time);

    let mut leader = shared.leader.lock();
    let mut it = leader.it;
    let loss_sum = leader.loss_sum;
    // The controller/flushers contend with trainers for CPU cores: charge
    // an oversubscription factor on the critical-path registration time
    // (the Fig 17 "too many flushing threads divert CPU" effect).
    let cores = cfg.cost.topology().host().cpu_cores.max(1);
    let oversub = ((n + cfg.flush_threads + 2) as f64 / cores as f64).max(1.0);
    it.other += gentry_time * oversub + cfg.cost.framework_frugal();
    it.stall = match cfg.flush_mode {
        FlushMode::WriteThrough => leader.sync_stall,
        FlushMode::P2f => {
            // Advance the flusher-cost window every step so the per-row
            // estimate tracks *current* flusher behaviour.
            let (deq_ns, apply_ns) = windowed_per_row(
                &mut leader.window,
                shared.metrics.flush_dequeue_ns.get(),
                shared.metrics.flush_apply_ns.get(),
                shared.metrics.flush_rows.get(),
            );
            let blocking = shared.blocking_next.load(Ordering::Acquire);
            shared.metrics.blocking_rows_next.set(blocking as i64);
            virtual_stall(shared, s, blocking, deq_ns, apply_ns)
        }
    };
    shared.iters.lock().push((it, loss_sum / n as f32));
}

/// One training process (paper §3.2): the per-GPU loop.
fn trainer_loop(shared: &RunShared<'_>, barrier: &Barrier, g: usize) {
    let cfg = shared.cfg;
    let rec = cfg.telemetry.recorder(format!("trainer-{g}"));
    let dim = shared.model.dim();
    let n = cfg.n_gpus();
    let n_keys = shared.workload.n_keys();
    let cap = shared.sharding.cache_capacity(n_keys, cfg.cache_ratio);
    let mut cache = GpuCache::new(cap, dim, cfg.cache_policy);
    cache.set_hot_threshold(shared.sharding.hot_threshold(n_keys, cfg.cache_ratio));
    // Cache copies evolve with their own optimizer state: they see exactly
    // the same per-key gradient sequence as the host path, so both states
    // (and both values) stay bit-identical.
    let mut cache_opt = cfg.optimizer.build_local(cfg.lr);
    let mut hits = 0u64;
    let mut misses = 0u64;
    let batch_per_gpu = shared.workload.samples_per_step() / n as u64;
    let mut scratch = StepScratch::new(dim, cfg.lookahead, n, g);

    // Initial sample-queue prefetch (paper §3.2): each trainer registers
    // its own shards' reads of steps 0..L before the first step. No writes
    // exist yet, so this issues no queue operations and needs no
    // cross-trainer ordering; each trainer only requires its *own*
    // prefetch done before its own first wait, which program order gives.
    if cfg.flush_mode == FlushMode::P2f {
        for s0 in 0..cfg.lookahead.min(cfg.steps) {
            let lists: Vec<Vec<Key>> = (0..n).map(|gg| shared.workload.keys(s0, gg)).collect();
            register_own_reads(shared, g, s0, &lists, &mut scratch);
        }
    }

    for s in 0..cfg.steps {
        // P²F wait condition: start step s only when PQ.top() > s (§3.3).
        // The physical wait enforces consistency; the *reported* stall is
        // modeled by `virtual_stall` (see its docs for why).
        if cfg.flush_mode == FlushMode::P2f && !cfg.skip_wait {
            let blocked =
                |shared: &RunShared<'_>| wait::blocked(shared.pq.as_ref(), &shared.inflight, s);
            if blocked(shared) {
                // Stall attribution: what is this wait blocked *on*? The
                // lowest deadline across the queue top and in-flight
                // flushes, and the outstanding backlog at wait entry.
                let floor = wait::pending_floor(shared.pq.as_ref(), &shared.inflight);
                let pending = shared.gstore.pending_keys() as u64;
                let span = rec.span_with(
                    Phase::P2fWait,
                    SpanArgs::two("blocking_priority", floor, "pending_keys", pending),
                );
                while blocked(shared) {
                    let mut guard = shared.flush_mutex.lock();
                    if !blocked(shared) {
                        break;
                    }
                    shared
                        .flush_cv
                        .wait_for(&mut guard, std::time::Duration::from_micros(50));
                }
                let wait_ns = span.finish();
                if wait_ns > 0 {
                    cfg.telemetry.record_stall(StallRecord {
                        step: s,
                        wait_ns,
                        blocking_priority: floor,
                        pending_keys: pending,
                    });
                }
            }
        }

        // Sample: draw this iteration's keys from the workload.
        let keys = {
            let _span = rec.span(Phase::Sample);
            shared.workload.keys(s, g)
        };

        // Forward pass 1 — cache query: dedup the batch and resolve unique
        // keys against the local cache, collecting the ones every cache
        // missed. All staging buffers are per-trainer scratch — cleared,
        // never re-allocated.
        let cq_span = rec.span(Phase::CacheQuery);
        scratch.index_of.clear();
        scratch.unique.clear();
        scratch.missing.clear();
        for &key in &keys {
            if let std::collections::hash_map::Entry::Vacant(e) = scratch.index_of.entry(key) {
                e.insert(scratch.unique.len());
                scratch.unique.push(key);
            }
        }
        let unique_n = scratch.unique.len();
        scratch.urows.clear();
        scratch.urows.resize(unique_n * dim, 0.0);
        for (i, &key) in scratch.unique.iter().enumerate() {
            let slot = &mut scratch.urows[i * dim..(i + 1) * dim];
            if shared.sharding.is_local(key, g) {
                if let Some(row) = cache.get(&key) {
                    frugal_embed::kernels::copy(slot, row);
                    hits += 1;
                    continue;
                }
            }
            scratch.missing.push((i, key));
        }
        drop(cq_span);

        // Forward pass 2 — host reads (UVA zero-copy) for the cache misses.
        // Safe to split from pass 1: keys are unique within a step, so a
        // row admitted here can never be queried again before the barrier.
        let host_reads = scratch.missing.len() as u64;
        let mut fills = 0u64;
        let hr_span = rec.span_with(Phase::HostRead, SpanArgs::one("rows", host_reads));
        for &(i, key) in &scratch.missing {
            let slot = &mut scratch.urows[i * dim..(i + 1) * dim];
            // Verify the consistency invariant first when checking is on.
            if cfg.checked && !shared.gstore.invariant_holds(key, s) {
                shared.metrics.violations.incr();
            }
            shared.store.read_row(key, slot);
            misses += 1;
            if shared.sharding.is_local(key, g) && cache.admits(key) {
                cache.insert(key, slot.to_vec());
                // Synchronize the cache-side optimizer with the host path's
                // per-row state (safe: P2F guarantees this key has no
                // in-flight updates while it is being read).
                if let Some(state) = shared.rule.state_snapshot(key) {
                    cache_opt.seed_state(key, state);
                }
                fills += 1;
            }
        }
        drop(hr_span);

        // Scatter unique rows to per-instance rows for the model.
        scratch.rows.clear();
        scratch.rows.resize(keys.len() * dim, 0.0);
        for (i, &key) in keys.iter().enumerate() {
            let u = scratch.index_of[&key];
            frugal_embed::kernels::copy(
                &mut scratch.rows[i * dim..(i + 1) * dim],
                &scratch.urows[u * dim..(u + 1) * dim],
            );
        }

        let compute_span = rec.span(Phase::Compute);
        let grads = shared.model.forward_backward(g, s, &keys, &scratch.rows);

        // Aggregate this GPU's gradients per key in arrival order (the
        // aggregator arena is reused; `drain`ed by the merge, swapped back
        // next step).
        for (i, &key) in keys.iter().enumerate() {
            scratch
                .agg
                .add(key, &grads.emb_grads[i * dim..(i + 1) * dim]);
        }
        drop(compute_span);

        // Modeled hardware times for this iteration.
        let cost = &cfg.cost;
        let row_bytes = (dim * 4) as u64;
        let phase = PhaseTimes {
            comm: if shared.model.dense_param_bytes() > 0 {
                cost.all_to_all(shared.model.dense_param_bytes())
            } else {
                Nanos::ZERO
            },
            host_dram: cost.host_read(HostPath::Uva, host_reads, row_bytes, n),
            cache: cost.cache_query(unique_n as u64) + cost.cache_update(fills),
            other: cost.dnn_time(
                shared.model.dense_flops_per_sample() * batch_per_gpu as f64,
                shared.model.dense_layers().max(1),
            ),
            loss: grads.loss,
        };
        // The non-critical-path flush writes are *not* charged — that is
        // precisely Frugal's point. Frugal-Sync charges them below as stall.
        std::mem::swap(&mut *shared.agg_slots[g].lock(), &mut scratch.agg);
        *shared.phase_slots[g].lock() = phase.clone();

        // Barrier A: aggregates deposited. The A-leader merges and
        // publishes the step's work.
        if barrier.wait().is_leader() {
            leader_prepare(shared, s);
        }
        // Barrier B: StepWork visible. Everyone registers their shards.
        let b = barrier.wait();
        register_phase(
            shared,
            &rec,
            s,
            g,
            &mut scratch,
            &mut cache,
            cache_opt.as_mut(),
        );
        if b.is_leader() {
            compose_phases(shared);
        }
        // Barrier C: registration complete — the step's entries are all
        // queued before any trainer can evaluate step s + 1's wait
        // condition. The C-leader finalizes bookkeeping concurrently.
        if barrier.wait().is_leader() {
            leader_finish(shared, s);
        }
    }

    shared.metrics.hits.add(hits);
    shared.metrics.misses.add(misses);
}

/// Models the P²F stall at step `s`'s wait condition as real hardware would
/// see it: the flushing threads must push the `blocking` updates —
/// parameters written in the previous step and read again now (paper Fig 6,
/// the k2 case) — to host memory before training may proceed. Deferred
/// (∞-priority) updates do not stall unless an upcoming read reactivates
/// them, which the blocking count includes.
///
/// Per-row costs come from *measured* flusher behaviour (so the PQ
/// implementation's efficiency — O(1) two-level vs O(log N) serialized tree
/// heap — flows straight into the stall), **windowed to the deltas since
/// the previous step** (see [`windowed_per_row`]) so early-run costs do not
/// dilute late-run stalls, normalized to reference-machine terms, and
/// divided across flushing threads according to whether dequeues serialize.
///
/// The trainers still *physically* block on `PQ.top() > s` for correctness;
/// only the reported time is modeled, because a single-core host cannot
/// exhibit the overlap a multi-core controller provides.
fn virtual_stall(
    shared: &RunShared<'_>,
    s: u64,
    blocking: u64,
    raw_deq_ns: f64,
    raw_apply_ns: f64,
) -> Nanos {
    if s == 0 || blocking == 0 {
        return Nanos::ZERO;
    }
    let cfg = shared.cfg;
    // Normalize measured per-row costs to reference-machine terms like the
    // g-entry registration time (same calibration ratio).
    let slowdown = crate::calibrate::host_slowdown(cfg.cost.gentry_op_reference_ns(128));
    let deq_ns = (raw_deq_ns / slowdown) as u64;
    let apply_ns = (raw_apply_ns / slowdown) as u64;
    let cores = cfg.cost.topology().host().cpu_cores.max(1);
    let n = cfg.n_gpus();
    let threads = cfg.flush_threads.min(cores.saturating_sub(n + 1).max(1)) as u64;
    let per_row_ns = if shared.pq.dequeue_serializes() {
        // Dequeues funnel through one lock: they do not parallelize.
        deq_ns + apply_ns / threads
    } else {
        (deq_ns + apply_ns) / threads
    };
    Nanos::from_nanos(blocking * per_row_ns.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptimizerKind;
    use crate::model::PullToTarget;
    use frugal_data::{KeyDistribution, SyntheticTrace};

    fn small_cfg(n_gpus: usize, steps: u64) -> FrugalConfig {
        let mut cfg = FrugalConfig::commodity(n_gpus, steps);
        cfg.flush_threads = 2;
        cfg.lookahead = 4;
        // Mean-normalized gradients: a higher rate keeps the convergence
        // tests fast while staying stable (lr * occurrences/batch < 2).
        cfg.lr = 2.0;
        cfg
    }

    fn trace(n_keys: u64, batch: usize, n_gpus: usize) -> SyntheticTrace {
        SyntheticTrace::new(n_keys, KeyDistribution::Zipf(0.9), batch, n_gpus, 3).unwrap()
    }

    #[test]
    fn frugal_trains_and_reduces_loss() {
        let t = trace(500, 64, 2);
        let model = PullToTarget::new(8, 1);
        let engine = FrugalEngine::new(small_cfg(2, 30), 500, 8);
        let report = engine.run(&t, &model);
        assert_eq!(report.stats.len(), 30);
        assert!(
            report.final_loss < report.first_loss * 0.7,
            "loss {} -> {}",
            report.first_loss,
            report.final_loss
        );
        assert!(report.throughput() > 0.0);
        // The flush-path metrics must populate on a P2F run.
        assert!(report.flush_rows > 0, "P2F run must flush rows");
        assert!(report.mean_flush_apply_ns_row() > 0.0);
    }

    #[test]
    fn checked_run_has_no_violations_or_races() {
        let t = trace(300, 48, 2);
        let model = PullToTarget::new(4, 2);
        let engine = FrugalEngine::new(small_cfg(2, 25).checked(), 300, 4);
        let report = engine.run(&t, &model);
        assert_eq!(report.violations, 0, "P2F must uphold invariant (2)");
        assert_eq!(report.races, 0, "P2F must prevent host-row races");
    }

    #[test]
    fn write_through_matches_p2f_parameters() {
        // Synchronous consistency: both flushing strategies must produce
        // bit-identical parameters.
        let t = trace(200, 32, 2);
        let model = PullToTarget::new(4, 5);
        let p2f = FrugalEngine::new(small_cfg(2, 20), 200, 4);
        p2f.run(&t, &model);
        let sync = FrugalEngine::new(small_cfg(2, 20).write_through(), 200, 4);
        sync.run(&t, &model);
        for key in 0..200 {
            assert_eq!(
                p2f.store().row_vec(key),
                sync.store().row_vec(key),
                "key {key} diverged"
            );
        }
    }

    #[test]
    fn treeheap_pq_produces_same_parameters() {
        let t = trace(150, 16, 2);
        let model = PullToTarget::new(4, 9);
        let two = FrugalEngine::new(small_cfg(2, 15), 150, 4);
        two.run(&t, &model);
        let mut cfg = small_cfg(2, 15);
        cfg.pq = PqKind::TreeHeap;
        let heap = FrugalEngine::new(cfg, 150, 4);
        heap.run(&t, &model);
        for key in 0..150 {
            assert_eq!(two.store().row_vec(key), heap.store().row_vec(key));
        }
    }

    #[test]
    fn three_gpu_partitions_agree_with_serial() {
        // 3 GPUs: the g-entry shard partition (shard % 3) does not coincide
        // with the cache owner partition (key % 3) because 3 ∤ 64 — the two
        // filters in `register_phase` must stay independent. All four
        // execution strategies must produce bit-identical parameters.
        let n_keys = 180u64;
        let t = trace(n_keys, 33, 3);
        let model = PullToTarget::new(4, 11);
        let p2f = FrugalEngine::new(small_cfg(3, 12), n_keys, 4);
        p2f.run(&t, &model);
        let mut heap_cfg = small_cfg(3, 12);
        heap_cfg.pq = PqKind::TreeHeap;
        let heap = FrugalEngine::new(heap_cfg, n_keys, 4);
        heap.run(&t, &model);
        let sync = FrugalEngine::new(small_cfg(3, 12).write_through(), n_keys, 4);
        sync.run(&t, &model);
        let cfg = small_cfg(3, 12);
        let serial =
            crate::serial::train_serial_with(&t, &model, 12, cfg.lr, cfg.seed, cfg.optimizer);
        for key in 0..n_keys {
            let want = serial.store.row_vec(key);
            assert_eq!(p2f.store().row_vec(key), want, "p2f key {key}");
            assert_eq!(heap.store().row_vec(key), want, "treeheap key {key}");
            assert_eq!(sync.store().row_vec(key), want, "write-through key {key}");
        }
    }

    #[test]
    fn adagrad_multi_flusher_partitions_agree_with_serial() {
        // The dense lock-free Adagrad state under multiple flushers: all
        // four execution strategies (P2F two-level, tree heap,
        // write-through, serial oracle) must produce bit-identical
        // parameters, exactly as the SGD variant above.
        let n_keys = 180u64;
        let t = trace(n_keys, 33, 3);
        let model = PullToTarget::new(4, 13);
        let mut cfg = small_cfg(3, 12);
        cfg.optimizer = OptimizerKind::Adagrad;
        cfg.flush_threads = 3;
        let p2f = FrugalEngine::new(cfg.clone(), n_keys, 4);
        p2f.run(&t, &model);
        let mut heap_cfg = cfg.clone();
        heap_cfg.pq = PqKind::TreeHeap;
        let heap = FrugalEngine::new(heap_cfg, n_keys, 4);
        heap.run(&t, &model);
        let sync = FrugalEngine::new(cfg.clone().write_through(), n_keys, 4);
        sync.run(&t, &model);
        let serial =
            crate::serial::train_serial_with(&t, &model, 12, cfg.lr, cfg.seed, cfg.optimizer);
        for key in 0..n_keys {
            let want = serial.store.row_vec(key);
            assert_eq!(p2f.store().row_vec(key), want, "p2f key {key}");
            assert_eq!(heap.store().row_vec(key), want, "treeheap key {key}");
            assert_eq!(sync.store().row_vec(key), want, "write-through key {key}");
        }
    }

    #[test]
    fn checked_adagrad_run_has_no_violations_or_races() {
        // Checked mode covers both the host store and the dense Adagrad
        // state table; a protocol-respecting run must trip neither.
        let t = trace(300, 48, 2);
        let model = PullToTarget::new(4, 2);
        let mut cfg = small_cfg(2, 25).checked();
        cfg.optimizer = OptimizerKind::Adagrad;
        let engine = FrugalEngine::new(cfg, 300, 4);
        let report = engine.run(&t, &model);
        assert_eq!(report.violations, 0, "P2F must uphold invariant (2)");
        assert_eq!(report.races, 0, "no store or state-table races");
        assert!(report.flush_rows > 0);
    }

    #[test]
    fn single_gpu_run_works() {
        let t = trace(100, 16, 1);
        let model = PullToTarget::new(4, 3);
        let engine = FrugalEngine::new(small_cfg(1, 10), 100, 4);
        let report = engine.run(&t, &model);
        assert_eq!(report.stats.len(), 10);
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn cache_gets_hits_on_skewed_keys() {
        let t = trace(1_000, 128, 2);
        let model = PullToTarget::new(4, 4);
        let mut cfg = small_cfg(2, 20);
        cfg.cache_ratio = 0.10;
        let engine = FrugalEngine::new(cfg, 1_000, 4);
        let report = engine.run(&t, &model);
        assert!(
            report.hit_ratio > 0.05,
            "expected hot-key hits, got {}",
            report.hit_ratio
        );
    }

    #[test]
    fn parked_flushers_still_drain() {
        // A throttled, tiny run leaves flushers mostly idle: they must park
        // (parked_ns grows) yet still drain every deferred update by the
        // time `run` returns (the engine debug-asserts pending_keys == 0).
        let t = trace(120, 16, 2);
        let model = PullToTarget::new(4, 6);
        let telemetry = frugal_telemetry::Telemetry::new();
        let mut cfg = small_cfg(2, 8).with_telemetry(telemetry.clone());
        cfg.flush_throttle_us = 50;
        let engine = FrugalEngine::new(cfg, 120, 4);
        let report = engine.run(&t, &model);
        assert_eq!(report.stats.len(), 8);
        let summary = report.telemetry.expect("telemetry on");
        let parked = summary
            .metrics
            .counters
            .iter()
            .find(|(name, _)| name == "flusher.parked_ns")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(parked > 0, "idle flushers should park, not spin");
        // And the run's parameters still match the serial oracle.
        let cfg2 = small_cfg(2, 8);
        let serial =
            crate::serial::train_serial_with(&t, &model, 8, cfg2.lr, cfg2.seed, cfg2.optimizer);
        for key in 0..120 {
            assert_eq!(engine.store().row_vec(key), serial.store.row_vec(key));
        }
    }

    #[test]
    fn windowed_per_row_tracks_recent_steps() {
        let mut win = FlushWindow::default();
        // Step 1: 100 rows at 10ns dequeue / 20ns apply each.
        let (d, a) = windowed_per_row(&mut win, 1_000, 2_000, 100);
        assert_eq!((d, a), (10.0, 20.0));
        // Step 2: 10 more rows, but each cost 1000/2000ns — the windowed
        // estimate must reflect the *recent* cost, not the lifetime mean
        // (which would be ~101ns dequeue).
        let (d, a) = windowed_per_row(&mut win, 11_000, 22_000, 110);
        assert_eq!((d, a), (1_000.0, 2_000.0));
        // Step 3: no rows flushed — fall back to the lifetime average.
        let (d, a) = windowed_per_row(&mut win, 11_000, 22_000, 110);
        assert_eq!((d, a), (100.0, 200.0));
        // Step 4: fresh rows resume windowing from the stored totals.
        let (d, a) = windowed_per_row(&mut win, 11_550, 22_550, 120);
        assert_eq!((d, a), (55.0, 55.0));
    }

    #[test]
    fn windowed_per_row_empty_run_is_zero() {
        let mut win = FlushWindow::default();
        assert_eq!(windowed_per_row(&mut win, 0, 0, 0), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "GPU count mismatch")]
    fn rejects_mismatched_gpu_count() {
        let t = trace(100, 16, 4);
        let model = PullToTarget::new(4, 3);
        let engine = FrugalEngine::new(small_cfg(2, 10), 100, 4);
        let _ = engine.run(&t, &model);
    }
}
