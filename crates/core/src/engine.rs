//! The Frugal training engine (paper §3).
//!
//! One OS thread per simulated GPU ("training process"), a pool of flushing
//! threads, and the P²F protocol between them:
//!
//! * **Forward** — each trainer resolves its batch keys against its local
//!   cache (owned, hot keys) and reads everything else from the host store
//!   with UVA-style zero-copy reads, which are safe because the wait
//!   condition guarantees no key read at step `s` has unflushed updates.
//! * **Backward** — per-GPU gradients are aggregated per key in canonical
//!   order at a step barrier; the barrier leader registers them as g-entry
//!   writes (`add_write`, adjusting PQ priorities — "on the critical path",
//!   Exp #4a measures exactly this), registers the reads of step `s + L`
//!   (the sample-queue prefetch), and routes each key's aggregated update to
//!   its owner GPU so the owner keeps its cached copy current.
//! * **Flushing threads** — dequeue the highest-priority g-entries and apply
//!   their pending updates to the host store in step order.
//! * **Wait condition** — a trainer may start step `s` only when
//!   `PQ.top() > s` (strictly), the exact condition of §3.3, which this
//!   module measures as the training stall.
//!
//! The same engine runs the **Frugal-Sync** baseline (write-through): the
//! leader applies every update to host memory synchronously at the barrier,
//! and the time it takes is the stall.

use crate::config::{FlushMode, FrugalConfig, PqKind};
use crate::gentry::GEntryStore;
use crate::model::EmbeddingModel;
use crate::report::TrainReport;
use crate::wait::{self, InflightTable};
use crate::workload::Workload;
use frugal_data::Key;
use frugal_embed::{GpuCache, GradAggregator, HostStore, Sharding};
use frugal_pq::{PriorityQueue, TreeHeap, TwoLevelPq};
use frugal_sim::{HostPath, IterBreakdown, Nanos, RunStats};
use frugal_telemetry::{Counter, Gauge, Phase, Registry, SpanArgs, StallRecord, ThreadRecorder};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use std::time::Instant;

/// Registry-backed run counters.
///
/// The engine's *logic* depends on several of these — the cache hit ratio
/// and the measured flusher rates that feed [`virtual_stall`] — so they
/// always live on a metric registry: the run's telemetry registry when
/// telemetry is on, a private one otherwise. Either way each is the same
/// atomic the engine used to hold inline, now visible by name
/// (`cache.hits`, `flusher.dequeue_total_ns`, …) in telemetry snapshots.
#[derive(Debug)]
struct RunMetrics {
    /// Counter `p2f.violations`: consistency-invariant violations seen on
    /// host reads (checked mode).
    violations: Arc<Counter>,
    /// Counter `cache.hits`: unique keys served by a GPU cache.
    hits: Arc<Counter>,
    /// Counter `cache.misses`: unique keys read from host DRAM.
    misses: Arc<Counter>,
    /// Counters `flusher.dequeue_total_ns` / `flusher.apply_total_ns` /
    /// `flush.rows`: measured flusher costs, split into the PQ-dequeue
    /// part (which serializes on a tree heap) and the host-apply part.
    flush_dequeue_ns: Arc<Counter>,
    flush_apply_ns: Arc<Counter>,
    flush_rows: Arc<Counter>,
    /// Gauge `p2f.blocking_rows`: keys of the *next* step that still have
    /// pending writes right after this step's registration — the rows
    /// whose flush gates the next wait condition.
    blocking_rows_next: Arc<Gauge>,
}

impl RunMetrics {
    fn new(registry: &Registry) -> Self {
        RunMetrics {
            violations: registry.counter("p2f.violations"),
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            flush_dequeue_ns: registry.counter("flusher.dequeue_total_ns"),
            flush_apply_ns: registry.counter("flusher.apply_total_ns"),
            flush_rows: registry.counter("flush.rows"),
            blocking_rows_next: registry.gauge("p2f.blocking_rows"),
        }
    }
}

/// Per-trainer, per-step instrumentation deposited at the barrier.
#[derive(Debug, Clone, Default)]
struct PhaseTimes {
    comm: Nanos,
    host_dram: Nanos,
    cache: Nanos,
    other: Nanos,
    loss: f32,
}

/// Rows the leader routed to one GPU's cache: `(key, aggregated row)`.
type CacheUpdates = Vec<(Key, Arc<[f32]>)>;

/// Shared state between trainers, the leader, and flushers for one run.
struct RunShared<'a> {
    cfg: &'a FrugalConfig,
    /// Sparse optimizer shared by the flushing threads (host path).
    rule: std::sync::Arc<dyn frugal_embed::UpdateRule>,
    /// Optimizer for the write-through leader (single-threaded per step,
    /// but the leading thread can change between steps).
    sync_opt: Mutex<Box<dyn frugal_tensor::RowOptimizer>>,
    workload: &'a dyn Workload,
    model: &'a dyn EmbeddingModel,
    store: &'a HostStore,
    gstore: GEntryStore,
    pq: Box<dyn PriorityQueue>,
    sharding: Sharding,
    /// Per-GPU aggregated gradients deposited before barrier 1.
    agg_slots: Vec<Mutex<Option<GradAggregator>>>,
    /// Per-GPU cache-update lists filled by the leader.
    cache_updates: Vec<Mutex<CacheUpdates>>,
    /// Per-GPU phase instrumentation for the current step.
    phase_slots: Vec<Mutex<PhaseTimes>>,
    /// Leader-composed per-iteration records.
    iters: Mutex<Vec<(IterBreakdown, f32)>>,
    gentry_times: Mutex<Vec<Nanos>>,
    /// Trainer-wait condvar, notified by flushers after applying updates.
    flush_mutex: Mutex<()>,
    flush_cv: Condvar,
    shutdown: AtomicBool,
    /// Named run counters (see [`RunMetrics`]).
    metrics: RunMetrics,
    /// Per-flusher in-flight markers checked by the wait condition (see
    /// [`InflightTable`]): dequeuing removes an entry from the queue before
    /// its row write completes, so the queue's `top_priority` alone cannot
    /// cover it.
    inflight: InflightTable,
}

/// The Frugal / Frugal-Sync training engine.
///
/// # Examples
///
/// ```
/// use frugal_core::{FrugalConfig, FrugalEngine, PullToTarget, Workload};
/// use frugal_data::{KeyDistribution, SyntheticTrace};
///
/// let trace = SyntheticTrace::new(1_000, KeyDistribution::Zipf(0.9), 32, 2, 1)?;
/// let mut cfg = FrugalConfig::commodity(2, 20);
/// cfg.flush_threads = 2;
/// let model = PullToTarget::new(8, 7);
/// let engine = FrugalEngine::new(cfg, trace.n_keys(), 8);
/// let report = engine.run(&trace, &model);
/// assert!(report.final_loss < report.first_loss);
/// # Ok::<(), frugal_data::DistError>(())
/// ```
#[derive(Debug)]
pub struct FrugalEngine {
    cfg: FrugalConfig,
    store: Arc<HostStore>,
}

impl FrugalEngine {
    /// Creates an engine with a fresh host store of `n_keys × dim`.
    pub fn new(cfg: FrugalConfig, n_keys: u64, dim: usize) -> Self {
        let mut store = if cfg.checked {
            HostStore::new_checked(n_keys, dim, cfg.seed)
        } else {
            HostStore::new(n_keys, dim, cfg.seed)
        };
        store.attach_telemetry(&cfg.telemetry);
        FrugalEngine {
            cfg,
            store: Arc::new(store),
        }
    }

    /// The host parameter store (inspect after [`FrugalEngine::run`]).
    pub fn store(&self) -> &HostStore {
        &self.store
    }

    /// The engine configuration.
    pub fn config(&self) -> &FrugalConfig {
        &self.cfg
    }

    /// Trains `workload` with `model` and returns the run report.
    ///
    /// # Panics
    ///
    /// Panics if the workload GPU count differs from the configured
    /// topology, if the model dimension differs from the store, or if P²F
    /// mode is configured with zero flushing threads.
    pub fn run(&self, workload: &dyn Workload, model: &dyn EmbeddingModel) -> TrainReport {
        let cfg = &self.cfg;
        let n = cfg.n_gpus();
        assert_eq!(workload.n_gpus(), n, "workload/topology GPU count mismatch");
        assert_eq!(model.dim(), self.store.dim(), "model/store dim mismatch");
        if cfg.flush_mode == FlushMode::P2f {
            assert!(cfg.flush_threads >= 1, "P2F needs at least one flusher");
        }

        let max_priority = cfg.steps + cfg.lookahead + 2;
        let mut pq: Box<dyn PriorityQueue> = match cfg.pq {
            PqKind::TwoLevel => Box::new(TwoLevelPq::new(max_priority)),
            PqKind::TreeHeap => Box::new(TreeHeap::new()),
        };
        pq.attach_telemetry(&cfg.telemetry);
        // Run counters live on the telemetry registry when one is attached,
        // on a private registry otherwise (the engine's own logic reads them
        // either way).
        let registry = cfg
            .telemetry
            .registry()
            .unwrap_or_else(|| Arc::new(Registry::new()));

        let shared = RunShared {
            cfg,
            rule: cfg.optimizer.build_shared(cfg.lr),
            sync_opt: Mutex::new(cfg.optimizer.build_local(cfg.lr)),
            workload,
            model,
            store: &self.store,
            gstore: GEntryStore::new(),
            pq,
            sharding: Sharding::new(n),
            agg_slots: (0..n).map(|_| Mutex::new(None)).collect(),
            cache_updates: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            phase_slots: (0..n).map(|_| Mutex::new(PhaseTimes::default())).collect(),
            iters: Mutex::new(Vec::with_capacity(cfg.steps as usize)),
            gentry_times: Mutex::new(Vec::with_capacity(cfg.steps as usize)),
            flush_mutex: Mutex::new(()),
            flush_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: RunMetrics::new(&registry),
            inflight: InflightTable::new(cfg.flush_threads),
        };

        // Initial sample-queue prefetch: reads of steps 0..L (paper §3.2).
        if cfg.flush_mode == FlushMode::P2f {
            for s in 0..cfg.lookahead.min(cfg.steps) {
                register_reads(&shared, s);
            }
            shared.pq.set_upper_bound(cfg.lookahead + 1);
        }

        let barrier = Barrier::new(n);

        std::thread::scope(|scope| {
            let mut flushers = Vec::new();
            if cfg.flush_mode == FlushMode::P2f {
                for i in 0..cfg.flush_threads {
                    let shared = &shared;
                    flushers.push(scope.spawn(move || flusher_loop(shared, i)));
                }
            }
            let trainers: Vec<_> = (0..n)
                .map(|g| {
                    let barrier = &barrier;
                    let shared = &shared;
                    scope.spawn(move || trainer_loop(shared, barrier, g))
                })
                .collect();
            for t in trainers {
                t.join().expect("trainer panicked");
            }
            // Drain: wait for all deferred updates to reach host memory.
            shared.shutdown.store(true, Ordering::Release);
            for f in flushers {
                f.join().expect("flusher panicked");
            }
            debug_assert_eq!(shared.gstore.pending_keys(), 0);
        });

        // Compose the report.
        let iters = shared.iters.into_inner();
        let mut stats = RunStats::new(workload.samples_per_step());
        let mut first_loss = 0.0;
        let mut final_loss = 0.0;
        for (i, (it, loss)) in iters.iter().enumerate() {
            stats.push(*it);
            if i == 0 {
                first_loss = *loss;
            }
            final_loss = *loss;
        }
        let gentry_times = shared.gentry_times.into_inner();
        let mean_gentry = if gentry_times.is_empty() {
            Nanos::ZERO
        } else {
            gentry_times.iter().copied().sum::<Nanos>() / gentry_times.len() as u64
        };
        let hits = shared.metrics.hits.get();
        let misses = shared.metrics.misses.get();
        let hit_ratio = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        TrainReport {
            stats,
            hit_ratio,
            mean_gentry_update: mean_gentry,
            violations: shared.metrics.violations.get() as usize,
            races: self.store.race_count(),
            first_loss,
            final_loss,
            telemetry: cfg.telemetry.summary(),
        }
    }
}

/// Registers the reads of step `s` for all GPUs (the sample queue).
fn register_reads(shared: &RunShared<'_>, s: u64) {
    if s >= shared.cfg.steps {
        return;
    }
    let mut seen = std::collections::HashSet::new();
    for g in 0..shared.workload.n_gpus() {
        for key in shared.workload.keys(s, g) {
            if seen.insert(key) {
                shared.gstore.add_read(key, s, shared.pq.as_ref());
            }
        }
    }
}

/// One background flushing thread (paper §3.2, component 4).
fn flusher_loop(shared: &RunShared<'_>, slot: usize) {
    let rec = shared.cfg.telemetry.recorder(format!("flusher-{slot}"));
    let mut out = Vec::with_capacity(shared.cfg.flush_batch);
    loop {
        out.clear();
        let t_deq = Instant::now();
        // Guarded dequeue: the in-flight marker is published *before* each
        // entry leaves the queue, so there is no instant at which a pending
        // flush is visible to neither `top_priority` nor the marker scan.
        // (Publishing after `dequeue_batch` returned — the engine's old
        // order — left exactly that window; the schedule explorer found a
        // trainer slipping through it. See DESIGN.md §8 race 3.)
        shared.pq.dequeue_batch_guarded(
            shared.cfg.flush_batch,
            &mut out,
            shared.inflight.guard(slot),
        );
        if out.is_empty() {
            if shared.shutdown.load(Ordering::Acquire) && shared.gstore.pending_keys() == 0 {
                return;
            }
            std::thread::yield_now();
            continue;
        }
        // Only non-empty dequeues are recorded: thousands of idle polls
        // would swamp both the histogram and the trace ring.
        shared
            .metrics
            .flush_dequeue_ns
            .add(t_deq.elapsed().as_nanos() as u64);
        rec.record_completed(
            Phase::FlushDequeue,
            t_deq,
            SpanArgs::one("batch", out.len() as u64),
        );
        let t_apply = Instant::now();
        let mut applied = 0u64;
        for &(key, bucket_p) in &out {
            if let Some(writes) = shared.gstore.take_writes(key, bucket_p) {
                shared.store.write_row(key, |row| {
                    for (_step, grad) in &writes {
                        shared.rule.apply(key, row, grad);
                    }
                });
                applied += 1;
            }
        }
        if applied > 0 {
            shared
                .metrics
                .flush_apply_ns
                .add(t_apply.elapsed().as_nanos() as u64);
            shared.metrics.flush_rows.add(applied);
            rec.record_completed(Phase::FlushApply, t_apply, SpanArgs::one("rows", applied));
            // Wake trainers blocked on the wait condition.
            shared.flush_cv.notify_all();
        }
        shared.inflight.clear(slot);
        if applied > 0 {
            // Rows are now durably in host memory; wake waiters again in
            // case they blocked on the in-flight marker.
            shared.flush_cv.notify_all();
        }
        if shared.cfg.flush_throttle_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(
                shared.cfg.flush_throttle_us,
            ));
        }
    }
}

/// One training process (paper §3.2): the per-GPU loop.
fn trainer_loop(shared: &RunShared<'_>, barrier: &Barrier, g: usize) {
    let cfg = shared.cfg;
    let rec = cfg.telemetry.recorder(format!("trainer-{g}"));
    let dim = shared.model.dim();
    let n = cfg.n_gpus();
    let n_keys = shared.workload.n_keys();
    let cap = shared.sharding.cache_capacity(n_keys, cfg.cache_ratio);
    let mut cache = GpuCache::new(cap, dim, cfg.cache_policy);
    cache.set_hot_threshold(shared.sharding.hot_threshold(n_keys, cfg.cache_ratio));
    // Cache copies evolve with their own optimizer state: they see exactly
    // the same per-key gradient sequence as the host path, so both states
    // (and both values) stay bit-identical.
    let mut cache_opt = cfg.optimizer.build_local(cfg.lr);
    let mut hits = 0u64;
    let mut misses = 0u64;
    let batch_per_gpu = shared.workload.samples_per_step() / n as u64;

    for s in 0..cfg.steps {
        // Apply the previous step's aggregated updates to owned cached rows
        // so the cache always holds the exact synchronous value.
        {
            let updates = std::mem::take(&mut *shared.cache_updates[g].lock());
            for (key, grad) in updates {
                if let Some(row) = cache.get_mut(&key) {
                    cache_opt.update_row(key, row, &grad);
                }
            }
        }

        // P²F wait condition: start step s only when PQ.top() > s (§3.3).
        // The physical wait enforces consistency; the *reported* stall is
        // modeled by `virtual_stall` (see its docs for why).
        if cfg.flush_mode == FlushMode::P2f && !cfg.skip_wait {
            let blocked =
                |shared: &RunShared<'_>| wait::blocked(shared.pq.as_ref(), &shared.inflight, s);
            if blocked(shared) {
                // Stall attribution: what is this wait blocked *on*? The
                // priority (deadline step) at the queue's top and the
                // outstanding flush backlog at wait entry.
                let top = shared.pq.top_priority();
                let pending = shared.gstore.pending_keys() as u64;
                let span = rec.span_with(
                    Phase::P2fWait,
                    SpanArgs::two("blocking_priority", top, "pending_keys", pending),
                );
                while blocked(shared) {
                    let mut guard = shared.flush_mutex.lock();
                    if !blocked(shared) {
                        break;
                    }
                    shared
                        .flush_cv
                        .wait_for(&mut guard, std::time::Duration::from_micros(50));
                }
                let wait_ns = span.finish();
                if wait_ns > 0 {
                    cfg.telemetry.record_stall(StallRecord {
                        step: s,
                        wait_ns,
                        blocking_priority: top,
                        pending_keys: pending,
                    });
                }
            }
        }

        // Sample: draw this iteration's keys from the workload.
        let keys = {
            let _span = rec.span(Phase::Sample);
            shared.workload.keys(s, g)
        };

        // Forward pass 1 — cache query: dedup the batch and resolve unique
        // keys against the local cache, collecting the ones every cache
        // missed.
        let cq_span = rec.span(Phase::CacheQuery);
        let mut unique: Vec<Key> = Vec::with_capacity(keys.len());
        let mut index_of: HashMap<Key, usize> = HashMap::with_capacity(keys.len());
        for &key in &keys {
            index_of.entry(key).or_insert_with(|| {
                unique.push(key);
                unique.len() - 1
            });
        }
        let mut urows = vec![0.0f32; unique.len() * dim];
        let mut missing: Vec<(usize, Key)> = Vec::new();
        for (i, &key) in unique.iter().enumerate() {
            let slot = &mut urows[i * dim..(i + 1) * dim];
            if shared.sharding.is_local(key, g) {
                if let Some(row) = cache.get(&key) {
                    slot.copy_from_slice(row);
                    hits += 1;
                    continue;
                }
            }
            missing.push((i, key));
        }
        drop(cq_span);

        // Forward pass 2 — host reads (UVA zero-copy) for the cache misses.
        // Safe to split from pass 1: keys are unique within a step, so a
        // row admitted here can never be queried again before the barrier.
        let host_reads = missing.len() as u64;
        let mut fills = 0u64;
        let hr_span = rec.span_with(Phase::HostRead, SpanArgs::one("rows", host_reads));
        for &(i, key) in &missing {
            let slot = &mut urows[i * dim..(i + 1) * dim];
            // Verify the consistency invariant first when checking is on.
            if cfg.checked && !shared.gstore.invariant_holds(key, s) {
                shared.metrics.violations.incr();
            }
            shared.store.read_row(key, slot);
            misses += 1;
            if shared.sharding.is_local(key, g) && cache.admits(key) {
                cache.insert(key, slot.to_vec());
                // Synchronize the cache-side optimizer with the host path's
                // per-row state (safe: P2F guarantees this key has no
                // in-flight updates while it is being read).
                if let Some(state) = shared.rule.state_snapshot(key) {
                    cache_opt.seed_state(key, state);
                }
                fills += 1;
            }
        }
        drop(hr_span);

        // Scatter unique rows to per-instance rows for the model.
        let mut rows = vec![0.0f32; keys.len() * dim];
        for (i, &key) in keys.iter().enumerate() {
            let u = index_of[&key];
            rows[i * dim..(i + 1) * dim].copy_from_slice(&urows[u * dim..(u + 1) * dim]);
        }

        let compute_span = rec.span(Phase::Compute);
        let grads = shared.model.forward_backward(g, s, &keys, &rows);

        // Aggregate this GPU's gradients per key in arrival order.
        let mut agg = GradAggregator::new(dim);
        for (i, &key) in keys.iter().enumerate() {
            agg.add(key, &grads.emb_grads[i * dim..(i + 1) * dim]);
        }
        drop(compute_span);

        // Modeled hardware times for this iteration.
        let cost = &cfg.cost;
        let row_bytes = (dim * 4) as u64;
        let phase = PhaseTimes {
            comm: if shared.model.dense_param_bytes() > 0 {
                cost.all_to_all(shared.model.dense_param_bytes())
            } else {
                Nanos::ZERO
            },
            host_dram: cost.host_read(HostPath::Uva, host_reads, row_bytes, n),
            cache: cost.cache_query(unique.len() as u64) + cost.cache_update(fills),
            other: cost.dnn_time(
                shared.model.dense_flops_per_sample() * batch_per_gpu as f64,
                shared.model.dense_layers().max(1),
            ),
            loss: grads.loss,
        };
        // The non-critical-path flush writes are *not* charged — that is
        // precisely Frugal's point. Frugal-Sync charges them below as stall.
        *shared.agg_slots[g].lock() = Some(agg);
        *shared.phase_slots[g].lock() = phase.clone();

        if barrier.wait().is_leader() {
            leader_step(shared, &rec, s);
        }
        barrier.wait();
    }

    shared.metrics.hits.add(hits);
    shared.metrics.misses.add(misses);
}

/// The barrier leader's per-step work: aggregation across GPUs, g-entry
/// registration (the paper's controller duties), and bookkeeping.
/// `rec` is the leading trainer's recorder (the leader can change between
/// steps, so g-entry spans land on whichever thread led the step).
fn leader_step(shared: &RunShared<'_>, rec: &ThreadRecorder, s: u64) {
    let cfg = shared.cfg;
    let n = cfg.n_gpus();
    let dim = shared.model.dim();

    // Merge per-GPU aggregates in GPU index order (canonical).
    let mut merged = GradAggregator::new(dim);
    for slot in &shared.agg_slots {
        let agg = slot.lock().take().expect("trainer deposited aggregate");
        merged.merge(agg);
    }
    shared.model.end_step(s);

    // Sample queue: prefetch the reads of step s + L.
    register_reads(shared, s + cfg.lookahead);

    // Route aggregated updates to owner caches and register them for
    // flushing (P²F) or apply them write-through (Frugal-Sync).
    let updates = merged.into_arrival_order();
    let n_rows = updates.len() as u64;
    let mut owner_lists: Vec<Vec<(Key, Arc<[f32]>)>> = (0..n).map(|_| Vec::new()).collect();
    let t0 = Instant::now();
    let mut sync_stall = Nanos::ZERO;
    match cfg.flush_mode {
        FlushMode::P2f => {
            for (key, grad) in updates {
                let grad: Arc<[f32]> = grad.into();
                owner_lists[shared.sharding.owner(key)].push((key, Arc::clone(&grad)));
                shared.gstore.add_write(key, s, grad, shared.pq.as_ref());
            }
            shared.pq.set_upper_bound(s + 1 + cfg.lookahead);
            // New low-priority entries may unblock flushers' scan ranges.
            shared.flush_cv.notify_all();
        }
        FlushMode::WriteThrough => {
            let mut opt = shared.sync_opt.lock();
            for (key, grad) in updates {
                shared.store.write_row(key, |row| {
                    opt.update_row(key, row, &grad);
                });
                owner_lists[shared.sharding.owner(key)].push((key, grad.into()));
            }
            // The write-through flush the paper describes: every update
            // crosses PCIe to host memory synchronously, with no background
            // overlap — the "long stall" of §3.1 (the real apply above runs
            // at host-memcpy speed and is not representative).
            sync_stall = cfg.cost.sync_flush(n_rows, n);
        }
    }
    if cfg.flush_mode == FlushMode::P2f {
        rec.record_completed(Phase::GEntryUpdate, t0, SpanArgs::one("rows", n_rows));
    }
    // Convert the measured registration time to reference-machine terms:
    // divide by how much slower this host runs the canonical registration
    // probe than the reference controller (see `calibrate`). Relative
    // effects — tree heap vs two-level PQ, gradient widths, batch sizes —
    // are already inside the measurement and survive intact.
    let slowdown = crate::calibrate::host_slowdown(cfg.cost.gentry_op_reference_ns(128));
    let gentry_time = match cfg.flush_mode {
        FlushMode::P2f => Nanos::from(t0.elapsed()) * (1.0 / slowdown),
        // Write-through has no g-entries; its flush cost is the stall.
        FlushMode::WriteThrough => Nanos::ZERO,
    };
    shared.gentry_times.lock().push(gentry_time);
    for (g, list) in owner_lists.into_iter().enumerate() {
        shared.cache_updates[g].lock().extend(list);
    }

    // Compose the iteration record: per-phase max across GPUs (phases run
    // in parallel), plus the leader's critical-path work.
    let mut it = IterBreakdown::default();
    let mut loss_sum = 0.0f32;
    for slot in &shared.phase_slots {
        let p = slot.lock();
        it.comm = it.comm.max(p.comm);
        it.host_dram = it.host_dram.max(p.host_dram);
        it.cache = it.cache.max(p.cache);
        it.other = it.other.max(p.other);
        loss_sum += p.loss;
    }
    // The controller/flushers contend with trainers for CPU cores: charge
    // an oversubscription factor on the leader's software time (the Fig 17
    // "too many flushing threads divert CPU" effect).
    let cores = cfg.cost.topology().host().cpu_cores.max(1);
    let oversub = ((n + cfg.flush_threads + 2) as f64 / cores as f64).max(1.0);
    it.other += gentry_time * oversub + cfg.cost.framework_frugal();
    let hw_time = it.comm + it.host_dram + it.cache + it.other;
    it.stall = match cfg.flush_mode {
        FlushMode::WriteThrough => sync_stall,
        FlushMode::P2f => virtual_stall(shared, s),
    };
    let _ = hw_time;
    // Rows whose flush gates the next step's wait condition: keys of step
    // s+1 that still have pending writes after this step's registration.
    if cfg.flush_mode == FlushMode::P2f {
        let mut blocked = 0u64;
        if s + 1 < cfg.steps {
            let mut seen = std::collections::HashSet::new();
            for g in 0..n {
                for key in shared.workload.keys(s + 1, g) {
                    if seen.insert(key) && shared.gstore.has_pending_writes(key) {
                        blocked += 1;
                    }
                }
            }
        }
        shared.metrics.blocking_rows_next.set(blocked as i64);
    }
    shared.iters.lock().push((it, loss_sum / n as f32));
}

/// Models the P²F stall at step `s`'s wait condition as real hardware would
/// see it: the flushing threads must push the `blocking_rows` updates —
/// parameters written in the previous step and read again now (paper Fig 6,
/// the k2 case) — to host memory before training may proceed. Deferred
/// (∞-priority) updates do not stall unless an upcoming read reactivates
/// them, which the blocking count includes.
///
/// Per-row costs come from *measured* flusher behaviour (so the PQ
/// implementation's efficiency — O(1) two-level vs O(log N) serialized tree
/// heap — flows straight into the stall), divided across flushing threads
/// according to whether dequeues serialize.
///
/// The trainers still *physically* block on `PQ.top() > s` for correctness;
/// only the reported time is modeled, because a single-core host cannot
/// exhibit the overlap a multi-core controller provides.
fn virtual_stall(shared: &RunShared<'_>, s: u64) -> Nanos {
    if s == 0 {
        return Nanos::ZERO;
    }
    let cfg = shared.cfg;
    let blocking = shared.metrics.blocking_rows_next.get().max(0) as u64;
    if blocking == 0 {
        return Nanos::ZERO;
    }
    let rows = shared.metrics.flush_rows.get().max(1);
    // Measured per-row flusher costs, normalized to reference-machine terms
    // like the g-entry registration time (same calibration ratio).
    let slowdown = crate::calibrate::host_slowdown(cfg.cost.gentry_op_reference_ns(128));
    let deq_ns = (shared.metrics.flush_dequeue_ns.get() as f64 / rows as f64 / slowdown) as u64;
    let apply_ns = (shared.metrics.flush_apply_ns.get() as f64 / rows as f64 / slowdown) as u64;
    let cores = cfg.cost.topology().host().cpu_cores.max(1);
    let n = cfg.n_gpus();
    let threads = cfg.flush_threads.min(cores.saturating_sub(n + 1).max(1)) as u64;
    let per_row_ns = if shared.pq.dequeue_serializes() {
        // Dequeues funnel through one lock: they do not parallelize.
        deq_ns + apply_ns / threads
    } else {
        (deq_ns + apply_ns) / threads
    };
    Nanos::from_nanos(blocking * per_row_ns.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PullToTarget;
    use frugal_data::{KeyDistribution, SyntheticTrace};

    fn small_cfg(n_gpus: usize, steps: u64) -> FrugalConfig {
        let mut cfg = FrugalConfig::commodity(n_gpus, steps);
        cfg.flush_threads = 2;
        cfg.lookahead = 4;
        // Mean-normalized gradients: a higher rate keeps the convergence
        // tests fast while staying stable (lr * occurrences/batch < 2).
        cfg.lr = 2.0;
        cfg
    }

    fn trace(n_keys: u64, batch: usize, n_gpus: usize) -> SyntheticTrace {
        SyntheticTrace::new(n_keys, KeyDistribution::Zipf(0.9), batch, n_gpus, 3).unwrap()
    }

    #[test]
    fn frugal_trains_and_reduces_loss() {
        let t = trace(500, 64, 2);
        let model = PullToTarget::new(8, 1);
        let engine = FrugalEngine::new(small_cfg(2, 30), 500, 8);
        let report = engine.run(&t, &model);
        assert_eq!(report.stats.len(), 30);
        assert!(
            report.final_loss < report.first_loss * 0.7,
            "loss {} -> {}",
            report.first_loss,
            report.final_loss
        );
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn checked_run_has_no_violations_or_races() {
        let t = trace(300, 48, 2);
        let model = PullToTarget::new(4, 2);
        let engine = FrugalEngine::new(small_cfg(2, 25).checked(), 300, 4);
        let report = engine.run(&t, &model);
        assert_eq!(report.violations, 0, "P2F must uphold invariant (2)");
        assert_eq!(report.races, 0, "P2F must prevent host-row races");
    }

    #[test]
    fn write_through_matches_p2f_parameters() {
        // Synchronous consistency: both flushing strategies must produce
        // bit-identical parameters.
        let t = trace(200, 32, 2);
        let model = PullToTarget::new(4, 5);
        let p2f = FrugalEngine::new(small_cfg(2, 20), 200, 4);
        p2f.run(&t, &model);
        let sync = FrugalEngine::new(small_cfg(2, 20).write_through(), 200, 4);
        sync.run(&t, &model);
        for key in 0..200 {
            assert_eq!(
                p2f.store().row_vec(key),
                sync.store().row_vec(key),
                "key {key} diverged"
            );
        }
    }

    #[test]
    fn treeheap_pq_produces_same_parameters() {
        let t = trace(150, 16, 2);
        let model = PullToTarget::new(4, 9);
        let two = FrugalEngine::new(small_cfg(2, 15), 150, 4);
        two.run(&t, &model);
        let mut cfg = small_cfg(2, 15);
        cfg.pq = PqKind::TreeHeap;
        let heap = FrugalEngine::new(cfg, 150, 4);
        heap.run(&t, &model);
        for key in 0..150 {
            assert_eq!(two.store().row_vec(key), heap.store().row_vec(key));
        }
    }

    #[test]
    fn single_gpu_run_works() {
        let t = trace(100, 16, 1);
        let model = PullToTarget::new(4, 3);
        let engine = FrugalEngine::new(small_cfg(1, 10), 100, 4);
        let report = engine.run(&t, &model);
        assert_eq!(report.stats.len(), 10);
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn cache_gets_hits_on_skewed_keys() {
        let t = trace(1_000, 128, 2);
        let model = PullToTarget::new(4, 4);
        let mut cfg = small_cfg(2, 20);
        cfg.cache_ratio = 0.10;
        let engine = FrugalEngine::new(cfg, 1_000, 4);
        let report = engine.run(&t, &model);
        assert!(
            report.hit_ratio > 0.05,
            "expected hot-key hits, got {}",
            report.hit_ratio
        );
    }

    #[test]
    #[should_panic(expected = "GPU count mismatch")]
    fn rejects_mismatched_gpu_count() {
        let t = trace(100, 16, 4);
        let model = PullToTarget::new(4, 3);
        let engine = FrugalEngine::new(small_cfg(2, 10), 100, 4);
        let _ = engine.run(&t, &model);
    }
}
