//! A spin-then-yield step barrier.
//!
//! The three-barrier step protocol crosses a barrier three times per step,
//! so at 8–16 trainers the barrier itself is hot-path state. The ledger's
//! phase attribution at 8 trainers put `std::sync::Barrier` — a
//! mutex + condvar pair — at the top of the BarrierA lane: every crossing
//! serializes all trainers through one futex, and the wake-up convoy
//! (kernel wakes waiters one by one, each re-acquiring the mutex) grows
//! linearly with the trainer count.
//!
//! [`SpinBarrier`] replaces it with two atomics and no locks: arrivals
//! `fetch_add` a counter; the last arriver resets the counter and bumps a
//! generation word, releasing the whole cohort with a single store that
//! every spinner observes in parallel. Trainers wait out the short
//! inter-arrival gap with `spin_loop` hints, falling back to
//! `yield_now` so oversubscribed hosts (more trainers than cores — the CI
//! runner, or 16 trainers on an 8-core commodity box) never burn a full
//! scheduling quantum spinning against a preempted straggler.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// How many `spin_loop` iterations to wait before conceding the core.
/// Long enough to cover the same-quantum arrival spread of a healthy
/// cohort, short enough that a preempted straggler costs yields, not ms.
const SPIN_BUDGET: u32 = 64;

/// Result of one barrier crossing; mirrors `std::sync::BarrierWaitResult`
/// so call sites read identically.
pub struct WaitOutcome {
    leader: bool,
}

impl WaitOutcome {
    /// True for exactly one thread per crossing — the step leader that
    /// merges aggregates / composes phases / runs bookkeeping.
    pub fn is_leader(&self) -> bool {
        self.leader
    }
}

/// A reusable lock-free barrier for `n` threads (see module docs).
#[derive(Debug)]
pub struct SpinBarrier {
    /// Threads that have arrived at the current crossing.
    arrived: AtomicUsize,
    /// Completed crossings. Bumped by the releasing thread; spinners wait
    /// for it to move past the value they read on arrival.
    generation: AtomicU64,
    n: usize,
}

impl SpinBarrier {
    /// A barrier releasing cohorts of `n` threads (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one thread");
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            n,
        }
    }

    /// Blocks until all `n` threads have called `wait`; the last arriver
    /// is the leader and releases the cohort.
    pub fn wait(&self) -> WaitOutcome {
        // The generation read must precede the arrival increment: once we
        // are counted, the leader may release (and start the next
        // crossing) at any moment, and we must be comparing against the
        // generation of *our* crossing, not the next one.
        let gen = self.generation.load(Ordering::Acquire);
        let prior = self.arrived.fetch_add(1, Ordering::AcqRel);
        if prior + 1 == self.n {
            // Last arriver: reset for the next crossing, then release.
            // The reset must happen before the generation store — the
            // Release/Acquire pair on `generation` is what makes the
            // reset visible to the cohort before anyone re-arrives.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.store(gen + 1, Ordering::Release);
            return WaitOutcome { leader: true };
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            if spins < SPIN_BUDGET {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        WaitOutcome { leader: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_thread_is_always_leader() {
        let b = SpinBarrier::new(1);
        for _ in 0..3 {
            assert!(b.wait().is_leader());
        }
    }

    #[test]
    fn exactly_one_leader_per_crossing() {
        let n = 8;
        let rounds = 200;
        let barrier = Arc::new(SpinBarrier::new(n));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..rounds {
                        if barrier.wait().is_leader() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), rounds);
    }

    #[test]
    fn no_thread_escapes_early() {
        // Each round, every thread increments a shared counter before the
        // barrier; after the crossing the counter must show the full
        // cohort. 8 threads on any host (including 1-core CI) exercises
        // the yield fallback.
        let n = 8;
        let rounds = 100;
        let barrier = Arc::new(SpinBarrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for r in 0..rounds {
                        counter.fetch_add(1, Ordering::AcqRel);
                        barrier.wait();
                        let seen = counter.load(Ordering::Acquire);
                        assert!(
                            seen >= (r + 1) * n,
                            "crossed with only {seen} of {} arrivals",
                            (r + 1) * n
                        );
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), n * rounds);
    }
}
