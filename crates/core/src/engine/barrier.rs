//! A spin-then-yield-then-park step barrier.
//!
//! The three-barrier step protocol crosses a barrier three times per step,
//! so at 8–16 trainers the barrier itself is hot-path state. The ledger's
//! phase attribution at 8 trainers put `std::sync::Barrier` — a
//! mutex + condvar pair — at the top of the BarrierA lane: every crossing
//! serializes all trainers through one futex, and the wake-up convoy
//! (kernel wakes waiters one by one, each re-acquiring the mutex) grows
//! linearly with the trainer count.
//!
//! [`SpinBarrier`] replaces it with two atomics and no locks on the fast
//! path: arrivals `fetch_add` a counter; the last arriver resets the
//! counter and bumps a generation word, releasing the whole cohort with a
//! single store that every spinner observes in parallel. Trainers wait out
//! the short inter-arrival gap with `spin_loop` hints, then a handful of
//! `yield_now` calls.
//!
//! On oversubscribed hosts (more trainers than cores — the CI runner, or
//! 16 trainers on an 8-core commodity box) even yielding is too expensive:
//! seven trainers cycling through `yield_now` against one preempted
//! straggler turns the run queue into a yield storm that starves the very
//! thread everyone is waiting for. After the yield budget, waiters
//! therefore *park* on a mutex + condvar slow path and the releaser wakes
//! them only when someone actually sleeps — the condvar is touched on the
//! slow path only, so a healthy cohort never pays for it.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// How many `spin_loop` iterations to wait before conceding the core.
/// Long enough to cover the same-quantum arrival spread of a healthy
/// cohort, short enough that a preempted straggler costs yields, not ms.
const SPIN_BUDGET: u32 = 64;

/// How many `yield_now` calls to attempt after the spin budget before
/// parking on the condvar. A couple of reschedules is enough to let a
/// same-core straggler run; beyond that, yielding just churns the
/// scheduler while the straggler is doing real (multi-ms) work.
const YIELD_BUDGET: u32 = 16;

/// Result of one barrier crossing; mirrors `std::sync::BarrierWaitResult`
/// so call sites read identically.
pub struct WaitOutcome {
    leader: bool,
}

impl WaitOutcome {
    /// True for exactly one thread per crossing — the step leader that
    /// merges aggregates / composes phases / runs bookkeeping.
    pub fn is_leader(&self) -> bool {
        self.leader
    }
}

/// A reusable step barrier for `n` threads (see module docs).
#[derive(Debug)]
pub struct SpinBarrier {
    /// Threads that have arrived at the current crossing.
    arrived: AtomicUsize,
    /// Completed crossings. Bumped by the releasing thread; spinners wait
    /// for it to move past the value they read on arrival.
    generation: AtomicU64,
    /// Threads currently parked (or committing to park) on `cv`.
    sleepers: AtomicUsize,
    /// Park slow path. The mutex guards nothing but the condvar protocol;
    /// the barrier state itself stays in the atomics above.
    park: Mutex<()>,
    cv: Condvar,
    n: usize,
}

impl SpinBarrier {
    /// A barrier releasing cohorts of `n` threads (`n >= 1`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one thread");
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            park: Mutex::new(()),
            cv: Condvar::new(),
            n,
        }
    }

    /// Blocks until all `n` threads have called `wait`; the last arriver
    /// is the leader and releases the cohort.
    pub fn wait(&self) -> WaitOutcome {
        // The generation read must precede the arrival increment: once we
        // are counted, the leader may release (and start the next
        // crossing) at any moment, and we must be comparing against the
        // generation of *our* crossing, not the next one.
        let gen = self.generation.load(Ordering::Acquire);
        let prior = self.arrived.fetch_add(1, Ordering::AcqRel);
        if prior + 1 == self.n {
            // Last arriver: reset for the next crossing, then release.
            // The reset must happen before the generation store — the
            // Release/Acquire pair on `generation` is what makes the
            // reset visible to the cohort before anyone re-arrives.
            self.arrived.store(0, Ordering::Relaxed);
            // SeqCst pairs with the SeqCst sleepers increment in the
            // waiter: either the waiter's increment is ordered before this
            // store (then we observe sleepers > 0 below and notify), or it
            // is ordered after (then the waiter's generation re-check
            // under the mutex sees the new value and it never sleeps).
            self.generation.store(gen + 1, Ordering::SeqCst);
            if self.sleepers.load(Ordering::SeqCst) > 0 {
                // Taking the mutex orders the notify after any waiter that
                // is past its re-check but not yet inside `cv.wait`.
                drop(self.park.lock().unwrap());
                self.cv.notify_all();
            }
            return WaitOutcome { leader: true };
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            if spins < SPIN_BUDGET {
                spins += 1;
                std::hint::spin_loop();
            } else if spins < SPIN_BUDGET + YIELD_BUDGET {
                spins += 1;
                std::thread::yield_now();
            } else {
                self.park_until_released(gen);
                break;
            }
        }
        WaitOutcome { leader: false }
    }

    /// Condvar slow path: sleep until the generation moves past `gen`.
    #[cold]
    fn park_until_released(&self, gen: u64) {
        let mut guard = self.park.lock().unwrap();
        // SeqCst increment pairs with the releaser's SeqCst generation
        // store + sleepers load (see `wait`); the generation re-check
        // under the mutex closes the window between our last spin and the
        // increment becoming visible.
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        while self.generation.load(Ordering::SeqCst) == gen {
            guard = self.cv.wait(guard).unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_thread_is_always_leader() {
        let b = SpinBarrier::new(1);
        for _ in 0..3 {
            assert!(b.wait().is_leader());
        }
    }

    #[test]
    fn exactly_one_leader_per_crossing() {
        let n = 8;
        let rounds = 200;
        let barrier = Arc::new(SpinBarrier::new(n));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..rounds {
                        if barrier.wait().is_leader() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), rounds);
    }

    #[test]
    fn no_thread_escapes_early() {
        // Each round, every thread increments a shared counter before the
        // barrier; after the crossing the counter must show the full
        // cohort. 8 threads on any host (including 1-core CI) exercises
        // the yield and park fallbacks.
        let n = 8;
        let rounds = 100;
        let barrier = Arc::new(SpinBarrier::new(n));
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for r in 0..rounds {
                        counter.fetch_add(1, Ordering::AcqRel);
                        barrier.wait();
                        let seen = counter.load(Ordering::Acquire);
                        assert!(
                            seen >= (r + 1) * n,
                            "crossed with only {seen} of {} arrivals",
                            (r + 1) * n
                        );
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), n * rounds);
    }

    #[test]
    fn parked_waiters_are_woken() {
        // Force the park path deterministically: one thread arrives early
        // and must sleep through the straggler's multi-ms delay; the
        // crossing still completes and releases it.
        let barrier = Arc::new(SpinBarrier::new(2));
        let b2 = Arc::clone(&barrier);
        let early = std::thread::spawn(move || {
            for _ in 0..20 {
                b2.wait();
            }
        });
        for _ in 0..20 {
            std::thread::sleep(std::time::Duration::from_millis(2));
            barrier.wait();
        }
        early.join().unwrap();
    }
}
