//! Registry-backed run counters.

use frugal_telemetry::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Registry-backed run counters.
///
/// The engine's *logic* depends on several of these — the cache hit ratio
/// and the measured flusher rates that feed the virtual stall model — so
/// they always live on a metric registry: the run's telemetry registry
/// when telemetry is on, a private one otherwise. Either way each is the
/// same atomic the engine used to hold inline, now visible by name
/// (`cache.hits`, `flusher.dequeue_total_ns`, …) in telemetry snapshots.
#[derive(Debug)]
pub(crate) struct RunMetrics {
    /// Counter `p2f.violations`: consistency-invariant violations seen on
    /// host reads (checked mode).
    pub(crate) violations: Arc<Counter>,
    /// Counter `cache.hits`: unique keys served by a GPU cache.
    pub(crate) hits: Arc<Counter>,
    /// Counter `cache.misses`: unique keys read from host DRAM.
    pub(crate) misses: Arc<Counter>,
    /// Counter `cache.fills`: rows copied host→cache on the miss path
    /// (accepted inserts only — admission rejects don't count).
    pub(crate) cache_fills: Arc<Counter>,
    /// Counter `cache.fill_ns`: wall time trainers spent copying miss rows
    /// into the cache arena (the fill-cost side of the hit-ratio coin).
    pub(crate) cache_fill_ns: Arc<Counter>,
    /// Counter `cache.prefetch_fills`: fills performed during the P²F
    /// stall wait from the oracle policy's next-step plan — stall time
    /// converted into fill time, charged to neither the modeled cache
    /// phase nor `cache.fills`.
    pub(crate) cache_prefetch_fills: Arc<Counter>,
    /// Counters `flusher.dequeue_total_ns` / `flusher.claim_total_ns` /
    /// `flusher.apply_total_ns` / `flush.rows`: measured flusher costs,
    /// split into the PQ-dequeue part (which serializes on a tree heap),
    /// the claim part (batch sort + g-entry extraction, which contends
    /// with registering trainers on the shard locks), and the pure
    /// host-apply part (optimizer step + store write only).
    pub(crate) flush_dequeue_ns: Arc<Counter>,
    pub(crate) flush_claim_ns: Arc<Counter>,
    pub(crate) flush_apply_ns: Arc<Counter>,
    pub(crate) flush_rows: Arc<Counter>,
    /// Counter `flusher.apply_interference_ns`: the slice of apply wall
    /// time attributable to scheduler interference rather than the apply
    /// itself — whenever a batch's per-row cost exceeds 4× the flusher's
    /// observed per-row floor, the excess over the floor is booked here.
    /// On oversubscribed hosts (8 trainers + flushers on few cores) a
    /// flusher preempted mid-batch inflates `flush_apply_ns_row` without
    /// the kernels being any slower; this counter isolates that
    /// inflation.
    pub(crate) flush_apply_interference_ns: Arc<Counter>,
    /// Counter `flusher.parked_ns`: time idle flushers spent parked on the
    /// flush condvar instead of spinning (the Fig 17 "flushers divert CPU"
    /// effect, avoided).
    pub(crate) flusher_parked_ns: Arc<Counter>,
    /// Histogram `flush.batch_rows`: rows applied per non-empty flush
    /// batch — how much locality the key-sorted batch apply gets to
    /// exploit.
    pub(crate) flush_batch_rows: Arc<Histogram>,
    /// Histogram `flush.apply_row_ns`: each batch's mean per-row apply
    /// cost (claim + optimizer step + host-store write).
    pub(crate) flush_apply_row_ns: Arc<Histogram>,
    /// Counter `gentry.batch_ns`: total wall time trainers spent inside
    /// the sharded batch-registration phase (writes + reads), summed
    /// across trainers and steps.
    pub(crate) gentry_batch_ns: Arc<Counter>,
    /// Gauge `p2f.blocking_rows`: the rows whose flush gates the next wait
    /// condition — next-step keys with pending writes under P²F, *all*
    /// pending keys under FIFO (the strategy's `stall_rows` view).
    pub(crate) blocking_rows_next: Arc<Gauge>,
    /// Counter `stall.<strategy>.modeled_ns`: the modeled stall summed
    /// over the run, attributed to the flush strategy by name so telemetry
    /// snapshots from different modes stay comparable side by side.
    pub(crate) stall_modeled_ns: Arc<Counter>,
}

impl RunMetrics {
    /// `stall_counter` is the strategy's static counter name
    /// (`FlushStrategy::stall_counter`) — the registry interns names as
    /// `&'static str`, so the strategy supplies the literal.
    pub(crate) fn new(registry: &Registry, stall_counter: &'static str) -> Self {
        RunMetrics {
            violations: registry.counter("p2f.violations"),
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            cache_fills: registry.counter("cache.fills"),
            cache_fill_ns: registry.counter("cache.fill_ns"),
            cache_prefetch_fills: registry.counter("cache.prefetch_fills"),
            flush_dequeue_ns: registry.counter("flusher.dequeue_total_ns"),
            flush_claim_ns: registry.counter("flusher.claim_total_ns"),
            flush_apply_ns: registry.counter("flusher.apply_total_ns"),
            flush_rows: registry.counter("flush.rows"),
            flush_apply_interference_ns: registry.counter("flusher.apply_interference_ns"),
            flusher_parked_ns: registry.counter("flusher.parked_ns"),
            flush_batch_rows: registry.histogram("flush.batch_rows"),
            flush_apply_row_ns: registry.histogram("flush.apply_row_ns"),
            gentry_batch_ns: registry.counter("gentry.batch_ns"),
            blocking_rows_next: registry.gauge("p2f.blocking_rows"),
            stall_modeled_ns: registry.counter(stall_counter),
        }
    }
}
