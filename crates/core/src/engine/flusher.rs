//! The background flushing pool: coordination primitives and the per-thread
//! drain loop (paper §3.2, component 4).

use super::RunShared;
use crate::gentry::PendingWrites;
use crate::wait::InflightTable;
use frugal_embed::FlushClaim;
use frugal_telemetry::{LaneKind, LedgerPhase, Phase, SpanArgs};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How long an idle flusher parks on the flush condvar before re-polling.
/// Bounded so shutdown and missed notifications (a registration that lands
/// between the empty dequeue and the park) cannot stall the drain. Wakes
/// are notify-driven (registration and raised scan bounds both signal the
/// condvar), so this timeout is a safety net, not the drain cadence — at
/// 100 µs the idle re-poll churn of a several-flusher pool was itself a
/// measurable CPU tax on oversubscribed hosts (hundreds of wake-poll
/// cycles per step), so the net is deliberately loose.
const FLUSHER_PARK: Duration = Duration::from_millis(1);

/// How long a blocked trainer parks between wait-condition re-checks.
const TRAINER_PARK: Duration = Duration::from_micros(50);

/// The flusher pool's coordination surface: the condvar trainers and
/// flushers park on, the shutdown latch the drain protocol uses, and the
/// in-flight markers the wait condition scans.
///
/// The condvar is shared deliberately — flushers wake on fresh
/// registrations (and raised scan bounds), trainers wake on applied rows,
/// and both events funnel through [`FlushCoord::notify_all`].
#[derive(Debug)]
pub(crate) struct FlushCoord {
    mutex: Mutex<()>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Per-flusher in-flight markers checked by the wait condition (see
    /// [`InflightTable`]): dequeuing removes an entry from the queue before
    /// its row write completes, so the queue's `top_priority` alone cannot
    /// cover it.
    pub(crate) inflight: InflightTable,
    /// Monotonic id source for applied flush batches (stall provenance).
    batch_seq: AtomicU64,
    /// Id of the most recent batch whose in-flight marker was cleared —
    /// what an unblocking trainer reads to name the batch that (most
    /// plausibly) woke it. 0 = no batch applied yet.
    last_clear: AtomicU64,
}

impl FlushCoord {
    pub(crate) fn new(n_flushers: usize) -> Self {
        FlushCoord {
            mutex: Mutex::new(()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            inflight: InflightTable::new(n_flushers),
            batch_seq: AtomicU64::new(0),
            last_clear: AtomicU64::new(0),
        }
    }

    /// A fresh nonzero batch id for an applied flush batch.
    pub(crate) fn next_batch_id(&self) -> u64 {
        self.batch_seq.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Publishes `id` as the most recently cleared batch. Called just
    /// before the in-flight clear, so a trainer that wakes on the clear
    /// already sees the id; a trainer racing two near-simultaneous
    /// batches may attribute to the slightly later one — provenance is
    /// "most plausible waker", not an exact happens-before edge.
    pub(crate) fn note_clear(&self, id: u64) {
        self.last_clear.store(id, Ordering::Release);
    }

    /// The most recently cleared batch id (0 before any batch applied).
    pub(crate) fn last_clear(&self) -> u64 {
        self.last_clear.load(Ordering::Acquire)
    }

    /// Wakes every parked flusher and every blocked trainer.
    pub(crate) fn notify_all(&self) {
        self.cv.notify_all();
    }

    /// Raises the shutdown latch and wakes parked flushers so the drain
    /// protocol can finish. Parked flushers re-check shutdown on wake;
    /// their park timeout bounds the drain latency even if this signal
    /// races a park.
    pub(crate) fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Parks an idle flusher until a notification (or the bounded timeout —
    /// the safety net against a notify that lands between its empty dequeue
    /// and this wait). Returns the nanoseconds spent parked. Spinning here
    /// instead would burn a core per idle flusher and divert CPU from
    /// trainers (the paper's Fig 17 effect).
    pub(crate) fn park(&self) -> u64 {
        let t = Instant::now();
        let mut guard = self.mutex.lock();
        if !self.is_shutdown() {
            self.cv.wait_for(&mut guard, FLUSHER_PARK);
        }
        drop(guard);
        t.elapsed().as_nanos() as u64
    }

    /// Blocks the caller until `done()` holds, re-checking under the lock
    /// before each bounded wait so a notify can never be lost between the
    /// check and the park.
    pub(crate) fn wait_until(&self, done: impl Fn() -> bool) {
        while !done() {
            let mut guard = self.mutex.lock();
            if done() {
                break;
            }
            self.cv.wait_for(&mut guard, TRAINER_PARK);
        }
    }
}

/// One background flushing thread.
///
/// The apply path is allocation-free after warm-up: claims drain into a
/// per-flusher reusable scratch (`writes` + `claims`) via
/// [`crate::gentry::GEntryStore::take_writes_into`], and the batch is
/// key-sorted before claiming so both the g-entry shards and the dense
/// host/state tables are walked in address order. The claimed ranges then
/// replay through [`frugal_embed::apply_claims`] — the same optimizer/store
/// path the write-through trainers' sharded apply uses.
///
/// Claim-all-then-apply-all is safe under the in-flight marker: the guarded
/// dequeue publishes the batch's minimum priority *before* extraction and
/// the marker stays up until every row is applied, so a trainer admitted at
/// step `s` has `s <` marker `≤` every batch key's priority (its next-read
/// step under P²F, its write step under FIFO) — step `s` reads none of the
/// claimed-but-unapplied rows.
pub(crate) fn flusher_loop(shared: &RunShared<'_>, slot: usize) {
    let rec = shared.cfg.telemetry.recorder(format!("flusher-{slot}"));
    let lane = shared.cfg.telemetry.ledger_lane(LaneKind::Flusher);
    let mut out = Vec::with_capacity(shared.cfg.flush_batch);
    // Reusable claim scratch: the batch's claimed (step, Δ) pairs, flat,
    // plus each claimed key's range into them.
    let mut writes: PendingWrites = Vec::new();
    let mut claims: Vec<FlushClaim> = Vec::with_capacity(shared.cfg.flush_batch);
    // Cheapest per-row apply cost this flusher has observed — the
    // interference floor (see below).
    let mut floor_row_ns = u64::MAX;
    loop {
        out.clear();
        let t_deq = Instant::now();
        // Guarded dequeue: the in-flight marker is published *before* each
        // entry leaves the queue, so there is no instant at which a pending
        // flush is visible to neither `top_priority` nor the marker scan.
        // (Publishing after `dequeue_batch` returned — the engine's old
        // order — left exactly that window; the schedule explorer found a
        // trainer slipping through it. See DESIGN.md §8 race 3.)
        shared.pq.dequeue_batch_guarded(
            shared.cfg.flush_batch,
            &mut out,
            shared.flush.inflight.guard(slot),
        );
        if out.is_empty() {
            if shared.flush.is_shutdown() && shared.gstore.pending_keys() == 0 {
                return;
            }
            let parked = shared.flush.park();
            shared.metrics.flusher_parked_ns.add(parked);
            continue;
        }
        // Only non-empty dequeues are recorded: thousands of idle polls
        // would swamp both the histogram and the trace ring.
        let deq_ns = t_deq.elapsed().as_nanos() as u64;
        shared.metrics.flush_dequeue_ns.add(deq_ns);
        lane.add_current(LedgerPhase::FlushDequeue, deq_ns);
        rec.record_completed(
            Phase::FlushDequeue,
            t_deq,
            SpanArgs::one("batch", out.len() as u64),
        );
        // Claim phase, timed apart from the apply: the batch sort and the
        // g-entry extraction contend with registering trainers on the
        // shard locks, so folding them into the apply window made
        // `flush_apply_ns_row` look like the kernels slowed down at 8
        // trainers when it was really lock/queue bookkeeping.
        let t_claim = Instant::now();
        out.sort_unstable();
        writes.clear();
        claims.clear();
        for &(key, bucket_p) in &out {
            let start = writes.len();
            let n = shared.gstore.take_writes_into(key, bucket_p, &mut writes);
            if n > 0 {
                claims.push((key, start, start + n));
            }
        }
        let claim_ns = t_claim.elapsed().as_nanos() as u64;
        shared.metrics.flush_claim_ns.add(claim_ns);
        // Pure apply: optimizer step + host-store write, walking the
        // dense host/state rows in ascending key (address) order.
        let t_apply = Instant::now();
        let applied =
            frugal_embed::apply_claims(shared.store, shared.rule.as_ref(), &claims, &writes);
        if applied > 0 {
            let apply_ns = t_apply.elapsed().as_nanos() as u64;
            shared.metrics.flush_apply_ns.add(apply_ns);
            shared.metrics.flush_rows.add(applied);
            shared.metrics.flush_batch_rows.record(applied);
            let row_ns = apply_ns / applied;
            shared.metrics.flush_apply_row_ns.record(row_ns);
            // Interference isolation: per-row cost is flat when this
            // thread runs undisturbed, so track the cheapest batch seen
            // as the floor and attribute any ≥ 4× blow-up's excess to
            // preemption mid-batch (wall time, not work). On a host with
            // fewer cores than threads this is the dominant source of
            // per-row "inflation" at high trainer counts.
            if row_ns > 0 && row_ns < floor_row_ns {
                floor_row_ns = row_ns;
            }
            if floor_row_ns < u64::MAX && row_ns > 4 * floor_row_ns {
                shared
                    .metrics
                    .flush_apply_interference_ns
                    .add(apply_ns - applied * floor_row_ns);
            }
            lane.add_current(LedgerPhase::FlushApply, apply_ns);
            rec.record_completed(Phase::FlushApply, t_apply, SpanArgs::one("rows", applied));
            // Stall provenance: stamp this batch and emit the producing
            // half of the flow arrow *before* the marker clear below, so
            // a trainer that wakes on the clear reads an id whose flow
            // start is already in the ring (and timestamped earlier than
            // the trainer's finish).
            let batch_id = shared.flush.next_batch_id();
            shared.flush.note_clear(batch_id);
            rec.flow_start(batch_id);
        }
        shared.flush.inflight.clear(slot);
        if applied > 0 {
            // One consolidated wake, and it must come *after*
            // `inflight.clear`: a trainer's wait condition checks the queue
            // top and then the in-flight markers, so a wake issued while
            // this slot's marker is still up could be consumed, re-observe
            // the stale marker, and leave the trainer waiting out a full
            // park timeout. After the clear, both the queue and the marker
            // reflect the applied rows, so one notify_all suffices.
            shared.flush.notify_all();
        }
        if shared.cfg.flush_throttle_us > 0 {
            std::thread::sleep(Duration::from_micros(shared.cfg.flush_throttle_us));
        }
    }
}
