//! The Frugal training engine (paper §3).
//!
//! One OS thread per simulated GPU ("training process"), a pool of flushing
//! threads, and the flush strategy's protocol between them:
//!
//! * **Forward** — each trainer resolves its batch keys against its local
//!   cache (owned, hot keys) and reads everything else from the host store
//!   with UVA-style zero-copy reads, which are safe because the wait
//!   condition guarantees no key read at step `s` has unflushed updates.
//! * **Backward** — per-GPU gradients are aggregated per key in canonical
//!   order at a step barrier; **every trainer then reduces the key shards
//!   it owns across all per-GPU aggregators in GPU index order**
//!   (decentralized all-to-all — no leader-serial merge), applies its
//!   shard synchronously under write-through, and registers the g-entry
//!   writes (and, under P²F, the step `s + L` reads) for the
//!   [`GEntryStore`] shards it owns using the batch APIs — none of the
//!   per-key step work (Exp #4a) is serialized on a leader thread.
//! * **Flushing threads** — dequeue the highest-priority g-entries and apply
//!   their pending updates to the host store in step order; idle flushers
//!   park on the flush condvar (bounded wait) instead of burning a core.
//! * **Wait condition** — the strategy's consistency gate: under P²F a
//!   trainer may start step `s` only when `PQ.top() > s` (strictly), the
//!   exact condition of §3.3, which this module measures as the training
//!   stall.
//!
//! The engine is split along its natural seams:
//!
//! * [`strategy`] — the [`FlushStrategy`] trait and its three impls: `P2f`
//!   (the paper's system), `WriteThrough` (the Frugal-Sync baseline), and
//!   `Fifo` (the arrival-order priority ablation).
//! * [`step`] — the three-barrier step protocol (A→B: decentralized
//!   sharded reduce + sharded apply, B→C: sharded registration,
//!   C: bookkeeping), the sample ring, and their shared state.
//! * [`trainer`] — the per-GPU loop and the registration phase.
//! * [`flusher`] — the flusher pool: coordination ([`FlushCoord`]) and the
//!   per-thread drain loop.
//! * [`stall`] — the virtual stall model (windowed measured flusher costs).
//! * [`counters`] — the registry-backed run counters.
//!
//! Everything strategy-specific is a [`FlushStrategy`] decision consulted
//! at barrier granularity; the per-key hot paths are strategy-blind.

mod barrier;
mod counters;
mod flusher;
mod stall;
mod step;
mod strategy;
mod trainer;

#[cfg(test)]
mod tests;

use crate::config::{FrugalConfig, PqKind};
use crate::gentry::GEntryStore;
use crate::model::EmbeddingModel;
use crate::report::TrainReport;
use crate::workload::Workload;
use barrier::SpinBarrier;
use counters::RunMetrics;
use flusher::FlushCoord;
use frugal_embed::{HostStore, Sharding, UpdateRule};
use frugal_pq::{PriorityQueue, TreeHeap, TwoLevelPq};
use frugal_sim::{Nanos, RunStats};
use frugal_telemetry::Registry;
use std::sync::Arc;
use strategy::FlushStrategy;

/// Shared state between trainers, the leader, and flushers for one run.
pub(crate) struct RunShared<'a> {
    pub(crate) cfg: &'a FrugalConfig,
    /// The run's flush strategy (resolved once from `cfg.flush_mode`).
    pub(crate) strategy: &'static dyn FlushStrategy,
    /// Sparse optimizer for the host path: applied by the flushing threads
    /// (P²F/FIFO) or the barrier leader (write-through). One rule either
    /// way, so the per-row state `state_snapshot` exposes to cache fills is
    /// the host path's state in every mode.
    pub(crate) rule: Arc<dyn UpdateRule>,
    pub(crate) workload: &'a dyn Workload,
    pub(crate) model: &'a dyn EmbeddingModel,
    pub(crate) store: &'a HostStore,
    pub(crate) gstore: GEntryStore,
    pub(crate) pq: Box<dyn PriorityQueue>,
    pub(crate) sharding: Sharding,
    /// The step protocol's shared state (see [`step::StepState`]).
    pub(crate) step: step::StepState,
    /// Flusher/trainer coordination (see [`FlushCoord`]).
    pub(crate) flush: FlushCoord,
    /// Named run counters (see [`RunMetrics`]).
    pub(crate) metrics: RunMetrics,
}

/// The Frugal / Frugal-Sync training engine.
///
/// # Examples
///
/// ```
/// use frugal_core::{FrugalConfig, FrugalEngine, PullToTarget, Workload};
/// use frugal_data::{KeyDistribution, SyntheticTrace};
///
/// let trace = SyntheticTrace::new(1_000, KeyDistribution::Zipf(0.9), 32, 2, 1)?;
/// let mut cfg = FrugalConfig::commodity(2, 20);
/// cfg.flush_threads = 2;
/// let model = PullToTarget::new(8, 7);
/// let engine = FrugalEngine::new(cfg, trace.n_keys(), 8);
/// let report = engine.run(&trace, &model);
/// assert!(report.final_loss < report.first_loss);
/// # Ok::<(), frugal_data::DistError>(())
/// ```
#[derive(Debug)]
pub struct FrugalEngine {
    cfg: FrugalConfig,
    store: Arc<HostStore>,
}

impl FrugalEngine {
    /// Creates an engine with a fresh host store of `n_keys × dim`.
    ///
    /// # Panics
    ///
    /// Panics if [`FrugalConfig::validate`] rejects the configuration.
    /// Binaries that want a graceful error should call `validate`
    /// themselves first.
    pub fn new(cfg: FrugalConfig, n_keys: u64, dim: usize) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid FrugalConfig: {e}");
        }
        let mut store = if cfg.checked {
            HostStore::new_checked(n_keys, dim, cfg.seed)
        } else {
            HostStore::new(n_keys, dim, cfg.seed)
        };
        store.attach_telemetry(&cfg.telemetry);
        FrugalEngine {
            cfg,
            store: Arc::new(store),
        }
    }

    /// The host parameter store (inspect after [`FrugalEngine::run`]).
    pub fn store(&self) -> &HostStore {
        &self.store
    }

    /// The engine configuration.
    pub fn config(&self) -> &FrugalConfig {
        &self.cfg
    }

    /// Trains `workload` with `model` and returns the run report.
    ///
    /// # Panics
    ///
    /// Panics if the workload GPU count differs from the configured
    /// topology or if the model dimension differs from the store.
    pub fn run(&self, workload: &dyn Workload, model: &dyn EmbeddingModel) -> TrainReport {
        let cfg = &self.cfg;
        let n = cfg.n_gpus();
        assert_eq!(workload.n_gpus(), n, "workload/topology GPU count mismatch");
        assert_eq!(model.dim(), self.store.dim(), "model/store dim mismatch");
        let strategy = strategy::for_mode(cfg.flush_mode);

        let max_priority = cfg.steps + cfg.lookahead + 2;
        let mut pq: Box<dyn PriorityQueue> = match cfg.pq {
            PqKind::TwoLevel => Box::new(TwoLevelPq::new(max_priority)),
            PqKind::TreeHeap => Box::new(TreeHeap::new()),
        };
        pq.attach_telemetry(&cfg.telemetry);
        // Run counters live on the telemetry registry when one is attached,
        // on a private registry otherwise (the engine's own logic reads them
        // either way).
        let registry = cfg
            .telemetry
            .registry()
            .unwrap_or_else(|| Arc::new(Registry::new()));

        let shared = RunShared {
            cfg,
            strategy,
            rule: cfg.optimizer.build_shared(
                cfg.lr,
                self.store.n_keys(),
                self.store.dim(),
                cfg.checked,
            ),
            workload,
            model,
            store: &self.store,
            gstore: GEntryStore::with_policy(strategy.priority_policy()),
            pq,
            sharding: Sharding::new(n),
            step: step::StepState::new(n, model.dim(), cfg.steps, cfg.lookahead),
            flush: FlushCoord::new(cfg.flush_threads),
            metrics: RunMetrics::new(&registry, strategy.stall_counter()),
        };

        if let Some(bound) = strategy.initial_upper_bound(cfg.lookahead) {
            shared.pq.set_upper_bound(bound);
        }

        // Lock-free: three crossings per step make the barrier hot-path
        // state at 8–16 trainers (see `barrier` module docs).
        let barrier = SpinBarrier::new(n);

        std::thread::scope(|scope| {
            let mut flushers = Vec::new();
            if strategy.uses_flushers() {
                for i in 0..cfg.flush_threads {
                    let shared = &shared;
                    flushers.push(scope.spawn(move || flusher::flusher_loop(shared, i)));
                }
            }
            let trainers: Vec<_> = (0..n)
                .map(|g| {
                    let barrier = &barrier;
                    let shared = &shared;
                    scope.spawn(move || trainer::trainer_loop(shared, barrier, g))
                })
                .collect();
            for t in trainers {
                t.join().expect("trainer panicked");
            }
            // Drain: wait for all deferred updates to reach host memory.
            shared.flush.begin_shutdown();
            for f in flushers {
                f.join().expect("flusher panicked");
            }
            debug_assert_eq!(shared.gstore.pending_keys(), 0);
        });

        // Compose the report.
        let iters = shared.step.iters.into_inner();
        let mut stats = RunStats::new(workload.samples_per_step());
        let mut first_loss = 0.0;
        let mut final_loss = 0.0;
        for (i, (it, loss)) in iters.iter().enumerate() {
            stats.push(*it);
            if i == 0 {
                first_loss = *loss;
            }
            final_loss = *loss;
        }
        let gentry_times = shared.step.gentry_times.into_inner();
        let mean_gentry = if gentry_times.is_empty() {
            Nanos::ZERO
        } else {
            gentry_times.iter().copied().sum::<Nanos>() / gentry_times.len() as u64
        };
        let hits = shared.metrics.hits.get();
        let misses = shared.metrics.misses.get();
        let hit_ratio = if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        };
        TrainReport {
            stats,
            hit_ratio,
            cache_fills: shared.metrics.cache_fills.get(),
            cache_fill_ns: shared.metrics.cache_fill_ns.get(),
            cache_prefetch_fills: shared.metrics.cache_prefetch_fills.get(),
            mean_gentry_update: mean_gentry,
            violations: shared.metrics.violations.get() as usize,
            races: self.store.race_count() + shared.rule.race_count(),
            flush_rows: shared.metrics.flush_rows.get(),
            flush_apply_ns: shared.metrics.flush_apply_ns.get(),
            first_loss,
            final_loss,
            telemetry: cfg.telemetry.summary(),
        }
    }
}
