//! The virtual stall model: what the wait condition would cost on real
//! hardware, estimated from *measured* flusher behaviour.

use super::RunShared;
use frugal_sim::Nanos;

/// Totals of the flusher cost counters as of the previous step, kept by
/// the leader so [`virtual_stall`] can use a *windowed* per-row estimate
/// (deltas since the previous step) instead of lifetime averages that let
/// early cheap flushes dilute late-run stalls.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct FlushWindow {
    dequeue_ns: u64,
    apply_ns: u64,
    rows: u64,
}

/// Advances `win` to the current counter totals and returns the windowed
/// per-row `(dequeue_ns, apply_ns)` estimate. Steps in which no rows were
/// flushed fall back to the lifetime average (there is no fresh signal),
/// and a run with no flushed rows at all estimates zero.
pub(crate) fn windowed_per_row(
    win: &mut FlushWindow,
    dequeue_ns: u64,
    apply_ns: u64,
    rows: u64,
) -> (f64, f64) {
    let d_rows = rows.saturating_sub(win.rows);
    let est = if d_rows > 0 {
        (
            dequeue_ns.saturating_sub(win.dequeue_ns) as f64 / d_rows as f64,
            apply_ns.saturating_sub(win.apply_ns) as f64 / d_rows as f64,
        )
    } else if rows > 0 {
        (
            dequeue_ns as f64 / rows as f64,
            apply_ns as f64 / rows as f64,
        )
    } else {
        (0.0, 0.0)
    };
    *win = FlushWindow {
        dequeue_ns,
        apply_ns,
        rows,
    };
    est
}

/// How many flushing threads the stall model divides per-row costs by:
/// the threads the engine actually spawns (`cfg.flush_threads`).
///
/// An earlier revision clamped this to `cores - n_gpus - 1` on the theory
/// that trainers monopolize their cores. That silently priced every flush
/// as *single-threaded* once `n_gpus + 1` reached the modeled core count —
/// at 8 trainers on the 8-core commodity topology the model divided by 1
/// while 4 real flushers drained the queue, quadrupling reported stalls.
/// Core competition is not this model's job: `leader_finish` already
/// charges an oversubscription factor of `(n + flush_threads + 2) / cores`
/// on the whole step, so clamping here double-counted the same pressure.
/// The count deliberately comes from the config, not the host's actual
/// parallelism, so modeled numbers stay deterministic across machines.
pub(crate) fn modeled_flush_threads(cfg: &crate::config::FrugalConfig) -> u64 {
    (cfg.flush_threads as u64).max(1)
}

/// Models the stall at step `s`'s wait condition as real hardware would
/// see it: the flushing threads must push the `blocking` rows to host
/// memory before training may proceed. Which rows block is the strategy's
/// call (`FlushStrategy::stall_rows`): under P²F only parameters written
/// in a previous step and read again now (paper Fig 6, the k2 case) —
/// deferred ∞-priority updates do not stall unless an upcoming read
/// reactivates them — while under FIFO *every* pending row blocks.
///
/// Per-row costs come from *measured* flusher behaviour (so the PQ
/// implementation's efficiency — O(1) two-level vs O(log N) serialized tree
/// heap — flows straight into the stall), **windowed to the deltas since
/// the previous step** (see [`windowed_per_row`]) so early-run costs do not
/// dilute late-run stalls, normalized to reference-machine terms, and
/// divided across flushing threads according to whether dequeues serialize.
///
/// The trainers still *physically* block on the wait condition for
/// correctness; only the reported time is modeled, because a single-core
/// host cannot exhibit the overlap a multi-core controller provides.
pub(crate) fn virtual_stall(
    shared: &RunShared<'_>,
    s: u64,
    blocking: u64,
    raw_deq_ns: f64,
    raw_apply_ns: f64,
) -> Nanos {
    if s == 0 || blocking == 0 {
        return Nanos::ZERO;
    }
    let cfg = shared.cfg;
    // Normalize measured per-row costs to reference-machine terms like the
    // g-entry registration time (same calibration ratio).
    let slowdown = crate::calibrate::host_slowdown(cfg.cost.gentry_op_reference_ns(128));
    let deq_ns = (raw_deq_ns / slowdown) as u64;
    let apply_ns = (raw_apply_ns / slowdown) as u64;
    let threads = modeled_flush_threads(cfg);
    let per_row_ns = if shared.pq.dequeue_serializes() {
        // Dequeues funnel through one lock: they do not parallelize.
        deq_ns + apply_ns / threads
    } else {
        (deq_ns + apply_ns) / threads
    };
    Nanos::from_nanos(blocking * per_row_ns.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windowed_per_row_tracks_recent_steps() {
        let mut win = FlushWindow::default();
        // Step 1: 100 rows at 10ns dequeue / 20ns apply each.
        let (d, a) = windowed_per_row(&mut win, 1_000, 2_000, 100);
        assert_eq!((d, a), (10.0, 20.0));
        // Step 2: 10 more rows, but each cost 1000/2000ns — the windowed
        // estimate must reflect the *recent* cost, not the lifetime mean
        // (which would be ~101ns dequeue).
        let (d, a) = windowed_per_row(&mut win, 11_000, 22_000, 110);
        assert_eq!((d, a), (1_000.0, 2_000.0));
        // Step 3: no rows flushed — fall back to the lifetime average.
        let (d, a) = windowed_per_row(&mut win, 11_000, 22_000, 110);
        assert_eq!((d, a), (100.0, 200.0));
        // Step 4: fresh rows resume windowing from the stored totals.
        let (d, a) = windowed_per_row(&mut win, 11_550, 22_550, 120);
        assert_eq!((d, a), (55.0, 55.0));
    }

    #[test]
    fn windowed_per_row_empty_run_is_zero() {
        let mut win = FlushWindow::default();
        assert_eq!(windowed_per_row(&mut win, 0, 0, 0), (0.0, 0.0));
    }

    #[test]
    fn modeled_flush_threads_survives_high_gpu_counts() {
        use frugal_sim::{CostModel, HostSpec, Topology};
        // 8 trainers on a modest 8-core host: the historical clamp
        // `flush_threads.min(cores - n_gpus - 1)` evaluated to
        // `min(4, max(8 - 9, 1)) = 1`, silently modeling the 4 real
        // flushers as a single thread and quadrupling reported stalls.
        let mut cfg = crate::config::FrugalConfig::commodity(8, 10);
        let host = HostSpec {
            cpu_cores: 8,
            ..HostSpec::default()
        };
        cfg.cost = CostModel::new(Topology::commodity(8).with_host(host));
        cfg.flush_threads = 4;
        assert_eq!(modeled_flush_threads(&cfg), 4, "model the threads that run");
        // 16 trainers (past the modeled core count entirely) — same story.
        let mut cfg = crate::config::FrugalConfig::commodity(16, 10);
        cfg.flush_threads = 6;
        assert_eq!(modeled_flush_threads(&cfg), 6);
        // Degenerate zero-flusher configs (write-through) still divide by 1.
        cfg.flush_threads = 0;
        assert_eq!(modeled_flush_threads(&cfg), 1);
    }
}
