//! The three-barrier step protocol: what leaders do between barriers A, B,
//! and C, and the shared state that carries a step across them.
//!
//! Each step crosses three barriers. The thread the barrier elects can
//! differ at each crossing, so leader state lives in [`StepState`], not
//! thread-locals:
//!
//! 1. trainers deposit per-GPU aggregates and phase times → **A** →
//! 2. the A-leader merges aggregates (GPU index order — canonical),
//!    publishes the step's [`StepWork`] (update list + `s + L` read lists),
//!    and runs the strategy's synchronous leader apply (write-through's
//!    whole-list flush; a no-op under P²F/FIFO) → **B** →
//! 3. *every* trainer runs its registration phase (see
//!    [`super::trainer::register_phase`]); the B-leader then composes the
//!    iteration's phase maxima (before C, so slow trainers cannot race slot
//!    reuse) → **C** →
//! 4. the C-leader finalizes bookkeeping (`set_upper_bound`, stall model,
//!    iteration record) while other trainers already enter step `s + 1` —
//!    nothing it does gates their wait condition.

use super::stall::{self, FlushWindow};
use super::RunShared;
use frugal_data::Key;
use frugal_embed::GradAggregator;
use frugal_sim::{IterBreakdown, Nanos};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-trainer, per-step instrumentation deposited at the barrier.
#[derive(Debug, Clone, Default)]
pub(crate) struct PhaseTimes {
    pub(crate) comm: Nanos,
    pub(crate) host_dram: Nanos,
    pub(crate) cache: Nanos,
    pub(crate) other: Nanos,
    pub(crate) loss: f32,
}

/// The step's shared work product, written by the A-leader between
/// barriers A and B, read by every trainer between B and C. The barriers
/// serialize the write against the reads, so the lock is never contended —
/// it exists to keep the hand-off safe without `unsafe`.
#[derive(Debug, Default)]
pub(crate) struct StepWork {
    /// This step's merged updates in canonical arrival order, each row
    /// shared between the g-entry W set and the owner GPU's cache.
    pub(crate) updates: Vec<(Key, Arc<[f32]>)>,
    /// Raw per-GPU key lists of step `s + L` (the sample-queue prefetch);
    /// empty when `s + L` is past the end of training or when the strategy
    /// does not register reads. Gathered once by the leader so trainers do
    /// not re-query the workload `n` times each.
    pub(crate) reads: Vec<Vec<Key>>,
    /// The step the `reads` lists belong to.
    pub(crate) read_step: u64,
}

/// Rotating-leader state: the barrier can elect a different thread at each
/// of the step's three crossings, so everything a "leader" produces for a
/// later crossing lives here.
#[derive(Debug)]
pub(crate) struct LeaderState {
    /// Cross-GPU merged aggregates (reused arena; drained every step).
    pub(crate) merged: GradAggregator,
    /// The strategy's synchronous leader-apply stall for this step
    /// (write-through's modeled flush; zero for background strategies).
    pub(crate) sync_stall: Nanos,
    /// Phase maxima composed by the B-leader, finalized by the C-leader.
    pub(crate) it: IterBreakdown,
    pub(crate) loss_sum: f32,
    /// Flusher-counter totals at the previous step (see [`FlushWindow`]).
    pub(crate) window: FlushWindow,
}

/// The step protocol's shared state: deposit slots, the published step
/// work, rotating-leader state, and the per-run iteration records.
#[derive(Debug)]
pub(crate) struct StepState {
    /// Per-GPU aggregators: trainers swap their full scratch aggregator in
    /// before barrier A; the A-leader drains them in GPU index order. Kept
    /// warm (arena reuse) across steps.
    pub(crate) agg_slots: Vec<Mutex<GradAggregator>>,
    /// Per-GPU phase instrumentation for the current step.
    pub(crate) phase_slots: Vec<Mutex<PhaseTimes>>,
    /// The step's published work (see [`StepWork`]).
    pub(crate) work: RwLock<StepWork>,
    /// Rotating-leader state (see [`LeaderState`]).
    pub(crate) leader: Mutex<LeaderState>,
    /// Keys of step `s + 1` with pending writes after registration, summed
    /// across trainers (each counts only its own shards).
    pub(crate) blocking_next: AtomicU64,
    /// Slowest trainer's write-registration time this step — the sharded
    /// critical path (the Exp #4a quantity under parallel registration).
    pub(crate) reg_ns_max: AtomicU64,
    /// Leader-composed per-iteration records.
    pub(crate) iters: Mutex<Vec<(IterBreakdown, f32)>>,
    pub(crate) gentry_times: Mutex<Vec<Nanos>>,
}

impl StepState {
    pub(crate) fn new(n_gpus: usize, dim: usize, steps: u64) -> Self {
        StepState {
            agg_slots: (0..n_gpus)
                .map(|_| Mutex::new(GradAggregator::new(dim)))
                .collect(),
            phase_slots: (0..n_gpus)
                .map(|_| Mutex::new(PhaseTimes::default()))
                .collect(),
            work: RwLock::new(StepWork::default()),
            leader: Mutex::new(LeaderState {
                merged: GradAggregator::new(dim),
                sync_stall: Nanos::ZERO,
                it: IterBreakdown::default(),
                loss_sum: 0.0,
                window: FlushWindow::default(),
            }),
            blocking_next: AtomicU64::new(0),
            reg_ns_max: AtomicU64::new(0),
            iters: Mutex::new(Vec::with_capacity(steps as usize)),
            gentry_times: Mutex::new(Vec::with_capacity(steps as usize)),
        }
    }
}

/// The A-leader's work between barriers A and B: merge the per-GPU
/// aggregates in GPU index order (canonical), publish the step's update
/// list and `s + L` read lists as [`StepWork`], and run the strategy's
/// synchronous leader apply (the Frugal-Sync stall under write-through).
pub(crate) fn leader_prepare(shared: &RunShared<'_>, s: u64) {
    let cfg = shared.cfg;
    // Route flusher-lane ledger attribution to this step (±1-step
    // approximation: background work between barrier A of step s and
    // barrier A of step s + 1 books to step s).
    cfg.telemetry.ledger_advance(s);
    let leader = &mut *shared.step.leader.lock();
    for slot in &shared.step.agg_slots {
        leader.merged.merge_from(&mut slot.lock());
    }
    shared.model.end_step(s);

    let mut work = shared.step.work.write();
    work.updates.clear();
    leader.merged.drain_arcs(&mut work.updates);

    // Sample queue: gather the raw reads of step s + L once for all
    // trainers (they filter to their own shards between B and C). Only
    // read-driven strategies consume them.
    work.reads.clear();
    let rs = s + cfg.lookahead;
    work.read_step = rs;
    if shared.strategy.registers_reads() && rs < cfg.steps {
        for g in 0..cfg.n_gpus() {
            let keys = shared.workload.keys(rs, g);
            work.reads.push(keys);
        }
    }

    leader.sync_stall =
        shared
            .strategy
            .leader_apply(cfg, shared.store, shared.rule.as_ref(), &work.updates);
    drop(work);

    shared.step.blocking_next.store(0, Ordering::Release);
    shared.step.reg_ns_max.store(0, Ordering::Release);
}

/// The B-leader's compose, run between barriers B and C (after its own
/// registration phase): fold the per-GPU phase times into the iteration's
/// maxima. This must finish before C — once trainers pass C they may
/// deposit step `s + 1` times into the same slots.
pub(crate) fn compose_phases(shared: &RunShared<'_>) {
    let mut leader = shared.step.leader.lock();
    let mut it = IterBreakdown::default();
    let mut loss_sum = 0.0f32;
    for slot in &shared.step.phase_slots {
        let p = slot.lock();
        it.comm = it.comm.max(p.comm);
        it.host_dram = it.host_dram.max(p.host_dram);
        it.cache = it.cache.max(p.cache);
        it.other = it.other.max(p.other);
        loss_sum += p.loss;
    }
    leader.it = it;
    leader.loss_sum = loss_sum;
}

/// The C-leader's bookkeeping after barrier C: raise the PQ scan bound,
/// convert the measured registration maximum to reference-machine terms,
/// model the stall, and push the iteration record. Nothing here gates the
/// other trainers' next step — they are already past C — and the next
/// barrier A cannot complete before this thread arrives, so the next
/// [`leader_prepare`] never races these reads.
pub(crate) fn leader_finish(shared: &RunShared<'_>, s: u64) {
    let cfg = shared.cfg;
    let n = cfg.n_gpus();
    if let Some(bound) = shared.strategy.upper_bound_after(s, cfg.lookahead) {
        // Scan-range compression (§3.4); the raised bound may unblock
        // parked flushers' scan ranges.
        shared.pq.set_upper_bound(bound);
        shared.flush.notify_all();
    }

    // Convert the measured registration time to reference-machine terms:
    // divide by how much slower this host runs the canonical registration
    // probe than the reference controller (see `calibrate`). Relative
    // effects — tree heap vs two-level PQ, sharded vs serial registration,
    // batch sizes — are already inside the measurement and survive intact.
    let slowdown = crate::calibrate::host_slowdown(cfg.cost.gentry_op_reference_ns(128));
    let gentry_time = if shared.strategy.uses_flushers() {
        let max_ns = shared.step.reg_ns_max.load(Ordering::Acquire);
        Nanos::from_nanos(max_ns) * (1.0 / slowdown)
    } else {
        // Write-through has no g-entries; its flush cost is the stall.
        Nanos::ZERO
    };
    shared.step.gentry_times.lock().push(gentry_time);

    let mut leader = shared.step.leader.lock();
    let mut it = leader.it;
    let loss_sum = leader.loss_sum;
    // The controller/flushers contend with trainers for CPU cores: charge
    // an oversubscription factor on the critical-path registration time
    // (the Fig 17 "too many flushing threads divert CPU" effect).
    let cores = cfg.cost.topology().host().cpu_cores.max(1);
    let oversub = ((n + cfg.flush_threads + 2) as f64 / cores as f64).max(1.0);
    it.other += gentry_time * oversub + cfg.cost.framework_frugal();
    it.stall = if shared.strategy.uses_flushers() {
        // Advance the flusher-cost window every step so the per-row
        // estimate tracks *current* flusher behaviour.
        let (deq_ns, apply_ns) = stall::windowed_per_row(
            &mut leader.window,
            shared.metrics.flush_dequeue_ns.get(),
            shared.metrics.flush_apply_ns.get(),
            shared.metrics.flush_rows.get(),
        );
        // Which rows gate the next wait is the strategy's call: next-step
        // readers under P²F, every pending key under FIFO.
        let blocking = shared.strategy.stall_rows(
            shared.step.blocking_next.load(Ordering::Acquire),
            shared.gstore.pending_keys() as u64,
        );
        shared.metrics.blocking_rows_next.set(blocking as i64);
        stall::virtual_stall(shared, s, blocking, deq_ns, apply_ns)
    } else {
        leader.sync_stall
    };
    shared.metrics.stall_modeled_ns.add(it.stall.as_nanos());
    shared.step.iters.lock().push((it, loss_sum / n as f32));
}
