//! The three-barrier step protocol: the decentralized reduce between
//! barriers A and B, and the shared state that carries a step across them.
//!
//! Each step crosses three barriers. The thread the barrier elects can
//! differ at each crossing, so leader state lives in [`StepState`], not
//! thread-locals:
//!
//! 1. trainers deposit per-GPU aggregates and phase times → **A** →
//! 2. *every* trainer reduces the key shards it owns across all per-GPU
//!    aggregator slots in GPU index order ([`reduce_own_shard`]) and
//!    publishes the result in its own update slot; under write-through it
//!    then applies its slot to the host store (the sharded form of the old
//!    leader apply). The A-leader only advances the ledger cursor, ends
//!    the model step, and resets the per-step atomics → **B** →
//! 3. every trainer runs its registration phase (see
//!    [`super::trainer::register_phase`]) over all owners' update slots;
//!    the B-leader then composes the iteration's phase maxima (before C,
//!    so slow trainers cannot race slot reuse) → **C** →
//! 4. the C-leader finalizes bookkeeping (`set_upper_bound`, stall model,
//!    iteration record) while other trainers already enter step `s + 1` —
//!    nothing it does gates their wait condition.
//!
//! # Why the reduce stays bit-identical to the serial leader merge
//!
//! Bit-equality needs every key's gradients summed in the canonical order
//! (sample order within a GPU — already inside each deposited aggregator —
//! then GPU index order across GPUs). The *across-key* order is free:
//! rows are independent. [`reduce_own_shard`] scans `agg_slots[0..n]` in
//! index order and folds only the keys trainer `g` owns
//! ([`GEntryStore::owner_of`]), so each key sees exactly the serial
//! leader's addition sequence, just on a different thread. Ownership
//! partitions the key space, so every key is reduced exactly once.
//!
//! # The sample ring
//!
//! [`SampleRing`] double-buffers sampling: at the top of step `s`, trainer
//! `g` draws step `s + L`'s batch for its own GPU and publishes it; the
//! batch consumed at step `s` was published `L` steps ago. Registration
//! (the `s + L` read prefetch) reads all GPUs' lists straight from the
//! ring, so the workload is sampled exactly once per (step, GPU) — the old
//! leader gathered every trainer's list a second time each step.

use super::stall::{self, FlushWindow};
use super::RunShared;
use crate::gentry::GEntryStore;
use frugal_data::Key;
use frugal_embed::GradAggregator;
use frugal_sim::{IterBreakdown, Nanos};
use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-trainer, per-step instrumentation deposited at the barrier.
#[derive(Debug, Clone, Default)]
pub(crate) struct PhaseTimes {
    pub(crate) comm: Nanos,
    pub(crate) host_dram: Nanos,
    pub(crate) cache: Nanos,
    pub(crate) other: Nanos,
    pub(crate) loss: f32,
}

/// Per-GPU ring of published sample batches, indexed `[gpu][step % len]`.
///
/// Trainer `g` is the only writer of row `g`: it publishes step
/// `s + lookahead`'s keys at the top of step `s` (and steps
/// `0..lookahead` before the loop). Readers are trainer `g` itself (its
/// own batch at step `s`) and, under read-registering strategies, every
/// trainer's registration phase (the `s + lookahead` lists of all GPUs,
/// after barrier B of step `s` — barrier A orders the publish before
/// those reads).
///
/// The ring holds `lookahead + 2` slots: values `s..=s+L` must stay live
/// while step `s` runs, plus one slot of slack so publishing `s + L` at
/// the *top* of step `s` never overwrites a slot whose batch read is
/// still pending.
#[derive(Debug)]
pub(crate) struct SampleRing {
    slots: Vec<Vec<RwLock<Vec<Key>>>>,
    len: u64,
}

impl SampleRing {
    fn new(n_gpus: usize, lookahead: u64) -> Self {
        let len = lookahead + 2;
        SampleRing {
            slots: (0..n_gpus)
                .map(|_| (0..len).map(|_| RwLock::new(Vec::new())).collect())
                .collect(),
            len,
        }
    }

    /// Publishes `keys` as GPU `gpu`'s batch of `step`.
    pub(crate) fn publish(&self, gpu: usize, step: u64, keys: Vec<Key>) {
        *self.slots[gpu][(step % self.len) as usize].write() = keys;
    }

    /// Reads GPU `gpu`'s batch of `step`. The caller must only ask for
    /// steps inside the live window (see type docs); the barriers provide
    /// the publish → read ordering.
    pub(crate) fn read(&self, gpu: usize, step: u64) -> RwLockReadGuard<'_, Vec<Key>> {
        self.slots[gpu][(step % self.len) as usize].read()
    }
}

/// Rotating-leader state: the barrier can elect a different thread at each
/// of the step's three crossings, so everything a "leader" produces for a
/// later crossing lives here.
#[derive(Debug)]
pub(crate) struct LeaderState {
    /// Phase maxima composed by the B-leader, finalized by the C-leader.
    pub(crate) it: IterBreakdown,
    pub(crate) loss_sum: f32,
    /// Flusher-counter totals at the previous step (see [`FlushWindow`]).
    pub(crate) window: FlushWindow,
}

/// The step protocol's shared state: deposit slots, the per-owner reduced
/// update slots, the sample ring, rotating-leader state, and the per-run
/// iteration records.
#[derive(Debug)]
pub(crate) struct StepState {
    /// Per-GPU aggregators: trainers swap their full scratch aggregator in
    /// before barrier A; after A every trainer read-scans all of them in
    /// GPU index order. Kept warm (arena reuse) across steps.
    pub(crate) agg_slots: Vec<RwLock<GradAggregator>>,
    /// Per-owner reduced updates: slot `g` holds the merged
    /// `(key, grad)` rows trainer `g` owns this step, in canonical
    /// arrival order. Written by the owner between A and B, read by every
    /// trainer between B and C (and by the C-leader for the write-through
    /// stall row count).
    pub(crate) update_slots: Vec<RwLock<Vec<(Key, Arc<[f32]>)>>>,
    /// Per-GPU phase instrumentation for the current step.
    pub(crate) phase_slots: Vec<Mutex<PhaseTimes>>,
    /// The double-buffered sample pipeline (see [`SampleRing`]).
    pub(crate) ring: SampleRing,
    /// Rotating-leader state (see [`LeaderState`]).
    pub(crate) leader: Mutex<LeaderState>,
    /// Keys of step `s + 1` with pending writes after registration, summed
    /// across trainers (each counts only its own shards).
    pub(crate) blocking_next: AtomicU64,
    /// Slowest trainer's write-registration time this step — the sharded
    /// critical path (the Exp #4a quantity under parallel registration).
    pub(crate) reg_ns_max: AtomicU64,
    /// Leader-composed per-iteration records.
    pub(crate) iters: Mutex<Vec<(IterBreakdown, f32)>>,
    pub(crate) gentry_times: Mutex<Vec<Nanos>>,
}

impl StepState {
    pub(crate) fn new(n_gpus: usize, dim: usize, steps: u64, lookahead: u64) -> Self {
        StepState {
            agg_slots: (0..n_gpus)
                .map(|_| RwLock::new(GradAggregator::new(dim)))
                .collect(),
            update_slots: (0..n_gpus).map(|_| RwLock::new(Vec::new())).collect(),
            phase_slots: (0..n_gpus)
                .map(|_| Mutex::new(PhaseTimes::default()))
                .collect(),
            ring: SampleRing::new(n_gpus, lookahead),
            leader: Mutex::new(LeaderState {
                it: IterBreakdown::default(),
                loss_sum: 0.0,
                window: FlushWindow::default(),
            }),
            blocking_next: AtomicU64::new(0),
            reg_ns_max: AtomicU64::new(0),
            iters: Mutex::new(Vec::with_capacity(steps as usize)),
            gentry_times: Mutex::new(Vec::with_capacity(steps as usize)),
        }
    }
}

/// The decentralized reduce, run by *every* trainer between barriers A
/// and B: fold the keys trainer `g` owns across all per-GPU aggregator
/// slots in GPU index order into `merged` (a per-trainer scratch arena),
/// then publish the drained rows in `update_slots[g]`.
///
/// See the module docs for the bit-equality argument. Visibility: the
/// deposits into `agg_slots` happen before barrier A; the slots are next
/// written before barrier A of step `s + 1`, which cannot complete until
/// every reducer is long past B — the read locks here never observe a
/// mid-swap aggregator.
pub(crate) fn reduce_own_shard(shared: &RunShared<'_>, g: usize, merged: &mut GradAggregator) {
    let n = shared.cfg.n_gpus();
    merged.clear();
    for slot in &shared.step.agg_slots {
        let agg = slot.read();
        for (key, grad) in agg.entries() {
            if GEntryStore::owner_of(key, n) == g {
                merged.add(key, grad);
            }
        }
    }
    let mut out = shared.step.update_slots[g].write();
    out.clear();
    merged.drain_arcs(&mut out);
}

/// The A-leader's (now O(1)) work between barriers A and B: route flusher
/// ledger attribution to this step, end the model's step, and reset the
/// per-step atomics. The heavy lifting the A-leader used to do — merge,
/// publish, synchronous apply, lookahead re-sampling — is decentralized
/// into [`reduce_own_shard`], the per-owner write-through apply, and the
/// [`SampleRing`].
pub(crate) fn leader_prepare(shared: &RunShared<'_>, s: u64) {
    // Route flusher-lane ledger attribution to this step (±1-step
    // approximation: background work between barrier A of step s and
    // barrier A of step s + 1 books to step s).
    shared.cfg.telemetry.ledger_advance(s);
    shared.model.end_step(s);
    // Safe to reset while other trainers reduce: they only touch these
    // counters after barrier B.
    shared.step.blocking_next.store(0, Ordering::Release);
    shared.step.reg_ns_max.store(0, Ordering::Release);
}

/// The B-leader's compose, run between barriers B and C (after its own
/// registration phase): fold the per-GPU phase times into the iteration's
/// maxima. This must finish before C — once trainers pass C they may
/// deposit step `s + 1` times into the same slots.
pub(crate) fn compose_phases(shared: &RunShared<'_>) {
    let mut leader = shared.step.leader.lock();
    let mut it = IterBreakdown::default();
    let mut loss_sum = 0.0f32;
    for slot in &shared.step.phase_slots {
        let p = slot.lock();
        it.comm = it.comm.max(p.comm);
        it.host_dram = it.host_dram.max(p.host_dram);
        it.cache = it.cache.max(p.cache);
        it.other = it.other.max(p.other);
        loss_sum += p.loss;
    }
    leader.it = it;
    leader.loss_sum = loss_sum;
}

/// The C-leader's bookkeeping after barrier C: raise the PQ scan bound,
/// convert the measured registration maximum to reference-machine terms,
/// model the stall, and push the iteration record. Nothing here gates the
/// other trainers' next step — they are already past C — and the next
/// barrier A cannot complete before this thread arrives, so the next
/// [`leader_prepare`] (and the owners' update-slot rewrites, which happen
/// after that barrier) never race these reads.
pub(crate) fn leader_finish(shared: &RunShared<'_>, s: u64) {
    let cfg = shared.cfg;
    let n = cfg.n_gpus();
    if let Some(bound) = shared.strategy.upper_bound_after(s, cfg.lookahead) {
        // Scan-range compression (§3.4); the raised bound may unblock
        // parked flushers' scan ranges.
        shared.pq.set_upper_bound(bound);
        shared.flush.notify_all();
    }

    // Convert the measured registration time to reference-machine terms:
    // divide by how much slower this host runs the canonical registration
    // probe than the reference controller (see `calibrate`). Relative
    // effects — tree heap vs two-level PQ, sharded vs serial registration,
    // batch sizes — are already inside the measurement and survive intact.
    let slowdown = crate::calibrate::host_slowdown(cfg.cost.gentry_op_reference_ns(128));
    let gentry_time = if shared.strategy.uses_flushers() {
        let max_ns = shared.step.reg_ns_max.load(Ordering::Acquire);
        Nanos::from_nanos(max_ns) * (1.0 / slowdown)
    } else {
        // Write-through has no g-entries; its flush cost is the stall.
        Nanos::ZERO
    };
    shared.step.gentry_times.lock().push(gentry_time);

    let mut leader = shared.step.leader.lock();
    let mut it = leader.it;
    let loss_sum = leader.loss_sum;
    // The controller/flushers contend with trainers for CPU cores: charge
    // an oversubscription factor on the critical-path registration time
    // (the Fig 17 "too many flushing threads divert CPU" effect).
    let cores = cfg.cost.topology().host().cpu_cores.max(1);
    let oversub = ((n + cfg.flush_threads + 2) as f64 / cores as f64).max(1.0);
    it.other += gentry_time * oversub + cfg.cost.framework_frugal();
    it.stall = if shared.strategy.uses_flushers() {
        // Advance the flusher-cost window every step so the per-row
        // estimate tracks *current* flusher behaviour. The claim phase
        // (sorting + g-entry extraction) counts on the dequeue side: like
        // the PQ dequeue it is queue bookkeeping, not host-apply work, and
        // keeping it out of the apply rate keeps the modeled per-row apply
        // comparable across trainer counts.
        let (deq_ns, apply_ns) = stall::windowed_per_row(
            &mut leader.window,
            shared.metrics.flush_dequeue_ns.get() + shared.metrics.flush_claim_ns.get(),
            shared.metrics.flush_apply_ns.get(),
            shared.metrics.flush_rows.get(),
        );
        // Which rows gate the next wait is the strategy's call: next-step
        // readers under P²F, every pending key under FIFO.
        let blocking = shared.strategy.stall_rows(
            shared.step.blocking_next.load(Ordering::Acquire),
            shared.gstore.pending_keys() as u64,
        );
        shared.metrics.blocking_rows_next.set(blocking as i64);
        stall::virtual_stall(shared, s, blocking, deq_ns, apply_ns)
    } else {
        // Write-through: the modeled synchronous flush of this step's
        // whole update list. The owners' slots are stable until after the
        // next barrier A, which waits on this thread.
        let rows: u64 = shared
            .step
            .update_slots
            .iter()
            .map(|slot| slot.read().len() as u64)
            .sum();
        shared.strategy.sync_stall(cfg, rows)
    };
    shared.metrics.stall_modeled_ns.add(it.stall.as_nanos());
    shared.step.iters.lock().push((it, loss_sum / n as f32));
}
