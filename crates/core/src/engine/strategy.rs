//! The [`FlushStrategy`] seam: how a run moves pending updates to host
//! memory, factored out of the training loop.
//!
//! The paper's central claim (§3.3, and the Exp ablations) is that
//! *priority-based* proactive flushing — not proactive flushing per se —
//! is what keeps the wait condition cheap. This trait makes that claim
//! testable by giving every sync policy the same seams into the engine:
//!
//! | decision                    | [`P2f`]                | [`WriteThrough`]  | [`Fifo`]            |
//! |-----------------------------|------------------------|-------------------|---------------------|
//! | background flushers         | yes                    | no                | yes                 |
//! | lookahead read registration | yes                    | no                | no                  |
//! | enqueue priority            | earliest future read   | —                 | write step          |
//! | step `s` waits while        | pending floor ≤ `s`    | never             | pending floor ≤ `s−1` |
//! | sharded synchronous apply   | —                      | owner's update slot | —                 |
//! | modeled stall rows          | blocking next-step keys| all rows (sync)   | own written keys    |
//!
//! All three preserve synchronous consistency (bit-equality with the
//! serial oracle): write-through flushes everything inside the barrier,
//! P²F guarantees every row read at step `s` is flushed before `s` starts
//! (Equation 1 priorities + the strict `PQ.top() > s` wait), and FIFO
//! guarantees the superset — *every* write from steps `< s` is flushed
//! before `s` starts, because priorities are write steps and the wait
//! threshold is `s − 1`. What FIFO gives up is selectivity: cold rows
//! nobody is about to read gate the next step anyway, which is exactly
//! the stall the priority ablation measures.
//!
//! Strategies are stateless; the engine holds one `&'static dyn
//! FlushStrategy` per run and consults it at barrier granularity (a
//! handful of virtual calls per step — nothing on the per-key paths).

use crate::config::{FlushMode, FrugalConfig};
use crate::gentry::PriorityPolicy;
use frugal_data::Key;
use frugal_embed::{HostStore, UpdateRule};
use frugal_sim::Nanos;
use std::sync::Arc;

/// One flush policy's decisions, consulted by the engine at the step
/// barriers. See the module docs for the per-strategy contract table.
pub(crate) trait FlushStrategy: Sync + std::fmt::Debug {
    /// Short name for logs and per-strategy telemetry attribution.
    #[allow(dead_code)] // exercised by tests; kept for log call sites
    fn name(&self) -> &'static str;

    /// The per-strategy modeled-stall counter name,
    /// `stall.<name>.modeled_ns` (a literal — the metric registry interns
    /// names as `&'static str`).
    fn stall_counter(&self) -> &'static str;

    /// True when the run spawns background flushing threads and registers
    /// g-entry writes (false only for write-through, where the leader
    /// applies everything inline).
    fn uses_flushers(&self) -> bool;

    /// True when the sample-queue prefetch registers lookahead reads.
    /// Only P²F needs them: its priorities are read-driven. FIFO priorities
    /// are write steps, so reads would be dead weight on the hot path.
    fn registers_reads(&self) -> bool;

    /// True when the modeled stall gates on this step's own writes
    /// (FIFO): the registration phase then counts just-written keys still
    /// pending into `blocking_next` — the same measurement point P²F uses
    /// for next-step readers. Counting later (after barrier C) loses the
    /// race against the flushers and reads a drained store.
    fn counts_written_backlog(&self) -> bool {
        false
    }

    /// How the g-entry store derives queue priorities from R/W sets.
    fn priority_policy(&self) -> PriorityPolicy;

    /// The wait-condition threshold for step `s`: block while any pending
    /// flush (queued or in-flight) has priority ≤ the threshold. `None`
    /// means step `s` never waits.
    fn wait_threshold(&self, s: u64) -> Option<u64>;

    /// The queue's initial scan upper bound (largest finite priority that
    /// can exist before step 0 completes), if the strategy bounds scans.
    fn initial_upper_bound(&self, lookahead: u64) -> Option<u64>;

    /// The scan upper bound to publish after step `s`'s registration, if
    /// any. The engine also wakes parked flushers when this returns `Some`
    /// (a raised bound can unblock their scan range).
    fn upper_bound_after(&self, s: u64, lookahead: u64) -> Option<u64>;

    /// The synchronous apply between barriers A and B, run by *every*
    /// trainer over the update slot it owns (the sharded successor of the
    /// old whole-list leader apply). Ownership partitions the key space,
    /// so the write-through applies touch disjoint host rows and need no
    /// coordination — the same discipline the background flushers already
    /// rely on. A no-op for strategies that defer to flushers.
    fn shard_apply(
        &self,
        store: &HostStore,
        rule: &dyn UpdateRule,
        own_updates: &[(Key, Arc<[f32]>)],
    );

    /// The modeled stall of this step's synchronous flush of `rows` rows
    /// ([`Nanos::ZERO`] for strategies that defer to background
    /// flushers). Consulted by the C-leader, which sums the owners'
    /// update-slot sizes — the modeled cost covers the *whole* step's
    /// list, exactly as the serial leader apply did.
    fn sync_stall(&self, cfg: &FrugalConfig, rows: u64) -> Nanos;

    /// How many rows the modeled stall must cover after step `s`:
    /// `blocking_next` is the registration-time count of gating keys with
    /// pending writes (P²F — next-step readers; FIFO — this step's own
    /// writes), `pending_keys` a post-barrier snapshot of *all* keys with
    /// pending writes (kept for strategies whose gate is not measurable
    /// at registration). The P²F/FIFO asymmetry in what gates the wait is
    /// the priority ablation's result.
    fn stall_rows(&self, blocking_next: u64, pending_keys: u64) -> u64;
}

/// Resolves the strategy singleton for `mode`.
pub(crate) fn for_mode(mode: FlushMode) -> &'static dyn FlushStrategy {
    match mode {
        FlushMode::P2f => &P2f,
        FlushMode::WriteThrough => &WriteThrough,
        FlushMode::Fifo => &Fifo,
    }
}

/// The full Frugal system: priority-based proactive flushing (§3.3).
#[derive(Debug)]
struct P2f;

impl FlushStrategy for P2f {
    fn name(&self) -> &'static str {
        "p2f"
    }

    fn stall_counter(&self) -> &'static str {
        "stall.p2f.modeled_ns"
    }

    fn uses_flushers(&self) -> bool {
        true
    }

    fn registers_reads(&self) -> bool {
        true
    }

    fn priority_policy(&self) -> PriorityPolicy {
        PriorityPolicy::EarliestRead
    }

    fn wait_threshold(&self, s: u64) -> Option<u64> {
        // §3.3: start step s only when PQ.top() > s (strictly).
        Some(s)
    }

    fn initial_upper_bound(&self, lookahead: u64) -> Option<u64> {
        // Before step 0 finishes registration, the finite priorities are
        // the prefetched reads of steps 0..L plus step-0 writes read at
        // ≤ L + 1 by the time the bound next rises.
        Some(lookahead + 1)
    }

    fn upper_bound_after(&self, s: u64, lookahead: u64) -> Option<u64> {
        // Scan-range compression (§3.4): no finite priority can exceed
        // the prefetch horizon.
        Some(s + 1 + lookahead)
    }

    fn shard_apply(&self, _store: &HostStore, _rule: &dyn UpdateRule, _own: &[(Key, Arc<[f32]>)]) {}

    fn sync_stall(&self, _cfg: &FrugalConfig, _rows: u64) -> Nanos {
        Nanos::ZERO
    }

    fn stall_rows(&self, blocking_next: u64, _pending_keys: u64) -> u64 {
        blocking_next
    }
}

/// The Frugal-Sync baseline: every trainer applies the updates it owns
/// inside the barrier; the time the whole list would take on real
/// hardware is the stall (§3.1).
#[derive(Debug)]
struct WriteThrough;

impl FlushStrategy for WriteThrough {
    fn name(&self) -> &'static str {
        "write_through"
    }

    fn stall_counter(&self) -> &'static str {
        "stall.write_through.modeled_ns"
    }

    fn uses_flushers(&self) -> bool {
        false
    }

    fn registers_reads(&self) -> bool {
        false
    }

    fn priority_policy(&self) -> PriorityPolicy {
        // Unused: nothing is ever registered.
        PriorityPolicy::EarliestRead
    }

    fn wait_threshold(&self, _s: u64) -> Option<u64> {
        None
    }

    fn initial_upper_bound(&self, _lookahead: u64) -> Option<u64> {
        None
    }

    fn upper_bound_after(&self, _s: u64, _lookahead: u64) -> Option<u64> {
        None
    }

    fn shard_apply(&self, store: &HostStore, rule: &dyn UpdateRule, own: &[(Key, Arc<[f32]>)]) {
        // The write-through flush the paper describes, sharded by key
        // ownership: each trainer pushes its owned rows to host memory
        // inside the barrier (the real apply runs at host-memcpy speed
        // and is not representative; the cost model supplies the stall).
        // Applied through the shared rule — the same host-path state the
        // flushers would use — so stateful optimizers expose correct
        // `state_snapshot`s to cache fills in this mode too. Owners touch
        // disjoint rows, so the concurrent applies are race-free.
        frugal_embed::apply_updates(store, rule, own);
    }

    fn sync_stall(&self, cfg: &FrugalConfig, rows: u64) -> Nanos {
        // Every update crosses PCIe synchronously with no background
        // overlap; the modeled stall covers the full step list.
        cfg.cost.sync_flush(rows, cfg.n_gpus())
    }

    fn stall_rows(&self, _blocking_next: u64, _pending_keys: u64) -> u64 {
        0
    }
}

/// The priority ablation: proactive background flushing in arrival order.
/// Synchronously consistent (step `s` starts only after *all* writes of
/// steps `< s` are flushed) but unselective — see the module docs.
#[derive(Debug)]
struct Fifo;

impl FlushStrategy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn stall_counter(&self) -> &'static str {
        "stall.fifo.modeled_ns"
    }

    fn uses_flushers(&self) -> bool {
        true
    }

    fn registers_reads(&self) -> bool {
        false
    }

    fn counts_written_backlog(&self) -> bool {
        true
    }

    fn priority_policy(&self) -> PriorityPolicy {
        PriorityPolicy::ArrivalOrder
    }

    fn wait_threshold(&self, s: u64) -> Option<u64> {
        // Priorities are write steps: step s is safe once every write from
        // steps < s has been flushed, i.e. while the pending floor ≤ s − 1
        // the trainer must wait. Step 0 has nothing before it.
        s.checked_sub(1)
    }

    fn initial_upper_bound(&self, _lookahead: u64) -> Option<u64> {
        // The only finite priorities before the first bound update are
        // step-0 writes.
        Some(0)
    }

    fn upper_bound_after(&self, s: u64, _lookahead: u64) -> Option<u64> {
        // Write priorities never exceed the next step.
        Some(s + 1)
    }

    fn shard_apply(&self, _store: &HostStore, _rule: &dyn UpdateRule, _own: &[(Key, Arc<[f32]>)]) {}

    fn sync_stall(&self, _cfg: &FrugalConfig, _rows: u64) -> Nanos {
        Nanos::ZERO
    }

    fn stall_rows(&self, blocking_next: u64, _pending_keys: u64) -> u64 {
        // Every write of this step gates the next — the stall P²F's
        // read-driven priorities avoid. The count comes from
        // `blocking_next`, filled at registration time (see
        // `counts_written_backlog`); the post-barrier `pending_keys`
        // snapshot is taken after the flushers have already drained the
        // backlog and would report ~0.
        blocking_next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_resolution_and_names() {
        assert_eq!(for_mode(FlushMode::P2f).name(), "p2f");
        assert_eq!(for_mode(FlushMode::WriteThrough).name(), "write_through");
        assert_eq!(for_mode(FlushMode::Fifo).name(), "fifo");
    }

    #[test]
    fn p2f_contract() {
        let s = for_mode(FlushMode::P2f);
        assert!(s.uses_flushers() && s.registers_reads());
        assert_eq!(s.priority_policy(), PriorityPolicy::EarliestRead);
        assert_eq!(s.wait_threshold(0), Some(0));
        assert_eq!(s.wait_threshold(7), Some(7));
        assert_eq!(s.initial_upper_bound(10), Some(11));
        assert_eq!(s.upper_bound_after(4, 10), Some(15));
        assert_eq!(s.stall_rows(3, 100), 3, "only next-step readers gate");
    }

    #[test]
    fn write_through_contract() {
        let s = for_mode(FlushMode::WriteThrough);
        assert!(!s.uses_flushers() && !s.registers_reads());
        assert_eq!(s.wait_threshold(5), None, "never waits");
        assert_eq!(s.upper_bound_after(5, 10), None);
    }

    #[test]
    fn sync_stall_charges_only_write_through() {
        let cfg = FrugalConfig::commodity(2, 10);
        assert_eq!(for_mode(FlushMode::P2f).sync_stall(&cfg, 100), Nanos::ZERO);
        assert_eq!(for_mode(FlushMode::Fifo).sync_stall(&cfg, 100), Nanos::ZERO);
        let wt = for_mode(FlushMode::WriteThrough).sync_stall(&cfg, 100);
        assert!(wt > Nanos::ZERO, "write-through models the sync flush");
    }

    #[test]
    fn fifo_contract() {
        let s = for_mode(FlushMode::Fifo);
        assert!(s.uses_flushers() && !s.registers_reads());
        assert_eq!(s.priority_policy(), PriorityPolicy::ArrivalOrder);
        assert_eq!(s.wait_threshold(0), None, "nothing precedes step 0");
        assert_eq!(s.wait_threshold(5), Some(4), "all writes < 5 must land");
        assert_eq!(s.initial_upper_bound(10), Some(0));
        assert_eq!(s.upper_bound_after(4, 10), Some(5));
        assert!(s.counts_written_backlog(), "gate counted at registration");
        assert_eq!(
            s.stall_rows(30, 1),
            30,
            "registration-time backlog gates, not the drained snapshot"
        );
    }
}
