use super::*;
use crate::config::OptimizerKind;
use crate::model::PullToTarget;
use frugal_data::{KeyDistribution, SyntheticTrace};

fn small_cfg(n_gpus: usize, steps: u64) -> FrugalConfig {
    let mut cfg = FrugalConfig::commodity(n_gpus, steps);
    cfg.flush_threads = 2;
    cfg.lookahead = 4;
    // Mean-normalized gradients: a higher rate keeps the convergence
    // tests fast while staying stable (lr * occurrences/batch < 2).
    cfg.lr = 2.0;
    cfg
}

fn trace(n_keys: u64, batch: usize, n_gpus: usize) -> SyntheticTrace {
    SyntheticTrace::new(n_keys, KeyDistribution::Zipf(0.9), batch, n_gpus, 3).unwrap()
}

#[test]
fn frugal_trains_and_reduces_loss() {
    let t = trace(500, 64, 2);
    let model = PullToTarget::new(8, 1);
    let engine = FrugalEngine::new(small_cfg(2, 30), 500, 8);
    let report = engine.run(&t, &model);
    assert_eq!(report.stats.len(), 30);
    assert!(
        report.final_loss < report.first_loss * 0.7,
        "loss {} -> {}",
        report.first_loss,
        report.final_loss
    );
    assert!(report.throughput() > 0.0);
    // The flush-path metrics must populate on a P2F run.
    assert!(report.flush_rows > 0, "P2F run must flush rows");
    assert!(report.mean_flush_apply_ns_row() > 0.0);
}

#[test]
fn fifo_trains_and_flushes_in_background() {
    let t = trace(500, 64, 2);
    let model = PullToTarget::new(8, 1);
    let engine = FrugalEngine::new(small_cfg(2, 30).fifo(), 500, 8);
    let report = engine.run(&t, &model);
    assert_eq!(report.stats.len(), 30);
    assert!(report.final_loss < report.first_loss * 0.7);
    // FIFO is proactive: updates reach the host via the flusher pool.
    assert!(report.flush_rows > 0, "FIFO run must flush rows");
}

#[test]
fn checked_run_has_no_violations_or_races() {
    let t = trace(300, 48, 2);
    let model = PullToTarget::new(4, 2);
    let engine = FrugalEngine::new(small_cfg(2, 25).checked(), 300, 4);
    let report = engine.run(&t, &model);
    assert_eq!(report.violations, 0, "P2F must uphold invariant (2)");
    assert_eq!(report.races, 0, "P2F must prevent host-row races");
}

#[test]
fn checked_fifo_run_has_no_races() {
    // FIFO registers no reads, so invariant (2) is trivially clean; the
    // seqlock race detector still covers the store and state table.
    let t = trace(300, 48, 2);
    let model = PullToTarget::new(4, 2);
    let engine = FrugalEngine::new(small_cfg(2, 25).fifo().checked(), 300, 4);
    let report = engine.run(&t, &model);
    assert_eq!(report.races, 0, "FIFO must prevent host-row races");
    assert_eq!(report.violations, 0);
}

#[test]
fn write_through_matches_p2f_parameters() {
    // Synchronous consistency: both flushing strategies must produce
    // bit-identical parameters.
    let t = trace(200, 32, 2);
    let model = PullToTarget::new(4, 5);
    let p2f = FrugalEngine::new(small_cfg(2, 20), 200, 4);
    p2f.run(&t, &model);
    let sync = FrugalEngine::new(small_cfg(2, 20).write_through(), 200, 4);
    sync.run(&t, &model);
    for key in 0..200 {
        assert_eq!(
            p2f.store().row_vec(key),
            sync.store().row_vec(key),
            "key {key} diverged"
        );
    }
}

#[test]
fn treeheap_pq_produces_same_parameters() {
    let t = trace(150, 16, 2);
    let model = PullToTarget::new(4, 9);
    let two = FrugalEngine::new(small_cfg(2, 15), 150, 4);
    two.run(&t, &model);
    let mut cfg = small_cfg(2, 15);
    cfg.pq = PqKind::TreeHeap;
    let heap = FrugalEngine::new(cfg, 150, 4);
    heap.run(&t, &model);
    for key in 0..150 {
        assert_eq!(two.store().row_vec(key), heap.store().row_vec(key));
    }
}

#[test]
fn three_gpu_partitions_agree_with_serial() {
    // 3 GPUs: the g-entry shard partition (shard % 3) does not coincide
    // with the cache owner partition (key % 3) because 3 ∤ 64 — the two
    // filters in `register_phase` must stay independent. All five
    // execution strategies must produce bit-identical parameters.
    let n_keys = 180u64;
    let t = trace(n_keys, 33, 3);
    let model = PullToTarget::new(4, 11);
    let p2f = FrugalEngine::new(small_cfg(3, 12), n_keys, 4);
    p2f.run(&t, &model);
    let mut heap_cfg = small_cfg(3, 12);
    heap_cfg.pq = PqKind::TreeHeap;
    let heap = FrugalEngine::new(heap_cfg, n_keys, 4);
    heap.run(&t, &model);
    let sync = FrugalEngine::new(small_cfg(3, 12).write_through(), n_keys, 4);
    sync.run(&t, &model);
    let fifo = FrugalEngine::new(small_cfg(3, 12).fifo(), n_keys, 4);
    fifo.run(&t, &model);
    let cfg = small_cfg(3, 12);
    let serial = crate::serial::train_serial_with(&t, &model, 12, cfg.lr, cfg.seed, cfg.optimizer);
    for key in 0..n_keys {
        let want = serial.store.row_vec(key);
        assert_eq!(p2f.store().row_vec(key), want, "p2f key {key}");
        assert_eq!(heap.store().row_vec(key), want, "treeheap key {key}");
        assert_eq!(sync.store().row_vec(key), want, "write-through key {key}");
        assert_eq!(fifo.store().row_vec(key), want, "fifo key {key}");
    }
}

#[test]
fn eight_gpu_partitions_agree_with_serial() {
    // 8 GPUs — the paper's commodity testbed width, and the first width
    // where 8 | 64 makes the g-entry shard partition (shard % 8) a strict
    // coarsening of the cache owner partition (key % 8). Both PQs, FIFO,
    // and write-through must stay bit-identical to the serial oracle with
    // every trainer carrying micro-batches (8 | 32).
    let n_keys = 200u64;
    let t = trace(n_keys, 32, 8);
    let model = PullToTarget::new(4, 11);
    let p2f = FrugalEngine::new(small_cfg(8, 12), n_keys, 4);
    p2f.run(&t, &model);
    let mut heap_cfg = small_cfg(8, 12);
    heap_cfg.pq = PqKind::TreeHeap;
    let heap = FrugalEngine::new(heap_cfg, n_keys, 4);
    heap.run(&t, &model);
    let sync = FrugalEngine::new(small_cfg(8, 12).write_through(), n_keys, 4);
    sync.run(&t, &model);
    let fifo = FrugalEngine::new(small_cfg(8, 12).fifo(), n_keys, 4);
    fifo.run(&t, &model);
    let cfg = small_cfg(8, 12);
    let serial = crate::serial::train_serial_with(&t, &model, 12, cfg.lr, cfg.seed, cfg.optimizer);
    for key in 0..n_keys {
        let want = serial.store.row_vec(key);
        assert_eq!(p2f.store().row_vec(key), want, "p2f key {key}");
        assert_eq!(heap.store().row_vec(key), want, "treeheap key {key}");
        assert_eq!(sync.store().row_vec(key), want, "write-through key {key}");
        assert_eq!(fifo.store().row_vec(key), want, "fifo key {key}");
    }
}

#[test]
fn adagrad_multi_flusher_partitions_agree_with_serial() {
    // The dense lock-free Adagrad state under multiple flushers: all
    // five execution strategies (P2F two-level, tree heap, write-through,
    // FIFO, serial oracle) must produce bit-identical parameters, exactly
    // as the SGD variant above.
    let n_keys = 180u64;
    let t = trace(n_keys, 33, 3);
    let model = PullToTarget::new(4, 13);
    let mut cfg = small_cfg(3, 12);
    cfg.optimizer = OptimizerKind::Adagrad;
    cfg.flush_threads = 3;
    let p2f = FrugalEngine::new(cfg.clone(), n_keys, 4);
    p2f.run(&t, &model);
    let mut heap_cfg = cfg.clone();
    heap_cfg.pq = PqKind::TreeHeap;
    let heap = FrugalEngine::new(heap_cfg, n_keys, 4);
    heap.run(&t, &model);
    let sync = FrugalEngine::new(cfg.clone().write_through(), n_keys, 4);
    sync.run(&t, &model);
    let fifo = FrugalEngine::new(cfg.clone().fifo(), n_keys, 4);
    fifo.run(&t, &model);
    let serial = crate::serial::train_serial_with(&t, &model, 12, cfg.lr, cfg.seed, cfg.optimizer);
    for key in 0..n_keys {
        let want = serial.store.row_vec(key);
        assert_eq!(p2f.store().row_vec(key), want, "p2f key {key}");
        assert_eq!(heap.store().row_vec(key), want, "treeheap key {key}");
        assert_eq!(sync.store().row_vec(key), want, "write-through key {key}");
        assert_eq!(fifo.store().row_vec(key), want, "fifo key {key}");
    }
}

#[test]
fn checked_adagrad_run_has_no_violations_or_races() {
    // Checked mode covers both the host store and the dense Adagrad
    // state table; a protocol-respecting run must trip neither.
    let t = trace(300, 48, 2);
    let model = PullToTarget::new(4, 2);
    let mut cfg = small_cfg(2, 25).checked();
    cfg.optimizer = OptimizerKind::Adagrad;
    let engine = FrugalEngine::new(cfg, 300, 4);
    let report = engine.run(&t, &model);
    assert_eq!(report.violations, 0, "P2F must uphold invariant (2)");
    assert_eq!(report.races, 0, "no store or state-table races");
    assert!(report.flush_rows > 0);
}

#[test]
fn single_gpu_run_works() {
    let t = trace(100, 16, 1);
    let model = PullToTarget::new(4, 3);
    let engine = FrugalEngine::new(small_cfg(1, 10), 100, 4);
    let report = engine.run(&t, &model);
    assert_eq!(report.stats.len(), 10);
    assert_eq!(report.violations, 0);
}

#[test]
fn cache_gets_hits_on_skewed_keys() {
    let t = trace(1_000, 128, 2);
    let model = PullToTarget::new(4, 4);
    let mut cfg = small_cfg(2, 20);
    cfg.cache_ratio = 0.10;
    let engine = FrugalEngine::new(cfg, 1_000, 4);
    let report = engine.run(&t, &model);
    assert!(
        report.hit_ratio > 0.05,
        "expected hot-key hits, got {}",
        report.hit_ratio
    );
}

#[test]
fn parked_flushers_still_drain() {
    // A throttled, tiny run leaves flushers mostly idle: they must park
    // (parked_ns grows) yet still drain every deferred update by the
    // time `run` returns (the engine debug-asserts pending_keys == 0).
    let t = trace(120, 16, 2);
    let model = PullToTarget::new(4, 6);
    let telemetry = frugal_telemetry::Telemetry::new();
    let mut cfg = small_cfg(2, 8).with_telemetry(telemetry.clone());
    cfg.flush_throttle_us = 50;
    let engine = FrugalEngine::new(cfg, 120, 4);
    let report = engine.run(&t, &model);
    assert_eq!(report.stats.len(), 8);
    let summary = report.telemetry.expect("telemetry on");
    let parked = summary
        .metrics
        .counters
        .iter()
        .find(|(name, _)| name == "flusher.parked_ns")
        .map(|(_, v)| *v)
        .unwrap_or(0);
    assert!(parked > 0, "idle flushers should park, not spin");
    // And the run's parameters still match the serial oracle.
    let cfg2 = small_cfg(2, 8);
    let serial =
        crate::serial::train_serial_with(&t, &model, 8, cfg2.lr, cfg2.seed, cfg2.optimizer);
    for key in 0..120 {
        assert_eq!(engine.store().row_vec(key), serial.store.row_vec(key));
    }
}

#[test]
fn per_strategy_stall_counters_attribute_by_name() {
    // Each mode's modeled stall lands on its own registry counter, so
    // telemetry snapshots from different strategies stay comparable.
    for (cfg, name) in [
        (small_cfg(2, 8), "stall.p2f.modeled_ns"),
        (small_cfg(2, 8).fifo(), "stall.fifo.modeled_ns"),
        (
            small_cfg(2, 8).write_through(),
            "stall.write_through.modeled_ns",
        ),
    ] {
        let telemetry = frugal_telemetry::Telemetry::new();
        let t = trace(120, 16, 2);
        let model = PullToTarget::new(4, 6);
        let engine = FrugalEngine::new(cfg.with_telemetry(telemetry.clone()), 120, 4);
        let report = engine.run(&t, &model);
        let summary = report.telemetry.expect("telemetry on");
        assert!(
            summary.metrics.counters.iter().any(|(n, _)| n == name),
            "{name} missing from registry"
        );
    }
}

#[test]
#[should_panic(expected = "GPU count mismatch")]
fn rejects_mismatched_gpu_count() {
    let t = trace(100, 16, 4);
    let model = PullToTarget::new(4, 3);
    let engine = FrugalEngine::new(small_cfg(2, 10), 100, 4);
    let _ = engine.run(&t, &model);
}

#[test]
#[should_panic(expected = "invalid FrugalConfig")]
fn rejects_invalid_config_at_construction() {
    let mut cfg = small_cfg(2, 10);
    cfg.flush_threads = 0;
    let _ = FrugalEngine::new(cfg, 100, 4);
}
