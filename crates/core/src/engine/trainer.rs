//! The per-GPU training loop (paper §3.2's "training process") and its
//! registration phase.

use super::step::{self, PhaseTimes};
use super::RunShared;
use crate::gentry::{GEntryStore, PqOpScratch};
use crate::wait;
use frugal_data::{Key, KeyHashMap, KeyHashSet};
use frugal_embed::{GpuCache, GradAggregator};
use frugal_sim::{HostPath, Nanos};
use frugal_telemetry::{
    LaneKind, LedgerLane, LedgerPhase, Phase, SpanArgs, StallRecord, ThreadRecorder,
};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use super::barrier::SpinBarrier;

/// A trainer's reusable hot-loop buffers: batch dedup, row staging, the
/// gradient aggregator, and the registration-side shard buckets. Everything
/// here is cleared (capacity kept) instead of re-allocated, so after
/// warm-up the per-step loop allocates only what is semantically shared
/// (the per-row `Arc` gradients and the workload's sampled key lists).
pub(crate) struct StepScratch {
    /// Batch dedup: key → slot in `unique`.
    index_of: KeyHashMap<usize>,
    unique: Vec<Key>,
    /// Unique rows, `unique.len() × dim`.
    urows: Vec<f32>,
    /// Per-sample rows, `keys.len() × dim`.
    rows: Vec<f32>,
    /// Cache misses: `(unique index, key)`.
    missing: Vec<(usize, Key)>,
    /// Per-GPU gradient aggregator (swapped with the deposit slot).
    agg: GradAggregator,
    /// Reduce arena: this trainer's owned-key merge across all deposit
    /// slots (see [`step::reduce_own_shard`]). Drained into the trainer's
    /// update slot every step; allocations kept warm.
    merged: GradAggregator,
    /// Own-shard write batches, one bucket per owned g-entry shard.
    write_bufs: Vec<Vec<(Key, Arc<[f32]>)>>,
    /// Own-shard read batches, one bucket per owned g-entry shard.
    read_bufs: Vec<Vec<Key>>,
    /// Per-step dedup of own-shard lookahead reads.
    read_seen: KeyHashSet,
    /// Staged PQ operations for the g-entry batch calls.
    pq_ops: PqOpScratch,
    /// Own-shard deduped lookahead key lists by `step % ring len`, written
    /// at registration time and read back for the blocking-rows count —
    /// the cache that replaces the old re-query of `workload.keys(s + 1, g)`.
    ring: Vec<Vec<Key>>,
    /// Owner-local keys of the lookahead step, fed to the cache policy.
    /// Distinct from the ring: the ring partitions by *g-entry shard*
    /// (`shard_of(key) % n`), the cache by *owner* (`key % n`) — different
    /// partitions of the same key space.
    cache_ahead: Vec<Key>,
    /// Prefetch candidates for the stall-overlap fill loop.
    prefetch: Vec<Key>,
    /// Per-flusher "observed idle" flags for the prefetch safety protocol.
    flusher_idle: Vec<bool>,
}

impl StepScratch {
    pub(crate) fn new(dim: usize, lookahead: u64, n_gpus: usize, gpu: usize) -> Self {
        let owned = (0..GEntryStore::n_shards())
            .filter(|sid| sid % n_gpus == gpu)
            .count();
        StepScratch {
            index_of: KeyHashMap::default(),
            unique: Vec::new(),
            urows: Vec::new(),
            rows: Vec::new(),
            missing: Vec::new(),
            agg: GradAggregator::new(dim),
            merged: GradAggregator::new(dim),
            write_bufs: (0..owned).map(|_| Vec::new()).collect(),
            read_bufs: (0..owned).map(|_| Vec::new()).collect(),
            read_seen: KeyHashSet::default(),
            pq_ops: PqOpScratch::default(),
            // Slots for steps s..=s+L plus one of slack so a slot is never
            // rewritten before the blocking count for its step has run.
            ring: (0..lookahead + 2).map(|_| Vec::new()).collect(),
            cache_ahead: Vec::new(),
            prefetch: Vec::new(),
            flusher_idle: Vec::new(),
        }
    }
}

/// Registers trainer `g`'s owned-shard reads of step `read_step`, drawing
/// every GPU's key list of that step from the sample ring (published at
/// the top of step `read_step - L`, ordered before these reads by barrier
/// A): filters to owned shards, dedups into the shard buckets, registers
/// each bucket with one batch call, and files the deduped (shard-grouped)
/// keys in the lookahead ring for the later blocking-rows count.
pub(crate) fn register_own_reads(
    shared: &RunShared<'_>,
    g: usize,
    read_step: u64,
    scratch: &mut StepScratch,
) {
    let n = shared.cfg.n_gpus();
    for buf in &mut scratch.read_bufs {
        buf.clear();
    }
    scratch.read_seen.clear();
    for gg in 0..n {
        let list = shared.step.ring.read(gg, read_step);
        for &key in list.iter() {
            let sid = GEntryStore::shard_of(key);
            if sid % n == g && scratch.read_seen.insert(key) {
                scratch.read_bufs[sid / n].push(key);
            }
        }
    }
    let slot = (read_step % scratch.ring.len() as u64) as usize;
    scratch.ring[slot].clear();
    for buf in &scratch.read_bufs {
        if !buf.is_empty() {
            shared
                .gstore
                .add_reads_batch(read_step, buf, shared.pq.as_ref(), &mut scratch.pq_ops);
            scratch.ring[slot].extend_from_slice(buf);
        }
    }
}

/// Feeds the cache policy the owner-local keys of `read_step`'s batch for
/// GPU `g` — the cache-side view of the lookahead window (skipped when the
/// policy ignores it). Only GPU `g`'s *own* key list matters: forward pass
/// 1 queries the local cache for `g`'s batch keys filtered to owner-local,
/// so that is exactly the access stream the oracle must predict. (The
/// lookahead ring is the wrong feed: it partitions by g-entry shard and
/// mixes in other GPUs' keys.)
pub(crate) fn feed_cache_lookahead(
    shared: &RunShared<'_>,
    g: usize,
    read_step: u64,
    own_list: &[Key],
    scratch: &mut StepScratch,
    cache: &mut GpuCache,
) {
    scratch.cache_ahead.clear();
    for &key in own_list {
        if shared.sharding.is_local(key, g) {
            scratch.cache_ahead.push(key);
        }
    }
    cache.prepare_step(read_step, &scratch.cache_ahead);
}

/// Every trainer's work between barriers B and C: apply the owner-routed
/// cache updates, register own-shard g-entry writes (batch), register the
/// own-shard reads of step `s + L` (batch, read-driven strategies only),
/// and count the own-shard keys of step `s + 1` whose pending writes will
/// gate the next wait condition.
///
/// Shard ownership: trainer `g` owns every [`GEntryStore`] shard `sid`
/// with `sid % n_gpus == g`. Shards partition the key space, so exactly
/// one trainer mutates any given g-entry this step — trainers never
/// contend on a shard lock, only (rarely) with flushers draining it.
#[allow(clippy::too_many_arguments)]
pub(crate) fn register_phase(
    shared: &RunShared<'_>,
    rec: &ThreadRecorder,
    lane: &LedgerLane,
    s: u64,
    g: usize,
    scratch: &mut StepScratch,
    cache: &mut GpuCache,
    cache_opt: &mut dyn frugal_tensor::RowOptimizer,
) {
    let cfg = shared.cfg;
    let n = cfg.n_gpus();
    let proactive = shared.strategy.uses_flushers();
    let t0 = Instant::now();

    // Single pass over the step's updates — the per-owner reduced slots,
    // scanned in owner index order: fold owner-routed rows into the local
    // cache (the cache sees the same per-key gradient sequence as the
    // host path, keeping both bit-identical) and bucket own-shard rows
    // for batch registration. The slots were written between A and B by
    // their owners; barrier B orders those writes before these reads.
    for buf in &mut scratch.write_bufs {
        buf.clear();
    }
    for (owner, owner_slot) in shared.step.update_slots.iter().enumerate() {
        let updates = owner_slot.read();
        // G-entry ownership is the same partition the reduce used, so the
        // own-shard write buckets fill exclusively from this trainer's
        // own slot; the cache update still scans every slot (cache
        // ownership — `key % n` — is a different partition).
        let bucket_own = proactive && owner == g;
        for (key, grad) in updates.iter() {
            if shared.sharding.is_local(*key, g) {
                if let Some(row) = cache.get_mut(key) {
                    cache_opt.update_row(*key, row, grad);
                }
            }
            if bucket_own {
                let sid = GEntryStore::shard_of(*key);
                scratch.write_bufs[sid / n].push((*key, Arc::clone(grad)));
            }
        }
    }
    if lane.is_enabled() {
        lane.add(s, LedgerPhase::CacheApply, t0.elapsed().as_nanos() as u64);
    }
    if proactive {
        // Write registration — the sharded critical path. The slowest
        // trainer's time here is the step's g-entry registration time
        // (what a serial leader used to spend on *all* keys).
        let t_writes = Instant::now();
        let mut own_rows = 0u64;
        for buf in &scratch.write_bufs {
            if !buf.is_empty() {
                own_rows += buf.len() as u64;
                shared
                    .gstore
                    .add_writes_batch(s, buf, shared.pq.as_ref(), &mut scratch.pq_ops);
            }
        }
        shared
            .step
            .reg_ns_max
            .fetch_max(t_writes.elapsed().as_nanos() as u64, Ordering::AcqRel);

        if shared.strategy.registers_reads() {
            // Sample-queue prefetch: the reads of step s + L, own shards
            // only, drawn from the sample ring (published at the top of
            // this step by each GPU's own trainer).
            let read_step = s + cfg.lookahead;
            if read_step < cfg.steps {
                register_own_reads(shared, g, read_step, scratch);
                if cache.uses_lookahead() {
                    let own_list = shared.step.ring.read(g, read_step);
                    feed_cache_lookahead(shared, g, read_step, own_list.as_slice(), scratch, cache);
                }
            }
        }
        // Fresh entries (and tightened priorities) may unblock flushers'
        // scan ranges; wake any parked ones.
        shared.flush.notify_all();

        if shared.strategy.registers_reads() && s + 1 < cfg.steps {
            // Blocking rows for step s + 1: reuse the deduped lookahead
            // keys registration filed in the ring — no workload re-query,
            // no fresh dedup set.
            let slot = ((s + 1) % scratch.ring.len() as u64) as usize;
            let blocked = shared.gstore.count_pending(&scratch.ring[slot]);
            if blocked > 0 {
                shared
                    .step
                    .blocking_next
                    .fetch_add(blocked, Ordering::AcqRel);
            }
        }
        if shared.strategy.counts_written_backlog() && s + 1 < cfg.steps {
            // Arrival-order (FIFO) gate for step s + 1: every just-written
            // key still pending blocks the next wait. Counting here — at
            // registration, before the backlog drains — is the same
            // measurement point the read-driven branch above uses; the
            // C-leader runs after the drain and would always read ~0.
            let mut blocked = 0u64;
            for buf in &scratch.write_bufs {
                blocked += shared.gstore.count_pending_writes(buf);
            }
            if blocked > 0 {
                shared
                    .step
                    .blocking_next
                    .fetch_add(blocked, Ordering::AcqRel);
            }
        }
        shared
            .metrics
            .gentry_batch_ns
            .add(t0.elapsed().as_nanos() as u64);
        rec.record_completed(Phase::GEntryUpdate, t0, SpanArgs::one("rows", own_rows));
        if lane.is_enabled() {
            lane.add(
                s,
                LedgerPhase::Registration,
                t_writes.elapsed().as_nanos() as u64,
            );
        }
    }
}

/// Converts P²F stall time into fill time (prefetch-capable policies
/// only): while the step-`s` wait condition holds, fill the cache with the
/// policy's step-`s+1` nominations, read *safely* from the host store.
///
/// Safety protocol — a host row may be read while flushers are applying
/// other rows, but never while any flusher could still write *this* row:
///
/// 1. **Per-key clean check.** `priority_of(key)` must show no pending
///    writes (`None` or `INFINITE`). During the wait no trainer is in its
///    registration phase (every trainer sits between barrier C of `s-1`
///    and barrier A of `s`), so no *new* writes for any key can appear
///    until this trainer leaves the wait — the check cannot go stale.
/// 2. **Flusher drain point.** A claim of the key's former writes
///    published its in-flight marker before extracting them from the
///    queue and holds it until the batch is durably applied; such claims
///    all started before check 1 passed. Observing every flusher slot
///    idle *at least once after* check 1 therefore proves those claims
///    finished, and batches claimed after the observation cannot contain
///    the key (check 1 + no new registration).
///
/// After both checks the key's host row — and its optimizer state, which
/// is only updated inside the same flush apply — is stable until
/// registration resumes, so the fill seeds the cache copy exactly like a
/// miss-path fill would, and bit-equality with the serial oracle is
/// preserved.
fn prefetch_during_stall(
    shared: &RunShared<'_>,
    s: u64,
    th: u64,
    cache: &mut GpuCache,
    cache_opt: &mut dyn frugal_tensor::RowOptimizer,
    scratch: &mut StepScratch,
    prefetch_fills: &mut u64,
) {
    use frugal_pq::INFINITE;
    let still_blocked = || wait::blocked_at(shared.pq.as_ref(), &shared.flush.inflight, th);
    // Nominations for the next step, minus already-cached keys (the feed
    // is owner-local by construction — see `feed_cache_lookahead`).
    scratch.prefetch.clear();
    cache.prefetch_plan(s + 1, &mut scratch.prefetch);
    let gstore = &shared.gstore;
    scratch
        .prefetch
        .retain(|&k| gstore.priority_of(k).is_none_or(|p| p == INFINITE));
    if scratch.prefetch.is_empty() {
        return;
    }
    // Check 2: observe every flusher idle at least once. Flushers pass
    // through idle between batches, so this resolves within a few batch
    // applies; bounded so a pathological schedule cannot pin us here.
    let inflight = &shared.flush.inflight;
    scratch.flusher_idle.clear();
    scratch.flusher_idle.resize(inflight.n_slots(), false);
    let mut remaining = inflight.n_slots();
    let mut polls = 0u32;
    loop {
        for (slot, seen) in scratch.flusher_idle.iter_mut().enumerate() {
            if !*seen && inflight.is_idle(slot) {
                *seen = true;
                remaining -= 1;
            }
        }
        if remaining == 0 {
            break;
        }
        polls += 1;
        if polls > 100_000 || !still_blocked() {
            // Stall over (or flushers mid-batch implausibly long):
            // abandon — prefetch is purely opportunistic.
            return;
        }
        std::hint::spin_loop();
    }
    // Both checks passed for every surviving key: fill until the wait
    // would end, then hand the CPU back to the real step.
    for &key in &scratch.prefetch {
        if !still_blocked() {
            break;
        }
        let store = shared.store;
        let outcome = cache.fill_into(key, |dst| store.read_row(key, dst));
        if !matches!(outcome, frugal_embed::InsertOutcome::Rejected) {
            if let Some(state) = shared.rule.state_snapshot(key) {
                cache_opt.seed_state(key, state);
            }
            *prefetch_fills += 1;
        }
    }
}

/// One training process (paper §3.2): the per-GPU loop.
pub(crate) fn trainer_loop(shared: &RunShared<'_>, barrier: &SpinBarrier, g: usize) {
    let cfg = shared.cfg;
    let rec = cfg.telemetry.recorder(format!("trainer-{g}"));
    let lane = cfg.telemetry.ledger_lane(LaneKind::Trainer);
    let dim = shared.model.dim();
    let n = cfg.n_gpus();
    let n_keys = shared.workload.n_keys();
    let cap = shared.sharding.cache_capacity(n_keys, cfg.cache_ratio);
    let mut cache = GpuCache::new(cap, dim, cfg.cache_policy);
    cache.set_hot_threshold(shared.sharding.hot_threshold(n_keys, cfg.cache_ratio));
    // Cache copies evolve with their own optimizer state: they see exactly
    // the same per-key gradient sequence as the host path, so both states
    // (and both values) stay bit-identical.
    let mut cache_opt = cfg.optimizer.build_local(cfg.lr);
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut total_fills = 0u64;
    let mut fill_ns = 0u64;
    let mut prefetch_fills = 0u64;
    let batch_per_gpu = shared.workload.samples_per_step() / n as u64;
    let mut scratch = StepScratch::new(dim, cfg.lookahead, n, g);
    // Strategy decisions hoisted out of the hot loop: one virtual call
    // each, here, instead of per step.
    let registers_reads = shared.strategy.registers_reads();

    // Bootstrap the sample ring: each trainer publishes its *own* GPU's
    // batches of steps 0..L — the in-loop publish then keeps the window
    // one step ahead. One barrier crossing orders every publish before
    // any cross-GPU ring read (the old bootstrap had each trainer
    // re-sample all n GPUs' lists itself: n² workload queries).
    for s0 in 0..cfg.lookahead.min(cfg.steps) {
        shared.step.ring.publish(g, s0, shared.workload.keys(s0, g));
    }
    barrier.wait();

    // Initial sample-queue prefetch (paper §3.2): each trainer registers
    // its own shards' reads of steps 0..L before the first step. No writes
    // exist yet, so this issues no queue operations; each trainer only
    // requires its *own* prefetch done before its own first wait, which
    // program order gives.
    if registers_reads {
        let feed_cache = cache.uses_lookahead();
        for s0 in 0..cfg.lookahead.min(cfg.steps) {
            register_own_reads(shared, g, s0, &mut scratch);
            if feed_cache {
                let own_list = shared.step.ring.read(g, s0);
                feed_cache_lookahead(shared, g, s0, own_list.as_slice(), &mut scratch, &mut cache);
            }
        }
    }

    for s in 0..cfg.steps {
        // Advance the cache policy's clock before anything observes step
        // `s` (the oracle prunes spent plan entries here).
        cache.begin_step(s);
        // Double-buffered sampling: draw step `s + L`'s batch for this
        // GPU *now*, before the wait condition, so sample generation
        // overlaps the stall window instead of sitting on the critical
        // path; the batch consumed below was published L steps ago.
        let sample_span = rec.span(Phase::Sample);
        let ahead = s + cfg.lookahead;
        if ahead < cfg.steps {
            shared.step.ring.publish(g, ahead, shared.workload.keys(ahead, g));
        }
        lane.add(s, LedgerPhase::Sample, sample_span.finish());
        // The strategy's wait condition — P²F's `PQ.top() > s` (§3.3), or
        // FIFO's "all writes < s flushed". The physical wait enforces
        // consistency; the *reported* stall is modeled by
        // [`super::stall::virtual_stall`] (see its docs for why).
        if !cfg.skip_wait {
            if let Some(th) = shared.strategy.wait_threshold(s) {
                let blocked = |shared: &RunShared<'_>| {
                    wait::blocked_at(shared.pq.as_ref(), &shared.flush.inflight, th)
                };
                if blocked(shared) {
                    // Stall attribution: what is this wait blocked *on*?
                    // The lowest deadline across the queue top and
                    // in-flight flushes, the outstanding backlog, the
                    // queue depth, and (best effort) a key sitting at the
                    // blocking priority.
                    let floor = wait::pending_floor(shared.pq.as_ref(), &shared.flush.inflight);
                    let pending = shared.gstore.pending_keys() as u64;
                    let (queue_depth, blocking_key) = if cfg.telemetry.is_enabled() {
                        (shared.pq.len() as u64, shared.pq.peek_top().map(|(k, _)| k))
                    } else {
                        (0, None)
                    };
                    let span = rec.span_with(
                        Phase::P2fWait,
                        SpanArgs::two("blocking_priority", floor, "pending_keys", pending),
                    );
                    if cache.wants_prefetch() {
                        // Convert stall time into next-step fills (oracle
                        // policy); falls through to the parked wait for
                        // whatever stall remains.
                        prefetch_during_stall(
                            shared,
                            s,
                            th,
                            &mut cache,
                            cache_opt.as_mut(),
                            &mut scratch,
                            &mut prefetch_fills,
                        );
                    }
                    shared.flush.wait_until(|| !blocked(shared));
                    let wait_ns = span.finish();
                    if wait_ns > 0 {
                        // Provenance: the flusher batch whose in-flight
                        // clear we (most plausibly) woke on — the other
                        // half of the Chrome-trace flow arrow.
                        let cleared_by = shared.flush.last_clear();
                        rec.flow_finish(cleared_by);
                        cfg.telemetry.record_stall(StallRecord {
                            step: s,
                            wait_ns,
                            blocking_priority: floor,
                            pending_keys: pending,
                            queue_depth,
                            blocking_key,
                            cleared_by,
                        });
                        lane.add(s, LedgerPhase::StallWait, wait_ns);
                    }
                }
            }
        }

        // Batch hand-off: this step's keys were published `L` steps ago
        // (or in the bootstrap). The read guard pins the slot through the
        // forward pass — safe, because only this trainer republishes the
        // slot, at step `s + 2`, long after the guard drops.
        let keys = shared.step.ring.read(g, s);

        // Forward pass 1 — cache query: dedup the batch and resolve unique
        // keys against the local cache, collecting the ones every cache
        // missed. All staging buffers are per-trainer scratch — cleared,
        // never re-allocated.
        let cq_span = rec.span(Phase::CacheQuery);
        scratch.index_of.clear();
        scratch.unique.clear();
        scratch.missing.clear();
        for &key in keys.iter() {
            if let std::collections::hash_map::Entry::Vacant(e) = scratch.index_of.entry(key) {
                e.insert(scratch.unique.len());
                scratch.unique.push(key);
            }
        }
        let unique_n = scratch.unique.len();
        scratch.urows.clear();
        scratch.urows.resize(unique_n * dim, 0.0);
        for (i, &key) in scratch.unique.iter().enumerate() {
            let slot = &mut scratch.urows[i * dim..(i + 1) * dim];
            if shared.sharding.is_local(key, g) {
                if let Some(row) = cache.get(&key) {
                    frugal_embed::kernels::copy(slot, row);
                    hits += 1;
                    continue;
                }
            }
            scratch.missing.push((i, key));
        }
        lane.add(s, LedgerPhase::CacheQuery, cq_span.finish());

        // Forward pass 2 — host reads (UVA zero-copy) for the cache misses.
        // Safe to split from pass 1: keys are unique within a step, so a
        // row admitted here can never be queried again before the barrier.
        let host_reads = scratch.missing.len() as u64;
        let mut fills = 0u64;
        let hr_span = rec.span_with(Phase::HostRead, SpanArgs::one("rows", host_reads));
        for &(i, key) in &scratch.missing {
            let slot = &mut scratch.urows[i * dim..(i + 1) * dim];
            // Verify the consistency invariant first when checking is on.
            if cfg.checked && !shared.gstore.invariant_holds(key, s) {
                shared.metrics.violations.incr();
            }
            shared.store.read_row(key, slot);
            misses += 1;
            // `admits` pre-gate keeps statically-rejected keys (static-hot
            // policy, cold tail) out of the fill timing entirely.
            if shared.sharding.is_local(key, g) && cache.admits(key) {
                let t_fill = Instant::now();
                let outcome = cache.insert_from_slice(key, slot);
                fill_ns += t_fill.elapsed().as_nanos() as u64;
                if !matches!(outcome, frugal_embed::InsertOutcome::Rejected) {
                    // Synchronize the cache-side optimizer with the host
                    // path's per-row state (safe: the wait condition
                    // guarantees this key has no in-flight updates while
                    // it is being read).
                    if let Some(state) = shared.rule.state_snapshot(key) {
                        cache_opt.seed_state(key, state);
                    }
                    fills += 1;
                }
            }
        }
        total_fills += fills;
        lane.add(s, LedgerPhase::HostRead, hr_span.finish());

        // Scatter unique rows to per-instance rows for the model.
        scratch.rows.clear();
        scratch.rows.resize(keys.len() * dim, 0.0);
        for (i, &key) in keys.iter().enumerate() {
            let u = scratch.index_of[&key];
            frugal_embed::kernels::copy(
                &mut scratch.rows[i * dim..(i + 1) * dim],
                &scratch.urows[u * dim..(u + 1) * dim],
            );
        }

        let compute_span = rec.span(Phase::Compute);
        let grads = shared.model.forward_backward(g, s, keys.as_slice(), &scratch.rows);

        // Aggregate this GPU's gradients per key in arrival order (the
        // aggregator arena is reused: swapped into the deposit slot below,
        // read by the reducers, swapped back and cleared next step).
        for (i, &key) in keys.iter().enumerate() {
            scratch
                .agg
                .add(key, &grads.emb_grads[i * dim..(i + 1) * dim]);
        }
        lane.add(s, LedgerPhase::Compute, compute_span.finish());

        // Modeled hardware times for this iteration.
        let cost = &cfg.cost;
        let row_bytes = (dim * 4) as u64;
        let phase = PhaseTimes {
            comm: if shared.model.dense_param_bytes() > 0 {
                cost.all_to_all(shared.model.dense_param_bytes())
            } else {
                Nanos::ZERO
            },
            host_dram: cost.host_read(HostPath::Uva, host_reads, row_bytes, n),
            cache: cost.cache_query(unique_n as u64) + cost.cache_update(fills),
            other: cost.dnn_time(
                shared.model.dense_flops_per_sample() * batch_per_gpu as f64,
                shared.model.dense_layers().max(1),
            ),
            loss: grads.loss,
        };
        // The batch guard is released before the barrier: the slot is
        // republished (by this trainer) only at step s + 2.
        drop(keys);
        // The non-critical-path flush writes are *not* charged — that is
        // precisely Frugal's point. Frugal-Sync charges them as stall via
        // the strategy's `sync_stall`.
        {
            let mut slot = shared.step.agg_slots[g].write();
            std::mem::swap(&mut *slot, &mut scratch.agg);
        }
        // The swapped-out arena still holds step s - 1's aggregates (the
        // reduce only *reads* the deposit slots); its readers all finished
        // before barrier B of step s - 1, so clearing here is safe.
        scratch.agg.clear();
        *shared.step.phase_slots[g].lock() = phase.clone();

        // Barrier A: aggregates deposited.
        let t_bar = lane.start();
        let a = barrier.wait();
        lane.add_since(s, LedgerPhase::BarrierA, t_bar);
        if a.is_leader() {
            let t_lead = lane.start();
            step::leader_prepare(shared, s);
            lane.add_since(s, LedgerPhase::LeaderApply, t_lead);
        }
        // Decentralized reduce: fold this trainer's owned keys across all
        // deposit slots (GPU index order — canonical), publish them in
        // this trainer's update slot, and run the strategy's sharded
        // synchronous apply (write-through) on the owned rows.
        let t_red = lane.start();
        step::reduce_own_shard(shared, g, &mut scratch.merged);
        {
            let own = shared.step.update_slots[g].read();
            shared
                .strategy
                .shard_apply(shared.store, shared.rule.as_ref(), &own);
        }
        lane.add_since(s, LedgerPhase::Reduce, t_red);
        // Barrier B: every owner's update slot is published. Everyone
        // registers their shards.
        let b = barrier.wait();
        register_phase(
            shared,
            &rec,
            &lane,
            s,
            g,
            &mut scratch,
            &mut cache,
            cache_opt.as_mut(),
        );
        if b.is_leader() {
            step::compose_phases(shared);
        }
        // Barrier C: registration complete — the step's entries are all
        // queued before any trainer can evaluate step s + 1's wait
        // condition. The C-leader finalizes bookkeeping concurrently.
        if barrier.wait().is_leader() {
            let t_lead = lane.start();
            step::leader_finish(shared, s);
            lane.add_since(s, LedgerPhase::LeaderApply, t_lead);
        }
    }

    shared.metrics.hits.add(hits);
    shared.metrics.misses.add(misses);
    shared.metrics.cache_fills.add(total_fills);
    shared.metrics.cache_fill_ns.add(fill_ns);
    shared.metrics.cache_prefetch_fills.add(prefetch_fills);
}
