//! g-entries: per-parameter metadata of the P²F algorithm (paper §3.3).
//!
//! Each parameter with upcoming reads or pending updates has a g-entry:
//!
//! * `R set` — future training steps that will read the parameter (filled
//!   by the controller's `L`-step lookahead).
//! * `W set` — pending `(step, Δ)` updates not yet flushed to host memory.
//! * `priority` — Equation (1): `min(R)` while `W ≠ ∅`, else ∞.
//!
//! The store keeps g-entries in sharded hash maps and mirrors every
//! priority change into the [`PriorityQueue`], preserving the paper's
//! insert-into-new-before-delete-from-old ordering (delegated to
//! [`PriorityQueue::adjust`]). Only entries with pending writes live in the
//! queue — entries with `W = ∅` have nothing to flush and, by Equation (1),
//! priority ∞, so keeping them out changes no observable behaviour.

use frugal_data::Key;
use frugal_pq::{Priority, PriorityQueue, INFINITE};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One parameter's pending updates, drained by a flushing thread.
///
/// Gradients are shared (`Arc`) because the same aggregated gradient also
/// travels to the owner GPU's cache-update list; sharing avoids cloning
/// every gradient on the training critical path.
pub type PendingWrites = Vec<(u64, Arc<[f32]>)>;

/// How a g-entry's queue priority derives from its R/W sets — the knob the
/// engine's flush strategies turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PriorityPolicy {
    /// Equation (1), the P²F policy: `min(R)` while `W ≠ ∅`, else ∞ — an
    /// entry's urgency is its earliest upcoming read.
    #[default]
    EarliestRead,
    /// The FIFO ablation: the earliest *pending write* step while `W ≠ ∅`,
    /// else ∞ — arrival-order flushing that ignores future reads. Under
    /// this policy an in-queue entry's priority never changes (its first
    /// pending write is fixed until a flusher claims the whole W set), so
    /// registration is pure enqueue — no `adjust` traffic at all.
    ArrivalOrder,
}

#[derive(Debug, Default)]
struct GEntry {
    r_set: BTreeSet<u64>,
    w_set: PendingWrites,
    /// Current priority; meaningful only while `in_pq`.
    priority: Priority,
    in_pq: bool,
}

impl GEntry {
    fn compute_priority(&self, policy: PriorityPolicy) -> Priority {
        if self.w_set.is_empty() {
            INFINITE
        } else {
            match policy {
                PriorityPolicy::EarliestRead => self.r_set.first().copied().unwrap_or(INFINITE),
                // W sets grow in step order, so the first element is the
                // earliest pending write.
                PriorityPolicy::ArrivalOrder => self.w_set[0].0,
            }
        }
    }

    fn is_dead(&self) -> bool {
        self.r_set.is_empty() && self.w_set.is_empty()
    }
}

const SHARDS: usize = 64;

/// Reusable scratch for the batch registration paths: the priority-queue
/// operations one shard's batch generates, staged so the queue sees a
/// single `enqueue_batch` + `adjust_batch` per shard instead of one call
/// per key. Owned by the caller (one per trainer) so the hot loop never
/// allocates after warm-up.
#[derive(Debug, Default)]
pub struct PqOpScratch {
    enqueues: Vec<(Key, Priority)>,
    moves: Vec<(Key, Priority, Priority)>,
    /// Arrival-order staging: bare keys for the uniform-priority enqueue.
    uniform: Vec<Key>,
}

/// The sharded g-entry store.
///
/// All mutations lock exactly one shard, so the controller, trainers, and
/// flushing threads proceed mostly independently.
#[derive(Debug)]
pub struct GEntryStore {
    shards: Vec<Mutex<HashMap<Key, GEntry>>>,
    /// Number of keys that currently have pending (unflushed) writes.
    pending_keys: AtomicUsize,
    /// How priorities derive from the R/W sets (fixed per run).
    policy: PriorityPolicy,
}

impl Default for GEntryStore {
    fn default() -> Self {
        Self::new()
    }
}

impl GEntryStore {
    /// Creates an empty store with the P²F [`PriorityPolicy::EarliestRead`]
    /// policy.
    pub fn new() -> Self {
        Self::with_policy(PriorityPolicy::EarliestRead)
    }

    /// Creates an empty store deriving priorities with `policy`.
    pub fn with_policy(policy: PriorityPolicy) -> Self {
        GEntryStore {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            pending_keys: AtomicUsize::new(0),
            policy,
        }
    }

    /// The priority policy this store was built with.
    pub fn policy(&self) -> PriorityPolicy {
        self.policy
    }

    fn shard(&self, key: Key) -> &Mutex<HashMap<Key, GEntry>> {
        &self.shards[Self::shard_of(key)]
    }

    /// Number of shards (fixed; the engine partitions shard ownership
    /// across trainers by `shard_of(key) % n_gpus`).
    pub const fn n_shards() -> usize {
        SHARDS
    }

    /// The shard index `key` lives in. Stable across the store's lifetime,
    /// so callers can pre-group batches by shard.
    pub fn shard_of(key: Key) -> usize {
        (key as usize) % SHARDS
    }

    /// Number of keys with unflushed updates. The engine waits for this to
    /// reach zero when draining at the end of training ("the system waits
    /// for flushing threads to write all deferred parameter updates").
    pub fn pending_keys(&self) -> usize {
        self.pending_keys.load(Ordering::Acquire)
    }

    /// Registers that `key` will be read at `step` (sample-queue prefetch).
    ///
    /// If the entry has pending writes and this read tightens its priority,
    /// the queue position is adjusted.
    pub fn add_read(&self, key: Key, step: u64, pq: &dyn PriorityQueue) {
        let adjusted = {
            let mut shard = self.shard(key).lock();
            let entry = shard.entry(key).or_default();
            entry.r_set.insert(step);
            if entry.in_pq {
                let new_p = entry.compute_priority(self.policy);
                if new_p != entry.priority {
                    pq.adjust(key, entry.priority, new_p);
                    entry.priority = new_p;
                    true
                } else {
                    false
                }
            } else {
                false
            }
        };
        // Explorer hook for the re-activation window (entry repositioned in
        // the queue; a dequeuer may now hold a stale (key, priority) pair).
        // Outside the shard lock: a suspended lock-holder would wedge any
        // runnable vthread that OS-blocks on the same shard.
        if adjusted {
            sched_point!("gentry.read.reactivated");
        }
    }

    /// Registers the aggregated update `grad` produced at `step`: removes
    /// `step` from the R set, appends `(step, Δ)` to the W set, and
    /// enqueues/adjusts the entry (paper §3.3, step 3).
    pub fn add_write(&self, key: Key, step: u64, grad: Arc<[f32]>, pq: &dyn PriorityQueue) {
        let mut shard = self.shard(key).lock();
        let entry = shard.entry(key).or_default();
        entry.r_set.remove(&step);
        let had_writes = !entry.w_set.is_empty();
        entry.w_set.push((step, grad));
        if !had_writes {
            self.pending_keys.fetch_add(1, Ordering::AcqRel);
        }
        let new_p = entry.compute_priority(self.policy);
        if !entry.in_pq {
            pq.enqueue(key, new_p);
            entry.in_pq = true;
            entry.priority = new_p;
        } else if new_p != entry.priority {
            pq.adjust(key, entry.priority, new_p);
            entry.priority = new_p;
        }
    }

    /// Batch form of [`GEntryStore::add_write`]: registers the aggregated
    /// updates of `step` for every `(key, Δ)` in `items`, locking each
    /// shard once per contiguous same-shard run (callers pre-group by
    /// [`GEntryStore::shard_of`], so "once per run" is once per shard) and
    /// handing the queue one `enqueue_batch` + `adjust_batch` per shard.
    ///
    /// The queue operations execute while the shard lock is still held —
    /// the same envelope the per-key path uses. Releasing the lock first
    /// would let a concurrent mutator of the same key observe `in_pq =
    /// true` for an entry not yet physically queued and emit an `adjust`
    /// whose old position does not exist.
    pub fn add_writes_batch(
        &self,
        step: u64,
        items: &[(Key, Arc<[f32]>)],
        pq: &dyn PriorityQueue,
        scratch: &mut PqOpScratch,
    ) {
        let mut i = 0;
        while i < items.len() {
            let sid = Self::shard_of(items[i].0);
            let mut shard = self.shards[sid].lock();
            scratch.enqueues.clear();
            scratch.moves.clear();
            let mut newly_pending = 0usize;
            while i < items.len() && Self::shard_of(items[i].0) == sid {
                let (key, grad) = &items[i];
                let entry = shard.entry(*key).or_default();
                entry.r_set.remove(&step);
                let had_writes = !entry.w_set.is_empty();
                entry.w_set.push((step, Arc::clone(grad)));
                if !had_writes {
                    newly_pending += 1;
                }
                let new_p = entry.compute_priority(self.policy);
                if !entry.in_pq {
                    scratch.enqueues.push((*key, new_p));
                    entry.in_pq = true;
                    entry.priority = new_p;
                } else if new_p != entry.priority {
                    scratch.moves.push((*key, entry.priority, new_p));
                    entry.priority = new_p;
                }
                i += 1;
            }
            // Count before the entries become findable (the drain check
            // `shutdown && pending_keys() == 0` must never observe a queued
            // entry it thinks is already flushed). `take_writes` of these
            // keys blocks on the shard lock until after this, so the
            // matching decrement cannot run first.
            if newly_pending > 0 {
                self.pending_keys.fetch_add(newly_pending, Ordering::AcqRel);
            }
            sched_point!("gentry.writes_batch.publish");
            match self.policy {
                PriorityPolicy::EarliestRead => {
                    pq.enqueue_batch(&scratch.enqueues);
                    pq.adjust_batch(&scratch.moves);
                }
                PriorityPolicy::ArrivalOrder => {
                    // Every fresh enqueue shares one priority — this step.
                    // (A claimed key re-entering the queue has an empty W
                    // set before this write, so its first pending write is
                    // `step` too.) In-queue priorities never move under
                    // arrival order, so the whole shard batch is a single
                    // uniform enqueue.
                    debug_assert!(scratch.moves.is_empty());
                    debug_assert!(scratch.enqueues.iter().all(|&(_, p)| p == step));
                    scratch.uniform.clear();
                    scratch
                        .uniform
                        .extend(scratch.enqueues.iter().map(|&(k, _)| k));
                    pq.enqueue_batch_uniform(&scratch.uniform, step);
                }
            }
        }
    }

    /// Batch form of [`GEntryStore::add_read`]: registers that every key in
    /// `keys` will be read at `step`, with the same shard-run locking and
    /// batched queue adjustment as [`GEntryStore::add_writes_batch`].
    /// Callers pre-dedup and pre-group `keys` by shard.
    pub fn add_reads_batch(
        &self,
        step: u64,
        keys: &[Key],
        pq: &dyn PriorityQueue,
        scratch: &mut PqOpScratch,
    ) {
        let mut i = 0;
        while i < keys.len() {
            let sid = Self::shard_of(keys[i]);
            let mut shard = self.shards[sid].lock();
            scratch.moves.clear();
            while i < keys.len() && Self::shard_of(keys[i]) == sid {
                let key = keys[i];
                let entry = shard.entry(key).or_default();
                entry.r_set.insert(step);
                if entry.in_pq {
                    let new_p = entry.compute_priority(self.policy);
                    if new_p != entry.priority {
                        scratch.moves.push((key, entry.priority, new_p));
                        entry.priority = new_p;
                    }
                }
                i += 1;
            }
            sched_point!("gentry.reads_batch.publish");
            pq.adjust_batch(&scratch.moves);
        }
    }

    /// [`GEntryStore::count_pending`] over a write batch: counts how many
    /// of the just-registered `(key, grad)` pairs still have pending
    /// writes. One lock per shard — callers pass a single shard's bucket
    /// (the registration write buffers are already shard-grouped), so in
    /// practice this locks once. Used by arrival-order strategies, whose
    /// wait gate is the step's own write backlog.
    pub fn count_pending_writes(&self, items: &[(Key, Arc<[f32]>)]) -> u64 {
        let mut blocked = 0u64;
        let mut i = 0;
        while i < items.len() {
            let sid = Self::shard_of(items[i].0);
            let shard = self.shards[sid].lock();
            while i < items.len() && Self::shard_of(items[i].0) == sid {
                if shard.get(&items[i].0).is_some_and(|e| !e.w_set.is_empty()) {
                    blocked += 1;
                }
                i += 1;
            }
        }
        blocked
    }

    /// Counts how many of `keys` currently have pending (unflushed)
    /// writes, locking each shard once per contiguous same-shard run.
    /// This is the blocking-rows probe of the next step's wait condition;
    /// callers pass the already-deduped, shard-grouped lookahead key list
    /// that registration produced, so no workload re-query or re-dedup
    /// happens on the critical path.
    pub fn count_pending(&self, keys: &[Key]) -> u64 {
        let mut blocked = 0u64;
        let mut i = 0;
        while i < keys.len() {
            let sid = Self::shard_of(keys[i]);
            let shard = self.shards[sid].lock();
            while i < keys.len() && Self::shard_of(keys[i]) == sid {
                if shard.get(&keys[i]).is_some_and(|e| !e.w_set.is_empty()) {
                    blocked += 1;
                }
                i += 1;
            }
        }
        blocked
    }

    /// Claims the pending writes of `key` for flushing, if the dequeued
    /// `bucket_priority` still matches the entry's authoritative priority.
    ///
    /// Returns `None` for stale dequeues (the paper's inconsistent-g-entry
    /// check): the entry has been re-positioned and remains live in the
    /// queue elsewhere.
    ///
    /// The updates are returned in step order; the caller applies them to
    /// host memory and then calls nothing further — the entry is already
    /// out of the queue and marked flushed.
    pub fn take_writes(&self, key: Key, bucket_priority: Priority) -> Option<PendingWrites> {
        let mut writes = PendingWrites::new();
        match self.take_writes_into(key, bucket_priority, &mut writes) {
            0 => None,
            _ => Some(writes),
        }
    }

    /// Allocation-free form of [`GEntryStore::take_writes`]: appends the
    /// claimed `(step, Δ)` pairs to `out` (step order preserved) and
    /// returns how many were claimed — 0 for a stale dequeue. Flushers
    /// keep one `out` scratch per thread and reuse it batch after batch,
    /// so the claim path allocates nothing after warm-up; the entry keeps
    /// its W-set capacity too (unless garbage-collected).
    pub fn take_writes_into(
        &self,
        key: Key,
        bucket_priority: Priority,
        out: &mut PendingWrites,
    ) -> usize {
        // Explorer hook for the claim window: a concurrent registrant may
        // reposition the entry between the dequeue that produced
        // `bucket_priority` and this validation. Both hooks sit outside the
        // shard lock — a suspended lock-holder would wedge any runnable
        // vthread that OS-blocks on the same shard.
        sched_point!("gentry.take_writes.enter");
        let claimed = {
            let mut shard = self.shard(key).lock();
            match shard.get_mut(&key) {
                None => 0,
                Some(entry) => {
                    if !entry.in_pq || entry.priority != bucket_priority || entry.w_set.is_empty() {
                        // Stale dequeue (the paper's inconsistent-g-entry
                        // check): repositioned and live elsewhere in the
                        // queue, or already claimed.
                        0
                    } else {
                        let n = entry.w_set.len();
                        out.append(&mut entry.w_set);
                        entry.in_pq = false;
                        entry.priority = INFINITE;
                        self.pending_keys.fetch_sub(1, Ordering::AcqRel);
                        if entry.is_dead() {
                            shard.remove(&key);
                        }
                        n
                    }
                }
            }
        };
        sched_point!(if claimed == 0 {
            "gentry.take_writes.stale"
        } else {
            "gentry.take_writes.claimed"
        });
        claimed
    }

    /// The current priority of `key`'s entry, if it exists (tests only).
    pub fn priority_of(&self, key: Key) -> Option<Priority> {
        let shard = self.shard(key).lock();
        shard
            .get(&key)
            .map(|e| if e.in_pq { e.priority } else { INFINITE })
    }

    /// True if `key` currently has pending writes (tests and invariant
    /// checks).
    pub fn has_pending_writes(&self, key: Key) -> bool {
        let shard = self.shard(key).lock();
        shard.get(&key).is_some_and(|e| !e.w_set.is_empty())
    }

    /// Checks the paper's invariant (2) for `key` at `step`: it must NOT
    /// simultaneously have pending writes and a registered read at `step`.
    /// Returns `true` if the invariant holds.
    pub fn invariant_holds(&self, key: Key, step: u64) -> bool {
        let shard = self.shard(key).lock();
        match shard.get(&key) {
            None => true,
            Some(e) => e.w_set.is_empty() || !e.r_set.contains(&step),
        }
    }

    /// Total number of live g-entries (tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no g-entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frugal_pq::TwoLevelPq;

    #[test]
    fn read_only_entries_stay_out_of_queue() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(5, 3, &pq);
        assert!(pq.is_empty());
        assert_eq!(store.priority_of(5), Some(INFINITE));
        assert_eq!(store.pending_keys(), 0);
    }

    #[test]
    fn write_enqueues_with_min_read_priority() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(5, 3, &pq);
        store.add_read(5, 7, &pq);
        store.add_write(5, 1, vec![0.1].into(), &pq);
        // Read at step 1 was consumed; min remaining read is 3.
        assert_eq!(store.priority_of(5), Some(3));
        assert_eq!(pq.top_priority(), 3);
        assert_eq!(store.pending_keys(), 1);
    }

    #[test]
    fn write_without_future_reads_is_infinite() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(9, 0, &pq);
        store.add_write(9, 0, vec![1.0].into(), &pq);
        assert_eq!(store.priority_of(9), Some(INFINITE));
        assert_eq!(pq.top_priority(), INFINITE);
        assert_eq!(pq.len(), 1); // still flushed eventually
    }

    #[test]
    fn later_read_reactivates_infinite_entry() {
        // Paper Figure 6, k1: deferred update gets a priority once the key
        // is prefetched again.
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(1, 0, &pq);
        store.add_write(1, 0, vec![1.0].into(), &pq);
        assert_eq!(store.priority_of(1), Some(INFINITE));
        store.add_read(1, 2, &pq);
        assert_eq!(store.priority_of(1), Some(2));
        assert_eq!(pq.top_priority(), 2);
    }

    #[test]
    fn take_writes_returns_updates_in_step_order() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(4, 0, &pq);
        store.add_write(4, 0, vec![1.0].into(), &pq);
        store.add_read(4, 5, &pq);
        store.add_write(4, 5, vec![2.0].into(), &pq);
        let p = store.priority_of(4).unwrap();
        let w = store.take_writes(4, p).expect("valid claim");
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].0, &w[0].1[..]), (0, &[1.0f32][..]));
        assert_eq!((w[1].0, &w[1].1[..]), (5, &[2.0f32][..]));
        assert_eq!(store.pending_keys(), 0);
        // W drained and R empty: the entry is garbage-collected.
        assert_eq!(store.priority_of(4), None);
    }

    #[test]
    fn stale_claim_is_rejected() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(4, 2, &pq);
        store.add_write(4, 0, vec![1.0].into(), &pq); // priority 2
        assert!(store.take_writes(4, 7).is_none(), "wrong bucket priority");
        assert!(store.take_writes(4, 2).is_some());
        assert!(store.take_writes(4, 2).is_none(), "already drained");
    }

    #[test]
    fn surviving_reads_keep_entry_alive() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(4, 2, &pq);
        store.add_read(4, 9, &pq);
        store.add_write(4, 0, vec![1.0].into(), &pq);
        let w = store.take_writes(4, 2).unwrap();
        assert_eq!(w.len(), 1);
        // Reads at 2 and 9 remain; entry alive but out of the queue.
        assert_eq!(store.len(), 1);
        assert_eq!(store.priority_of(4), Some(INFINITE));
        // A new write re-enqueues at the surviving min read.
        store.add_write(4, 2, vec![3.0].into(), &pq);
        assert_eq!(store.priority_of(4), Some(9));
    }

    #[test]
    fn invariant_check_detects_violation_state() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(4, 6, &pq);
        assert!(store.invariant_holds(4, 6), "reads alone are fine");
        store.add_write(4, 0, vec![1.0].into(), &pq);
        assert!(!store.invariant_holds(4, 6), "pending write + read at 6");
        assert!(store.invariant_holds(4, 7), "no read registered at 7");
        let p = store.priority_of(4).unwrap();
        store.take_writes(4, p).unwrap();
        assert!(store.invariant_holds(4, 6), "flushed");
    }

    #[test]
    fn paper_figure6_walkthrough() {
        // Reproduces the worked example of Figure 6 (L = 2, keys k1..k3).
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(10);
        // ❶ prefetch step 0 (k2,k3,k1) and step 1 (k2).
        for k in [2u64, 3, 1] {
            store.add_read(k, 0, &pq);
        }
        store.add_read(2, 1, &pq);
        // ❷ top is ∞ > step 0: train.
        assert!(pq.top_priority() > 0);
        // ❸ backward of step 0 records Δ for all three keys.
        for k in [1u64, 2, 3] {
            store.add_write(k, 0, vec![0.5].into(), &pq);
        }
        // k2 has a read at step 1 -> priority 1; k1,k3 -> ∞.
        assert_eq!(store.priority_of(2), Some(1));
        assert_eq!(store.priority_of(1), Some(INFINITE));
        assert_eq!(store.priority_of(3), Some(INFINITE));
        // ❹ prefetch step 2 (k1).
        store.add_read(1, 2, &pq);
        assert_eq!(store.priority_of(1), Some(2));
        // ❺ top is 1, not > step 1: training must wait.
        assert!(pq.top_priority() <= 1);
        // ❻-❼ flush k2, then train step 1.
        let mut out = Vec::new();
        pq.dequeue_batch(1, &mut out);
        assert_eq!(out[0].0, 2);
        store.take_writes(2, out[0].1).unwrap();
        assert!(pq.top_priority() > 1);
        // ❽ backward of step 1 (k2 again, no more reads).
        store.add_write(2, 1, vec![0.5].into(), &pq);
        assert_eq!(store.priority_of(2), Some(INFINITE));
        // k1's update from step 0 is still deferred (blue dashed box):
        assert!(store.has_pending_writes(1));
        // ❾ top is 2, not > 2? top == 2 blocks step 2 until k1 flushed.
        assert_eq!(pq.top_priority(), 2);
        out.clear();
        pq.dequeue_batch(1, &mut out);
        store.take_writes(1, out[0].1).unwrap();
        assert!(pq.top_priority() > 2);
        // ❾ train step 2 (k1), record its update.
        store.add_write(1, 2, vec![0.5].into(), &pq);
        // ❿ after training, drain the deferred ∞ updates (k1, k2, k3).
        out.clear();
        pq.dequeue_batch(10, &mut out);
        for (k, p) in out {
            store.take_writes(k, p);
        }
        assert_eq!(store.pending_keys(), 0);
        assert!(store.is_empty());
    }

    /// Groups keys by shard (stable within a shard), the pre-grouping the
    /// batch APIs expect from callers.
    fn shard_grouped(keys: &[Key]) -> Vec<Key> {
        let mut v = keys.to_vec();
        v.sort_by_key(|&k| GEntryStore::shard_of(k));
        v
    }

    #[test]
    fn batch_writes_match_sequential_path() {
        // Same operation stream through the per-key path and the batch
        // path must leave identical store + queue state.
        let seq_store = GEntryStore::new();
        let seq_pq = TwoLevelPq::new(100);
        let bat_store = GEntryStore::new();
        let bat_pq = TwoLevelPq::new(100);
        let mut scratch = PqOpScratch::default();

        // Keys spanning several shards (incl. two in the same shard:
        // 1 and 65), some with tightening reads, some deferred.
        let keys: Vec<Key> = vec![1, 65, 2, 130, 7, 64];
        for &k in &keys {
            seq_store.add_read(k, 3, &seq_pq);
        }
        bat_store.add_reads_batch(3, &shard_grouped(&keys), &bat_pq, &mut scratch);

        let grad: Arc<[f32]> = vec![0.5].into();
        let items: Vec<(Key, Arc<[f32]>)> = keys.iter().map(|&k| (k, Arc::clone(&grad))).collect();
        for (k, g) in &items {
            seq_store.add_write(*k, 0, Arc::clone(g), &seq_pq);
        }
        let mut grouped = items.clone();
        grouped.sort_by_key(|&(k, _)| GEntryStore::shard_of(k));
        bat_store.add_writes_batch(0, &grouped, &bat_pq, &mut scratch);

        // A later read that re-tightens priorities through the batch path.
        for &k in &[1u64, 2] {
            seq_store.add_read(k, 1, &seq_pq);
        }
        bat_store.add_reads_batch(1, &shard_grouped(&[1, 2]), &bat_pq, &mut scratch);

        for &k in &keys {
            assert_eq!(
                seq_store.priority_of(k),
                bat_store.priority_of(k),
                "key {k} priority diverged"
            );
        }
        assert_eq!(seq_store.pending_keys(), bat_store.pending_keys());
        assert_eq!(seq_pq.top_priority(), bat_pq.top_priority());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        seq_pq.dequeue_batch(usize::MAX, &mut a);
        bat_pq.dequeue_batch(usize::MAX, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "queue contents diverged");
    }

    #[test]
    fn batch_write_then_take_round_trip() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        let mut scratch = PqOpScratch::default();
        store.add_reads_batch(2, &[4, 68], &pq, &mut scratch);
        let items: Vec<(Key, Arc<[f32]>)> = vec![(4, vec![1.0].into()), (68, vec![2.0].into())];
        store.add_writes_batch(0, &items, &pq, &mut scratch);
        assert_eq!(store.pending_keys(), 2);
        assert_eq!(pq.top_priority(), 2);
        let mut out = Vec::new();
        pq.dequeue_batch(usize::MAX, &mut out);
        for (k, p) in out {
            let w = store.take_writes(k, p).expect("fresh entries claimable");
            assert_eq!(w.len(), 1);
        }
        assert_eq!(store.pending_keys(), 0);
    }

    #[test]
    fn arrival_order_priority_is_first_write_step() {
        let store = GEntryStore::with_policy(PriorityPolicy::ArrivalOrder);
        let pq = TwoLevelPq::new(100);
        // Reads never matter under arrival order.
        store.add_read(5, 1, &pq);
        store.add_write(5, 3, vec![0.1].into(), &pq);
        assert_eq!(store.priority_of(5), Some(3));
        // A later write does not move the entry: the first pending write
        // still gates it.
        store.add_write(5, 7, vec![0.2].into(), &pq);
        assert_eq!(store.priority_of(5), Some(3));
        // Nor does a tightening read (the P²F policy would move it to 4).
        store.add_read(5, 4, &pq);
        assert_eq!(store.priority_of(5), Some(3));
        assert_eq!(pq.top_priority(), 3);
        // The claim drains both writes in step order; a fresh write then
        // re-enqueues at its own step.
        let w = store.take_writes(5, 3).expect("claimable");
        assert_eq!(w.iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![3, 7]);
        store.add_write(5, 9, vec![0.3].into(), &pq);
        assert_eq!(store.priority_of(5), Some(9));
    }

    #[test]
    fn arrival_order_batch_matches_per_key_path() {
        let seq_store = GEntryStore::with_policy(PriorityPolicy::ArrivalOrder);
        let seq_pq = TwoLevelPq::new(100);
        let bat_store = GEntryStore::with_policy(PriorityPolicy::ArrivalOrder);
        let bat_pq = TwoLevelPq::new(100);
        let mut scratch = PqOpScratch::default();
        let keys: Vec<Key> = vec![1, 65, 2, 130, 7, 64];
        let grad: Arc<[f32]> = vec![0.5].into();
        for step in [2u64, 5] {
            let items: Vec<(Key, Arc<[f32]>)> =
                keys.iter().map(|&k| (k, Arc::clone(&grad))).collect();
            for (k, g) in &items {
                seq_store.add_write(*k, step, Arc::clone(g), &seq_pq);
            }
            let mut grouped = items.clone();
            grouped.sort_by_key(|&(k, _)| GEntryStore::shard_of(k));
            bat_store.add_writes_batch(step, &grouped, &bat_pq, &mut scratch);
        }
        for &k in &keys {
            assert_eq!(seq_store.priority_of(k), bat_store.priority_of(k));
            assert_eq!(seq_store.priority_of(k), Some(2), "first write step");
        }
        assert_eq!(seq_pq.top_priority(), bat_pq.top_priority());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        seq_pq.dequeue_batch(usize::MAX, &mut a);
        bat_pq.dequeue_batch(usize::MAX, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "queue contents diverged");
    }

    #[test]
    fn count_pending_sees_only_unflushed() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        let mut scratch = PqOpScratch::default();
        let items: Vec<(Key, Arc<[f32]>)> = vec![
            (3, vec![1.0].into()),
            (67, vec![1.0].into()),
            (5, vec![1.0].into()),
        ];
        store.add_writes_batch(0, &items, &pq, &mut scratch);
        // Key 9 has only a read; key 99 does not exist.
        store.add_reads_batch(4, &[9], &pq, &mut scratch);
        assert_eq!(store.count_pending(&[3, 67, 5, 9, 99]), 3);
        let mut out = Vec::new();
        pq.dequeue_batch(1, &mut out);
        store.take_writes(out[0].0, out[0].1).unwrap();
        assert_eq!(store.count_pending(&[3, 67, 5, 9, 99]), 2);
    }

    #[test]
    fn concurrent_batch_writers_and_flusher_balance() {
        // Two batch registrants on disjoint shard sets racing one flusher:
        // the P²F drain invariant (every staged update flushed exactly
        // once) must survive the batch path.
        let store = Arc::new(GEntryStore::new());
        let pq = Arc::new(TwoLevelPq::new(2_000));
        let writers: Vec<_> = (0..2u64)
            .map(|t| {
                let (store, pq) = (Arc::clone(&store), Arc::clone(&pq));
                std::thread::spawn(move || {
                    let mut scratch = PqOpScratch::default();
                    for step in 0..300u64 {
                        // Trainer t owns shards with parity t (key % 2 == t
                        // implies shard % 2 == t for SHARDS = 64).
                        let keys: Vec<Key> = (0..16u64).map(|i| 2 * i + t).collect();
                        let reads = shard_grouped(&keys);
                        store.add_reads_batch(step, &reads, pq.as_ref(), &mut scratch);
                        let mut items: Vec<(Key, Arc<[f32]>)> =
                            keys.iter().map(|&k| (k, vec![1.0f32].into())).collect();
                        items.sort_by_key(|&(k, _)| GEntryStore::shard_of(k));
                        store.add_writes_batch(step, &items, pq.as_ref(), &mut scratch);
                    }
                })
            })
            .collect();
        let flusher = {
            let (store, pq) = (Arc::clone(&store), Arc::clone(&pq));
            std::thread::spawn(move || {
                let mut applied = 0u64;
                let mut out = Vec::new();
                let mut idle = 0;
                while idle < 1_000 {
                    out.clear();
                    pq.dequeue_batch(32, &mut out);
                    if out.is_empty() {
                        idle += 1;
                        std::thread::yield_now();
                        continue;
                    }
                    idle = 0;
                    for &(k, p) in &out {
                        if let Some(w) = store.take_writes(k, p) {
                            applied += w.len() as u64;
                        }
                    }
                }
                applied
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        let applied = flusher.join().unwrap();
        let mut out = Vec::new();
        pq.dequeue_batch(usize::MAX, &mut out);
        let mut rest = 0u64;
        for (k, p) in out {
            if let Some(w) = store.take_writes(k, p) {
                rest += w.len() as u64;
            }
        }
        assert_eq!(applied + rest, 2 * 300 * 16, "every staged update flushed");
        assert_eq!(store.pending_keys(), 0);
    }

    #[test]
    fn concurrent_writes_and_takes_balance() {
        use std::sync::Arc;
        let store = Arc::new(GEntryStore::new());
        let pq = Arc::new(TwoLevelPq::new(1_000));
        let writer = {
            let (store, pq) = (Arc::clone(&store), Arc::clone(&pq));
            std::thread::spawn(move || {
                for step in 0..500u64 {
                    for k in 0..16u64 {
                        store.add_read(k, step, pq.as_ref());
                        store.add_write(k, step, vec![1.0].into(), pq.as_ref());
                    }
                }
            })
        };
        let flusher = {
            let (store, pq) = (Arc::clone(&store), Arc::clone(&pq));
            std::thread::spawn(move || {
                let mut applied = 0u64;
                let mut out = Vec::new();
                loop {
                    out.clear();
                    pq.dequeue_batch(32, &mut out);
                    if out.is_empty() {
                        if store.pending_keys() == 0 && applied > 0 {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    for &(k, p) in &out {
                        if let Some(w) = store.take_writes(k, p) {
                            applied += w.len() as u64;
                        }
                    }
                }
                applied
            })
        };
        writer.join().unwrap();
        // Give the flusher time to drain, then verify totals.
        let applied = flusher.join().unwrap();
        // Drain any remainder.
        let mut out = Vec::new();
        pq.dequeue_batch(usize::MAX, &mut out);
        let mut rest = 0u64;
        for (k, p) in out {
            if let Some(w) = store.take_writes(k, p) {
                rest += w.len() as u64;
            }
        }
        assert_eq!(applied + rest, 500 * 16, "every staged update flushed");
        assert_eq!(store.pending_keys(), 0);
    }
}
