//! g-entries: per-parameter metadata of the P²F algorithm (paper §3.3).
//!
//! Each parameter with upcoming reads or pending updates has a g-entry:
//!
//! * `R set` — future training steps that will read the parameter (filled
//!   by the controller's `L`-step lookahead).
//! * `W set` — pending `(step, Δ)` updates not yet flushed to host memory.
//! * `priority` — Equation (1): `min(R)` while `W ≠ ∅`, else ∞.
//!
//! The store keeps g-entries in sharded open-addressing tables and mirrors
//! every priority change into the [`PriorityQueue`], preserving the paper's
//! insert-into-new-before-delete-from-old ordering (delegated to
//! [`PriorityQueue::adjust`]). Only entries with pending writes live in the
//! queue — entries with `W = ∅` have nothing to flush and, by Equation (1),
//! priority ∞, so keeping them out changes no observable behaviour.
//!
//! # Compact layout (CriteoTB-scale memory)
//!
//! Earlier revisions kept one `BTreeSet<u64>` (R set) plus a `Vec` (W set)
//! per key inside a `HashMap` — ~150 bytes of resident metadata per live
//! key, which dominates host RAM at 10⁸-key tables. The store now keeps
//! three parallel arrays per shard, 24 bytes per slot:
//!
//! * `keys: [u64]` — open-addressing slots (linear probing, Fibonacci
//!   multiply-shift reduction, tombstone deletion);
//! * `r_bits: [u64]` + `r_base: [u32]` — the R set as a 64-step bitset
//!   window anchored at `r_base`. Lookahead reads span at most `L + 1`
//!   consecutive steps (`L` defaults to 10), so the window almost never
//!   overflows; reads the window cannot hold spill into a per-shard side
//!   map that stays empty in engine use but keeps the semantics exact.
//! * `w_idx: [u32]` — `slab index + 1` of the entry's pending-write list
//!   (0 = none). The lists themselves live in a per-shard slab with a free
//!   list, so a drained entry keeps its allocation for reuse.
//!
//! Two fields of the old layout are gone outright: the cached `priority`
//! (always recomputable from the R/W sets under the shard lock — every
//! mutation path kept it in sync, so recomputing is equivalent) and the
//! `in_pq` flag (an entry is in the queue *iff* it has pending writes:
//! enqueue happens on the ∅→W transition, dequeue claims drain W whole).
//! Growth keeps the table load factor in `[25/32, 7/8]`, bounding resident
//! metadata below 31 bytes per live key at any size — measured by
//! [`GEntryStore::resident_bytes`] and recorded in DESIGN.md §14.

use frugal_data::Key;
use frugal_pq::{Priority, PriorityQueue, INFINITE};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One parameter's pending updates, drained by a flushing thread.
///
/// Gradients are shared (`Arc`) because the same aggregated gradient also
/// travels to the owner GPU's cache-update list; sharing avoids cloning
/// every gradient on the training critical path.
pub type PendingWrites = Vec<(u64, Arc<[f32]>)>;

/// How a g-entry's queue priority derives from its R/W sets — the knob the
/// engine's flush strategies turn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PriorityPolicy {
    /// Equation (1), the P²F policy: `min(R)` while `W ≠ ∅`, else ∞ — an
    /// entry's urgency is its earliest upcoming read.
    #[default]
    EarliestRead,
    /// The FIFO ablation: the earliest *pending write* step while `W ≠ ∅`,
    /// else ∞ — arrival-order flushing that ignores future reads. Under
    /// this policy an in-queue entry's priority never changes (its first
    /// pending write is fixed until a flusher claims the whole W set), so
    /// registration is pure enqueue — no `adjust` traffic at all.
    ArrivalOrder,
}

const SHARDS: usize = 64;

/// Slot sentinel: never a real key.
const EMPTY: u64 = u64::MAX;
/// Slot sentinel: a deleted entry (probe chains walk past it).
const TOMBSTONE: u64 = u64::MAX - 1;
/// Grow when `(live + tombstones) * 8 >= capacity * 7`.
const GROW_NUM: usize = 7;
const GROW_DEN: usize = 8;

/// Reusable scratch for the batch registration paths: the priority-queue
/// operations one shard's batch generates, staged so the queue sees a
/// single `enqueue_batch` + `adjust_batch` per shard instead of one call
/// per key. Owned by the caller (one per trainer) so the hot loop never
/// allocates after warm-up.
#[derive(Debug, Default)]
pub struct PqOpScratch {
    enqueues: Vec<(Key, Priority)>,
    moves: Vec<(Key, Priority, Priority)>,
    /// Arrival-order staging: bare keys for the uniform-priority enqueue.
    uniform: Vec<Key>,
}

/// Pending-write lists, slab-allocated per shard so `w_idx` fits in 32
/// bits and drained lists keep their capacity for the next burst.
#[derive(Debug, Default)]
struct WriteSlab {
    lists: Vec<PendingWrites>,
    free: Vec<u32>,
}

impl WriteSlab {
    /// Index of a fresh (empty) list.
    fn alloc(&mut self) -> u32 {
        match self.free.pop() {
            Some(i) => i,
            None => {
                let i = self.lists.len() as u32;
                assert!(i < u32::MAX - 1, "write slab full");
                self.lists.push(PendingWrites::new());
                i
            }
        }
    }

    fn release(&mut self, idx: u32) {
        debug_assert!(self.lists[idx as usize].is_empty());
        self.free.push(idx);
    }
}

/// One shard: the parallel-array table plus the write slab and the read
/// overflow side map. All access is under the shard's mutex.
#[derive(Debug)]
struct Shard {
    /// Open-addressing slots; `EMPTY` / `TOMBSTONE` sentinels.
    keys: Box<[u64]>,
    /// R-set bitset window: bit `i` = read at step `r_base + i`.
    r_bits: Box<[u64]>,
    /// Window anchors (steps fit in 32 bits — the PQ enforces it).
    r_base: Box<[u32]>,
    /// `slab index + 1` of the pending-write list; 0 = no pending writes.
    w_idx: Box<[u32]>,
    /// Live entries.
    len: usize,
    tombstones: usize,
    slab: WriteSlab,
    /// Read steps the 64-step window cannot hold (span > 64). Empty in
    /// engine use; exists so arbitrary register/drain sequences (property
    /// tests) keep exact `BTreeSet` semantics.
    overflow: HashMap<Key, BTreeSet<u64>>,
}

/// Fibonacci hash: multiplies the key onto the golden ratio so sequential
/// keys spread across the high bits the range reduction consumes.
#[inline]
fn mix(key: u64) -> u64 {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl Shard {
    fn new() -> Self {
        Shard {
            keys: vec![EMPTY; 16].into_boxed_slice(),
            r_bits: vec![0; 16].into_boxed_slice(),
            r_base: vec![0; 16].into_boxed_slice(),
            w_idx: vec![0; 16].into_boxed_slice(),
            len: 0,
            tombstones: 0,
            slab: WriteSlab::default(),
            overflow: HashMap::new(),
        }
    }

    /// Start-of-probe slot for `key` in a table of `cap` slots: multiply-
    /// shift range reduction, so capacities need not be powers of two (the
    /// freedom that keeps the load factor — and bytes/key — tightly
    /// bounded across growth).
    #[inline]
    fn home(key: u64, cap: usize) -> usize {
        ((mix(key) as u128 * cap as u128) >> 64) as usize
    }

    #[inline]
    fn find(&self, key: Key) -> Option<usize> {
        debug_assert!(key < TOMBSTONE, "key collides with slot sentinel");
        let cap = self.keys.len();
        let mut i = Self::home(key, cap);
        loop {
            match self.keys[i] {
                EMPTY => return None,
                k if k == key => return Some(i),
                _ => {}
            }
            i += 1;
            if i == cap {
                i = 0;
            }
        }
    }

    /// Slot of `key`, inserting a fresh (empty R/W) entry if absent. May
    /// rehash, so previously returned slot indices are invalidated.
    fn ensure(&mut self, key: Key) -> usize {
        debug_assert!(key < TOMBSTONE, "key collides with slot sentinel");
        if (self.len + self.tombstones + 1) * GROW_DEN >= self.keys.len() * GROW_NUM {
            self.grow();
        }
        let cap = self.keys.len();
        let mut i = Self::home(key, cap);
        let mut first_tomb = None;
        loop {
            match self.keys[i] {
                EMPTY => {
                    let slot = match first_tomb {
                        Some(t) => {
                            self.tombstones -= 1;
                            t
                        }
                        None => i,
                    };
                    self.keys[slot] = key;
                    self.r_bits[slot] = 0;
                    self.r_base[slot] = 0;
                    self.w_idx[slot] = 0;
                    self.len += 1;
                    return slot;
                }
                TOMBSTONE if first_tomb.is_none() => first_tomb = Some(i),
                k if k == key => return i,
                _ => {}
            }
            i += 1;
            if i == cap {
                i = 0;
            }
        }
    }

    /// Rehashes to a capacity targeting load factor 25/32 for the current
    /// live count (tombstones are dropped). Together with the 7/8 grow
    /// threshold this keeps the live load in `[25/32, 7/8]` during pure
    /// growth — 24 bytes/slot lands between 27.4 and 30.7 bytes per key,
    /// independent of where the key count falls relative to a power of two.
    fn grow(&mut self) {
        let target = (self.len + 1).max(8) * 32 / 25;
        let new_cap = target.max(16);
        let mut keys = vec![EMPTY; new_cap].into_boxed_slice();
        let mut r_bits = vec![0u64; new_cap].into_boxed_slice();
        let mut r_base = vec![0u32; new_cap].into_boxed_slice();
        let mut w_idx = vec![0u32; new_cap].into_boxed_slice();
        for old in 0..self.keys.len() {
            let k = self.keys[old];
            if k == EMPTY || k == TOMBSTONE {
                continue;
            }
            let mut i = Self::home(k, new_cap);
            while keys[i] != EMPTY {
                i += 1;
                if i == new_cap {
                    i = 0;
                }
            }
            keys[i] = k;
            r_bits[i] = self.r_bits[old];
            r_base[i] = self.r_base[old];
            w_idx[i] = self.w_idx[old];
        }
        self.keys = keys;
        self.r_bits = r_bits;
        self.r_base = r_base;
        self.w_idx = w_idx;
        self.tombstones = 0;
    }

    /// Deletes the entry at `slot` (must be dead: R and W both empty).
    fn remove(&mut self, slot: usize) {
        debug_assert!(self.r_is_empty(slot) && self.w_idx[slot] == 0);
        self.keys[slot] = TOMBSTONE;
        self.len -= 1;
        self.tombstones += 1;
    }

    // --- R set ---------------------------------------------------------

    fn r_insert(&mut self, slot: usize, step: u64) {
        debug_assert!(step < u32::MAX as u64, "step exceeds 32-bit window base");
        let base = self.r_base[slot] as u64;
        if self.r_bits[slot] == 0 {
            // Window is free to re-anchor (overflow steps, if any, remain
            // valid — membership is the union of window and overflow).
            self.r_base[slot] = step as u32;
            self.r_bits[slot] = 1;
            return;
        }
        if step >= base && step < base + 64 {
            self.r_bits[slot] |= 1u64 << (step - base);
            return;
        }
        if step >= base + 64 {
            // Advance the window if the steps that would slide out are all
            // clear (lookahead registration consumes old steps as it goes,
            // so this is the common path when a span briefly exceeds 64).
            let shift = step - 63 - base;
            if shift < 64 && self.r_bits[slot].trailing_zeros() as u64 >= shift {
                self.r_bits[slot] >>= shift;
                self.r_base[slot] = (base + shift) as u32;
                self.r_bits[slot] |= 1u64 << 63;
                return;
            }
        }
        // Out-of-window (before the base, or blocked by live low bits):
        // exact semantics via the side map.
        let key = self.keys[slot];
        self.overflow.entry(key).or_default().insert(step);
    }

    fn r_remove(&mut self, slot: usize, step: u64) {
        let base = self.r_base[slot] as u64;
        if step >= base && step < base + 64 {
            self.r_bits[slot] &= !(1u64 << (step - base));
        }
        let key = self.keys[slot];
        if let Some(set) = self.overflow.get_mut(&key) {
            set.remove(&step);
            if set.is_empty() {
                self.overflow.remove(&key);
            }
        }
    }

    fn r_is_empty(&self, slot: usize) -> bool {
        self.r_bits[slot] == 0 && !self.overflow.contains_key(&self.keys[slot])
    }

    fn r_contains(&self, slot: usize, step: u64) -> bool {
        let base = self.r_base[slot] as u64;
        if step >= base && step < base + 64 && self.r_bits[slot] & (1u64 << (step - base)) != 0 {
            return true;
        }
        self.overflow
            .get(&self.keys[slot])
            .is_some_and(|s| s.contains(&step))
    }

    fn r_min(&self, slot: usize) -> Option<u64> {
        let window = if self.r_bits[slot] == 0 {
            None
        } else {
            Some(self.r_base[slot] as u64 + self.r_bits[slot].trailing_zeros() as u64)
        };
        let over = self
            .overflow
            .get(&self.keys[slot])
            .and_then(|s| s.first().copied());
        match (window, over) {
            (Some(w), Some(o)) => Some(w.min(o)),
            (w, o) => w.or(o),
        }
    }

    // --- W set ---------------------------------------------------------

    fn w_push(&mut self, slot: usize, step: u64, grad: Arc<[f32]>) {
        let idx = match self.w_idx[slot] {
            0 => {
                let i = self.slab.alloc();
                self.w_idx[slot] = i + 1;
                i
            }
            i => i - 1,
        };
        let list = &mut self.slab.lists[idx as usize];
        if list.capacity() == 0 {
            // Nearly every key holds exactly one pending write between
            // flushes; Vec's default first allocation (capacity 4, 96 B)
            // would quadruple the dominant slab cost and push the store
            // past its 32 bytes/key budget at scale.
            list.reserve_exact(1);
        }
        list.push((step, grad));
    }

    /// Drains the W set into `out` (step order preserved) and returns how
    /// many updates were claimed. The slab list keeps its capacity.
    fn w_take(&mut self, slot: usize, out: &mut PendingWrites) -> usize {
        match self.w_idx[slot] {
            0 => 0,
            i => {
                let idx = i - 1;
                let list = &mut self.slab.lists[idx as usize];
                let n = list.len();
                out.append(list);
                self.w_idx[slot] = 0;
                self.slab.release(idx);
                n
            }
        }
    }

    /// First pending write's step (arrival-order priority); `None` if W=∅.
    fn w_first_step(&self, slot: usize) -> Option<u64> {
        match self.w_idx[slot] {
            0 => None,
            i => self.slab.lists[(i - 1) as usize].first().map(|&(s, _)| s),
        }
    }

    #[inline]
    fn has_writes(&self, slot: usize) -> bool {
        self.w_idx[slot] != 0
    }

    /// Equation (1) under `policy`. An entry is in the queue iff `W ≠ ∅`,
    /// and this is its authoritative queue priority while it is.
    fn priority(&self, slot: usize, policy: PriorityPolicy) -> Priority {
        if !self.has_writes(slot) {
            return INFINITE;
        }
        match policy {
            PriorityPolicy::EarliestRead => self.r_min(slot).unwrap_or(INFINITE),
            // W sets grow in step order, so the first element is the
            // earliest pending write.
            PriorityPolicy::ArrivalOrder => self.w_first_step(slot).unwrap_or(INFINITE),
        }
    }

    /// Resident bytes of this shard's metadata: the parallel arrays, the
    /// slab skeleton (entry tuples, not the shared gradient payloads —
    /// those belong to the training pipeline and are counted by its own
    /// accounting), and the overflow side map.
    fn resident_bytes(&self) -> usize {
        let slots = self.keys.len() * (8 + 8 + 4 + 4);
        let slab = self.slab.lists.capacity() * std::mem::size_of::<PendingWrites>()
            + self
                .slab
                .lists
                .iter()
                .map(|l| l.capacity() * std::mem::size_of::<(u64, Arc<[f32]>)>())
                .sum::<usize>()
            + self.slab.free.capacity() * 4;
        // BTreeSet<u64> nodes amortize to ~12 bytes/element at capacity 11,
        // plus map entry overhead; 48/element is a conservative ceiling.
        let overflow = self
            .overflow
            .values()
            .map(|s| 64 + 48 * s.len())
            .sum::<usize>();
        slots + slab + overflow
    }
}

/// The sharded g-entry store.
///
/// All mutations lock exactly one shard, so the controller, trainers, and
/// flushing threads proceed mostly independently.
#[derive(Debug)]
pub struct GEntryStore {
    shards: Vec<Mutex<Shard>>,
    /// Number of keys that currently have pending (unflushed) writes.
    pending_keys: AtomicUsize,
    /// How priorities derive from the R/W sets (fixed per run).
    policy: PriorityPolicy,
}

impl Default for GEntryStore {
    fn default() -> Self {
        Self::new()
    }
}

impl GEntryStore {
    /// Creates an empty store with the P²F [`PriorityPolicy::EarliestRead`]
    /// policy.
    pub fn new() -> Self {
        Self::with_policy(PriorityPolicy::EarliestRead)
    }

    /// Creates an empty store deriving priorities with `policy`.
    pub fn with_policy(policy: PriorityPolicy) -> Self {
        GEntryStore {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            pending_keys: AtomicUsize::new(0),
            policy,
        }
    }

    /// The priority policy this store was built with.
    pub fn policy(&self) -> PriorityPolicy {
        self.policy
    }

    fn shard(&self, key: Key) -> &Mutex<Shard> {
        &self.shards[Self::shard_of(key)]
    }

    /// Number of shards (fixed; the engine partitions shard ownership
    /// across trainers by `shard_of(key) % n_gpus`).
    pub const fn n_shards() -> usize {
        SHARDS
    }

    /// The shard index `key` lives in. Stable across the store's lifetime,
    /// so callers can pre-group batches by shard.
    pub fn shard_of(key: Key) -> usize {
        (key as usize) % SHARDS
    }

    /// The trainer that owns `key` in an `n_gpus`-wide cohort: shard
    /// ownership folded down to trainer index. The decentralized reduce
    /// and the parallel write-through apply partition keys by this
    /// function, so every key has exactly one reducer/applier per step.
    pub fn owner_of(key: Key, n_gpus: usize) -> usize {
        Self::shard_of(key) % n_gpus
    }

    /// Number of keys with unflushed updates. The engine waits for this to
    /// reach zero when draining at the end of training ("the system waits
    /// for flushing threads to write all deferred parameter updates").
    pub fn pending_keys(&self) -> usize {
        self.pending_keys.load(Ordering::Acquire)
    }

    /// Resident bytes of g-entry metadata across all shards: slot arrays,
    /// write-slab skeleton, and overflow side maps. Gradient payloads
    /// (`Arc<[f32]>` data) are shared with the cache-update path and not
    /// counted here. This is the bytes-per-key quantity DESIGN.md §14
    /// tracks at 1M/10M/100M keys.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().resident_bytes()).sum()
    }

    /// Registers that `key` will be read at `step` (sample-queue prefetch).
    ///
    /// If the entry has pending writes and this read tightens its priority,
    /// the queue position is adjusted.
    pub fn add_read(&self, key: Key, step: u64, pq: &dyn PriorityQueue) {
        let adjusted = {
            let mut shard = self.shard(key).lock();
            let slot = shard.ensure(key);
            let in_pq = shard.has_writes(slot);
            let old_p = if in_pq {
                shard.priority(slot, self.policy)
            } else {
                INFINITE
            };
            shard.r_insert(slot, step);
            if in_pq {
                let new_p = shard.priority(slot, self.policy);
                if new_p != old_p {
                    pq.adjust(key, old_p, new_p);
                    true
                } else {
                    false
                }
            } else {
                false
            }
        };
        // Explorer hook for the re-activation window (entry repositioned in
        // the queue; a dequeuer may now hold a stale (key, priority) pair).
        // Outside the shard lock: a suspended lock-holder would wedge any
        // runnable vthread that OS-blocks on the same shard.
        if adjusted {
            sched_point!("gentry.read.reactivated");
        }
    }

    /// Registers the aggregated update `grad` produced at `step`: removes
    /// `step` from the R set, appends `(step, Δ)` to the W set, and
    /// enqueues/adjusts the entry (paper §3.3, step 3).
    pub fn add_write(&self, key: Key, step: u64, grad: Arc<[f32]>, pq: &dyn PriorityQueue) {
        let mut shard = self.shard(key).lock();
        let slot = shard.ensure(key);
        let had_writes = shard.has_writes(slot);
        let old_p = if had_writes {
            shard.priority(slot, self.policy)
        } else {
            INFINITE
        };
        shard.r_remove(slot, step);
        shard.w_push(slot, step, grad);
        if !had_writes {
            self.pending_keys.fetch_add(1, Ordering::AcqRel);
        }
        let new_p = shard.priority(slot, self.policy);
        if !had_writes {
            pq.enqueue(key, new_p);
        } else if new_p != old_p {
            pq.adjust(key, old_p, new_p);
        }
    }

    /// Batch form of [`GEntryStore::add_write`]: registers the aggregated
    /// updates of `step` for every `(key, Δ)` in `items`, locking each
    /// shard once per contiguous same-shard run (callers pre-group by
    /// [`GEntryStore::shard_of`], so "once per run" is once per shard) and
    /// handing the queue one `enqueue_batch` + `adjust_batch` per shard.
    ///
    /// The queue operations execute while the shard lock is still held —
    /// the same envelope the per-key path uses. Releasing the lock first
    /// would let a concurrent mutator of the same key observe a queued
    /// entry (`W ≠ ∅`) not yet physically present and emit an `adjust`
    /// whose old position does not exist.
    pub fn add_writes_batch(
        &self,
        step: u64,
        items: &[(Key, Arc<[f32]>)],
        pq: &dyn PriorityQueue,
        scratch: &mut PqOpScratch,
    ) {
        let mut i = 0;
        while i < items.len() {
            let sid = Self::shard_of(items[i].0);
            let mut shard = self.shards[sid].lock();
            scratch.enqueues.clear();
            scratch.moves.clear();
            let mut newly_pending = 0usize;
            while i < items.len() && Self::shard_of(items[i].0) == sid {
                let (key, grad) = &items[i];
                let slot = shard.ensure(*key);
                let had_writes = shard.has_writes(slot);
                let old_p = if had_writes {
                    shard.priority(slot, self.policy)
                } else {
                    INFINITE
                };
                shard.r_remove(slot, step);
                shard.w_push(slot, step, Arc::clone(grad));
                if !had_writes {
                    newly_pending += 1;
                    scratch
                        .enqueues
                        .push((*key, shard.priority(slot, self.policy)));
                } else {
                    let new_p = shard.priority(slot, self.policy);
                    if new_p != old_p {
                        scratch.moves.push((*key, old_p, new_p));
                    }
                }
                i += 1;
            }
            // Count before the entries become findable (the drain check
            // `shutdown && pending_keys() == 0` must never observe a queued
            // entry it thinks is already flushed). `take_writes` of these
            // keys blocks on the shard lock until after this, so the
            // matching decrement cannot run first.
            if newly_pending > 0 {
                self.pending_keys.fetch_add(newly_pending, Ordering::AcqRel);
            }
            sched_point!("gentry.writes_batch.publish");
            match self.policy {
                PriorityPolicy::EarliestRead => {
                    pq.enqueue_batch(&scratch.enqueues);
                    pq.adjust_batch(&scratch.moves);
                }
                PriorityPolicy::ArrivalOrder => {
                    // Every fresh enqueue shares one priority — this step.
                    // (A claimed key re-entering the queue has an empty W
                    // set before this write, so its first pending write is
                    // `step` too.) In-queue priorities never move under
                    // arrival order, so the whole shard batch is a single
                    // uniform enqueue.
                    debug_assert!(scratch.moves.is_empty());
                    debug_assert!(scratch.enqueues.iter().all(|&(_, p)| p == step));
                    scratch.uniform.clear();
                    scratch
                        .uniform
                        .extend(scratch.enqueues.iter().map(|&(k, _)| k));
                    pq.enqueue_batch_uniform(&scratch.uniform, step);
                }
            }
        }
    }

    /// Batch form of [`GEntryStore::add_read`]: registers that every key in
    /// `keys` will be read at `step`, with the same shard-run locking and
    /// batched queue adjustment as [`GEntryStore::add_writes_batch`].
    /// Callers pre-dedup and pre-group `keys` by shard.
    pub fn add_reads_batch(
        &self,
        step: u64,
        keys: &[Key],
        pq: &dyn PriorityQueue,
        scratch: &mut PqOpScratch,
    ) {
        let mut i = 0;
        while i < keys.len() {
            let sid = Self::shard_of(keys[i]);
            let mut shard = self.shards[sid].lock();
            scratch.moves.clear();
            while i < keys.len() && Self::shard_of(keys[i]) == sid {
                let key = keys[i];
                let slot = shard.ensure(key);
                if shard.has_writes(slot) {
                    let old_p = shard.priority(slot, self.policy);
                    shard.r_insert(slot, step);
                    let new_p = shard.priority(slot, self.policy);
                    if new_p != old_p {
                        scratch.moves.push((key, old_p, new_p));
                    }
                } else {
                    shard.r_insert(slot, step);
                }
                i += 1;
            }
            sched_point!("gentry.reads_batch.publish");
            pq.adjust_batch(&scratch.moves);
        }
    }

    /// [`GEntryStore::count_pending`] over a write batch: counts how many
    /// of the just-registered `(key, grad)` pairs still have pending
    /// writes. One lock per shard — callers pass a single shard's bucket
    /// (the registration write buffers are already shard-grouped), so in
    /// practice this locks once. Used by arrival-order strategies, whose
    /// wait gate is the step's own write backlog.
    pub fn count_pending_writes(&self, items: &[(Key, Arc<[f32]>)]) -> u64 {
        let mut blocked = 0u64;
        let mut i = 0;
        while i < items.len() {
            let sid = Self::shard_of(items[i].0);
            let shard = self.shards[sid].lock();
            while i < items.len() && Self::shard_of(items[i].0) == sid {
                if shard
                    .find(items[i].0)
                    .is_some_and(|slot| shard.has_writes(slot))
                {
                    blocked += 1;
                }
                i += 1;
            }
        }
        blocked
    }

    /// Counts how many of `keys` currently have pending (unflushed)
    /// writes, locking each shard once per contiguous same-shard run.
    /// This is the blocking-rows probe of the next step's wait condition;
    /// callers pass the already-deduped, shard-grouped lookahead key list
    /// that registration produced, so no workload re-query or re-dedup
    /// happens on the critical path.
    pub fn count_pending(&self, keys: &[Key]) -> u64 {
        let mut blocked = 0u64;
        let mut i = 0;
        while i < keys.len() {
            let sid = Self::shard_of(keys[i]);
            let shard = self.shards[sid].lock();
            while i < keys.len() && Self::shard_of(keys[i]) == sid {
                if shard
                    .find(keys[i])
                    .is_some_and(|slot| shard.has_writes(slot))
                {
                    blocked += 1;
                }
                i += 1;
            }
        }
        blocked
    }

    /// Claims the pending writes of `key` for flushing, if the dequeued
    /// `bucket_priority` still matches the entry's authoritative priority.
    ///
    /// Returns `None` for stale dequeues (the paper's inconsistent-g-entry
    /// check): the entry has been re-positioned and remains live in the
    /// queue elsewhere.
    ///
    /// The updates are returned in step order; the caller applies them to
    /// host memory and then calls nothing further — the entry is already
    /// out of the queue and marked flushed.
    pub fn take_writes(&self, key: Key, bucket_priority: Priority) -> Option<PendingWrites> {
        let mut writes = PendingWrites::new();
        match self.take_writes_into(key, bucket_priority, &mut writes) {
            0 => None,
            _ => Some(writes),
        }
    }

    /// Allocation-free form of [`GEntryStore::take_writes`]: appends the
    /// claimed `(step, Δ)` pairs to `out` (step order preserved) and
    /// returns how many were claimed — 0 for a stale dequeue. Flushers
    /// keep one `out` scratch per thread and reuse it batch after batch,
    /// so the claim path allocates nothing after warm-up; the entry's
    /// W-list capacity stays in the shard slab for reuse.
    pub fn take_writes_into(
        &self,
        key: Key,
        bucket_priority: Priority,
        out: &mut PendingWrites,
    ) -> usize {
        // Explorer hook for the claim window: a concurrent registrant may
        // reposition the entry between the dequeue that produced
        // `bucket_priority` and this validation. Both hooks sit outside the
        // shard lock — a suspended lock-holder would wedge any runnable
        // vthread that OS-blocks on the same shard.
        sched_point!("gentry.take_writes.enter");
        let claimed = {
            let mut shard = self.shard(key).lock();
            match shard.find(key) {
                None => 0,
                Some(slot) => {
                    if !shard.has_writes(slot)
                        || shard.priority(slot, self.policy) != bucket_priority
                    {
                        // Stale dequeue (the paper's inconsistent-g-entry
                        // check): repositioned and live elsewhere in the
                        // queue, or already claimed.
                        0
                    } else {
                        let n = shard.w_take(slot, out);
                        self.pending_keys.fetch_sub(1, Ordering::AcqRel);
                        if shard.r_is_empty(slot) {
                            shard.remove(slot);
                        }
                        n
                    }
                }
            }
        };
        sched_point!(if claimed == 0 {
            "gentry.take_writes.stale"
        } else {
            "gentry.take_writes.claimed"
        });
        claimed
    }

    /// The current priority of `key`'s entry, if it exists (tests only).
    pub fn priority_of(&self, key: Key) -> Option<Priority> {
        let shard = self.shard(key).lock();
        shard
            .find(key)
            .map(|slot| shard.priority(slot, self.policy))
    }

    /// True if `key` currently has pending writes (tests and invariant
    /// checks).
    pub fn has_pending_writes(&self, key: Key) -> bool {
        let shard = self.shard(key).lock();
        shard.find(key).is_some_and(|slot| shard.has_writes(slot))
    }

    /// Checks the paper's invariant (2) for `key` at `step`: it must NOT
    /// simultaneously have pending writes and a registered read at `step`.
    /// Returns `true` if the invariant holds.
    pub fn invariant_holds(&self, key: Key, step: u64) -> bool {
        let shard = self.shard(key).lock();
        match shard.find(key) {
            None => true,
            Some(slot) => !shard.has_writes(slot) || !shard.r_contains(slot, step),
        }
    }

    /// Total number of live g-entries (tests).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len).sum()
    }

    /// True if no g-entries exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frugal_pq::TwoLevelPq;

    #[test]
    fn read_only_entries_stay_out_of_queue() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(5, 3, &pq);
        assert!(pq.is_empty());
        assert_eq!(store.priority_of(5), Some(INFINITE));
        assert_eq!(store.pending_keys(), 0);
    }

    #[test]
    fn write_enqueues_with_min_read_priority() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(5, 3, &pq);
        store.add_read(5, 7, &pq);
        store.add_write(5, 1, vec![0.1].into(), &pq);
        // Read at step 1 was consumed; min remaining read is 3.
        assert_eq!(store.priority_of(5), Some(3));
        assert_eq!(pq.top_priority(), 3);
        assert_eq!(store.pending_keys(), 1);
    }

    #[test]
    fn write_without_future_reads_is_infinite() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(9, 0, &pq);
        store.add_write(9, 0, vec![1.0].into(), &pq);
        assert_eq!(store.priority_of(9), Some(INFINITE));
        assert_eq!(pq.top_priority(), INFINITE);
        assert_eq!(pq.len(), 1); // still flushed eventually
    }

    #[test]
    fn later_read_reactivates_infinite_entry() {
        // Paper Figure 6, k1: deferred update gets a priority once the key
        // is prefetched again.
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(1, 0, &pq);
        store.add_write(1, 0, vec![1.0].into(), &pq);
        assert_eq!(store.priority_of(1), Some(INFINITE));
        store.add_read(1, 2, &pq);
        assert_eq!(store.priority_of(1), Some(2));
        assert_eq!(pq.top_priority(), 2);
    }

    #[test]
    fn take_writes_returns_updates_in_step_order() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(4, 0, &pq);
        store.add_write(4, 0, vec![1.0].into(), &pq);
        store.add_read(4, 5, &pq);
        store.add_write(4, 5, vec![2.0].into(), &pq);
        let p = store.priority_of(4).unwrap();
        let w = store.take_writes(4, p).expect("valid claim");
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].0, &w[0].1[..]), (0, &[1.0f32][..]));
        assert_eq!((w[1].0, &w[1].1[..]), (5, &[2.0f32][..]));
        assert_eq!(store.pending_keys(), 0);
        // W drained and R empty: the entry is garbage-collected.
        assert_eq!(store.priority_of(4), None);
    }

    #[test]
    fn stale_claim_is_rejected() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(4, 2, &pq);
        store.add_write(4, 0, vec![1.0].into(), &pq); // priority 2
        assert!(store.take_writes(4, 7).is_none(), "wrong bucket priority");
        assert!(store.take_writes(4, 2).is_some());
        assert!(store.take_writes(4, 2).is_none(), "already drained");
    }

    #[test]
    fn surviving_reads_keep_entry_alive() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(4, 2, &pq);
        store.add_read(4, 9, &pq);
        store.add_write(4, 0, vec![1.0].into(), &pq);
        let w = store.take_writes(4, 2).unwrap();
        assert_eq!(w.len(), 1);
        // Reads at 2 and 9 remain; entry alive but out of the queue.
        assert_eq!(store.len(), 1);
        assert_eq!(store.priority_of(4), Some(INFINITE));
        // A new write re-enqueues at the surviving min read.
        store.add_write(4, 2, vec![3.0].into(), &pq);
        assert_eq!(store.priority_of(4), Some(9));
    }

    #[test]
    fn invariant_check_detects_violation_state() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        store.add_read(4, 6, &pq);
        assert!(store.invariant_holds(4, 6), "reads alone are fine");
        store.add_write(4, 0, vec![1.0].into(), &pq);
        assert!(!store.invariant_holds(4, 6), "pending write + read at 6");
        assert!(store.invariant_holds(4, 7), "no read registered at 7");
        let p = store.priority_of(4).unwrap();
        store.take_writes(4, p).unwrap();
        assert!(store.invariant_holds(4, 6), "flushed");
    }

    #[test]
    fn paper_figure6_walkthrough() {
        // Reproduces the worked example of Figure 6 (L = 2, keys k1..k3).
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(10);
        // ❶ prefetch step 0 (k2,k3,k1) and step 1 (k2).
        for k in [2u64, 3, 1] {
            store.add_read(k, 0, &pq);
        }
        store.add_read(2, 1, &pq);
        // ❷ top is ∞ > step 0: train.
        assert!(pq.top_priority() > 0);
        // ❸ backward of step 0 records Δ for all three keys.
        for k in [1u64, 2, 3] {
            store.add_write(k, 0, vec![0.5].into(), &pq);
        }
        // k2 has a read at step 1 -> priority 1; k1,k3 -> ∞.
        assert_eq!(store.priority_of(2), Some(1));
        assert_eq!(store.priority_of(1), Some(INFINITE));
        assert_eq!(store.priority_of(3), Some(INFINITE));
        // ❹ prefetch step 2 (k1).
        store.add_read(1, 2, &pq);
        assert_eq!(store.priority_of(1), Some(2));
        // ❺ top is 1, not > step 1: training must wait.
        assert!(pq.top_priority() <= 1);
        // ❻-❼ flush k2, then train step 1.
        let mut out = Vec::new();
        pq.dequeue_batch(1, &mut out);
        assert_eq!(out[0].0, 2);
        store.take_writes(2, out[0].1).unwrap();
        assert!(pq.top_priority() > 1);
        // ❽ backward of step 1 (k2 again, no more reads).
        store.add_write(2, 1, vec![0.5].into(), &pq);
        assert_eq!(store.priority_of(2), Some(INFINITE));
        // k1's update from step 0 is still deferred (blue dashed box):
        assert!(store.has_pending_writes(1));
        // ❾ top is 2, not > 2? top == 2 blocks step 2 until k1 flushed.
        assert_eq!(pq.top_priority(), 2);
        out.clear();
        pq.dequeue_batch(1, &mut out);
        store.take_writes(1, out[0].1).unwrap();
        assert!(pq.top_priority() > 2);
        // ❾ train step 2 (k1), record its update.
        store.add_write(1, 2, vec![0.5].into(), &pq);
        // ❿ after training, drain the deferred ∞ updates (k1, k2, k3).
        out.clear();
        pq.dequeue_batch(10, &mut out);
        for (k, p) in out {
            store.take_writes(k, p);
        }
        assert_eq!(store.pending_keys(), 0);
        assert!(store.is_empty());
    }

    /// Groups keys by shard (stable within a shard), the pre-grouping the
    /// batch APIs expect from callers.
    fn shard_grouped(keys: &[Key]) -> Vec<Key> {
        let mut v = keys.to_vec();
        v.sort_by_key(|&k| GEntryStore::shard_of(k));
        v
    }

    #[test]
    fn batch_writes_match_sequential_path() {
        // Same operation stream through the per-key path and the batch
        // path must leave identical store + queue state.
        let seq_store = GEntryStore::new();
        let seq_pq = TwoLevelPq::new(100);
        let bat_store = GEntryStore::new();
        let bat_pq = TwoLevelPq::new(100);
        let mut scratch = PqOpScratch::default();

        // Keys spanning several shards (incl. two in the same shard:
        // 1 and 65), some with tightening reads, some deferred.
        let keys: Vec<Key> = vec![1, 65, 2, 130, 7, 64];
        for &k in &keys {
            seq_store.add_read(k, 3, &seq_pq);
        }
        bat_store.add_reads_batch(3, &shard_grouped(&keys), &bat_pq, &mut scratch);

        let grad: Arc<[f32]> = vec![0.5].into();
        let items: Vec<(Key, Arc<[f32]>)> = keys.iter().map(|&k| (k, Arc::clone(&grad))).collect();
        for (k, g) in &items {
            seq_store.add_write(*k, 0, Arc::clone(g), &seq_pq);
        }
        let mut grouped = items.clone();
        grouped.sort_by_key(|&(k, _)| GEntryStore::shard_of(k));
        bat_store.add_writes_batch(0, &grouped, &bat_pq, &mut scratch);

        // A later read that re-tightens priorities through the batch path.
        for &k in &[1u64, 2] {
            seq_store.add_read(k, 1, &seq_pq);
        }
        bat_store.add_reads_batch(1, &shard_grouped(&[1, 2]), &bat_pq, &mut scratch);

        for &k in &keys {
            assert_eq!(
                seq_store.priority_of(k),
                bat_store.priority_of(k),
                "key {k} priority diverged"
            );
        }
        assert_eq!(seq_store.pending_keys(), bat_store.pending_keys());
        assert_eq!(seq_pq.top_priority(), bat_pq.top_priority());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        seq_pq.dequeue_batch(usize::MAX, &mut a);
        bat_pq.dequeue_batch(usize::MAX, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "queue contents diverged");
    }

    #[test]
    fn batch_write_then_take_round_trip() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        let mut scratch = PqOpScratch::default();
        store.add_reads_batch(2, &[4, 68], &pq, &mut scratch);
        let items: Vec<(Key, Arc<[f32]>)> = vec![(4, vec![1.0].into()), (68, vec![2.0].into())];
        store.add_writes_batch(0, &items, &pq, &mut scratch);
        assert_eq!(store.pending_keys(), 2);
        assert_eq!(pq.top_priority(), 2);
        let mut out = Vec::new();
        pq.dequeue_batch(usize::MAX, &mut out);
        for (k, p) in out {
            let w = store.take_writes(k, p).expect("fresh entries claimable");
            assert_eq!(w.len(), 1);
        }
        assert_eq!(store.pending_keys(), 0);
    }

    #[test]
    fn arrival_order_priority_is_first_write_step() {
        let store = GEntryStore::with_policy(PriorityPolicy::ArrivalOrder);
        let pq = TwoLevelPq::new(100);
        // Reads never matter under arrival order.
        store.add_read(5, 1, &pq);
        store.add_write(5, 3, vec![0.1].into(), &pq);
        assert_eq!(store.priority_of(5), Some(3));
        // A later write does not move the entry: the first pending write
        // still gates it.
        store.add_write(5, 7, vec![0.2].into(), &pq);
        assert_eq!(store.priority_of(5), Some(3));
        // Nor does a tightening read (the P²F policy would move it to 4).
        store.add_read(5, 4, &pq);
        assert_eq!(store.priority_of(5), Some(3));
        assert_eq!(pq.top_priority(), 3);
        // The claim drains both writes in step order; a fresh write then
        // re-enqueues at its own step.
        let w = store.take_writes(5, 3).expect("claimable");
        assert_eq!(w.iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![3, 7]);
        store.add_write(5, 9, vec![0.3].into(), &pq);
        assert_eq!(store.priority_of(5), Some(9));
    }

    #[test]
    fn arrival_order_batch_matches_per_key_path() {
        let seq_store = GEntryStore::with_policy(PriorityPolicy::ArrivalOrder);
        let seq_pq = TwoLevelPq::new(100);
        let bat_store = GEntryStore::with_policy(PriorityPolicy::ArrivalOrder);
        let bat_pq = TwoLevelPq::new(100);
        let mut scratch = PqOpScratch::default();
        let keys: Vec<Key> = vec![1, 65, 2, 130, 7, 64];
        let grad: Arc<[f32]> = vec![0.5].into();
        for step in [2u64, 5] {
            let items: Vec<(Key, Arc<[f32]>)> =
                keys.iter().map(|&k| (k, Arc::clone(&grad))).collect();
            for (k, g) in &items {
                seq_store.add_write(*k, step, Arc::clone(g), &seq_pq);
            }
            let mut grouped = items.clone();
            grouped.sort_by_key(|&(k, _)| GEntryStore::shard_of(k));
            bat_store.add_writes_batch(step, &grouped, &bat_pq, &mut scratch);
        }
        for &k in &keys {
            assert_eq!(seq_store.priority_of(k), bat_store.priority_of(k));
            assert_eq!(seq_store.priority_of(k), Some(2), "first write step");
        }
        assert_eq!(seq_pq.top_priority(), bat_pq.top_priority());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        seq_pq.dequeue_batch(usize::MAX, &mut a);
        bat_pq.dequeue_batch(usize::MAX, &mut b);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "queue contents diverged");
    }

    #[test]
    fn count_pending_sees_only_unflushed() {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(100);
        let mut scratch = PqOpScratch::default();
        let items: Vec<(Key, Arc<[f32]>)> = vec![
            (3, vec![1.0].into()),
            (67, vec![1.0].into()),
            (5, vec![1.0].into()),
        ];
        store.add_writes_batch(0, &items, &pq, &mut scratch);
        // Key 9 has only a read; key 99 does not exist.
        store.add_reads_batch(4, &[9], &pq, &mut scratch);
        assert_eq!(store.count_pending(&[3, 67, 5, 9, 99]), 3);
        let mut out = Vec::new();
        pq.dequeue_batch(1, &mut out);
        store.take_writes(out[0].0, out[0].1).unwrap();
        assert_eq!(store.count_pending(&[3, 67, 5, 9, 99]), 2);
    }

    #[test]
    fn read_window_slides_and_overflow_keeps_semantics() {
        // Span > 64: the bitset window must slide when the low bits are
        // clear and spill exactly otherwise.
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(10_000);
        // Window anchored at 0 with a live low bit...
        store.add_read(7, 0, &pq);
        store.add_read(7, 63, &pq);
        // ...so a far read cannot slide the window: it must spill.
        store.add_read(7, 500, &pq);
        store.add_write(7, 1, vec![1.0].into(), &pq);
        assert_eq!(store.priority_of(7), Some(0), "min across window+overflow");
        // Consuming step 0 frees the low bits; priority falls to 63.
        store.add_write(7, 0, vec![1.0].into(), &pq);
        assert_eq!(store.priority_of(7), Some(63));
        // Consuming 63 leaves only the spilled far read.
        store.add_write(7, 63, vec![1.0].into(), &pq);
        assert_eq!(store.priority_of(7), Some(500));
        // A fresh far read after the window empties re-anchors cleanly.
        store.add_read(7, 900, &pq);
        assert_eq!(store.priority_of(7), Some(500));
        store.add_write(7, 500, vec![1.0].into(), &pq);
        assert_eq!(store.priority_of(7), Some(900));
        let p = store.priority_of(7).unwrap();
        assert_eq!(store.take_writes(7, p).unwrap().len(), 4);
        // The surviving far read keeps the entry alive.
        assert_eq!(store.len(), 1);
        assert!(store.invariant_holds(7, 500));
        assert!(!store.is_empty());
    }

    #[test]
    fn table_growth_preserves_entries_and_bounds_memory() {
        // Thousands of same-shard keys force many growth rehashes; every
        // entry must survive with its R/W state, and resident bytes per
        // live key must stay under the §14 bound.
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(1_000);
        let n = 4_000u64;
        for i in 0..n {
            let key = i * SHARDS as u64; // all shard 0
            store.add_read(key, 10, &pq);
        }
        for i in 0..n {
            let key = i * SHARDS as u64;
            assert_eq!(store.priority_of(key), Some(INFINITE), "key {key}");
            assert!(store.invariant_holds(key, 11));
            assert!(!store.invariant_holds(key, 10) || !store.has_pending_writes(key));
        }
        assert_eq!(store.len(), n as usize);
        // One shard carries all n entries; its table alone must respect
        // the per-key byte bound (the other 63 idle shards only add their
        // fixed 16-slot skeletons).
        let idle = 63 * (16 * 24);
        let per_key = (store.resident_bytes() - idle) as f64 / n as f64;
        assert!(per_key < 32.0, "resident {per_key:.1} bytes/key");
    }

    #[test]
    fn concurrent_batch_writers_and_flusher_balance() {
        // Two batch registrants on disjoint shard sets racing one flusher:
        // the P²F drain invariant (every staged update flushed exactly
        // once) must survive the batch path.
        let store = Arc::new(GEntryStore::new());
        let pq = Arc::new(TwoLevelPq::new(2_000));
        let writers: Vec<_> = (0..2u64)
            .map(|t| {
                let (store, pq) = (Arc::clone(&store), Arc::clone(&pq));
                std::thread::spawn(move || {
                    let mut scratch = PqOpScratch::default();
                    for step in 0..300u64 {
                        // Trainer t owns shards with parity t (key % 2 == t
                        // implies shard % 2 == t for SHARDS = 64).
                        let keys: Vec<Key> = (0..16u64).map(|i| 2 * i + t).collect();
                        let reads = shard_grouped(&keys);
                        store.add_reads_batch(step, &reads, pq.as_ref(), &mut scratch);
                        let mut items: Vec<(Key, Arc<[f32]>)> =
                            keys.iter().map(|&k| (k, vec![1.0f32].into())).collect();
                        items.sort_by_key(|&(k, _)| GEntryStore::shard_of(k));
                        store.add_writes_batch(step, &items, pq.as_ref(), &mut scratch);
                    }
                })
            })
            .collect();
        let flusher = {
            let (store, pq) = (Arc::clone(&store), Arc::clone(&pq));
            std::thread::spawn(move || {
                let mut applied = 0u64;
                let mut out = Vec::new();
                let mut idle = 0;
                while idle < 1_000 {
                    out.clear();
                    pq.dequeue_batch(32, &mut out);
                    if out.is_empty() {
                        idle += 1;
                        std::thread::yield_now();
                        continue;
                    }
                    idle = 0;
                    for &(k, p) in &out {
                        if let Some(w) = store.take_writes(k, p) {
                            applied += w.len() as u64;
                        }
                    }
                }
                applied
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        let applied = flusher.join().unwrap();
        let mut out = Vec::new();
        pq.dequeue_batch(usize::MAX, &mut out);
        let mut rest = 0u64;
        for (k, p) in out {
            if let Some(w) = store.take_writes(k, p) {
                rest += w.len() as u64;
            }
        }
        assert_eq!(applied + rest, 2 * 300 * 16, "every staged update flushed");
        assert_eq!(store.pending_keys(), 0);
    }

    #[test]
    fn concurrent_writes_and_takes_balance() {
        use std::sync::Arc;
        let store = Arc::new(GEntryStore::new());
        let pq = Arc::new(TwoLevelPq::new(1_000));
        let writer = {
            let (store, pq) = (Arc::clone(&store), Arc::clone(&pq));
            std::thread::spawn(move || {
                for step in 0..500u64 {
                    for k in 0..16u64 {
                        store.add_read(k, step, pq.as_ref());
                        store.add_write(k, step, vec![1.0].into(), pq.as_ref());
                    }
                }
            })
        };
        let flusher = {
            let (store, pq) = (Arc::clone(&store), Arc::clone(&pq));
            std::thread::spawn(move || {
                let mut applied = 0u64;
                let mut out = Vec::new();
                loop {
                    out.clear();
                    pq.dequeue_batch(32, &mut out);
                    if out.is_empty() {
                        if store.pending_keys() == 0 && applied > 0 {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    for &(k, p) in &out {
                        if let Some(w) = store.take_writes(k, p) {
                            applied += w.len() as u64;
                        }
                    }
                }
                applied
            })
        };
        writer.join().unwrap();
        // Give the flusher time to drain, then verify totals.
        let applied = flusher.join().unwrap();
        // Drain any remainder.
        let mut out = Vec::new();
        pq.dequeue_batch(usize::MAX, &mut out);
        let mut rest = 0u64;
        for (k, p) in out {
            if let Some(w) = store.take_writes(k, p) {
                rest += w.len() as u64;
            }
        }
        assert_eq!(applied + rest, 500 * 16, "every staged update flushed");
        assert_eq!(store.pending_keys(), 0);
    }
}
