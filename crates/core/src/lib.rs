//! # frugal-core — the paper's contribution: P²F and the Frugal engine
//!
//! Implements §3 of *Frugal: Efficient and Economic Embedding Model
//! Training with Commodity GPUs* (ASPLOS '25):
//!
//! * [`GEntryStore`] — per-parameter metadata (R/W sets, Equation-1
//!   priorities) mirrored into a concurrent priority queue.
//! * [`FrugalEngine`] — the multi-threaded training runtime: training
//!   processes, the controller's sample-queue prefetch, update
//!   registration, background flushing threads, and the P²F wait
//!   condition. Also runs the write-through **Frugal-Sync** baseline.
//! * [`train_serial`] — the synchronous-consistency oracle: a Frugal run
//!   must be bit-identical to this single-threaded reference.
//! * [`Workload`] / [`EmbeddingModel`] — the seams through which datasets
//!   (`frugal-data`) and models (`frugal-models`) plug in;
//!   [`PullToTarget`] is the embedding-only microbenchmark model.

#![warn(missing_docs)]

// Yield-point hook for the schedule-exploration harness; compiles to
// nothing without the `sched` feature. Defined before the modules so it is
// textually in scope throughout the crate.
macro_rules! sched_point {
    ($label:expr) => {{
        #[cfg(feature = "sched")]
        frugal_sched::yield_point($label);
        // Consume the label so computed-label call sites stay
        // warning-free in non-`sched` builds.
        #[cfg(not(feature = "sched"))]
        let _ = $label;
    }};
}

mod calibrate;
mod config;
mod engine;
mod gentry;
mod model;
pub mod presets;
mod report;
mod serial;
mod wait;
mod workload;

pub use calibrate::{host_gentry_ns, host_slowdown};
pub use config::{ConfigError, FlushMode, FrugalConfig, OptimizerKind, PqKind};
pub use engine::FrugalEngine;
pub use gentry::{GEntryStore, PendingWrites, PqOpScratch, PriorityPolicy};
pub use model::{BatchGrads, EmbeddingModel, PullToTarget};
pub use report::TrainReport;
pub use serial::{train_serial, train_serial_with, SerialRun};
pub use wait::{admits, blocked, blocked_at, pending_floor, InflightTable};
pub use workload::Workload;
