//! The model abstraction: everything above the embedding layer.
//!
//! Engines fetch embedding rows (through caches, host memory, or simulated
//! collectives — that is the part the paper optimizes) and hand them to an
//! [`EmbeddingModel`], which computes gradients. DLRM and the KG scorers in
//! `frugal-models` implement this trait; [`PullToTarget`] is the
//! embedding-only microbenchmark model of §4.1/§4.2 ("we only test the
//! embedding part … and eliminate the DNN computation part").

use frugal_data::Key;

/// Per-GPU result of one forward+backward pass over a micro-batch.
#[derive(Debug, Clone)]
pub struct BatchGrads {
    /// Gradient for each key instance, flattened `keys.len() × dim`,
    /// aligned with the `keys` slice passed to
    /// [`EmbeddingModel::forward_backward`].
    pub emb_grads: Vec<f32>,
    /// Mean loss over the micro-batch (reporting only).
    pub loss: f32,
}

/// A model over embedding rows.
///
/// Implementations may hold dense parameters (e.g. an MLP) behind interior
/// mutability; [`EmbeddingModel::end_step`] is called exactly once per step
/// by the engine's coordinator (single-threaded) to apply dense updates in
/// a deterministic GPU order.
pub trait EmbeddingModel: Send + Sync {
    /// Embedding dimension.
    fn dim(&self) -> usize;

    /// Forward + backward over GPU `gpu`'s micro-batch at `step`.
    ///
    /// `rows` holds the current embedding values for `keys`, flattened
    /// `keys.len() × dim` in key order.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `rows.len() != keys.len() * dim`.
    fn forward_backward(&self, gpu: usize, step: u64, keys: &[Key], rows: &[f32]) -> BatchGrads;

    /// Called once per step after all GPUs finished their backward pass;
    /// applies any dense-parameter updates (aggregated in GPU order).
    fn end_step(&self, _step: u64) {}

    /// FLOPs of the dense part per sample (for the hardware cost model);
    /// zero for embedding-only workloads.
    fn dense_flops_per_sample(&self) -> f64 {
        0.0
    }

    /// Number of dense layers (kernel-launch accounting); zero if none.
    fn dense_layers(&self) -> u32 {
        0
    }

    /// Bytes of dense parameters that must be synchronized across GPUs each
    /// step (gradient all-reduce); zero for embedding-only workloads. This
    /// is the residual collective communication even Frugal keeps (Fig 12
    /// shows comm reduced by 60-85 %, not 100 %).
    fn dense_param_bytes(&self) -> u64 {
        0
    }
}

/// The embedding-only microbenchmark model: pulls every accessed row toward
/// a deterministic per-key target with a squared-error loss.
///
/// Gradient: `∂L/∂row = row − target(key)`, so training visibly converges —
/// which the convergence and equivalence tests exploit — while costing no
/// DNN compute, matching the paper's synthetic workload.
#[derive(Debug, Clone)]
pub struct PullToTarget {
    dim: usize,
    seed: u64,
}

impl PullToTarget {
    /// Creates the model for `dim`-wide embeddings.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "dim must be positive");
        PullToTarget { dim, seed }
    }

    /// The target vector element `d` for `key` (uniform in `[-0.5, 0.5]`).
    pub fn target(&self, key: Key, d: usize) -> f32 {
        let mut z = key
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((d as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(self.seed.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) as f32 - 0.5
    }
}

impl EmbeddingModel for PullToTarget {
    fn dim(&self) -> usize {
        self.dim
    }

    fn forward_backward(&self, _gpu: usize, _step: u64, keys: &[Key], rows: &[f32]) -> BatchGrads {
        assert_eq!(rows.len(), keys.len() * self.dim, "rows/keys mismatch");
        // Gradients of the *mean* loss over the micro-batch: scaling by the
        // batch size keeps hot keys stable under SGD even when they appear
        // many times per step (the sum of their per-occurrence gradients
        // then stays bounded by the full gradient).
        let scale = 1.0 / keys.len().max(1) as f32;
        let mut emb_grads = Vec::with_capacity(rows.len());
        let mut loss = 0.0f32;
        for (i, &key) in keys.iter().enumerate() {
            for d in 0..self.dim {
                let v = rows[i * self.dim + d];
                let diff = v - self.target(key, d);
                loss += 0.5 * diff * diff;
                emb_grads.push(scale * diff);
            }
        }
        let denom = (keys.len().max(1) * self.dim) as f32;
        BatchGrads {
            emb_grads,
            loss: loss / denom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_points_at_target() {
        let m = PullToTarget::new(4, 1);
        let keys = [7u64];
        let rows: Vec<f32> = (0..4).map(|d| m.target(7, d) + 1.0).collect();
        let g = m.forward_backward(0, 0, &keys, &rows);
        for &v in &g.emb_grads {
            assert!((v - 1.0).abs() < 1e-6);
        }
        assert!((g.loss - 0.5).abs() < 1e-6);
    }

    #[test]
    fn zero_loss_at_target() {
        let m = PullToTarget::new(3, 2);
        let keys = [1u64, 2];
        let rows: Vec<f32> = keys
            .iter()
            .flat_map(|&k| (0..3).map(move |d| (k, d)))
            .map(|(k, d)| m.target(k, d))
            .collect();
        let g = m.forward_backward(0, 0, &keys, &rows);
        assert_eq!(g.loss, 0.0);
        assert!(g.emb_grads.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn targets_deterministic_and_bounded() {
        let m = PullToTarget::new(2, 3);
        for k in 0..100u64 {
            for d in 0..2 {
                let t = m.target(k, d);
                assert_eq!(t, m.target(k, d));
                assert!((-0.5..=0.5).contains(&t));
            }
        }
    }

    #[test]
    fn default_dense_hooks_are_zero() {
        let m = PullToTarget::new(2, 0);
        assert_eq!(m.dense_flops_per_sample(), 0.0);
        assert_eq!(m.dense_layers(), 0);
        m.end_step(0); // no-op must not panic
    }

    #[test]
    #[should_panic(expected = "rows/keys mismatch")]
    fn rejects_misaligned_rows() {
        let m = PullToTarget::new(4, 1);
        let _ = m.forward_backward(0, 0, &[1, 2], &[0.0; 4]);
    }
}
