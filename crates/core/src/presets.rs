//! Ready-made configurations and graceful engine construction for
//! examples, benchmarks, and demos.
//!
//! Every example used to repeat the same three lines — build a commodity
//! config, scale the flusher pool down to the demo's size, construct the
//! engine (which panics on a bad config). These helpers centralize that:
//! [`demo_commodity`] is the laptop-friendly paper setup, and
//! [`build_engine`] validates before constructing so binaries report bad
//! arguments as an error instead of a panic.

use crate::config::{ConfigError, FrugalConfig};
use crate::engine::FrugalEngine;

/// The paper's commodity setup (§4.1) scaled for demo runs: one flushing
/// thread per simulated GPU (the full 8-thread pool of the paper's 26-core
/// server oversubscribes the few cores a laptop-scale run has) and the
/// mean-normalized demo learning rate.
pub fn demo_commodity(n_gpus: usize, steps: u64) -> FrugalConfig {
    let mut cfg = FrugalConfig::commodity(n_gpus, steps);
    cfg.flush_threads = n_gpus.max(1);
    cfg
}

/// [`demo_commodity`] with a non-default cache policy — the one extra knob
/// the cache-policy ablation and demos sweep.
pub fn demo_commodity_with_policy(
    n_gpus: usize,
    steps: u64,
    policy: frugal_embed::CachePolicy,
) -> FrugalConfig {
    demo_commodity(n_gpus, steps).with_cache_policy(policy)
}

/// Validates `cfg` and constructs the engine, turning the construction-time
/// panic of [`FrugalEngine::new`] into an error binaries can print.
pub fn build_engine(
    cfg: FrugalConfig,
    n_keys: u64,
    dim: usize,
) -> Result<FrugalEngine, ConfigError> {
    cfg.validate()?;
    Ok(FrugalEngine::new(cfg, n_keys, dim))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_commodity_scales_flushers_to_gpus() {
        let cfg = demo_commodity(4, 10);
        assert_eq!(cfg.flush_threads, 4);
        assert_eq!(cfg.n_gpus(), 4);
        assert_eq!(cfg.steps, 10);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn demo_commodity_with_policy_sets_policy() {
        use frugal_embed::CachePolicy;
        let cfg = demo_commodity_with_policy(2, 5, CachePolicy::OracleBelady);
        assert_eq!(cfg.cache_policy, CachePolicy::OracleBelady);
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn build_engine_rejects_invalid_configs_gracefully() {
        let mut cfg = demo_commodity(2, 5);
        cfg.cache_ratio = 0.0;
        match build_engine(cfg, 100, 4) {
            Err(ConfigError::CacheRatio(r)) => assert_eq!(r, 0.0),
            other => panic!("expected CacheRatio error, got {other:?}"),
        }
        let cfg = demo_commodity(2, 5);
        assert!(build_engine(cfg, 100, 4).is_ok());
    }
}
