//! Training-run reports.

use frugal_sim::{IterBreakdown, Nanos, RunStats};

/// Everything a finished training run reports — the quantities the paper's
/// evaluation plots.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-iteration time breakdowns (modeled hardware + measured stall).
    pub stats: RunStats,
    /// Aggregate GPU-cache hit ratio over all trainers.
    pub hit_ratio: f64,
    /// Mean per-step time to register a batch's g-entry updates
    /// (Exp #4a's metric); zero for engines without g-entries.
    pub mean_gentry_update: Nanos,
    /// Consistency-invariant violations observed on host reads
    /// (checked mode; must be 0 unless failure injection is on).
    pub violations: usize,
    /// Seqlock read/write races detected by the host store (checked mode).
    pub races: usize,
    /// Mean loss over the first recorded step.
    pub first_loss: f32,
    /// Mean loss over the last recorded step.
    pub final_loss: f32,
}

impl TrainReport {
    /// Training throughput in samples per second (the paper's headline
    /// metric).
    pub fn throughput(&self) -> f64 {
        self.stats.throughput()
    }

    /// Mean per-iteration breakdown.
    pub fn mean_iter(&self) -> IterBreakdown {
        self.stats.mean()
    }

    /// Mean per-iteration training-process stall (Exp #2/#4 metric).
    pub fn mean_stall(&self) -> Nanos {
        self.stats.mean_stall()
    }
}
