//! Training-run reports.

use frugal_sim::{IterBreakdown, Nanos, RunStats};
use frugal_telemetry::TelemetrySummary;

/// Everything a finished training run reports — the quantities the paper's
/// evaluation plots.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Per-iteration time breakdowns (modeled hardware + measured stall).
    pub stats: RunStats,
    /// Aggregate GPU-cache hit ratio over all trainers. Its denominator is
    /// the `cache.hits` + `cache.misses` telemetry counters.
    pub hit_ratio: f64,
    /// Rows copied host→cache on the miss path (accepted inserts only) —
    /// the `cache.fills` telemetry counter.
    pub cache_fills: u64,
    /// Total nanoseconds trainers spent copying miss rows into the cache
    /// arena — the `cache.fill_ns` telemetry counter.
    pub cache_fill_ns: u64,
    /// Fills performed during the P²F stall wait from the oracle policy's
    /// next-step plan (stall time converted into fill time) — the
    /// `cache.prefetch_fills` telemetry counter. Zero for policies without
    /// prefetch.
    pub cache_prefetch_fills: u64,
    /// Mean per-step time to register a batch's g-entry updates — the
    /// paper's Exp #4a metric, the mean of the `leader.gentry_update_ns`
    /// telemetry histogram. Zero for engines without g-entries.
    pub mean_gentry_update: Nanos,
    /// Consistency-invariant violations observed on host reads — the
    /// `p2f.violations` telemetry counter. Only collected in checked mode
    /// ([`FrugalConfig::checked`](crate::FrugalConfig::checked)); must be 0
    /// unless failure injection (`skip_wait`) is on.
    pub violations: usize,
    /// Seqlock races detected in checked mode, summed over the host store
    /// (read/write overlaps) and the optimizer's dense state table
    /// (update/update overlaps).
    pub races: usize,
    /// Rows flushed to the host store by the flushing threads — the
    /// `flush.rows` telemetry counter. Zero for write-through engines.
    pub flush_rows: u64,
    /// Total nanoseconds the flushing threads spent applying rows (claim +
    /// optimizer step + host-store write) — the `flusher.apply_total_ns`
    /// telemetry counter.
    pub flush_apply_ns: u64,
    /// Mean loss over the first recorded step.
    pub first_loss: f32,
    /// Mean loss over the last recorded step.
    pub final_loss: f32,
    /// Metrics, span percentiles, and stall attribution collected during
    /// the run; `None` when the run's
    /// [`Telemetry`](frugal_telemetry::Telemetry) handle was off.
    pub telemetry: Option<TelemetrySummary>,
}

impl TrainReport {
    /// Training throughput in samples per second (the paper's headline
    /// metric).
    pub fn throughput(&self) -> f64 {
        self.stats.throughput()
    }

    /// Mean per-iteration breakdown.
    pub fn mean_iter(&self) -> IterBreakdown {
        self.stats.mean()
    }

    /// Mean per-iteration training-process stall (Exp #2/#4 metric).
    pub fn mean_stall(&self) -> Nanos {
        self.stats.mean_stall()
    }

    /// Mean flush-apply cost per row in nanoseconds — the flush-path
    /// efficiency metric the perf-smoke gate tracks. Zero when nothing was
    /// flushed (e.g. write-through runs).
    pub fn mean_flush_apply_ns_row(&self) -> f64 {
        if self.flush_rows == 0 {
            0.0
        } else {
            self.flush_apply_ns as f64 / self.flush_rows as f64
        }
    }

    /// Mean host→cache fill cost per row in nanoseconds — the arena-copy
    /// efficiency metric the perf-smoke gate tracks. Zero when nothing was
    /// filled.
    pub fn mean_cache_fill_ns_row(&self) -> f64 {
        if self.cache_fills == 0 {
            0.0
        } else {
            self.cache_fill_ns as f64 / self.cache_fills as f64
        }
    }
}
