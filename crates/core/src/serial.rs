//! The serial reference trainer.
//!
//! Synchronous-training semantics defined operationally: one thread, one
//! plain parameter array, steps executed in order, per-key gradients
//! aggregated in canonical order (sample order within a GPU, GPU index
//! order across GPUs) and applied with SGD.
//!
//! The paper proves P²F "adheres to synchronous training consistency"
//! (§3.3). This module turns that proof into an executable oracle: a Frugal
//! run must leave the host store **bit-identical** to this trainer.

use crate::config::OptimizerKind;
use crate::model::EmbeddingModel;
use crate::workload::Workload;
use frugal_embed::{GradAggregator, HostStore};

/// Result of a serial reference run.
#[derive(Debug)]
pub struct SerialRun {
    /// Final parameters (a plain [`HostStore`], never accessed
    /// concurrently).
    pub store: HostStore,
    /// Mean loss at the first step.
    pub first_loss: f32,
    /// Mean loss at the last step.
    pub final_loss: f32,
}

/// Trains `workload` with `model` for `steps` steps serially.
///
/// `seed` must match the engine's [`crate::FrugalConfig::seed`] for
/// parameter-equality comparisons.
///
/// # Panics
///
/// Panics if the model dimension is zero or the workload is empty.
pub fn train_serial(
    workload: &dyn Workload,
    model: &dyn EmbeddingModel,
    steps: u64,
    lr: f32,
    seed: u64,
) -> SerialRun {
    train_serial_with(workload, model, steps, lr, seed, OptimizerKind::Sgd)
}

/// Like [`train_serial`] but with an explicit sparse optimizer.
///
/// # Panics
///
/// Panics if the model dimension is zero or the workload is empty.
pub fn train_serial_with(
    workload: &dyn Workload,
    model: &dyn EmbeddingModel,
    steps: u64,
    lr: f32,
    seed: u64,
    optimizer: OptimizerKind,
) -> SerialRun {
    let mut opt = optimizer.build_local(lr);
    let dim = model.dim();
    let n = workload.n_gpus();
    let store = HostStore::new(workload.n_keys(), dim, seed);
    let mut first_loss = 0.0;
    let mut final_loss = 0.0;
    for s in 0..steps {
        let mut merged = GradAggregator::new(dim);
        let mut loss_sum = 0.0f32;
        for g in 0..n {
            let keys = workload.keys(s, g);
            let mut rows = vec![0.0f32; keys.len() * dim];
            for (i, &key) in keys.iter().enumerate() {
                store.read_row(key, &mut rows[i * dim..(i + 1) * dim]);
            }
            let grads = model.forward_backward(g, s, &keys, &rows);
            loss_sum += grads.loss;
            let mut agg = GradAggregator::new(dim);
            for (i, &key) in keys.iter().enumerate() {
                agg.add(key, &grads.emb_grads[i * dim..(i + 1) * dim]);
            }
            merged.merge(agg);
        }
        model.end_step(s);
        for (key, grad) in merged.into_arrival_order() {
            store.write_row(key, |row| {
                opt.update_row(key, row, &grad);
            });
        }
        let loss = loss_sum / n as f32;
        if s == 0 {
            first_loss = loss;
        }
        final_loss = loss;
    }
    SerialRun {
        store,
        first_loss,
        final_loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrugalConfig;
    use crate::engine::FrugalEngine;
    use crate::model::PullToTarget;
    use frugal_data::{KeyDistribution, SyntheticTrace};

    #[test]
    fn serial_training_converges() {
        let t = SyntheticTrace::new(200, KeyDistribution::Zipf(0.99), 32, 2, 5).unwrap();
        let model = PullToTarget::new(4, 1);
        let run = train_serial(&t, &model, 40, 3.0, 9);
        assert!(run.final_loss < run.first_loss * 0.5);
    }

    #[test]
    fn frugal_is_bit_identical_to_serial() {
        // The paper's synchronous-consistency claim, executed: the fully
        // concurrent P2F engine must produce the same bits as one thread.
        let t = SyntheticTrace::new(400, KeyDistribution::Zipf(0.9), 64, 2, 11).unwrap();
        let model = PullToTarget::new(8, 2);
        let mut cfg = FrugalConfig::commodity(2, 25);
        cfg.flush_threads = 3;
        cfg.lookahead = 5;
        let seed = cfg.seed;
        let lr = cfg.lr;
        let engine = FrugalEngine::new(cfg, 400, 8);
        let report = engine.run(&t, &model);
        let serial = train_serial(&t, &model, 25, lr, seed);
        for key in 0..400 {
            assert_eq!(
                engine.store().row_vec(key),
                serial.store.row_vec(key),
                "key {key} diverged from the serial reference"
            );
        }
        assert!((report.final_loss - serial.final_loss).abs() < 1e-6);
    }

    #[test]
    fn serial_is_deterministic() {
        let t = SyntheticTrace::new(100, KeyDistribution::Uniform, 16, 2, 1).unwrap();
        let model = PullToTarget::new(4, 7);
        let a = train_serial(&t, &model, 10, 0.1, 3);
        let b = train_serial(&t, &model, 10, 0.1, 3);
        for key in 0..100 {
            assert_eq!(a.store.row_vec(key), b.store.row_vec(key));
        }
    }
}
