//! The P²F wait condition (paper §3.3) and the in-flight flush table.
//!
//! A trainer may start step `s` only when no pending update could still be
//! read by `s`. Two sources must both clear:
//!
//! 1. **Queued** entries: `PQ.top() > s` (strictly) — the queue's
//!    conservative lower bound covers everything not yet dequeued.
//! 2. **In-flight** entries: a flusher that dequeued a batch but has not
//!    finished applying it to host memory holds those entries *outside*
//!    the queue. Each flusher publishes the minimum priority of its
//!    current batch in an [`InflightTable`] slot; the wait condition
//!    blocks while any slot is ≤ `s`.
//!
//! Losing either check re-admits a historical race (DESIGN.md §8 race 2).
//! The handoff between them is itself delicate: markers must be published
//! *before* entries leave the queue ([`frugal_pq::PriorityQueue::dequeue_batch_guarded`]),
//! or there is an instant where an extracted entry is covered by neither
//! check — the dequeue-to-publish race the schedule explorer found.

use frugal_pq::{PriorityQueue, INFINITE};
use std::sync::atomic::{AtomicU64, Ordering};

/// One marker slot per flushing thread: the minimum priority of the batch
/// the flusher is currently moving to host memory, [`INFINITE`] when idle.
#[derive(Debug)]
pub struct InflightTable {
    slots: Vec<AtomicU64>,
}

impl InflightTable {
    /// Creates a table with `n` idle slots (one per flushing thread).
    pub fn new(n: usize) -> Self {
        InflightTable {
            slots: (0..n).map(|_| AtomicU64::new(INFINITE)).collect(),
        }
    }

    /// The raw marker slot for flusher `slot`, to be passed as the guard of
    /// [`PriorityQueue::dequeue_batch_guarded`].
    pub fn guard(&self, slot: usize) -> &AtomicU64 {
        &self.slots[slot]
    }

    /// Marks flusher `slot` idle again — call only after every row of its
    /// batch is durably in host memory.
    pub fn clear(&self, slot: usize) {
        self.slots[slot].store(INFINITE, Ordering::Release);
    }

    /// True if any flusher is applying a batch containing priority ≤ `step`.
    pub fn any_at_or_below(&self, step: u64) -> bool {
        self.slots.iter().any(|p| {
            sched_point!("wait.inflight.slot");
            p.load(Ordering::Acquire) <= step
        })
    }

    /// Number of marker slots (= flushing threads).
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// True if flusher `slot` is not currently applying a batch.
    ///
    /// A single observation, not a fence: used by the prefetch safety
    /// protocol, which needs each slot observed idle *at least once* after
    /// a key's pending-write check (see `trainer::prefetch_during_stall`).
    pub fn is_idle(&self, slot: usize) -> bool {
        self.slots[slot].load(Ordering::Acquire) == INFINITE
    }

    /// The smallest in-flight priority across all flushers ([`INFINITE`]
    /// when all idle).
    pub fn min(&self) -> u64 {
        self.slots
            .iter()
            .map(|p| p.load(Ordering::Acquire))
            .min()
            .unwrap_or(INFINITE)
    }
}

/// The wait condition at an explicit threshold: true while any pending
/// flush (queued or in-flight) has priority ≤ `threshold`.
///
/// The threshold is the flush strategy's knob: P²F blocks step `s` on
/// priorities ≤ `s` (priorities are *next-read* steps, and a pending write
/// read at `s` must land first — §3.3's strict `PQ.top() > s`), while the
/// FIFO ablation blocks on priorities ≤ `s - 1` (priorities are *write*
/// steps, and every write from steps before `s` must land first).
///
/// Checked in this order — queue first, then in-flight markers — because
/// entries move from the queue *into* a marker: a guarded dequeue
/// publishes the marker before extraction, so an entry missed by the
/// `top_priority` read is already visible to the marker scan that follows.
/// (The reverse order would be racy even with guarded dequeues.)
pub fn blocked_at(pq: &dyn PriorityQueue, inflight: &InflightTable, threshold: u64) -> bool {
    if pq.top_priority() <= threshold {
        return true;
    }
    sched_point!("wait.between_checks");
    inflight.any_at_or_below(threshold)
}

/// The P²F wait condition: true while step `s` must NOT start
/// ([`blocked_at`] with the §3.3 threshold `s`).
pub fn blocked(pq: &dyn PriorityQueue, inflight: &InflightTable, s: u64) -> bool {
    blocked_at(pq, inflight, s)
}

/// Convenience inverse of [`blocked`]: true when step `s` may start.
pub fn admits(pq: &dyn PriorityQueue, inflight: &InflightTable, s: u64) -> bool {
    !blocked(pq, inflight, s)
}

/// The lowest outstanding deadline across both wait-condition sources —
/// the queue top and the in-flight markers. This is what a blocked trainer
/// is blocked *on*; the engine attributes stalls to it in telemetry.
pub fn pending_floor(pq: &dyn PriorityQueue, inflight: &InflightTable) -> u64 {
    pq.top_priority().min(inflight.min())
}

#[cfg(test)]
mod tests {
    use super::*;
    use frugal_pq::TwoLevelPq;

    #[test]
    fn idle_table_blocks_nothing() {
        let pq = TwoLevelPq::new(10);
        let table = InflightTable::new(3);
        assert_eq!(table.min(), INFINITE);
        assert!(!table.any_at_or_below(10));
        assert!(admits(&pq, &table, 5));
    }

    #[test]
    fn queued_entry_blocks_its_step() {
        let pq = TwoLevelPq::new(10);
        pq.enqueue(1, 4);
        let table = InflightTable::new(1);
        assert!(blocked(&pq, &table, 4), "top == s must block (strict >)");
        assert!(blocked(&pq, &table, 7));
        assert!(admits(&pq, &table, 3));
    }

    #[test]
    fn threshold_form_matches_fifo_semantics() {
        // FIFO priorities are write steps: step s blocks on anything ≤ s-1.
        let pq = TwoLevelPq::new(10);
        pq.enqueue(9, 2); // a write from step 2, not yet flushed
        let table = InflightTable::new(1);
        assert!(blocked_at(&pq, &table, 2), "step 3 must wait for step 2");
        assert!(!blocked_at(&pq, &table, 1), "step 2 needs only steps < 2");
        // An in-flight marker participates at the same threshold.
        let mut out = Vec::new();
        pq.dequeue_batch_guarded(8, &mut out, table.guard(0));
        assert!(blocked_at(&pq, &table, 2), "claimed but unapplied blocks");
        table.clear(0);
        assert!(!blocked_at(&pq, &table, 2));
    }

    #[test]
    fn inflight_marker_blocks_like_a_queued_entry() {
        let pq = TwoLevelPq::new(10);
        let table = InflightTable::new(2);
        table.guard(1).store(6, Ordering::SeqCst);
        assert!(blocked(&pq, &table, 6));
        assert!(admits(&pq, &table, 5));
        assert_eq!(table.min(), 6);
        table.clear(1);
        assert!(admits(&pq, &table, 6));
    }
}
