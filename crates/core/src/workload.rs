//! The workload abstraction engines train on.
//!
//! An engine only needs to know, for every `(step, gpu)`, which embedding
//! keys are accessed — plus sizing metadata. Traces from `frugal-data`
//! implement this; their determinism is what powers the controller's sample
//! queue (prefetching the next `L` steps' keys, paper §3.2).

use frugal_data::{Key, KgTrace, RecTrace, SyntheticTrace};

/// A replayable multi-GPU embedding workload.
pub trait Workload: Send + Sync {
    /// Size of the embedding key space.
    fn n_keys(&self) -> u64;

    /// Number of GPUs the workload is partitioned over.
    fn n_gpus(&self) -> usize;

    /// Samples processed per step across all GPUs (throughput unit).
    fn samples_per_step(&self) -> u64;

    /// The keys GPU `gpu` accesses at `step`, in sample order (duplicates
    /// allowed; engines deduplicate where their caches require it).
    fn keys(&self, step: u64, gpu: usize) -> Vec<Key>;
}

impl Workload for SyntheticTrace {
    fn n_keys(&self) -> u64 {
        SyntheticTrace::n_keys(self)
    }

    fn n_gpus(&self) -> usize {
        SyntheticTrace::n_gpus(self)
    }

    fn samples_per_step(&self) -> u64 {
        SyntheticTrace::samples_per_step(self)
    }

    fn keys(&self, step: u64, gpu: usize) -> Vec<Key> {
        // One GPU's stream only — `step_keys(step)` would generate (and
        // discard) every sibling batch, multiplying per-trainer sampling
        // cost by `n_gpus`.
        self.gpu_keys(step, gpu)
    }
}

impl Workload for RecTrace {
    fn n_keys(&self) -> u64 {
        self.spec().n_ids
    }

    fn n_gpus(&self) -> usize {
        RecTrace::n_gpus(self)
    }

    fn samples_per_step(&self) -> u64 {
        RecTrace::samples_per_step(self)
    }

    fn keys(&self, step: u64, gpu: usize) -> Vec<Key> {
        self.step_batch(step, gpu).keys
    }
}

impl Workload for KgTrace {
    fn n_keys(&self) -> u64 {
        self.spec().n_entities
    }

    fn n_gpus(&self) -> usize {
        KgTrace::n_gpus(self)
    }

    fn samples_per_step(&self) -> u64 {
        KgTrace::samples_per_step(self)
    }

    fn keys(&self, step: u64, gpu: usize) -> Vec<Key> {
        self.step_batch(step, gpu).entity_keys().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frugal_data::{KeyDistribution, KgDatasetSpec, RecDatasetSpec};

    #[test]
    fn synthetic_adapter_matches_trace() {
        let t = SyntheticTrace::new(100, KeyDistribution::Uniform, 8, 2, 1).unwrap();
        let w: &dyn Workload = &t;
        assert_eq!(w.n_keys(), 100);
        assert_eq!(w.n_gpus(), 2);
        assert_eq!(w.samples_per_step(), 16);
        assert_eq!(w.keys(3, 1), t.step_keys(3)[1]);
    }

    #[test]
    fn rec_adapter_exposes_flat_keys() {
        let spec = RecDatasetSpec::avazu().scaled_to_ids(1_000);
        let t = RecTrace::new(spec, 4, 2, 1).unwrap();
        let w: &dyn Workload = &t;
        assert_eq!(w.keys(0, 0).len(), 4 * 22);
        assert_eq!(w.n_keys(), 1_000);
    }

    #[test]
    fn kg_adapter_counts_entities() {
        let t = KgTrace::new(KgDatasetSpec::fb15k(), 8, 2, 1).unwrap();
        let w: &dyn Workload = &t;
        // heads + tails + negatives
        assert_eq!(w.keys(0, 0).len(), 8 * 2 + 200);
        assert_eq!(w.samples_per_step(), 16);
    }
}
