//! Property test: the compact g-entry representation (bitset read window +
//! overflow side map + write slab) agrees with plain `BTreeSet`/`Vec`
//! semantics over arbitrary register/drain sequences.
//!
//! The reference model is the layout the store shipped with before the
//! compact rewrite: one `BTreeSet<u64>` R set and one `Vec<u64>` W set per
//! key, priorities recomputed from scratch. The compact store must match
//! it on every observable after every operation — priorities, pending
//! counts, invariant checks, claim outcomes, and drained step sequences —
//! including step patterns whose read span exceeds the 64-step window
//! (forcing window slides and overflow spills the engine never triggers).

use frugal_core::{GEntryStore, PriorityPolicy};
use frugal_pq::{TwoLevelPq, INFINITE};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

const MAX_STEP: u64 = 2_000;

/// The pre-rewrite semantics, kept deliberately naive.
#[derive(Default)]
struct ModelEntry {
    r: BTreeSet<u64>,
    /// Steps of pending writes, in arrival (= step) order.
    w: Vec<u64>,
}

struct Model {
    entries: HashMap<u64, ModelEntry>,
    policy: PriorityPolicy,
}

impl Model {
    fn new(policy: PriorityPolicy) -> Self {
        Model {
            entries: HashMap::new(),
            policy,
        }
    }

    fn priority(&self, key: u64) -> Option<u64> {
        let e = self.entries.get(&key)?;
        Some(if e.w.is_empty() {
            INFINITE
        } else {
            match self.policy {
                PriorityPolicy::EarliestRead => e.r.first().copied().unwrap_or(INFINITE),
                PriorityPolicy::ArrivalOrder => e.w[0],
            }
        })
    }

    fn add_read(&mut self, key: u64, step: u64) {
        self.entries.entry(key).or_default().r.insert(step);
    }

    fn add_write(&mut self, key: u64, step: u64) {
        let e = self.entries.entry(key).or_default();
        e.r.remove(&step);
        e.w.push(step);
    }

    /// Claim with the same stale-validation rule as the store; returns the
    /// drained write steps.
    fn take_writes(&mut self, key: u64, bucket_priority: u64) -> Option<Vec<u64>> {
        let p = self.priority(key)?;
        let e = self.entries.get_mut(&key)?;
        if e.w.is_empty() || p != bucket_priority {
            return None;
        }
        let drained = std::mem::take(&mut e.w);
        if e.r.is_empty() {
            self.entries.remove(&key);
        }
        Some(drained)
    }

    fn pending_keys(&self) -> usize {
        self.entries.values().filter(|e| !e.w.is_empty()).count()
    }

    fn invariant_holds(&self, key: u64, step: u64) -> bool {
        match self.entries.get(&key) {
            None => true,
            Some(e) => e.w.is_empty() || !e.r.contains(&step),
        }
    }
}

/// One generated operation: `(kind, key index, step)`. A small key set
/// (reused indices) and a wide step range maximize collisions of both.
type Op = (u64, u64, u64);

fn check_agreement(policy: PriorityPolicy, ops: &[Op]) -> Result<(), String> {
    let store = GEntryStore::with_policy(policy);
    let pq = TwoLevelPq::new(MAX_STEP);
    let mut model = Model::new(policy);
    // Keys straddle several shards and collide within shard 0 (0 and 64).
    let keys: [u64; 8] = [0, 1, 2, 64, 65, 7, 128, 500];
    let grad: Arc<[f32]> = vec![1.0].into();

    for &(kind, key_idx, step) in ops {
        let key = keys[(key_idx % 8) as usize];
        let step = step % MAX_STEP;
        match kind % 4 {
            0 => {
                store.add_read(key, step, &pq);
                model.add_read(key, step);
            }
            1 => {
                store.add_write(key, step, Arc::clone(&grad), &pq);
                model.add_write(key, step);
            }
            2 => {
                // Claim at the entry's current priority (a valid dequeue)
                // or at a perturbed one (a stale dequeue) — both sides must
                // agree on acceptance and on the drained steps.
                let at = match store.priority_of(key) {
                    Some(p) if !step.is_multiple_of(3) => p,
                    _ => step,
                };
                let got = store.take_writes(key, at);
                let want = model.take_writes(key, at);
                let got_steps = got.map(|w| w.iter().map(|&(s, _)| s).collect::<Vec<_>>());
                if got_steps != want {
                    return Err(format!(
                        "take_writes({key}, {at}) diverged: store {got_steps:?}, model {want:?}"
                    ));
                }
            }
            _ => {
                if store.invariant_holds(key, step) != model.invariant_holds(key, step) {
                    return Err(format!("invariant_holds({key}, {step}) diverged"));
                }
            }
        }
        if store.priority_of(key) != model.priority(key) {
            return Err(format!(
                "priority_of({key}) diverged after op ({kind}, {step}): store {:?}, model {:?}",
                store.priority_of(key),
                model.priority(key)
            ));
        }
        if store.has_pending_writes(key)
            != model
                .priority(key)
                .is_some_and(|_| model.entries.get(&key).is_some_and(|e| !e.w.is_empty()))
        {
            return Err(format!("has_pending_writes({key}) diverged"));
        }
    }
    if store.pending_keys() != model.pending_keys() {
        return Err(format!(
            "pending_keys diverged: store {}, model {}",
            store.pending_keys(),
            model.pending_keys()
        ));
    }
    if store.len() != model.entries.len() {
        return Err(format!(
            "len diverged: store {}, model {}",
            store.len(),
            model.entries.len()
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compact_store_matches_btreeset_semantics_earliest_read(
        ops in proptest::collection::vec((0u64..4, 0u64..8, 0u64..MAX_STEP), 0..200)
    ) {
        if let Err(msg) = check_agreement(PriorityPolicy::EarliestRead, &ops) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn compact_store_matches_btreeset_semantics_arrival_order(
        ops in proptest::collection::vec((0u64..4, 0u64..8, 0u64..MAX_STEP), 0..200)
    ) {
        if let Err(msg) = check_agreement(PriorityPolicy::ArrivalOrder, &ops) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn count_pending_matches_model(
        ops in proptest::collection::vec((0u64..2, 0u64..8, 0u64..MAX_STEP), 0..100)
    ) {
        let store = GEntryStore::new();
        let pq = TwoLevelPq::new(MAX_STEP);
        let mut model = Model::new(PriorityPolicy::EarliestRead);
        let keys: [u64; 8] = [0, 1, 2, 64, 65, 7, 128, 500];
        let grad: Arc<[f32]> = vec![1.0].into();
        for &(kind, key_idx, step) in &ops {
            let key = keys[(key_idx % 8) as usize];
            if kind == 0 {
                store.add_read(key, step, &pq);
                model.add_read(key, step);
            } else {
                store.add_write(key, step, Arc::clone(&grad), &pq);
                model.add_write(key, step);
            }
        }
        let probe: Vec<u64> = {
            // Shard-grouped, as the engine's lookahead list is.
            let mut v = keys.to_vec();
            v.push(9_999); // absent key
            v.sort_by_key(|&k| GEntryStore::shard_of(k));
            v
        };
        let want = probe
            .iter()
            .filter(|k| model.entries.get(k).is_some_and(|e| !e.w.is_empty()))
            .count() as u64;
        prop_assert_eq!(store.count_pending(&probe), want);
        let items: Vec<(u64, Arc<[f32]>)> =
            probe.iter().map(|&k| (k, Arc::clone(&grad))).collect();
        prop_assert_eq!(store.count_pending_writes(&items), want);
    }
}
