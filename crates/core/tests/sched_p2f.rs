//! Schedule exploration of the P²F wait-condition path (DESIGN.md §8).
//!
//! Drives the real [`frugal_core::blocked`]/[`frugal_core::admits`] wait
//! condition against a real [`TwoLevelPq`] and [`InflightTable`] under the
//! deterministic scheduler, with a model flusher and a probing trainer:
//!
//! * **Race 2 (historical)** — the flusher dequeues a batch and applies it
//!   without ever publishing an in-flight marker. Once the entries leave
//!   the queue, `top_priority` no longer covers them and nothing else
//!   does: a trainer is admitted while the flush is still pending.
//! * **Race 3 (found by this harness)** — the flusher *does* publish a
//!   marker, but only *after* `dequeue_batch` returns. The window between
//!   extraction and publication is invisible to both halves of the wait
//!   condition.
//! * **Fixed** — [`PriorityQueue::dequeue_batch_guarded`] publishes the
//!   marker before each entry leaves the queue; the sweep must be clean.
//!
//! The full `FrugalEngine` spawns its own uninstrumented OS threads, so
//! these tests exercise the extracted wait/marker machinery directly —
//! the exact code the engine's trainer and flusher loops call.

#![cfg(feature = "sched")]

use frugal_core::{admits, blocked_at, GEntryStore, InflightTable, PqOpScratch, PriorityPolicy};
use frugal_embed::GradAggregator;
use frugal_pq::{PriorityQueue, TwoLevelPq, INFINITE};
use frugal_sched::{explore, replay, yield_point, ExploreConfig, SimBuilder};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How the model flusher hands off dequeued entries to the wait condition.
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Historical race 2: no in-flight marker at all.
    NoMarker,
    /// Race 3: marker published only after the batch has left the queue.
    PublishAfter,
    /// Current code: guard published before extraction.
    Guarded,
}

/// One pending write with priority 3; the trainer asks to start step 3.
/// Until the flusher has durably applied the write (`applied` flips true,
/// monotonically), `admits(pq, inflight, 3)` must be false in every
/// reachable interleaving.
fn flush_handoff(mode: Mode) -> impl FnMut(&mut SimBuilder) {
    move |sim: &mut SimBuilder| {
        let pq = Arc::new(TwoLevelPq::new(16));
        pq.enqueue(9, 3);
        let inflight = Arc::new(InflightTable::new(1));
        let applied = Arc::new(AtomicBool::new(false));

        {
            let pq = Arc::clone(&pq);
            let inflight = Arc::clone(&inflight);
            let applied = Arc::clone(&applied);
            sim.thread("flusher", move || {
                let mut out = Vec::new();
                match mode {
                    Mode::Guarded => {
                        pq.dequeue_batch_guarded(8, &mut out, inflight.guard(0));
                    }
                    Mode::NoMarker | Mode::PublishAfter => {
                        pq.dequeue_batch(8, &mut out);
                        if mode == Mode::PublishAfter {
                            // The dequeue-to-publish window: entries are
                            // out of the queue but no marker covers them.
                            yield_point("flusher.publish_gap");
                            let min = out.iter().map(|&(_, p)| p).min().unwrap_or(INFINITE);
                            inflight.guard(0).store(min, Ordering::SeqCst);
                        }
                    }
                }
                yield_point("flusher.apply");
                applied.store(true, Ordering::SeqCst);
                inflight.clear(0);
            });
        }
        {
            let pq = Arc::clone(&pq);
            let inflight = Arc::clone(&inflight);
            let applied = Arc::clone(&applied);
            sim.thread("trainer", move || {
                for _ in 0..6 {
                    let ok = admits(pq.as_ref(), &inflight, 3);
                    // `applied` only ever goes false→true, so if it is
                    // still false *after* the probe, it was false for the
                    // probe's whole duration — the flush was pending and
                    // step 3 must have been refused.
                    if !applied.load(Ordering::SeqCst) {
                        assert!(!ok, "pending flush invisible to the wait condition");
                    }
                    yield_point("trainer.probe");
                }
            });
        }
    }
}

fn quiet(seeds: std::ops::Range<u64>) -> ExploreConfig {
    ExploreConfig {
        seeds,
        announce_failure: false,
        ..ExploreConfig::default()
    }
}

#[test]
fn race2_missing_marker_is_found_and_replays() {
    let cfg = quiet(0..1024);
    let outcome = explore(&cfg, flush_handoff(Mode::NoMarker));
    let failure = outcome
        .failure
        .expect("historical race 2 (no in-flight marker) must be found");
    assert!(failure.failures[0]
        .message
        .contains("pending flush invisible"));
    eprintln!("race 2 (missing marker): replay seed {}", failure.seed);
    let replayed = replay(failure.seed, &cfg.sim, flush_handoff(Mode::NoMarker));
    assert!(replayed.failed());
    assert_eq!(replayed.trace, failure.trace);
}

#[test]
fn race3_publish_after_dequeue_is_found_and_replays() {
    let cfg = quiet(0..1024);
    let outcome = explore(&cfg, flush_handoff(Mode::PublishAfter));
    let failure = outcome
        .failure
        .expect("race 3 (dequeue-to-publish window) must be found");
    assert!(failure.failures[0]
        .message
        .contains("pending flush invisible"));
    eprintln!(
        "race 3 (publish-after-dequeue): replay seed {}",
        failure.seed
    );
    let replayed = replay(failure.seed, &cfg.sim, flush_handoff(Mode::PublishAfter));
    assert!(replayed.failed());
    assert_eq!(replayed.trace, failure.trace);
}

#[test]
fn guarded_dequeue_survives_sweep() {
    let outcome = explore(&quiet(0..1024), flush_handoff(Mode::Guarded));
    assert!(
        !outcome.found_violation(),
        "guarded dequeue must keep the wait condition sound: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 1024);
}

#[test]
fn guarded_dequeue_with_two_pending_writes_survives_sweep() {
    // Same shape, two entries straddling the step: the guard must cover
    // the batch minimum, not just the first bucket scanned.
    let outcome = explore(&quiet(0..512), |sim| {
        let pq = Arc::new(TwoLevelPq::new(16));
        pq.enqueue(9, 3);
        pq.enqueue(11, 2);
        let inflight = Arc::new(InflightTable::new(1));
        let applied = Arc::new(AtomicBool::new(false));
        {
            let pq = Arc::clone(&pq);
            let inflight = Arc::clone(&inflight);
            let applied = Arc::clone(&applied);
            sim.thread("flusher", move || {
                let mut out = Vec::new();
                pq.dequeue_batch_guarded(8, &mut out, inflight.guard(0));
                yield_point("flusher.apply");
                applied.store(true, Ordering::SeqCst);
                inflight.clear(0);
            });
        }
        {
            let pq = Arc::clone(&pq);
            let inflight = Arc::clone(&inflight);
            let applied = Arc::clone(&applied);
            sim.thread("trainer", move || {
                for _ in 0..6 {
                    let ok = admits(pq.as_ref(), &inflight, 3);
                    if !applied.load(Ordering::SeqCst) {
                        assert!(!ok, "pending flush invisible to the wait condition");
                    }
                    yield_point("trainer.probe");
                }
            });
        }
    });
    assert!(
        !outcome.found_violation(),
        "multi-entry guarded dequeue must stay sound: {:?}",
        outcome.failure
    );
}

/// Take-writes vs. concurrent re-registration on one key (key 7).
///
/// * `deferred = false` — the entry starts at priority 3 with one pending
///   write; the registrant tightens it to 2 with a step-2 prefetch, then
///   the step-2 write moves it back to 3 with a second pending write.
///   Exactly **2** rows may be applied.
/// * `deferred = true` — the entry starts deferred (∞, no reads; paper
///   Fig 6, k1) and the registrant re-activates it to priority 4.
///   Exactly **1** row may be applied.
///
/// The flusher first collects pq-only dequeues *while the registrant
/// runs* — each collected `(key, priority)` pair can be a transient
/// position the re-registration already abandoned — and only claims them
/// with `take_writes_into` after `reg_done` (the engine's barrier-C
/// ordering; same-shard `take_writes` against a scheduler-suspended lock
/// holder would wedge the harness, see
/// `sharded_batch_registration_survives_sweep`). Stale claims must return
/// 0 rows; the entry's writes must be applied exactly once.
fn reactivation_vs_take(deferred: bool) -> impl FnMut(&mut SimBuilder) {
    move |sim: &mut SimBuilder| {
        let pq: Arc<TwoLevelPq> = Arc::new(TwoLevelPq::new(16));
        let gstore = Arc::new(GEntryStore::new());
        let grad: Arc<[f32]> = Arc::from(vec![1.0f32].as_slice());
        if !deferred {
            // Priority 3: a step-3 read plus the step-0 write.
            gstore.add_read(7, 3, pq.as_ref() as &dyn PriorityQueue);
        }
        gstore.add_write(7, 0, Arc::clone(&grad), pq.as_ref());
        let expected = if deferred { 1 } else { 2 };
        let inflight = Arc::new(InflightTable::new(1));
        let reg_done = Arc::new(AtomicBool::new(false));
        let applied = Arc::new(AtomicUsize::new(0));

        {
            let pq = Arc::clone(&pq);
            let gstore = Arc::clone(&gstore);
            let reg_done = Arc::clone(&reg_done);
            let grad = Arc::clone(&grad);
            sim.thread("registrant", move || {
                if deferred {
                    // Re-activation of a deferred entry: ∞ → 4.
                    gstore.add_read(7, 4, pq.as_ref());
                } else {
                    // Tighten 3 → 2 (re-activation adjust), then consume
                    // the read with the step-2 write: back to 3, two
                    // pending writes.
                    gstore.add_read(7, 2, pq.as_ref());
                    gstore.add_write(7, 2, Arc::clone(&grad), pq.as_ref());
                }
                reg_done.store(true, Ordering::SeqCst);
            });
        }
        {
            let pq = Arc::clone(&pq);
            let gstore = Arc::clone(&gstore);
            let inflight = Arc::clone(&inflight);
            let reg_done = Arc::clone(&reg_done);
            let applied = Arc::clone(&applied);
            sim.thread("flusher", move || {
                let mut claims: Vec<(u64, u64)> = Vec::new();
                let mut out = Vec::new();
                // Phase 1: dequeues racing the registrant (pq only — no
                // g-entry locks touched while the registrant may hold one).
                for _ in 0..3 {
                    out.clear();
                    pq.dequeue_batch_guarded(8, &mut out, inflight.guard(0));
                    inflight.clear(0);
                    claims.extend(out.iter().copied());
                    yield_point("flusher.collect");
                }
                // Phase 2: claim the collected (possibly stale) pairs once
                // registration has settled, then drain the rest.
                let mut writes = Vec::new();
                let mut claimed = false;
                for _ in 0..64 {
                    if !reg_done.load(Ordering::SeqCst) {
                        yield_point("flusher.await_registration");
                        continue;
                    }
                    if !claimed {
                        claimed = true;
                        for &(key, p) in &claims {
                            let n = gstore.take_writes_into(key, p, &mut writes);
                            applied.fetch_add(n, Ordering::SeqCst);
                        }
                    }
                    if gstore.pending_keys() == 0 {
                        return;
                    }
                    out.clear();
                    pq.dequeue_batch_guarded(8, &mut out, inflight.guard(0));
                    for &(key, p) in &out {
                        let n = gstore.take_writes_into(key, p, &mut writes);
                        applied.fetch_add(n, Ordering::SeqCst);
                    }
                    inflight.clear(0);
                    yield_point("flusher.drain");
                }
            });
        }
        let gstore = Arc::clone(&gstore);
        let applied = Arc::clone(&applied);
        sim.check("writes applied exactly once", move || {
            assert_eq!(
                applied.load(Ordering::SeqCst),
                expected,
                "stale claim double-applied, or the drain starved"
            );
            assert_eq!(gstore.pending_keys(), 0, "pending key survived the drain");
        });
    }
}

#[test]
fn take_writes_vs_reregistration_survives_sweep() {
    let outcome = explore(&quiet(0..1024), reactivation_vs_take(false));
    assert!(
        !outcome.found_violation(),
        "take-writes vs re-registration must apply exactly once: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 1024);
}

#[test]
fn take_writes_vs_infinite_reactivation_survives_sweep() {
    let outcome = explore(&quiet(0..1024), reactivation_vs_take(true));
    assert!(
        !outcome.found_violation(),
        "take-writes vs ∞ re-activation must apply exactly once: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 1024);
}

#[test]
fn sharded_batch_registration_survives_sweep() {
    // The parallel-registration path end to end: a trainer registers one
    // shard's g-entry writes with `add_writes_batch` (keys 1 and 65 share
    // shard 1; key 2 lands in shard 2 and is registered in a second batch)
    // while a flusher drains with guarded dequeues + `take_writes` and a
    // probing trainer evaluates the wait condition. Reads of step 3 are
    // pre-registered, so every write carries priority 3 — until all three
    // rows are durably applied, step 3 must stay blocked.
    //
    // The flusher and prober gate on `reg1_done` (spun at a yield point):
    // the engine's barrier C orders registration before the next wait-
    // condition evaluation, and a scheduler-suspended registrant holding a
    // shard mutex must never be contended by a runnable thread (the
    // harness counts only yield points, so OS-mutex blocking on a
    // suspended vthread would wedge the controller). The second batch DOES
    // run concurrently with the drain — disjoint shard, so the only
    // shared state is the lock-free queue, exactly the engine's geometry.
    let outcome = explore(&quiet(0..1024), |sim| {
        let pq: Arc<TwoLevelPq> = Arc::new(TwoLevelPq::new(16));
        let gstore = Arc::new(GEntryStore::new());
        let grad: Arc<[f32]> = Arc::from(vec![1.0f32].as_slice());
        // Sample-queue prefetch (build phase): step 3 reads all three keys.
        for key in [1u64, 65, 2] {
            gstore.add_read(key, 3, pq.as_ref() as &dyn PriorityQueue);
        }
        let inflight = Arc::new(InflightTable::new(1));
        let reg1_done = Arc::new(AtomicBool::new(false));
        let applied = Arc::new(AtomicUsize::new(0));

        {
            let pq = Arc::clone(&pq);
            let gstore = Arc::clone(&gstore);
            let reg1_done = Arc::clone(&reg1_done);
            let grad = Arc::clone(&grad);
            sim.thread("registrant", move || {
                let mut scratch = PqOpScratch::default();
                gstore.add_writes_batch(
                    0,
                    &[(1, Arc::clone(&grad)), (65, Arc::clone(&grad))],
                    pq.as_ref(),
                    &mut scratch,
                );
                reg1_done.store(true, Ordering::SeqCst);
                yield_point("registrant.between_batches");
                gstore.add_writes_batch(0, &[(2, Arc::clone(&grad))], pq.as_ref(), &mut scratch);
            });
        }
        {
            let pq = Arc::clone(&pq);
            let gstore = Arc::clone(&gstore);
            let inflight = Arc::clone(&inflight);
            let reg1_done = Arc::clone(&reg1_done);
            let applied = Arc::clone(&applied);
            sim.thread("flusher", move || {
                let mut out = Vec::new();
                for _ in 0..64 {
                    if !reg1_done.load(Ordering::SeqCst) {
                        yield_point("flusher.await_registration");
                        continue;
                    }
                    out.clear();
                    pq.dequeue_batch_guarded(8, &mut out, inflight.guard(0));
                    for &(key, bucket_p) in &out {
                        if gstore.take_writes(key, bucket_p).is_some() {
                            // "Apply to host memory": the marker may only
                            // clear after this point.
                            applied.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    inflight.clear(0);
                    if applied.load(Ordering::SeqCst) == 3 {
                        return;
                    }
                    yield_point("flusher.idle");
                }
            });
        }
        {
            let pq = Arc::clone(&pq);
            let inflight = Arc::clone(&inflight);
            let reg1_done = Arc::clone(&reg1_done);
            let applied = Arc::clone(&applied);
            sim.thread("trainer", move || {
                for _ in 0..8 {
                    if !reg1_done.load(Ordering::SeqCst) {
                        yield_point("trainer.await_registration");
                        continue;
                    }
                    let ok = admits(pq.as_ref() as &dyn PriorityQueue, &inflight, 3);
                    // Monotone: `applied` only grows, so a post-probe read
                    // of < 3 means rows were pending for the whole probe.
                    if applied.load(Ordering::SeqCst) < 3 {
                        assert!(!ok, "registered write invisible to the wait condition");
                    }
                    yield_point("trainer.probe");
                }
            });
        }
        let gstore = Arc::clone(&gstore);
        let applied = Arc::clone(&applied);
        sim.check("all rows drained", move || {
            assert_eq!(applied.load(Ordering::SeqCst), 3, "flusher starved");
            assert_eq!(gstore.pending_keys(), 0, "pending key survived the drain");
        });
    });
    assert!(
        !outcome.found_violation(),
        "sharded batch registration must keep the wait condition sound: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 1024);
}

#[test]
fn fifo_wait_condition_survives_sweep() {
    // The FIFO-ablation wait condition end to end: an arrival-order store
    // enqueues every write at its *write* step (reads never reposition
    // anything), and a step-`s` trainer evaluates
    // `blocked_at(pq, inflight, s - 1)` — all writes issued before step
    // `s` must be durably applied first. Keys 1 and 65 (shard 1) register
    // at step 0 through the uniform batch path; key 2 (shard 2) follows at
    // step 1 and must NOT gate step 1. Until both step-0 rows are applied,
    // `blocked_at(_, _, 0)` must hold in every reachable interleaving.
    let outcome = explore(&quiet(0..1024), |sim| {
        let pq: Arc<TwoLevelPq> = Arc::new(TwoLevelPq::new(16));
        let gstore = Arc::new(GEntryStore::with_policy(PriorityPolicy::ArrivalOrder));
        let grad: Arc<[f32]> = Arc::from(vec![1.0f32].as_slice());
        let inflight = Arc::new(InflightTable::new(1));
        let reg1_done = Arc::new(AtomicBool::new(false));
        let applied = Arc::new(AtomicUsize::new(0));
        let applied_step0 = Arc::new(AtomicUsize::new(0));

        {
            let pq = Arc::clone(&pq);
            let gstore = Arc::clone(&gstore);
            let reg1_done = Arc::clone(&reg1_done);
            let grad = Arc::clone(&grad);
            sim.thread("registrant", move || {
                let mut scratch = PqOpScratch::default();
                gstore.add_writes_batch(
                    0,
                    &[(1, Arc::clone(&grad)), (65, Arc::clone(&grad))],
                    pq.as_ref(),
                    &mut scratch,
                );
                reg1_done.store(true, Ordering::SeqCst);
                yield_point("registrant.between_batches");
                gstore.add_writes_batch(1, &[(2, Arc::clone(&grad))], pq.as_ref(), &mut scratch);
            });
        }
        {
            let pq = Arc::clone(&pq);
            let gstore = Arc::clone(&gstore);
            let inflight = Arc::clone(&inflight);
            let reg1_done = Arc::clone(&reg1_done);
            let applied = Arc::clone(&applied);
            let applied_step0 = Arc::clone(&applied_step0);
            sim.thread("flusher", move || {
                let mut out = Vec::new();
                for _ in 0..64 {
                    if !reg1_done.load(Ordering::SeqCst) {
                        yield_point("flusher.await_registration");
                        continue;
                    }
                    out.clear();
                    pq.dequeue_batch_guarded(8, &mut out, inflight.guard(0));
                    for &(key, bucket_p) in &out {
                        if gstore.take_writes(key, bucket_p).is_some() {
                            applied.fetch_add(1, Ordering::SeqCst);
                            if bucket_p == 0 {
                                applied_step0.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                    inflight.clear(0);
                    if applied.load(Ordering::SeqCst) == 3 {
                        return;
                    }
                    yield_point("flusher.idle");
                }
            });
        }
        {
            let pq = Arc::clone(&pq);
            let inflight = Arc::clone(&inflight);
            let reg1_done = Arc::clone(&reg1_done);
            let applied_step0 = Arc::clone(&applied_step0);
            sim.thread("trainer", move || {
                for _ in 0..8 {
                    if !reg1_done.load(Ordering::SeqCst) {
                        yield_point("trainer.await_registration");
                        continue;
                    }
                    let is_blocked = blocked_at(pq.as_ref() as &dyn PriorityQueue, &inflight, 0);
                    // Monotone: `applied_step0` only grows, so a post-probe
                    // read of < 2 means step-0 rows were pending for the
                    // probe's whole duration.
                    if applied_step0.load(Ordering::SeqCst) < 2 {
                        assert!(
                            is_blocked,
                            "pending step-0 write invisible to the FIFO wait"
                        );
                    }
                    yield_point("trainer.probe");
                }
            });
        }
        let gstore = Arc::clone(&gstore);
        let applied = Arc::clone(&applied);
        let applied_step0 = Arc::clone(&applied_step0);
        sim.check("all rows drained", move || {
            assert_eq!(applied.load(Ordering::SeqCst), 3, "flusher starved");
            assert_eq!(applied_step0.load(Ordering::SeqCst), 2);
            assert_eq!(gstore.pending_keys(), 0, "pending key survived the drain");
        });
    });
    assert!(
        !outcome.found_violation(),
        "arrival-order registration must keep the FIFO wait sound: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 1024);
}

#[test]
fn adjust_insert_before_delete_window_survives_sweep() {
    // ROADMAP open item: `PriorityQueue::adjust` repositions an entry by
    // inserting the new priority *before* deleting the old one, so a
    // concurrent wait-condition evaluation always finds the key at one
    // position or the other (transiently both). This sweep drives the
    // re-activation tightening — a step-2 prefetch arrives for an entry
    // queued at priority 5 — against a racing guarded dequeue and a
    // probing trainer. Were the adjust delete-first, the explorer would
    // catch the empty window where `admits(pq, inflight, 2)` turns true
    // while the write is still pending; the stale-claim check must also
    // keep the row applied exactly once.
    let outcome = explore(&quiet(0..1024), |sim| {
        let pq: Arc<TwoLevelPq> = Arc::new(TwoLevelPq::new(16));
        let gstore = Arc::new(GEntryStore::new());
        let grad: Arc<[f32]> = Arc::from(vec![1.0f32].as_slice());
        // Build phase: one pending write on key 7, earliest read step 5.
        gstore.add_read(7, 5, pq.as_ref() as &dyn PriorityQueue);
        gstore.add_write(7, 0, Arc::clone(&grad), pq.as_ref());
        let inflight = Arc::new(InflightTable::new(1));
        let reg_done = Arc::new(AtomicBool::new(false));
        let applied = Arc::new(AtomicUsize::new(0));

        {
            let pq = Arc::clone(&pq);
            let gstore = Arc::clone(&gstore);
            let reg_done = Arc::clone(&reg_done);
            sim.thread("registrant", move || {
                // Tighten 5 → 2: the adjust under test.
                gstore.add_read(7, 2, pq.as_ref());
                reg_done.store(true, Ordering::SeqCst);
            });
        }
        {
            let pq = Arc::clone(&pq);
            let gstore = Arc::clone(&gstore);
            let inflight = Arc::clone(&inflight);
            let reg_done = Arc::clone(&reg_done);
            let applied = Arc::clone(&applied);
            sim.thread("flusher", move || {
                let mut claims: Vec<(u64, u64)> = Vec::new();
                let mut out = Vec::new();
                // One pq-only dequeue racing the adjust. The slot's marker
                // stays published until the collected claims are resolved
                // below, so anything extracted here remains covered by the
                // wait condition throughout (no g-entry locks are touched
                // while the registrant may hold one).
                pq.dequeue_batch_guarded(8, &mut out, inflight.guard(0));
                claims.extend(out.iter().copied());
                yield_point("flusher.collected");
                let mut writes = Vec::new();
                let mut claimed = false;
                for _ in 0..64 {
                    if !reg_done.load(Ordering::SeqCst) {
                        yield_point("flusher.await_registration");
                        continue;
                    }
                    if !claimed {
                        claimed = true;
                        for &(key, p) in &claims {
                            let n = gstore.take_writes_into(key, p, &mut writes);
                            applied.fetch_add(n, Ordering::SeqCst);
                        }
                        inflight.clear(0);
                    }
                    if gstore.pending_keys() == 0 {
                        return;
                    }
                    out.clear();
                    pq.dequeue_batch_guarded(8, &mut out, inflight.guard(0));
                    for &(key, p) in &out {
                        let n = gstore.take_writes_into(key, p, &mut writes);
                        applied.fetch_add(n, Ordering::SeqCst);
                    }
                    inflight.clear(0);
                    yield_point("flusher.drain");
                }
            });
        }
        {
            let pq = Arc::clone(&pq);
            let inflight = Arc::clone(&inflight);
            let reg_done = Arc::clone(&reg_done);
            let applied = Arc::clone(&applied);
            sim.thread("trainer", move || {
                for _ in 0..8 {
                    if !reg_done.load(Ordering::SeqCst) {
                        yield_point("trainer.await_registration");
                        continue;
                    }
                    let ok = admits(pq.as_ref() as &dyn PriorityQueue, &inflight, 2);
                    // After the tightening, the entry gates step 2; the
                    // monotone `applied` read makes the probe sound.
                    if applied.load(Ordering::SeqCst) == 0 {
                        assert!(!ok, "tightened entry invisible to the wait condition");
                    }
                    yield_point("trainer.probe");
                }
            });
        }
        let gstore = Arc::clone(&gstore);
        let applied = Arc::clone(&applied);
        sim.check("write applied exactly once", move || {
            assert_eq!(
                applied.load(Ordering::SeqCst),
                1,
                "stale claim double-applied, or the drain starved"
            );
            assert_eq!(gstore.pending_keys(), 0, "pending key survived the drain");
        });
    });
    assert!(
        !outcome.found_violation(),
        "adjust insert-before-delete must keep the wait condition sound: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 1024);
}

/// Number of virtual trainers in the sharded-reduce hand-off sweeps.
const REDUCE_N: usize = 3;

/// Trainer `g`'s per-step gradient contributions: overlapping keys across
/// trainers (1, 2, 65, 130 — spanning several g-entry shards and owners)
/// plus one private key, two adds each, with values where f32 summation
/// order is observable. Mirrors the engine's per-GPU aggregators at
/// barrier A.
fn reduce_contribs(g: usize) -> Vec<(u64, [f32; 2])> {
    let mut out = Vec::new();
    for &key in &[1u64, 2, 65, 130, 200 + g as u64] {
        for i in 0..2u32 {
            let v = (g as f32 + 1.0) * 0.1 + key as f32 * 1e-4 + i as f32 * 1e-7;
            out.push((key, [v, -v * 0.5]));
        }
    }
    out
}

/// The serial oracle: one leader folds every trainer's aggregator in
/// trainer-index order, then the merged rows are partitioned by
/// [`GEntryStore::owner_of`]. Returns, per owner, the key-sorted
/// `(key, f32 bit patterns)` rows the decentralized reduce must reproduce
/// exactly.
fn reduce_oracle() -> Vec<Vec<(u64, Vec<u32>)>> {
    let mut leader = GradAggregator::new(2);
    for g in 0..REDUCE_N {
        let mut agg = GradAggregator::new(2);
        for (key, grad) in reduce_contribs(g) {
            agg.add(key, &grad);
        }
        leader.merge(agg);
    }
    let mut per_owner = vec![Vec::new(); REDUCE_N];
    for (key, grad) in leader.into_sorted() {
        let bits: Vec<u32> = grad.iter().map(|v| v.to_bits()).collect();
        per_owner[GEntryStore::owner_of(key, REDUCE_N)].push((key, bits));
    }
    per_owner
}

/// The decentralized-reduce hand-off (DESIGN.md §16): every trainer
/// deposits its per-GPU aggregator into its slot, and — after barrier A —
/// reduces the keys it owns across *all* slots in trainer-index order.
///
/// * `barriered = false` models the broken hand-off: a trainer starts its
///   cross-slot shard read right after its own deposit. The explorer must
///   find an interleaving where a sibling's slot is still empty and the
///   merge loses that trainer's contribution.
/// * `barriered = true` models the engine's protocol (deposit → barrier →
///   reduce); the sweep must be bitwise-clean against the serial oracle.
///
/// Slot mutexes are locked only across yield-free critical sections, so a
/// scheduler-suspended vthread can never be holding one (the harness
/// counts only yield points).
fn reduce_handoff(barriered: bool) -> impl FnMut(&mut SimBuilder) {
    move |sim: &mut SimBuilder| {
        let slots: Arc<Vec<Mutex<GradAggregator>>> = Arc::new(
            (0..REDUCE_N)
                .map(|_| Mutex::new(GradAggregator::new(2)))
                .collect(),
        );
        let arrived = Arc::new(AtomicUsize::new(0));
        let oracle = Arc::new(reduce_oracle());

        for g in 0..REDUCE_N {
            let slots = Arc::clone(&slots);
            let arrived = Arc::clone(&arrived);
            let oracle = Arc::clone(&oracle);
            let name: &'static str = ["trainer-0", "trainer-1", "trainer-2"][g];
            sim.thread(name, move || {
                // Local accumulation (the step's backward pass).
                let mut agg = GradAggregator::new(2);
                for (key, grad) in reduce_contribs(g) {
                    agg.add(key, &grad);
                }
                yield_point("reduce.accumulated");
                // Deposit: swap the aggregator into this trainer's slot
                // (no yield inside the critical section).
                std::mem::swap(&mut *slots[g].lock().unwrap(), &mut agg);
                arrived.fetch_add(1, Ordering::SeqCst);
                yield_point("reduce.deposited");
                if barriered {
                    // Barrier A modeled as an arrival counter.
                    for _ in 0..64 {
                        if arrived.load(Ordering::SeqCst) == REDUCE_N {
                            break;
                        }
                        yield_point("reduce.barrier_wait");
                    }
                    assert_eq!(
                        arrived.load(Ordering::SeqCst),
                        REDUCE_N,
                        "barrier starved"
                    );
                }
                // Own-shard reduce across every slot, trainer-index order —
                // the canonical per-key summation order.
                let mut merged = GradAggregator::new(2);
                for slot in slots.iter() {
                    {
                        // Guard dropped before the yield below: a vthread
                        // suspended at a yield point must never hold a
                        // slot lock a runnable sibling could contend.
                        let deposited = slot.lock().unwrap();
                        for (key, grad) in deposited.entries() {
                            if GEntryStore::owner_of(key, REDUCE_N) == g {
                                merged.add(key, grad);
                            }
                        }
                    }
                    yield_point("reduce.slot_read");
                }
                let got: Vec<(u64, Vec<u32>)> = merged
                    .into_sorted()
                    .into_iter()
                    .map(|(k, v)| (k, v.iter().map(|x| x.to_bits()).collect()))
                    .collect();
                assert_eq!(
                    got, oracle[g],
                    "owner {g}'s reduce diverged bitwise from the serial oracle"
                );
            });
        }
    }
}

#[test]
fn unbarriered_reduce_handoff_is_found_and_replays() {
    let cfg = quiet(0..1024);
    let outcome = explore(&cfg, reduce_handoff(false));
    let failure = outcome
        .failure
        .expect("reduce without the deposit barrier must lose a sibling's contribution");
    assert!(failure.failures[0]
        .message
        .contains("diverged bitwise from the serial oracle"));
    eprintln!("unbarriered reduce hand-off: replay seed {}", failure.seed);
    let replayed = replay(failure.seed, &cfg.sim, reduce_handoff(false));
    assert!(replayed.failed());
    assert_eq!(replayed.trace, failure.trace);
}

#[test]
fn barriered_reduce_handoff_survives_sweep() {
    let outcome = explore(&quiet(0..1024), reduce_handoff(true));
    assert!(
        !outcome.found_violation(),
        "deposit → barrier → own-shard reduce must stay bitwise-identical \
         to the serial oracle: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 1024);
}
