//! Dataset descriptions (paper Table 2) and scaled synthetic stand-ins.
//!
//! The original datasets (Avazu, Criteo, CriteoTB; FB15k, Freebase, WikiKG)
//! are not shipped here. What the evaluation actually depends on is their
//! *shape*: ID-space size, feature/relation counts, access skew, and model
//! size. Each preset records the published statistics and can be scaled down
//! with [`RecDatasetSpec::scaled`]/[`KgDatasetSpec::scaled`] so the host
//! parameter store fits in memory; every experiment records the factor used.

use serde::{Deserialize, Serialize};

/// Bytes per f32.
const F32: u64 = 4;

/// A recommendation (CTR) dataset in the shape of paper Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecDatasetSpec {
    /// Dataset name.
    pub name: String,
    /// Number of sparse feature fields per sample (Avazu 22, Criteo 26).
    pub n_features: u32,
    /// Total number of distinct IDs across all fields (the embedding-table
    /// key space).
    pub n_ids: u64,
    /// Number of training samples.
    pub n_samples: u64,
    /// Embedding dimension (the paper trains DLRM with dim 32).
    pub embedding_dim: u32,
    /// Zipf exponent modelling the skew of real CTR ID features.
    pub skew_theta: f64,
}

impl RecDatasetSpec {
    /// Avazu: 22 features, 49 M IDs, 40 M samples, 5.8 GB model (Table 2).
    pub fn avazu() -> Self {
        RecDatasetSpec {
            name: "Avazu".to_owned(),
            n_features: 22,
            n_ids: 49_000_000,
            n_samples: 40_000_000,
            embedding_dim: 32,
            skew_theta: 0.9,
        }
    }

    /// Criteo: 26 features, 34 M IDs, 45 M samples, 4.1 GB model (Table 2).
    pub fn criteo() -> Self {
        RecDatasetSpec {
            name: "Criteo".to_owned(),
            n_features: 26,
            n_ids: 34_000_000,
            n_samples: 45_000_000,
            embedding_dim: 32,
            skew_theta: 0.95,
        }
    }

    /// CriteoTB: 26 features, 882 M IDs, 4.37 B samples, 110.3 GB (Table 2).
    pub fn criteo_tb() -> Self {
        RecDatasetSpec {
            name: "CriteoTB".to_owned(),
            n_features: 26,
            n_ids: 882_000_000,
            n_samples: 4_370_000_000,
            embedding_dim: 32,
            skew_theta: 1.0,
        }
    }

    /// Embedding-table size in bytes (`n_ids × dim × 4`).
    pub fn model_bytes(&self) -> u64 {
        self.n_ids * self.embedding_dim as u64 * F32
    }

    /// Returns a copy whose ID space and sample count are scaled by
    /// `factor` (0 < factor ≤ 1), keeping at least one ID and sample.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0,1]");
        let mut s = self.clone();
        s.n_ids = ((self.n_ids as f64 * factor) as u64).max(1);
        s.n_samples = ((self.n_samples as f64 * factor) as u64).max(1);
        if factor < 1.0 {
            s.name = format!("{}(x{factor:.4})", self.name);
        }
        s
    }

    /// Scales the ID space down to at most `max_ids` (keeps proportions).
    pub fn scaled_to_ids(&self, max_ids: u64) -> Self {
        if self.n_ids <= max_ids {
            self.clone()
        } else {
            self.scaled(max_ids as f64 / self.n_ids as f64)
        }
    }
}

/// A knowledge-graph dataset in the shape of paper Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KgDatasetSpec {
    /// Dataset name.
    pub name: String,
    /// Number of entities (graph vertices).
    pub n_entities: u64,
    /// Number of relation types.
    pub n_relations: u64,
    /// Number of triples (graph edges).
    pub n_triples: u64,
    /// Embedding dimension (the paper trains TransE with dim 400).
    pub embedding_dim: u32,
    /// Negative sampling batch size (paper §4.1: 200).
    pub neg_sample_size: u32,
    /// Default training batch size from the DGL-KE setups (§4.1).
    pub default_batch: u32,
}

impl KgDatasetSpec {
    /// FB15k: ~15 k entities, 1.3 k relations, 592 k triples, 52 MB model.
    pub fn fb15k() -> Self {
        KgDatasetSpec {
            name: "FB15k".to_owned(),
            n_entities: 15_000,
            n_relations: 1_300,
            n_triples: 592_000,
            embedding_dim: 400,
            neg_sample_size: 200,
            default_batch: 1_200,
        }
    }

    /// Freebase: 86.1 M entities, 14.8 k relations, 338 M triples, 68.8 GB.
    pub fn freebase() -> Self {
        KgDatasetSpec {
            name: "Freebase".to_owned(),
            n_entities: 86_100_000,
            n_relations: 14_800,
            n_triples: 338_000_000,
            embedding_dim: 400,
            neg_sample_size: 200,
            default_batch: 2_000,
        }
    }

    /// WikiKG: 87 M entities, 1.3 k relations, 504 M triples, 34 GB model.
    pub fn wikikg() -> Self {
        KgDatasetSpec {
            name: "WikiKG".to_owned(),
            n_entities: 87_000_000,
            n_relations: 1_300,
            n_triples: 504_000_000,
            embedding_dim: 400,
            neg_sample_size: 200,
            default_batch: 2_000,
        }
    }

    /// Entity + relation table size in bytes.
    pub fn model_bytes(&self) -> u64 {
        (self.n_entities + self.n_relations) * self.embedding_dim as u64 * F32
    }

    /// Returns a copy with the entity space and triple count scaled by
    /// `factor` (0 < factor ≤ 1); relations are never scaled below 8.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0,1]");
        let mut s = self.clone();
        s.n_entities = ((self.n_entities as f64 * factor) as u64).max(16);
        s.n_triples = ((self.n_triples as f64 * factor) as u64).max(16);
        s.n_relations = ((self.n_relations as f64 * factor) as u64).max(8);
        if factor < 1.0 {
            s.name = format!("{}(x{factor:.4})", self.name);
        }
        s
    }

    /// Scales the entity space down to at most `max_entities`.
    pub fn scaled_to_entities(&self, max_entities: u64) -> Self {
        if self.n_entities <= max_entities {
            self.clone()
        } else {
            self.scaled(max_entities as f64 / self.n_entities as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rec_model_sizes() {
        // Table 2 model sizes: Avazu 5.8 GB, Criteo 4.1 GB, CriteoTB 110.3 GB.
        let gib = |b: u64| b as f64 / (1u64 << 30) as f64;
        assert!((gib(RecDatasetSpec::avazu().model_bytes()) - 5.8).abs() < 0.1);
        assert!((gib(RecDatasetSpec::criteo().model_bytes()) - 4.1).abs() < 0.1);
        assert!((gib(RecDatasetSpec::criteo_tb().model_bytes()) - 110.3).abs() < 6.0);
    }

    #[test]
    fn table2_kg_model_sizes() {
        // Freebase entity+relation table at dim 400 should be sizeable.
        let fb = KgDatasetSpec::freebase();
        let gib = fb.model_bytes() as f64 / (1u64 << 30) as f64;
        assert!((100.0..140.0).contains(&gib), "freebase {gib} GiB");
        let small = KgDatasetSpec::fb15k();
        assert!(small.model_bytes() < (100 << 20));
    }

    #[test]
    fn rec_scaling_preserves_shape() {
        let a = RecDatasetSpec::avazu();
        let s = a.scaled(0.01);
        assert_eq!(s.n_features, a.n_features);
        assert_eq!(s.embedding_dim, a.embedding_dim);
        assert_eq!(s.n_ids, 490_000);
        assert!(s.name.contains("Avazu"));
    }

    #[test]
    fn rec_scaled_to_ids_caps() {
        let a = RecDatasetSpec::avazu().scaled_to_ids(1_000_000);
        assert!(a.n_ids <= 1_000_000);
        // No-op when already small enough.
        let b = RecDatasetSpec::avazu().scaled_to_ids(u64::MAX);
        assert_eq!(b, RecDatasetSpec::avazu());
    }

    #[test]
    #[should_panic(expected = "factor must be in (0,1]")]
    fn rec_scaling_rejects_bad_factor() {
        RecDatasetSpec::avazu().scaled(0.0);
    }

    #[test]
    fn kg_scaling_floors() {
        let s = KgDatasetSpec::fb15k().scaled(1e-9);
        assert!(s.n_entities >= 16 && s.n_relations >= 8 && s.n_triples >= 16);
    }

    #[test]
    fn kg_scaled_to_entities() {
        let s = KgDatasetSpec::freebase().scaled_to_entities(2_000_000);
        assert!(s.n_entities <= 2_000_000);
        assert_eq!(s.embedding_dim, 400);
    }

    #[test]
    fn presets_match_table2_counts() {
        assert_eq!(RecDatasetSpec::avazu().n_features, 22);
        assert_eq!(RecDatasetSpec::criteo().n_features, 26);
        assert_eq!(RecDatasetSpec::criteo_tb().n_ids, 882_000_000);
        assert_eq!(KgDatasetSpec::fb15k().n_relations, 1_300);
        assert_eq!(KgDatasetSpec::freebase().n_entities, 86_100_000);
        assert_eq!(KgDatasetSpec::wikikg().n_triples, 504_000_000);
    }
}
