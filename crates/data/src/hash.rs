//! Fast deterministic hashing for embedding keys.
//!
//! The engine's per-sample hot paths — gradient aggregation, batch
//! deduplication, cache index lookups — all key hash tables by a [`Key`]
//! (`u64`). `std`'s default SipHash is DoS-resistant but costs tens of
//! nanoseconds per probe, which at ~10k probes per step across 8 trainers
//! is a measurable slice of the step budget on a commodity host. Keys here
//! are row indices from a trusted trace, not attacker-controlled input, so
//! the tables use a splitmix64-finalizer hash instead: three multiplies and
//! three shifts, with full avalanche so both hashbrown's group-index (low)
//! bits and control (high) bits are well distributed.
//!
//! The hash is a pure function of the key — no per-process random state —
//! so iteration-order-sensitive bugs reproduce across runs (the schedule
//! explorer relies on runs being replayable).

use crate::trace::Key;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A [`Hasher`] for `u64` keys: the splitmix64 finalizer.
///
/// Only `write_u64`/`write_usize` are on the hot path; other inputs fold
/// bytes through the same mixer so composite keys still hash correctly.
#[derive(Debug, Default, Clone)]
pub struct KeyHasher(u64);

#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Hasher for KeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = mix64(self.0.wrapping_add(n).wrapping_add(0x9E37_79B9_7F4A_7C15));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }
}

/// The [`std::hash::BuildHasher`] for [`KeyHasher`] tables.
pub type KeyBuildHasher = BuildHasherDefault<KeyHasher>;

/// A `HashMap` keyed by [`Key`] with the fast deterministic hasher.
pub type KeyHashMap<V> = HashMap<Key, V, KeyBuildHasher>;

/// A `HashSet` of [`Key`]s with the fast deterministic hasher.
pub type KeyHashSet = HashSet<Key, KeyBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: KeyHashMap<usize> = KeyHashMap::default();
        let mut s: KeyHashSet = KeyHashSet::default();
        for k in 0..10_000u64 {
            m.insert(k, k as usize * 3);
            s.insert(k * 7);
        }
        assert_eq!(m.len(), 10_000);
        assert_eq!(m.get(&1234), Some(&3702));
        assert!(s.contains(&(9999 * 7)));
        assert!(!s.contains(&3));
    }

    #[test]
    fn hash_is_deterministic_and_avalanches() {
        let h = |k: u64| {
            let mut hasher = KeyHasher::default();
            hasher.write_u64(k);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        // Sequential keys must not produce sequential hashes (low bits
        // index hashbrown groups; a weak mixer would cluster them).
        let lows: std::collections::HashSet<u64> = (0..1024).map(|k| h(k) & 0x7F).collect();
        assert!(lows.len() > 100, "low bits collapsed: {}", lows.len());
        let highs: std::collections::HashSet<u64> = (0..1024).map(|k| h(k) >> 57).collect();
        assert!(highs.len() > 100, "high bits collapsed: {}", highs.len());
    }

    #[test]
    fn byte_writes_fold_to_same_width() {
        // Hashing via `write` must be a valid hash too (composite keys).
        let mut a = KeyHasher::default();
        a.write(&123u64.to_le_bytes());
        let mut b = KeyHasher::default();
        b.write_u64(123);
        assert_eq!(a.finish(), b.finish());
    }
}
