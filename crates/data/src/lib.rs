//! # frugal-data — workloads and datasets for the Frugal reproduction
//!
//! Provides everything the paper's evaluation (§4.1) trains on:
//!
//! * [`KeyDistribution`]/[`Zipf`] — the microbenchmark's uniform and
//!   Zipfian (0.9 / 0.99) key generators.
//! * [`SyntheticTrace`] — the embedding-only microbenchmark workload.
//! * [`RecDatasetSpec`]/[`RecTrace`] — Avazu/Criteo/CriteoTB-shaped CTR
//!   workloads for DLRM (paper Table 2), with learnable synthetic labels.
//! * [`KgDatasetSpec`]/[`KgTrace`] — FB15k/Freebase/WikiKG-shaped triples
//!   with negative sampling for the knowledge-graph models.
//!
//! All traces are deterministic functions of `(seed, step, gpu)`, which is
//! what lets Frugal's controller prefetch future steps' keys (the sample
//! queue of §3.2) and lets tests compare engines on identical batches.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod datasets;
mod hash;
mod trace;
mod zipf;

pub use datasets::{KgDatasetSpec, RecDatasetSpec};
pub use hash::{KeyBuildHasher, KeyHashMap, KeyHashSet, KeyHasher};
pub use trace::{latent_weight, Key, KgBatch, KgTrace, RecBatch, RecTrace, SyntheticTrace};
pub use zipf::{DistError, KeyDistribution, KeySampler, Zipf, ZipfAlias, ALIAS_TABLE_MAX};
