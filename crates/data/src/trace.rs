//! Deterministic, replayable workload traces.
//!
//! Frugal's controller *prefetches the IDs of the next `L` steps* (paper
//! §3.2, the sample queue). That requires the training trace to be known
//! slightly ahead of time — exactly how production pipelines stage their
//! input. Every trace here is a pure function of `(seed, step, gpu)`, so the
//! controller can materialize any future step's keys without coordination,
//! and two engines fed the same trace train on byte-identical batches (the
//! basis of the serial-vs-Frugal equivalence tests).

use crate::datasets::{KgDatasetSpec, RecDatasetSpec};
use crate::zipf::{DistError, KeyDistribution, KeySampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An embedding-table key (a row index).
pub type Key = u64;

/// Mixes `(seed, step, gpu, salt)` into an RNG seed (splitmix64 finalizer).
fn mix(seed: u64, step: u64, gpu: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(step.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(gpu.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn rng_for(seed: u64, step: u64, gpu: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(mix(seed, step, gpu, salt))
}

/// A deterministic per-key latent weight in `[-0.5, 0.5]`, used to make the
/// synthetic CTR labels learnable.
pub fn latent_weight(key: Key) -> f32 {
    let h = mix(key, 0xDEAD_BEEF, 0, 7);
    ((h as f64 / u64::MAX as f64) as f32 - 0.5) * 1.0
}

/// The microbenchmark workload of §4.1: each sample accesses exactly one
/// embedding key drawn from a configurable distribution, with the DNN part
/// eliminated.
///
/// # Examples
///
/// ```
/// use frugal_data::{KeyDistribution, SyntheticTrace};
///
/// let trace = SyntheticTrace::new(
///     10_000_000,
///     KeyDistribution::Zipf(0.9),
///     1024, // batch per GPU
///     8,    // GPUs
///     42,   // seed
/// )?;
/// let step0 = trace.step_keys(0);
/// assert_eq!(step0.len(), 8);
/// assert_eq!(step0[0].len(), 1024);
/// assert_eq!(step0, trace.step_keys(0)); // replayable
/// # Ok::<(), frugal_data::DistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticTrace {
    sampler: KeySampler,
    batch_per_gpu: usize,
    n_gpus: usize,
    seed: u64,
}

impl SyntheticTrace {
    /// Creates a trace over `n_keys` keys with the given distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if the distribution parameters are invalid.
    pub fn new(
        n_keys: u64,
        dist: KeyDistribution,
        batch_per_gpu: usize,
        n_gpus: usize,
        seed: u64,
    ) -> Result<Self, DistError> {
        Ok(SyntheticTrace {
            sampler: dist.sampler(n_keys)?,
            batch_per_gpu,
            n_gpus,
            seed,
        })
    }

    /// Key space size.
    pub fn n_keys(&self) -> u64 {
        self.sampler.n()
    }

    /// Per-GPU batch size.
    pub fn batch_per_gpu(&self) -> usize {
        self.batch_per_gpu
    }

    /// Number of GPUs the trace is partitioned over.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// Samples processed per step across all GPUs.
    pub fn samples_per_step(&self) -> u64 {
        (self.batch_per_gpu * self.n_gpus) as u64
    }

    /// The keys each GPU accesses at `step` (outer index: GPU).
    pub fn step_keys(&self, step: u64) -> Vec<Vec<Key>> {
        (0..self.n_gpus)
            .map(|g| self.gpu_keys(step, g))
            .collect()
    }

    /// The keys one GPU accesses at `step`, in sample order. Each GPU's
    /// stream is seeded independently from `(seed, step, gpu)`, so a single
    /// batch can be generated without touching its siblings — per-trainer
    /// sampling loops should use this rather than [`step_keys`], which
    /// materializes every GPU's batch.
    ///
    /// [`step_keys`]: SyntheticTrace::step_keys
    pub fn gpu_keys(&self, step: u64, gpu: usize) -> Vec<Key> {
        let mut rng = rng_for(self.seed, step, gpu as u64, 1);
        (0..self.batch_per_gpu)
            .map(|_| self.sampler.sample(&mut rng))
            .collect()
    }
}

/// One per-GPU batch of a recommendation workload.
#[derive(Debug, Clone, PartialEq)]
pub struct RecBatch {
    /// `keys[sample * n_features + field]` — the sparse feature IDs.
    pub keys: Vec<Key>,
    /// Binary click labels, one per sample.
    pub labels: Vec<f32>,
    /// Number of sparse feature fields per sample.
    pub n_features: usize,
}

impl RecBatch {
    /// Number of samples in the batch.
    pub fn n_samples(&self) -> usize {
        self.labels.len()
    }

    /// The keys of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_samples()`.
    pub fn sample_keys(&self, i: usize) -> &[Key] {
        &self.keys[i * self.n_features..(i + 1) * self.n_features]
    }
}

/// A replayable recommendation (CTR) trace shaped like a [`RecDatasetSpec`].
///
/// Labels follow a logistic model over per-key latent weights, so a DLRM
/// trained on the trace genuinely reduces its loss (used by the convergence
/// tests).
#[derive(Debug, Clone)]
pub struct RecTrace {
    spec: RecDatasetSpec,
    sampler: KeySampler,
    batch_per_gpu: usize,
    n_gpus: usize,
    seed: u64,
}

impl RecTrace {
    /// Creates a trace for `spec`, splitting `batch_per_gpu` samples per GPU.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if the spec's skew parameters are invalid.
    pub fn new(
        spec: RecDatasetSpec,
        batch_per_gpu: usize,
        n_gpus: usize,
        seed: u64,
    ) -> Result<Self, DistError> {
        let sampler = KeyDistribution::Zipf(spec.skew_theta).sampler(spec.n_ids)?;
        Ok(RecTrace {
            spec,
            sampler,
            batch_per_gpu,
            n_gpus,
            seed,
        })
    }

    /// The dataset description this trace follows.
    pub fn spec(&self) -> &RecDatasetSpec {
        &self.spec
    }

    /// Per-GPU batch size in samples.
    pub fn batch_per_gpu(&self) -> usize {
        self.batch_per_gpu
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// Samples per step across all GPUs.
    pub fn samples_per_step(&self) -> u64 {
        (self.batch_per_gpu * self.n_gpus) as u64
    }

    /// Generates the batch GPU `gpu` trains on at `step`.
    pub fn step_batch(&self, step: u64, gpu: usize) -> RecBatch {
        let nf = self.spec.n_features as usize;
        let mut rng = rng_for(self.seed, step, gpu as u64, 2);
        let mut keys = Vec::with_capacity(self.batch_per_gpu * nf);
        let mut labels = Vec::with_capacity(self.batch_per_gpu);
        for _ in 0..self.batch_per_gpu {
            let mut logit = 0.0f32;
            for _ in 0..nf {
                let k = self.sampler.sample(&mut rng);
                logit += latent_weight(k);
                keys.push(k);
            }
            let p = 1.0 / (1.0 + (-logit).exp());
            let label = if rng.random::<f32>() < p { 1.0 } else { 0.0 };
            labels.push(label);
        }
        RecBatch {
            keys,
            labels,
            n_features: nf,
        }
    }

    /// The keys each GPU accesses at `step` (outer index: GPU) — what the
    /// controller's sample queue prefetches.
    pub fn step_keys(&self, step: u64) -> Vec<Vec<Key>> {
        (0..self.n_gpus)
            .map(|g| self.step_batch(step, g).keys)
            .collect()
    }
}

/// One per-GPU batch of a knowledge-graph workload: positive triples plus
/// shared negative-sample entities (DGL-KE style negative batching).
#[derive(Debug, Clone, PartialEq)]
pub struct KgBatch {
    /// Head entity of each positive triple.
    pub heads: Vec<Key>,
    /// Relation ID of each positive triple.
    pub relations: Vec<Key>,
    /// Tail entity of each positive triple.
    pub tails: Vec<Key>,
    /// Negative-sample entities shared across the batch.
    pub negatives: Vec<Key>,
}

impl KgBatch {
    /// Number of positive triples.
    pub fn n_triples(&self) -> usize {
        self.heads.len()
    }

    /// All *entity* keys the batch touches (heads, tails, negatives).
    pub fn entity_keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.heads
            .iter()
            .chain(self.tails.iter())
            .chain(self.negatives.iter())
            .copied()
    }
}

/// A replayable knowledge-graph trace shaped like a [`KgDatasetSpec`].
///
/// Entity popularity follows a Zipfian distribution (real graphs have
/// heavy-tailed degree distributions); negatives are sampled uniformly, as
/// in DGL-KE.
#[derive(Debug, Clone)]
pub struct KgTrace {
    spec: KgDatasetSpec,
    entity_sampler: KeySampler,
    relation_sampler: KeySampler,
    batch_per_gpu: usize,
    n_gpus: usize,
    seed: u64,
}

impl KgTrace {
    /// Creates a trace for `spec` with `batch_per_gpu` triples per GPU.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] if the spec describes an empty graph.
    pub fn new(
        spec: KgDatasetSpec,
        batch_per_gpu: usize,
        n_gpus: usize,
        seed: u64,
    ) -> Result<Self, DistError> {
        let entity_sampler = KeyDistribution::Zipf(0.9).sampler(spec.n_entities)?;
        let relation_sampler = KeyDistribution::Zipf(0.99).sampler(spec.n_relations)?;
        Ok(KgTrace {
            spec,
            entity_sampler,
            relation_sampler,
            batch_per_gpu,
            n_gpus,
            seed,
        })
    }

    /// The dataset description this trace follows.
    pub fn spec(&self) -> &KgDatasetSpec {
        &self.spec
    }

    /// Per-GPU batch size in triples.
    pub fn batch_per_gpu(&self) -> usize {
        self.batch_per_gpu
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// Triples per step across all GPUs (the KG throughput unit).
    pub fn samples_per_step(&self) -> u64 {
        (self.batch_per_gpu * self.n_gpus) as u64
    }

    /// Generates the batch GPU `gpu` trains on at `step`.
    pub fn step_batch(&self, step: u64, gpu: usize) -> KgBatch {
        let mut rng = rng_for(self.seed, step, gpu as u64, 3);
        let b = self.batch_per_gpu;
        let n_ent = self.spec.n_entities;
        let mut heads = Vec::with_capacity(b);
        let mut relations = Vec::with_capacity(b);
        let mut tails = Vec::with_capacity(b);
        for _ in 0..b {
            let h = self.entity_sampler.sample(&mut rng);
            let r = self.relation_sampler.sample(&mut rng);
            // Most tails follow a latent per-relation mapping so the graph
            // has structure a scorer can actually learn (real KGs are far
            // from random); the rest is noise.
            let t = if rng.random::<f32>() < 0.85 {
                (h + mix(r, 0x7A11, 0, 9) % n_ent) % n_ent
            } else {
                self.entity_sampler.sample(&mut rng)
            };
            heads.push(h);
            relations.push(r);
            tails.push(t);
        }
        let negatives = (0..self.spec.neg_sample_size as usize)
            .map(|_| rng.random_range(0..self.spec.n_entities))
            .collect();
        KgBatch {
            heads,
            relations,
            tails,
            negatives,
        }
    }

    /// The *entity* keys each GPU accesses at `step` (outer index: GPU);
    /// relation keys are tracked in a separate, small table.
    pub fn step_keys(&self, step: u64) -> Vec<Vec<Key>> {
        (0..self.n_gpus)
            .map(|g| self.step_batch(step, g).entity_keys().collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_is_deterministic() {
        let t = SyntheticTrace::new(1_000, KeyDistribution::Zipf(0.99), 64, 4, 9).unwrap();
        assert_eq!(t.step_keys(5), t.step_keys(5));
        assert_ne!(t.step_keys(5), t.step_keys(6));
        assert_eq!(t.samples_per_step(), 256);
    }

    #[test]
    fn synthetic_trace_gpus_differ() {
        let t = SyntheticTrace::new(100_000, KeyDistribution::Uniform, 32, 2, 1).unwrap();
        let keys = t.step_keys(0);
        assert_ne!(keys[0], keys[1]);
    }

    #[test]
    fn gpu_keys_matches_step_keys_slice() {
        let t = SyntheticTrace::new(10_000, KeyDistribution::Zipf(0.9), 64, 4, 7).unwrap();
        for step in [0u64, 3, 17] {
            let all = t.step_keys(step);
            for g in 0..4 {
                assert_eq!(t.gpu_keys(step, g), all[g], "step {step} gpu {g}");
            }
        }
    }

    #[test]
    fn synthetic_trace_accessors() {
        let t = SyntheticTrace::new(500, KeyDistribution::Uniform, 16, 3, 0).unwrap();
        assert_eq!(t.n_keys(), 500);
        assert_eq!(t.batch_per_gpu(), 16);
        assert_eq!(t.n_gpus(), 3);
    }

    #[test]
    fn rec_batch_layout() {
        let spec = RecDatasetSpec::avazu().scaled_to_ids(10_000);
        let t = RecTrace::new(spec, 8, 2, 3).unwrap();
        let b = t.step_batch(0, 0);
        assert_eq!(b.n_samples(), 8);
        assert_eq!(b.keys.len(), 8 * 22);
        assert_eq!(b.sample_keys(3).len(), 22);
        for &k in &b.keys {
            assert!(k < 10_000);
        }
        for &l in &b.labels {
            assert!(l == 0.0 || l == 1.0);
        }
    }

    #[test]
    fn rec_trace_deterministic_and_distinct_per_gpu() {
        let spec = RecDatasetSpec::criteo().scaled_to_ids(5_000);
        let t = RecTrace::new(spec, 4, 2, 11).unwrap();
        assert_eq!(t.step_batch(2, 1), t.step_batch(2, 1));
        assert_ne!(t.step_batch(2, 0), t.step_batch(2, 1));
        assert_eq!(t.step_keys(2)[1], t.step_batch(2, 1).keys);
    }

    #[test]
    fn rec_labels_correlate_with_latent_weights() {
        // The synthetic labels must be learnable: samples whose keys have
        // positive total latent weight should be clicked more often.
        let spec = RecDatasetSpec::avazu().scaled_to_ids(1_000);
        let t = RecTrace::new(spec, 512, 1, 5).unwrap();
        let mut pos_clicks = 0.0;
        let mut pos_n = 0.0;
        let mut neg_clicks = 0.0;
        let mut neg_n = 0.0;
        for step in 0..4 {
            let b = t.step_batch(step, 0);
            for i in 0..b.n_samples() {
                let w: f32 = b.sample_keys(i).iter().map(|&k| latent_weight(k)).sum();
                if w > 0.0 {
                    pos_clicks += b.labels[i];
                    pos_n += 1.0;
                } else {
                    neg_clicks += b.labels[i];
                    neg_n += 1.0;
                }
            }
        }
        assert!(pos_clicks / pos_n > neg_clicks / neg_n + 0.1);
    }

    #[test]
    fn kg_batch_shape() {
        let spec = KgDatasetSpec::fb15k();
        let t = KgTrace::new(spec, 16, 2, 4).unwrap();
        let b = t.step_batch(0, 1);
        assert_eq!(b.n_triples(), 16);
        assert_eq!(b.negatives.len(), 200);
        assert_eq!(b.entity_keys().count(), 16 * 2 + 200);
        for k in b.entity_keys() {
            assert!(k < 15_000);
        }
        for &r in &b.relations {
            assert!(r < 1_300);
        }
    }

    #[test]
    fn kg_trace_deterministic() {
        let t = KgTrace::new(KgDatasetSpec::fb15k(), 8, 2, 13).unwrap();
        assert_eq!(t.step_batch(7, 0), t.step_batch(7, 0));
        assert_ne!(t.step_batch(7, 0), t.step_batch(8, 0));
        assert_eq!(t.samples_per_step(), 16);
    }

    #[test]
    fn latent_weight_is_bounded_and_deterministic() {
        for k in [0u64, 1, 42, u64::MAX] {
            let w = latent_weight(k);
            assert!((-0.5..=0.5).contains(&w));
            assert_eq!(w, latent_weight(k));
        }
    }

    #[test]
    fn mix_varies_with_all_inputs() {
        let base = mix(1, 2, 3, 4);
        assert_ne!(base, mix(2, 2, 3, 4));
        assert_ne!(base, mix(1, 3, 3, 4));
        assert_ne!(base, mix(1, 2, 4, 4));
        assert_ne!(base, mix(1, 2, 3, 5));
    }
}
