//! Key distributions for synthetic workloads.
//!
//! The paper's microbenchmark (§4.1) draws embedding keys from a uniform
//! distribution and from Zipfian distributions with parameters 0.9 and 0.99.
//! Two Zipfian samplers are provided:
//!
//! * [`ZipfAlias`] — a Vose alias table: O(n) to build, then one range draw
//!   plus two table reads per sample with *no* transcendental math. Batch
//!   generation is on the engine's critical path (the sample pipeline
//!   produces `n_gpus × batch` draws per step), so key spaces small enough
//!   to afford the 12-bytes-per-rank table use this one.
//! * [`Zipf`] — rejection-inversion (Hörmann & Derflinger, "Rejection-
//!   inversion to generate variates from monotone discrete distributions"),
//!   O(1) memory, several `ln`/`exp` per draw. Key spaces past
//!   [`ALIAS_TABLE_MAX`] (where the table would cost tens of MB) fall back
//!   to it, so the paper's 10-million-key space still works untabulated.
//!
//! Both are exact samplers of the same distribution; they differ in the
//! variates a given RNG stream produces, not in the law.

use rand::Rng;
use std::fmt;

/// Error building a distribution with invalid parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// The key space must contain at least one key.
    EmptyKeySpace,
    /// The Zipf exponent must be finite and non-negative.
    BadExponent(f64),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::EmptyKeySpace => write!(f, "key space must be non-empty"),
            DistError::BadExponent(s) => write!(f, "invalid zipf exponent {s}"),
        }
    }
}

impl std::error::Error for DistError {}

/// Zipfian sampler over ranks `0..n` with exponent `theta`.
///
/// Rank 0 is the hottest key. `theta = 0` degenerates to uniform.
///
/// # Examples
///
/// ```
/// use frugal_data::Zipf;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = Zipf::new(1_000_000, 0.99)?;
/// let mut rng = StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1_000_000);
/// # Ok::<(), frugal_data::DistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    // Precomputed rejection-inversion constants.
    h_integral_x1: f64,
    h_integral_num: f64,
    s: f64,
}

impl Zipf {
    /// Creates a Zipfian sampler over `n` ranks with exponent `theta`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptyKeySpace`] if `n == 0`, and
    /// [`DistError::BadExponent`] if `theta` is negative or non-finite.
    pub fn new(n: u64, theta: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError::EmptyKeySpace);
        }
        if !theta.is_finite() || theta < 0.0 {
            return Err(DistError::BadExponent(theta));
        }
        let h_integral_x1 = Self::h_integral(1.5, theta) - 1.0;
        let h_integral_num = Self::h_integral(n as f64 + 0.5, theta);
        let s = 2.0
            - Self::h_integral_inverse(Self::h_integral(2.5, theta) - Self::h(2.0, theta), theta);
        Ok(Zipf {
            n,
            theta,
            h_integral_x1,
            h_integral_num,
            s,
        })
    }

    /// Number of ranks in the key space.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank in `0..n`; rank 0 is the most frequent.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Rejection-inversion over the 1-based rank k ∈ [1, n].
        loop {
            let u: f64 = self.h_integral_num
                + rng.random::<f64>() * (self.h_integral_x1 - self.h_integral_num);
            let x = Self::h_integral_inverse(u, self.theta);
            let mut k = (x + 0.5) as u64;
            k = k.clamp(1, self.n);
            let kf = k as f64;
            if x >= kf - 0.5 + self.s
                || u >= Self::h_integral(kf + 0.5, self.theta) - Self::h(kf, self.theta)
            {
                return k - 1;
            }
        }
    }

    /// The unnormalized frequency of rank `r` (0-based): `1 / (r+1)^theta`.
    pub fn weight(&self, rank: u64) -> f64 {
        ((rank + 1) as f64).powf(-self.theta)
    }

    /// Fraction of total probability mass covered by the hottest
    /// `hot` ranks. Useful to reason about cache hit ratios.
    pub fn hot_mass(&self, hot: u64) -> f64 {
        let hot = hot.min(self.n);
        let total: f64 = Self::harmonic(self.n, self.theta);
        if total == 0.0 {
            return 0.0;
        }
        Self::harmonic(hot, self.theta) / total
    }

    fn harmonic(n: u64, theta: f64) -> f64 {
        // Exact for small n, integral approximation for large n.
        if n <= 10_000 {
            (1..=n).map(|k| (k as f64).powf(-theta)).sum()
        } else {
            let head: f64 = (1..=10_000u64).map(|k| (k as f64).powf(-theta)).sum();
            head + Self::h_integral(n as f64 + 0.5, theta) - Self::h_integral(10_000.5, theta)
        }
    }

    /// H(x) = ∫ h, with h(x) = x^-theta.
    fn h_integral(x: f64, theta: f64) -> f64 {
        let log_x = x.ln();
        Self::helper2((1.0 - theta) * log_x) * log_x
    }

    fn h(x: f64, theta: f64) -> f64 {
        (-theta * x.ln()).exp()
    }

    fn h_integral_inverse(x: f64, theta: f64) -> f64 {
        let mut t = x * (1.0 - theta);
        if t < -1.0 {
            t = -1.0;
        }
        (Self::helper1(t) * x).exp()
    }

    /// (exp(x) - 1) / x, stable near 0.
    fn helper2(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.exp_m1() / x
        } else {
            1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + x * 0.25))
        }
    }

    /// ln(1 + x) / x, stable near 0.
    fn helper1(x: f64) -> f64 {
        if x.abs() > 1e-8 {
            x.ln_1p() / x
        } else {
            1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25))
        }
    }
}

/// Largest key space for which [`KeyDistribution::sampler`] tabulates a
/// [`ZipfAlias`] (12 bytes per rank → ≤ 24 MiB). Larger spaces fall back to
/// the O(1)-memory rejection-inversion [`Zipf`].
pub const ALIAS_TABLE_MAX: u64 = 1 << 21;

/// Zipfian sampler over ranks `0..n` backed by a Vose alias table.
///
/// Construction walks the ranks once (deterministically — no RNG and no
/// per-process state, so the table and therefore the sampled streams are
/// identical across runs and platforms with IEEE f64). Each sample is one
/// uniform rank draw, one uniform f64 draw, and at most two table reads.
///
/// # Examples
///
/// ```
/// use frugal_data::ZipfAlias;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let zipf = ZipfAlias::new(100_000, 0.9)?;
/// let mut rng = StdRng::seed_from_u64(7);
/// assert!(zipf.sample(&mut rng) < 100_000);
/// # Ok::<(), frugal_data::DistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ZipfAlias {
    theta: f64,
    /// `prob[i]`: probability that a uniform draw landing on column `i`
    /// keeps rank `i` (vs. deferring to `alias[i]`), scaled to [0, 1].
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl ZipfAlias {
    /// Builds the alias table over `n` ranks with exponent `theta`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptyKeySpace`] if `n == 0`, and
    /// [`DistError::BadExponent`] if `theta` is negative or non-finite.
    /// `n` must also fit the `u32` alias index (any table that large would
    /// be far past [`ALIAS_TABLE_MAX`] anyway).
    pub fn new(n: u64, theta: f64) -> Result<Self, DistError> {
        if n == 0 || n > u32::MAX as u64 {
            return Err(DistError::EmptyKeySpace);
        }
        if !theta.is_finite() || theta < 0.0 {
            return Err(DistError::BadExponent(theta));
        }
        let n_us = n as usize;
        let weights: Vec<f64> = (0..n_us).map(|r| ((r + 1) as f64).powf(-theta)).collect();
        let total: f64 = weights.iter().sum();
        // Vose's algorithm with index stacks walked in ascending rank order
        // (the construction is deterministic, not just the distribution).
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut alias = vec![0u32; n_us];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // The large column donates the small column's deficit.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Residual columns are full (1.0 up to rounding).
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Ok(ZipfAlias { theta, prob, alias })
    }

    /// Number of ranks in the key space.
    pub fn n(&self) -> u64 {
        self.prob.len() as u64
    }

    /// The skew exponent.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one rank in `0..n`; rank 0 is the most frequent.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let i = rng.random_range(0..self.prob.len());
        if rng.random::<f64>() < self.prob[i] {
            i as u64
        } else {
            self.alias[i] as u64
        }
    }
}

/// A key distribution for synthetic traces: the three used by Exp #1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with the given exponent (the paper uses 0.9 and 0.99).
    Zipf(f64),
}

impl KeyDistribution {
    /// Short label used in experiment tables ("uniform", "zipf-0.9", ...).
    pub fn label(&self) -> String {
        match self {
            KeyDistribution::Uniform => "uniform".to_owned(),
            KeyDistribution::Zipf(t) => format!("zipf-{t}"),
        }
    }

    /// Builds a sampler over `n` keys. Zipfian spaces up to
    /// [`ALIAS_TABLE_MAX`] keys get the tabulated [`ZipfAlias`] (constant
    /// cost per draw, no transcendental math on the batch-generation path);
    /// larger spaces fall back to rejection-inversion.
    ///
    /// # Errors
    ///
    /// Propagates [`DistError`] for invalid parameters.
    pub fn sampler(&self, n: u64) -> Result<KeySampler, DistError> {
        match self {
            KeyDistribution::Uniform => {
                if n == 0 {
                    Err(DistError::EmptyKeySpace)
                } else {
                    Ok(KeySampler::Uniform { n })
                }
            }
            KeyDistribution::Zipf(theta) if n <= ALIAS_TABLE_MAX => {
                Ok(KeySampler::ZipfAlias(ZipfAlias::new(n, *theta)?))
            }
            KeyDistribution::Zipf(theta) => Ok(KeySampler::Zipf(Zipf::new(n, *theta)?)),
        }
    }
}

/// A ready-to-draw sampler built from a [`KeyDistribution`].
#[derive(Debug, Clone)]
pub enum KeySampler {
    /// Uniform over `0..n`.
    Uniform {
        /// Key space size.
        n: u64,
    },
    /// Zipfian sampler (rejection-inversion; key spaces past
    /// [`ALIAS_TABLE_MAX`]).
    Zipf(Zipf),
    /// Zipfian sampler (alias table; key spaces up to
    /// [`ALIAS_TABLE_MAX`]).
    ZipfAlias(ZipfAlias),
}

impl KeySampler {
    /// Draws one key.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            KeySampler::Uniform { n } => rng.random_range(0..*n),
            KeySampler::Zipf(z) => z.sample(rng),
            KeySampler::ZipfAlias(z) => z.sample(rng),
        }
    }

    /// Key space size.
    pub fn n(&self) -> u64 {
        match self {
            KeySampler::Uniform { n } => *n,
            KeySampler::Zipf(z) => z.n(),
            KeySampler::ZipfAlias(z) => z.n(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_rejects_bad_params() {
        assert_eq!(Zipf::new(0, 0.9).unwrap_err(), DistError::EmptyKeySpace);
        assert!(matches!(
            Zipf::new(10, -1.0).unwrap_err(),
            DistError::BadExponent(_)
        ));
        assert!(matches!(
            Zipf::new(10, f64::NAN).unwrap_err(),
            DistError::BadExponent(_)
        ));
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = Zipf::new(1_000, 0.99).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 1_000);
        }
    }

    #[test]
    fn zipf_rank0_is_hottest() {
        let z = Zipf::new(100, 0.99).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u64; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_empirical_frequencies_match_weights() {
        let z = Zipf::new(50, 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 400_000;
        let mut counts = [0u64; 50];
        for _ in 0..trials {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let total_w: f64 = (0..50).map(|r| z.weight(r)).sum();
        for r in [0u64, 1, 5, 20] {
            let expected = z.weight(r) / total_w;
            let observed = counts[r as usize] as f64 / trials as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {r}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.02, "frac {frac}");
        }
    }

    #[test]
    fn hot_mass_monotone_and_bounded() {
        let z = Zipf::new(10_000_000, 0.99).unwrap();
        let m1 = z.hot_mass(100_000); // 1% of keys
        let m5 = z.hot_mass(500_000); // 5% of keys
        assert!(m1 > 0.0 && m1 < m5 && m5 <= 1.0);
        // Skewed: the hottest 1% should cover well over 1% of accesses.
        assert!(m1 > 0.5, "1% of keys covers {m1} of mass");
    }

    #[test]
    fn uniform_sampler_covers_space() {
        let s = KeyDistribution::Uniform.sampler(8).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1_000 {
            seen.insert(s.sample(&mut rng));
        }
        assert_eq!(seen.len(), 8);
        assert_eq!(s.n(), 8);
    }

    #[test]
    fn distribution_labels() {
        assert_eq!(KeyDistribution::Uniform.label(), "uniform");
        assert_eq!(KeyDistribution::Zipf(0.9).label(), "zipf-0.9");
    }

    #[test]
    fn uniform_rejects_empty() {
        assert!(KeyDistribution::Uniform.sampler(0).is_err());
    }

    #[test]
    fn error_display() {
        assert!(DistError::EmptyKeySpace.to_string().contains("non-empty"));
        assert!(DistError::BadExponent(-1.0).to_string().contains("-1"));
    }

    #[test]
    fn alias_empirical_frequencies_match_weights() {
        let z = ZipfAlias::new(50, 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 400_000;
        let mut counts = [0u64; 50];
        for _ in 0..trials {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let total_w: f64 = (0..50).map(|r| ((r + 1) as f64).powf(-0.9)).sum();
        for r in [0usize, 1, 5, 20, 49] {
            let expected = ((r + 1) as f64).powf(-0.9) / total_w;
            let observed = counts[r] as f64 / trials as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {r}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn alias_rejects_bad_params() {
        assert_eq!(ZipfAlias::new(0, 0.9).unwrap_err(), DistError::EmptyKeySpace);
        assert!(matches!(
            ZipfAlias::new(10, f64::INFINITY).unwrap_err(),
            DistError::BadExponent(_)
        ));
    }

    #[test]
    fn alias_theta_zero_is_uniform() {
        let z = ZipfAlias::new(10, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u64; 10];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.02, "frac {frac}");
        }
    }

    #[test]
    fn alias_construction_is_deterministic() {
        let a = ZipfAlias::new(10_000, 0.99).unwrap();
        let b = ZipfAlias::new(10_000, 0.99).unwrap();
        let mut ra = StdRng::seed_from_u64(9);
        let mut rb = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            assert_eq!(a.sample(&mut ra), b.sample(&mut rb));
        }
    }

    #[test]
    fn sampler_picks_alias_under_threshold_and_inversion_above() {
        let small = KeyDistribution::Zipf(0.9).sampler(ALIAS_TABLE_MAX).unwrap();
        assert!(matches!(small, KeySampler::ZipfAlias(_)));
        assert_eq!(small.n(), ALIAS_TABLE_MAX);
        let big = KeyDistribution::Zipf(0.9)
            .sampler(ALIAS_TABLE_MAX + 1)
            .unwrap();
        assert!(matches!(big, KeySampler::Zipf(_)));
        assert_eq!(big.n(), ALIAS_TABLE_MAX + 1);
    }

    #[test]
    fn big_keyspace_sampling_is_fast_and_valid() {
        let z = Zipf::new(10_000_000, 0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut max = 0;
        for _ in 0..50_000 {
            max = max.max(z.sample(&mut rng));
        }
        assert!(max < 10_000_000);
        assert!(max > 1_000, "sampler collapsed to the head: max {max}");
    }
}
