//! Deterministic per-key gradient aggregation.
//!
//! Within one synchronous step, several samples (possibly on several GPUs)
//! can touch the same embedding row. Synchronous training sums their
//! gradients before the optimizer applies them. Floating-point addition is
//! not associative, so to let a multi-threaded engine reproduce the serial
//! reference *bitwise*, gradients must be summed in a canonical order:
//! sample order within a GPU, GPU index order across GPUs.

use frugal_data::Key;
use std::collections::HashMap;

/// Accumulates per-key gradients in arrival order.
///
/// # Examples
///
/// ```
/// use frugal_embed::GradAggregator;
///
/// let mut agg = GradAggregator::new(2);
/// agg.add(7, &[1.0, 2.0]);
/// agg.add(7, &[0.5, 0.5]);
/// let grads = agg.into_sorted();
/// assert_eq!(grads, vec![(7, vec![1.5, 2.5])]);
/// ```
#[derive(Debug, Clone)]
pub struct GradAggregator {
    dim: usize,
    grads: HashMap<Key, Vec<f32>>,
    order: Vec<Key>,
}

impl GradAggregator {
    /// Creates an aggregator for `dim`-wide gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        GradAggregator {
            dim,
            grads: HashMap::new(),
            order: Vec::new(),
        }
    }

    /// Adds `grad` to the accumulator of `key`.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != dim`.
    pub fn add(&mut self, key: Key, grad: &[f32]) {
        assert_eq!(grad.len(), self.dim, "gradient length != dim");
        match self.grads.get_mut(&key) {
            Some(acc) => {
                for (a, &g) in acc.iter_mut().zip(grad) {
                    *a += g;
                }
            }
            None => {
                self.grads.insert(key, grad.to_vec());
                self.order.push(key);
            }
        }
    }

    /// Adds `grad` scaled by `scale` to the accumulator of `key`.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != dim`.
    pub fn add_scaled(&mut self, key: Key, grad: &[f32], scale: f32) {
        assert_eq!(grad.len(), self.dim, "gradient length != dim");
        match self.grads.get_mut(&key) {
            Some(acc) => {
                for (a, &g) in acc.iter_mut().zip(grad) {
                    *a += scale * g;
                }
            }
            None => {
                let scaled: Vec<f32> = grad.iter().map(|&g| scale * g).collect();
                self.grads.insert(key, scaled);
                self.order.push(key);
            }
        }
    }

    /// Number of distinct keys accumulated.
    pub fn len(&self) -> usize {
        self.grads.len()
    }

    /// True if nothing was accumulated.
    pub fn is_empty(&self) -> bool {
        self.grads.is_empty()
    }

    /// Drains into `(key, grad)` pairs in *first-arrival* order — the
    /// canonical order for deterministic downstream application.
    pub fn into_arrival_order(mut self) -> Vec<(Key, Vec<f32>)> {
        self.order
            .iter()
            .map(|k| (*k, self.grads.remove(k).expect("ordered key present")))
            .collect()
    }

    /// Drains into `(key, grad)` pairs sorted by key (for tests and merges).
    pub fn into_sorted(self) -> Vec<(Key, Vec<f32>)> {
        let mut v = self.into_arrival_order();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// Merges `other` into `self` (used to fold per-GPU aggregates in GPU
    /// index order).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn merge(&mut self, other: GradAggregator) {
        assert_eq!(self.dim, other.dim, "dim mismatch");
        for (k, g) in other.into_arrival_order() {
            self.add(k, &g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_key() {
        let mut agg = GradAggregator::new(2);
        agg.add(1, &[1.0, 1.0]);
        agg.add(2, &[2.0, 2.0]);
        agg.add(1, &[3.0, 3.0]);
        assert_eq!(agg.len(), 2);
        let out = agg.into_sorted();
        assert_eq!(out[0], (1, vec![4.0, 4.0]));
        assert_eq!(out[1], (2, vec![2.0, 2.0]));
    }

    #[test]
    fn arrival_order_is_first_touch() {
        let mut agg = GradAggregator::new(1);
        agg.add(9, &[1.0]);
        agg.add(3, &[1.0]);
        agg.add(9, &[1.0]);
        let keys: Vec<Key> = agg
            .into_arrival_order()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![9, 3]);
    }

    #[test]
    fn add_scaled_scales() {
        let mut agg = GradAggregator::new(1);
        agg.add_scaled(1, &[2.0], 0.5);
        agg.add_scaled(1, &[2.0], 0.25);
        assert_eq!(agg.into_sorted(), vec![(1, vec![1.5])]);
    }

    #[test]
    fn merge_folds_in_order() {
        let mut a = GradAggregator::new(1);
        a.add(1, &[1.0]);
        let mut b = GradAggregator::new(1);
        b.add(1, &[2.0]);
        b.add(2, &[5.0]);
        a.merge(b);
        assert_eq!(a.into_sorted(), vec![(1, vec![3.0]), (2, vec![5.0])]);
    }

    #[test]
    #[should_panic(expected = "gradient length != dim")]
    fn rejects_bad_dim() {
        let mut agg = GradAggregator::new(2);
        agg.add(1, &[1.0]);
    }

    #[test]
    fn empty_behaviour() {
        let agg = GradAggregator::new(3);
        assert!(agg.is_empty());
        assert!(agg.into_sorted().is_empty());
    }
}
