//! Deterministic per-key gradient aggregation.
//!
//! Within one synchronous step, several samples (possibly on several GPUs)
//! can touch the same embedding row. Synchronous training sums their
//! gradients before the optimizer applies them. Floating-point addition is
//! not associative, so to let a multi-threaded engine reproduce the serial
//! reference *bitwise*, gradients must be summed in a canonical order:
//! sample order within a GPU, GPU index order across GPUs.
//!
//! Accumulators live in one flat arena (`data`) indexed by a key → slot
//! map, so an aggregator can be [`cleared`](GradAggregator::clear) and
//! reused step after step without re-allocating — the engine keeps one per
//! trainer on its hot loop.

use crate::kernels;
use frugal_data::{Key, KeyHashMap};
use std::sync::Arc;

/// Accumulates per-key gradients in arrival order.
///
/// # Examples
///
/// ```
/// use frugal_embed::GradAggregator;
///
/// let mut agg = GradAggregator::new(2);
/// agg.add(7, &[1.0, 2.0]);
/// agg.add(7, &[0.5, 0.5]);
/// let grads = agg.into_sorted();
/// assert_eq!(grads, vec![(7, vec![1.5, 2.5])]);
/// ```
#[derive(Debug, Clone)]
pub struct GradAggregator {
    dim: usize,
    /// Key → slot index into `order`/`data` (fast deterministic hasher —
    /// one probe per sample on the aggregation hot path).
    index: KeyHashMap<usize>,
    order: Vec<Key>,
    /// Slot `i`'s accumulator is `data[i * dim..(i + 1) * dim]`.
    data: Vec<f32>,
}

impl GradAggregator {
    /// Creates an aggregator for `dim`-wide gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        GradAggregator {
            dim,
            index: KeyHashMap::default(),
            order: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Width of the gradients this aggregator accumulates.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Empties the aggregator but keeps every allocation (map table, order
    /// list, arena) for reuse on the next step.
    pub fn clear(&mut self) {
        self.index.clear();
        self.order.clear();
        self.data.clear();
    }

    fn slot(&mut self, key: Key) -> (usize, bool) {
        match self.index.get(&key) {
            Some(&i) => (i, false),
            None => {
                let i = self.order.len();
                self.index.insert(key, i);
                self.order.push(key);
                self.data.resize(self.data.len() + self.dim, 0.0);
                (i, true)
            }
        }
    }

    /// Adds `grad` to the accumulator of `key`.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != dim`.
    pub fn add(&mut self, key: Key, grad: &[f32]) {
        assert_eq!(grad.len(), self.dim, "gradient length != dim");
        let (i, _) = self.slot(key);
        kernels::add(&mut self.data[i * self.dim..(i + 1) * self.dim], grad);
    }

    /// Adds `grad` scaled by `scale` to the accumulator of `key`.
    ///
    /// # Panics
    ///
    /// Panics if `grad.len() != dim`.
    pub fn add_scaled(&mut self, key: Key, grad: &[f32], scale: f32) {
        assert_eq!(grad.len(), self.dim, "gradient length != dim");
        let (i, _) = self.slot(key);
        kernels::add_scaled(
            &mut self.data[i * self.dim..(i + 1) * self.dim],
            grad,
            scale,
        );
    }

    /// Number of distinct keys accumulated.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if nothing was accumulated.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Iterates the accumulated `(key, grad)` pairs in *first-arrival*
    /// order without draining. This is the read side of the decentralized
    /// sharded reduce: every trainer scans the per-GPU aggregators in GPU
    /// index order and folds only the keys its shard owns, so the per-key
    /// summation order stays identical to the serial leader merge.
    pub fn entries(&self) -> impl Iterator<Item = (Key, &[f32])> + '_ {
        let dim = self.dim;
        self.order
            .iter()
            .enumerate()
            .map(move |(i, &k)| (k, &self.data[i * dim..(i + 1) * dim]))
    }

    /// Drains into `(key, grad)` pairs in *first-arrival* order — the
    /// canonical order for deterministic downstream application.
    pub fn into_arrival_order(self) -> Vec<(Key, Vec<f32>)> {
        let dim = self.dim;
        self.order
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, self.data[i * dim..(i + 1) * dim].to_vec()))
            .collect()
    }

    /// Drains into `(key, grad)` pairs sorted by key (for tests and merges).
    pub fn into_sorted(self) -> Vec<(Key, Vec<f32>)> {
        let mut v = self.into_arrival_order();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// Drains the accumulated gradients into shared rows, appending
    /// `(key, Arc(grad))` to `out` in first-arrival order, and clears the
    /// aggregator for reuse. The `Arc` per row is the only allocation: the
    /// same shared gradient travels to the g-entry W set and the owner
    /// GPU's cache update, so nothing is cloned downstream.
    pub fn drain_arcs(&mut self, out: &mut Vec<(Key, Arc<[f32]>)>) {
        for (i, &k) in self.order.iter().enumerate() {
            out.push((k, Arc::from(&self.data[i * self.dim..(i + 1) * self.dim])));
        }
        self.clear();
    }

    /// Folds `other`'s accumulators into `self` (first-arrival order within
    /// `other`) and clears `other`, keeping both allocations alive. This is
    /// the reusable form of [`GradAggregator::merge`] for per-GPU aggregates
    /// folded in GPU index order.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn merge_from(&mut self, other: &mut GradAggregator) {
        assert_eq!(self.dim, other.dim, "dim mismatch");
        for (i, &k) in other.order.iter().enumerate() {
            let grad = &other.data[i * self.dim..(i + 1) * self.dim];
            let j = match self.index.get(&k) {
                Some(&j) => j,
                None => {
                    let j = self.order.len();
                    self.index.insert(k, j);
                    self.order.push(k);
                    self.data.resize(self.data.len() + self.dim, 0.0);
                    j
                }
            };
            kernels::add(&mut self.data[j * self.dim..(j + 1) * self.dim], grad);
        }
        other.clear();
    }

    /// Merges `other` into `self` (used to fold per-GPU aggregates in GPU
    /// index order).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn merge(&mut self, mut other: GradAggregator) {
        self.merge_from(&mut other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_key() {
        let mut agg = GradAggregator::new(2);
        agg.add(1, &[1.0, 1.0]);
        agg.add(2, &[2.0, 2.0]);
        agg.add(1, &[3.0, 3.0]);
        assert_eq!(agg.len(), 2);
        let out = agg.into_sorted();
        assert_eq!(out[0], (1, vec![4.0, 4.0]));
        assert_eq!(out[1], (2, vec![2.0, 2.0]));
    }

    #[test]
    fn arrival_order_is_first_touch() {
        let mut agg = GradAggregator::new(1);
        agg.add(9, &[1.0]);
        agg.add(3, &[1.0]);
        agg.add(9, &[1.0]);
        let keys: Vec<Key> = agg
            .into_arrival_order()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![9, 3]);
    }

    #[test]
    fn add_scaled_scales() {
        let mut agg = GradAggregator::new(1);
        agg.add_scaled(1, &[2.0], 0.5);
        agg.add_scaled(1, &[2.0], 0.25);
        assert_eq!(agg.into_sorted(), vec![(1, vec![1.5])]);
    }

    #[test]
    fn merge_folds_in_order() {
        let mut a = GradAggregator::new(1);
        a.add(1, &[1.0]);
        let mut b = GradAggregator::new(1);
        b.add(1, &[2.0]);
        b.add(2, &[5.0]);
        a.merge(b);
        assert_eq!(a.into_sorted(), vec![(1, vec![3.0]), (2, vec![5.0])]);
    }

    #[test]
    fn merge_from_drains_other_and_reuses() {
        let mut a = GradAggregator::new(2);
        let mut b = GradAggregator::new(2);
        b.add(4, &[1.0, 2.0]);
        a.merge_from(&mut b);
        assert!(b.is_empty(), "source drained");
        // The drained source is reusable and independent.
        b.add(5, &[9.0, 9.0]);
        a.merge_from(&mut b);
        assert_eq!(
            a.into_sorted(),
            vec![(4, vec![1.0, 2.0]), (5, vec![9.0, 9.0])]
        );
    }

    #[test]
    fn drain_arcs_preserves_arrival_order_and_clears() {
        let mut agg = GradAggregator::new(1);
        agg.add(9, &[1.0]);
        agg.add(3, &[2.0]);
        agg.add(9, &[0.5]);
        let mut out = Vec::new();
        agg.drain_arcs(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].0, &out[0].1[..]), (9, &[1.5f32][..]));
        assert_eq!((out[1].0, &out[1].1[..]), (3, &[2.0f32][..]));
        assert!(agg.is_empty());
        // Cleared aggregator accumulates from zero again.
        agg.add(9, &[4.0]);
        assert_eq!(agg.into_sorted(), vec![(9, vec![4.0])]);
    }

    #[test]
    fn clear_resets_accumulators() {
        let mut agg = GradAggregator::new(1);
        agg.add(1, &[1.0]);
        agg.clear();
        assert!(agg.is_empty());
        agg.add(1, &[2.0]);
        assert_eq!(agg.into_sorted(), vec![(1, vec![2.0])]);
    }

    #[test]
    #[should_panic(expected = "gradient length != dim")]
    fn rejects_bad_dim() {
        let mut agg = GradAggregator::new(2);
        agg.add(1, &[1.0]);
    }

    #[test]
    fn empty_behaviour() {
        let agg = GradAggregator::new(3);
        assert!(agg.is_empty());
        assert!(agg.into_sorted().is_empty());
    }

    /// Trainer `g`'s step aggregator: overlapping keys with magnitudes
    /// spread far enough apart that f32 summation order is observable.
    fn trainer_agg(g: usize) -> GradAggregator {
        let mut agg = GradAggregator::new(2);
        for &key in &[1u64, 2, 9] {
            let v = (g as f32 + 1.0) * 1e4 + key as f32 * 1e-3;
            agg.add(key, &[v, 1.0 / v]);
        }
        agg
    }

    fn merged_bits(gpu_order: &[usize]) -> Vec<(Key, Vec<u32>)> {
        let mut merged = GradAggregator::new(2);
        for &g in gpu_order {
            merged.merge(trainer_agg(g));
        }
        merged
            .into_sorted()
            .into_iter()
            .map(|(k, v)| (k, v.iter().map(|x| x.to_bits()).collect()))
            .collect()
    }

    /// The decentralized reduce's core bit-equality argument: trainers may
    /// *arrive* at the barrier in any order, but the merge always folds the
    /// per-GPU aggregators in GPU index order, so the merged f32 bits are
    /// invariant. The guard assertion shows the test has teeth — these
    /// values really are order-sensitive, so folding in arrival order
    /// would diverge.
    #[test]
    fn merge_is_invariant_under_trainer_arrival_order() {
        let canonical = merged_bits(&[0, 1, 2, 3]);
        // Order sensitivity guard: an out-of-index-order fold changes bits.
        assert_ne!(
            canonical,
            merged_bits(&[3, 2, 1, 0]),
            "values not order-sensitive; the invariance below would be vacuous"
        );
        // Arrival permutations all reduce through the same index-order
        // fold: deposit order must leave no trace in the bits.
        for arrival in [[1usize, 0, 3, 2], [3, 0, 1, 2], [2, 3, 0, 1]] {
            let mut slots: Vec<Option<GradAggregator>> = (0..4).map(|_| None).collect();
            for g in arrival {
                slots[g] = Some(trainer_agg(g)); // "deposit at barrier A"
            }
            let mut merged = GradAggregator::new(2);
            for slot in &mut slots {
                merged.merge_from(slot.as_mut().expect("all deposited"));
            }
            let bits: Vec<(Key, Vec<u32>)> = merged
                .into_sorted()
                .into_iter()
                .map(|(k, v)| (k, v.iter().map(|x| x.to_bits()).collect()))
                .collect();
            assert_eq!(bits, canonical, "arrival {arrival:?} changed merged bits");
        }
    }
}
