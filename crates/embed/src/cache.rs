//! Per-GPU embedding caches.
//!
//! Every multi-GPU system in the paper "maintains multi-GPU embedding cache
//! by caching hot entries to reduce host memory fetching" (§1). Each GPU
//! owns one cache instance holding rows of its shard.
//!
//! The cache is split along the engine's `FlushStrategy` seam: this module
//! owns the *mechanism* — a flat arena of `slots × dim` floats plus the
//! key→slot map — while all *strategy* lives behind the
//! [`EvictionPolicy`](crate::EvictionPolicy) trait in [`crate::policy`].
//! Four policies ship ([`CachePolicy`]):
//!
//! * [`CachePolicy::StaticHot`] — admit only the statically hottest keys,
//!   never evict (HugeCTR's strategy, the paper's default across systems).
//! * [`CachePolicy::Lru`] — classic least-recently-used.
//! * [`CachePolicy::FrequencyAware`] — LRU recency + decayed per-key
//!   frequencies; admission under pressure requires beating the victim's
//!   frequency (Fang et al.).
//! * [`CachePolicy::OracleBelady`] — Belady's MIN driven by the engine's
//!   s+L lookahead feed, with admission bypass and prefetch nomination.
//!
//! Rows live in one contiguous `Vec<f32>` arena indexed by slot — no
//! per-slot `Vec`, no pointer chase, and **no allocation on the
//! fill/evict/replace paths**: [`GpuCache::fill_into`] and
//! [`GpuCache::insert_from_slice`] copy straight into the arena (the arena
//! itself grows amortized until the cache first reaches capacity, then
//! never again). Caches are owned by a single trainer thread (one per
//! GPU), so they are plain `&mut` structures — no locking on the fast
//! path, like a real GPU cache kernel operating on device-local memory.

use crate::policy::{
    EvictionPolicy, FrequencyAwarePolicy, LruPolicy, OracleBeladyPolicy, StaticHotPolicy,
};
use frugal_data::{Key, KeyBuildHasher, KeyHashMap};

/// Cache admission/eviction policy selector (see [`crate::policy`] for the
/// behavior behind each variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Admit a key iff its *global hotness rank* is below the admission
    /// threshold derived from capacity. No evictions ever happen, matching
    /// a prefilled static cache.
    StaticHot,
    /// Admit everything; evict the least recently used row when full.
    Lru,
    /// LRU victim selection gated by decayed per-key access frequencies:
    /// a missing key displaces the LRU victim only when seen strictly more
    /// often.
    FrequencyAware,
    /// Belady's MIN over the engine's lookahead window: evict the
    /// farthest-next-use resident, bypass farthest-next-use inserts, and
    /// nominate next-step keys for stall-overlap prefetch.
    OracleBelady,
}

impl CachePolicy {
    /// All selectable policies, in ablation/display order.
    pub const ALL: [CachePolicy; 4] = [
        CachePolicy::StaticHot,
        CachePolicy::Lru,
        CachePolicy::FrequencyAware,
        CachePolicy::OracleBelady,
    ];

    /// Stable command-line / report label.
    pub fn label(&self) -> &'static str {
        match self {
            CachePolicy::StaticHot => "static-hot",
            CachePolicy::Lru => "lru",
            CachePolicy::FrequencyAware => "freq",
            CachePolicy::OracleBelady => "oracle",
        }
    }

    fn build(&self, capacity: usize) -> Box<dyn EvictionPolicy> {
        match self {
            CachePolicy::StaticHot => Box::new(StaticHotPolicy::new(capacity)),
            CachePolicy::Lru => Box::new(LruPolicy::new(capacity)),
            CachePolicy::FrequencyAware => Box::new(FrequencyAwarePolicy::new(capacity)),
            CachePolicy::OracleBelady => Box::new(OracleBeladyPolicy::new(capacity)),
        }
    }
}

impl std::str::FromStr for CachePolicy {
    type Err = String;

    /// Parses the [`CachePolicy::label`] names (plus a few aliases).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "static-hot" | "static" | "statichot" => Ok(CachePolicy::StaticHot),
            "lru" => Ok(CachePolicy::Lru),
            "freq" | "frequency" | "frequency-aware" => Ok(CachePolicy::FrequencyAware),
            "oracle" | "belady" | "oracle-belady" => Ok(CachePolicy::OracleBelady),
            other => Err(format!(
                "unknown cache policy {other} (expected static-hot|lru|freq|oracle)"
            )),
        }
    }
}

/// A single GPU's embedding cache: flat row arena + key→slot map, with the
/// admission/eviction strategy behind an
/// [`EvictionPolicy`](crate::EvictionPolicy).
///
/// # Examples
///
/// ```
/// use frugal_embed::{CachePolicy, GpuCache};
///
/// let mut cache = GpuCache::new(2, 4, CachePolicy::Lru);
/// cache.insert_from_slice(10, &[1.0; 4]);
/// cache.insert_from_slice(20, &[2.0; 4]);
/// cache.get(&10); // refresh 10
/// cache.insert_from_slice(30, &[3.0; 4]); // evicts 20
/// assert!(cache.contains(&10) && !cache.contains(&20));
/// ```
#[derive(Debug)]
pub struct GpuCache {
    capacity: usize,
    dim: usize,
    kind: CachePolicy,
    policy: Box<dyn EvictionPolicy>,
    map: KeyHashMap<usize>,
    /// Occupying key per slot; `keys.len() <= capacity` always (slots are
    /// only created while below capacity, evictions reuse the victim slot).
    keys: Vec<Key>,
    /// The row arena: `keys.len() × dim` floats, slot-indexed.
    rows: Vec<f32>,
    hits: u64,
    misses: u64,
}

impl GpuCache {
    /// Creates a cache holding at most `capacity` rows of `dim` floats.
    ///
    /// For [`CachePolicy::StaticHot`] the admission threshold defaults to
    /// `capacity` (callers with sharded key spaces should set it with
    /// [`GpuCache::set_hot_threshold`]).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(capacity: usize, dim: usize, policy: CachePolicy) -> Self {
        assert!(dim > 0, "dim must be positive");
        // Reserve a bounded prefix of the arena upfront; beyond it the
        // arena doubles amortized until capacity, then never grows again.
        let reserve = capacity.min(1 << 16);
        GpuCache {
            capacity,
            dim,
            kind: policy,
            policy: policy.build(capacity),
            // 2× so a full map stays at or below half the table's usable
            // capacity: hashbrown then resolves evict/insert tombstone
            // pressure by rehashing in place instead of deferring a single
            // seed-timed resize into the steady-state fill loop (the
            // zero-alloc guarantee cache_alloc.rs pins). Cost is 16 B per
            // extra slot, noise next to the `dim`-float rows.
            map: KeyHashMap::with_capacity_and_hasher(
                capacity.saturating_mul(2).min(1 << 21),
                KeyBuildHasher::default(),
            ),
            keys: Vec::with_capacity(reserve),
            rows: Vec::with_capacity(reserve * dim),
            hits: 0,
            misses: 0,
        }
    }

    /// Sets the StaticHot admission threshold: keys `< threshold` are
    /// cacheable. No-op for the other policies.
    pub fn set_hot_threshold(&mut self, threshold: u64) {
        self.policy.set_hot_threshold(threshold);
    }

    /// Maximum number of rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of rows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no rows are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The policy in effect.
    pub fn policy(&self) -> CachePolicy {
        self.kind
    }

    /// `(hits, misses)` counted by [`GpuCache::get`] and
    /// [`GpuCache::get_mut`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit ratio over all lookups (`get` + `get_mut`) so far (0 when
    /// unused).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Looks up `key`, refreshing policy state. Returns the cached row.
    pub fn get(&mut self, key: &Key) -> Option<&[f32]> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.policy.on_hit(*key, slot);
                self.hits += 1;
                Some(&self.rows[slot * self.dim..(slot + 1) * self.dim])
            }
            None => {
                self.policy.on_miss(*key);
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` mutably (for in-cache updates), refreshing policy
    /// state. Counts toward [`Self::stats`] exactly like [`Self::get`].
    pub fn get_mut(&mut self, key: &Key) -> Option<&mut [f32]> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.policy.on_hit(*key, slot);
                self.hits += 1;
                Some(&mut self.rows[slot * self.dim..(slot + 1) * self.dim])
            }
            None => {
                self.policy.on_miss(*key);
                self.misses += 1;
                None
            }
        }
    }

    /// True if `key` is cached (does not affect policy state or stats).
    pub fn contains(&self, key: &Key) -> bool {
        self.map.contains_key(key)
    }

    /// Whether this cache would admit `key` at all (occupancy aside).
    pub fn admits(&self, key: Key) -> bool {
        self.policy.admits(key)
    }

    /// Fills `key`'s row in place: allocates/steals a slot per the policy,
    /// then hands the slot's arena storage to `fill`. The closure is *not*
    /// called when the insert is rejected, and nothing on this path
    /// allocates once the cache has reached capacity.
    pub fn fill_into<F: FnOnce(&mut [f32])>(&mut self, key: Key, fill: F) -> InsertOutcome {
        if !self.policy.admits(key) {
            return InsertOutcome::Rejected;
        }
        if let Some(&slot) = self.map.get(&key) {
            fill(&mut self.rows[slot * self.dim..(slot + 1) * self.dim]);
            self.policy.on_replace(key, slot);
            return InsertOutcome::Replaced;
        }
        let (slot, evicted) = if self.map.len() >= self.capacity {
            let Some(victim) = self.policy.evict_candidate(key, &self.keys) else {
                return InsertOutcome::Rejected;
            };
            let old_key = self.keys[victim];
            self.map.remove(&old_key);
            self.policy.on_evict(old_key, victim);
            self.keys[victim] = key;
            (victim, Some(old_key))
        } else {
            // Below capacity: mint a fresh slot (the only growth path).
            let slot = self.keys.len();
            self.keys.push(key);
            self.rows.resize((slot + 1) * self.dim, 0.0);
            (slot, None)
        };
        fill(&mut self.rows[slot * self.dim..(slot + 1) * self.dim]);
        self.map.insert(key, slot);
        self.policy.on_insert(key, slot);
        match evicted {
            Some(k) => InsertOutcome::Evicted(k),
            None => InsertOutcome::Inserted,
        }
    }

    /// Inserts `row` for `key` by copying it into the arena (no
    /// intermediate allocation). See [`InsertOutcome`] for the results.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim`.
    pub fn insert_from_slice(&mut self, key: Key, row: &[f32]) -> InsertOutcome {
        assert_eq!(row.len(), self.dim, "row length != dim");
        self.fill_into(key, |dst| dst.copy_from_slice(row))
    }

    /// Legacy owned-row insert; prefer [`GpuCache::insert_from_slice`]
    /// (this simply borrows and copies, the `Vec` is dropped).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim`.
    pub fn insert(&mut self, key: Key, row: Vec<f32>) -> InsertOutcome {
        self.insert_from_slice(key, &row)
    }

    /// Announces the training clock to the policy (oracle next-use
    /// bookkeeping; no-op for history-driven policies).
    pub fn begin_step(&mut self, step: u64) {
        self.policy.begin_step(step);
    }

    /// Feeds a future step's (owner-local) batch keys to the policy.
    /// Callers can skip building the feed when
    /// [`GpuCache::uses_lookahead`] is false.
    pub fn prepare_step(&mut self, step: u64, keys: &[Key]) {
        self.policy.prepare_step(step, keys);
    }

    /// Whether the policy consumes [`GpuCache::prepare_step`] feeds.
    pub fn uses_lookahead(&self) -> bool {
        self.policy.uses_lookahead()
    }

    /// Whether the policy nominates stall-overlap prefetch fills.
    pub fn wants_prefetch(&self) -> bool {
        self.policy.wants_prefetch()
    }

    /// Appends the policy's prefetch nominations for `step` that are not
    /// already cached. Each step's nominations are handed out once.
    pub fn prefetch_plan(&mut self, step: u64, out: &mut Vec<Key>) {
        let start = out.len();
        self.policy.prefetch_into(step, out);
        let map = &self.map;
        let mut keep = start;
        for i in start..out.len() {
            let key = out[i];
            if !map.contains_key(&key) {
                out[keep] = key;
                keep += 1;
            }
        }
        out.truncate(keep);
    }
}

/// Result of a cache insertion. No variant carries row payloads: rows live
/// in the arena and evicted data is simply overwritten (the host store is
/// always authoritative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// Inserted without eviction.
    Inserted,
    /// Replaced an existing row for the same key.
    Replaced,
    /// Inserted; the returned key was evicted to make room.
    Evicted(Key),
    /// The policy rejected the key (admission or eviction bypass).
    Rejected,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_hot_admits_only_hot_keys() {
        let mut c = GpuCache::new(4, 2, CachePolicy::StaticHot);
        c.set_hot_threshold(100);
        assert_eq!(c.insert_from_slice(5, &[1.0, 1.0]), InsertOutcome::Inserted);
        assert_eq!(
            c.insert_from_slice(500, &[2.0, 2.0]),
            InsertOutcome::Rejected
        );
        assert!(c.contains(&5) && !c.contains(&500));
    }

    #[test]
    fn static_hot_never_evicts() {
        let mut c = GpuCache::new(2, 1, CachePolicy::StaticHot);
        c.set_hot_threshold(u64::MAX - 2);
        assert_eq!(c.insert_from_slice(1, &[1.0]), InsertOutcome::Inserted);
        assert_eq!(c.insert_from_slice(2, &[2.0]), InsertOutcome::Inserted);
        // Full: further inserts rejected, existing entries untouched.
        assert_eq!(c.insert_from_slice(3, &[3.0]), InsertOutcome::Rejected);
        assert!(c.contains(&1) && c.contains(&2));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = GpuCache::new(2, 1, CachePolicy::Lru);
        c.insert_from_slice(1, &[1.0]);
        c.insert_from_slice(2, &[2.0]);
        assert!(c.get(&1).is_some()); // 2 is now LRU
        assert_eq!(c.insert_from_slice(3, &[3.0]), InsertOutcome::Evicted(2));
        assert!(c.contains(&1) && c.contains(&3) && !c.contains(&2));
    }

    #[test]
    fn lru_never_exceeds_capacity() {
        let mut c = GpuCache::new(8, 1, CachePolicy::Lru);
        for k in 0..100 {
            c.insert_from_slice(k, &[k as f32]);
            assert!(c.len() <= 8);
        }
        // The eight most recent survive.
        for k in 92..100 {
            assert!(c.contains(&k), "missing {k}");
        }
    }

    #[test]
    fn lru_eviction_order_follows_recency_chain() {
        let mut c = GpuCache::new(3, 1, CachePolicy::Lru);
        c.insert_from_slice(1, &[1.0]);
        c.insert_from_slice(2, &[2.0]);
        c.insert_from_slice(3, &[3.0]);
        // Recency now 3 > 2 > 1. Touch 1 and 2 via get_mut/get.
        c.get_mut(&1).unwrap()[0] = 1.5;
        let _ = c.get(&2);
        // Recency 2 > 1 > 3: inserting evicts 3.
        assert_eq!(c.insert_from_slice(4, &[4.0]), InsertOutcome::Evicted(3));
        // And the freed slot is reused without leaking.
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn get_mut_allows_in_cache_update() {
        let mut c = GpuCache::new(2, 2, CachePolicy::Lru);
        c.insert_from_slice(1, &[1.0, 1.0]);
        c.get_mut(&1).expect("cached")[0] = 9.0;
        assert_eq!(c.get(&1).unwrap(), &[9.0, 1.0]);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = GpuCache::new(2, 1, CachePolicy::Lru);
        c.insert_from_slice(1, &[1.0]);
        let _ = c.get(&1);
        let _ = c.get(&2);
        let _ = c.get(&1);
        assert_eq!(c.stats(), (2, 1));
        assert!((c.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn get_mut_counts_hits_and_misses_like_get() {
        let mut c = GpuCache::new(2, 1, CachePolicy::Lru);
        c.insert_from_slice(1, &[1.0]);
        assert!(c.get_mut(&1).is_some());
        assert!(c.get_mut(&2).is_none());
        assert!(c.get_mut(&1).is_some());
        assert_eq!(c.stats(), (2, 1), "get_mut must feed the same counters");
        assert!((c.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn replace_same_key() {
        let mut c = GpuCache::new(2, 1, CachePolicy::Lru);
        c.insert_from_slice(1, &[1.0]);
        assert_eq!(c.insert_from_slice(1, &[5.0]), InsertOutcome::Replaced);
        assert_eq!(c.get(&1).unwrap(), &[5.0]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row length != dim")]
    fn insert_rejects_bad_dim() {
        let mut c = GpuCache::new(2, 3, CachePolicy::Lru);
        c.insert_from_slice(1, &[1.0]);
    }

    #[test]
    fn zero_capacity_lru_rejects() {
        let mut c = GpuCache::new(0, 1, CachePolicy::Lru);
        assert!(!c.admits(1));
        assert_eq!(c.insert_from_slice(1, &[1.0]), InsertOutcome::Rejected);
        assert!(c.is_empty());
    }

    #[test]
    fn hit_ratio_zero_when_unused() {
        let c = GpuCache::new(2, 1, CachePolicy::Lru);
        assert_eq!(c.hit_ratio(), 0.0);
        assert_eq!(c.policy(), CachePolicy::Lru);
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn heavy_churn_is_consistent() {
        // Arena slot reuse under sustained churn: every lookup must still
        // return the right row.
        let mut c = GpuCache::new(16, 1, CachePolicy::Lru);
        for round in 0..2_000u64 {
            let k = round % 40;
            match c.get(&k) {
                Some(row) => assert_eq!(row[0], k as f32, "round {round}"),
                None => {
                    c.insert_from_slice(k, &[k as f32]);
                }
            }
            assert!(c.len() <= 16);
        }
    }

    #[test]
    fn fill_into_writes_arena_directly_and_skips_rejects() {
        let mut c = GpuCache::new(1, 2, CachePolicy::StaticHot);
        c.set_hot_threshold(10);
        let outcome = c.fill_into(3, |dst| dst.copy_from_slice(&[7.0, 8.0]));
        assert_eq!(outcome, InsertOutcome::Inserted);
        assert_eq!(c.get(&3).unwrap(), &[7.0, 8.0]);
        // Rejected fill: the closure must never run.
        let mut ran = false;
        assert_eq!(
            c.fill_into(99, |_| ran = true),
            InsertOutcome::Rejected,
            "cold key must be rejected"
        );
        assert!(!ran, "rejected fill must not invoke the closure");
    }

    #[test]
    fn frequency_aware_protects_hot_residents_from_cold_churn() {
        let mut c = GpuCache::new(2, 1, CachePolicy::FrequencyAware);
        // Build frequency for 1 and 2 (misses count), then cache them.
        for _ in 0..3 {
            let _ = c.get(&1);
            let _ = c.get(&2);
        }
        c.insert_from_slice(1, &[1.0]);
        c.insert_from_slice(2, &[2.0]);
        // A one-hit wonder cannot displace either resident...
        let _ = c.get(&9);
        assert_eq!(c.insert_from_slice(9, &[9.0]), InsertOutcome::Rejected);
        assert!(c.contains(&1) && c.contains(&2));
        // ...but a key seen more often than the LRU victim can.
        for _ in 0..5 {
            let _ = c.get(&7);
        }
        assert_eq!(c.insert_from_slice(7, &[7.0]), InsertOutcome::Evicted(1));
    }

    #[test]
    fn oracle_belady_follows_the_feed() {
        let mut c = GpuCache::new(2, 1, CachePolicy::OracleBelady);
        // Future: 1 used at steps 1 and 3; 2 at 2; 4 at 4; 9 never.
        c.prepare_step(1, &[1]);
        c.prepare_step(2, &[2]);
        c.prepare_step(3, &[1]);
        c.prepare_step(4, &[4]);
        c.begin_step(0);
        c.insert_from_slice(1, &[1.0]);
        c.insert_from_slice(2, &[2.0]);
        // A key with no known future never displaces residents.
        assert_eq!(c.insert_from_slice(9, &[9.0]), InsertOutcome::Rejected);
        c.begin_step(1);
        let _ = c.get(&1); // consumes 1's step-1 use; next use 3
                           // 4 (next use 4) is farther than both residents (3 and 2): bypass.
        assert_eq!(c.insert_from_slice(4, &[4.0]), InsertOutcome::Rejected);
        c.begin_step(2);
        let _ = c.get(&2); // consumes 2's last use → 2 has no future
                           // Now 4 displaces 2 (no future), not 1 (next use 3).
        assert_eq!(c.insert_from_slice(4, &[4.0]), InsertOutcome::Evicted(2));
        assert!(c.contains(&1) && c.contains(&4));
    }

    #[test]
    fn prefetch_plan_filters_cached_keys() {
        let mut c = GpuCache::new(4, 1, CachePolicy::OracleBelady);
        assert!(c.uses_lookahead() && c.wants_prefetch());
        c.prepare_step(5, &[1, 2, 3]);
        c.insert_from_slice(2, &[2.0]);
        let mut out = Vec::new();
        c.prefetch_plan(5, &mut out);
        assert_eq!(out, vec![1, 3], "cached key 2 must be filtered out");
        // History-driven policies neither feed nor prefetch.
        let l = GpuCache::new(4, 1, CachePolicy::Lru);
        assert!(!l.uses_lookahead() && !l.wants_prefetch());
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in CachePolicy::ALL {
            assert_eq!(p.label().parse::<CachePolicy>().unwrap(), p);
        }
        assert!("bogus".parse::<CachePolicy>().is_err());
    }
}
