//! Per-GPU embedding caches.
//!
//! Every multi-GPU system in the paper "maintains multi-GPU embedding cache
//! by caching hot entries to reduce host memory fetching" (§1). Each GPU
//! owns one cache instance holding rows of its shard. Two admission
//! policies:
//!
//! * [`CachePolicy::StaticHot`] — admit only the statically hottest keys.
//!   The paper keeps HugeCTR's cache strategy across all systems so hit
//!   ratios match; with Zipf-ranked key spaces the hottest keys are the
//!   numerically smallest, which this policy encodes. Deterministic, which
//!   the equivalence tests rely on.
//! * [`CachePolicy::Lru`] — classic least-recently-used, as an ablation
//!   (see the `ablation_cache_policy` bench target).
//!
//! Caches are owned by a single trainer thread (one per GPU), so they are
//! plain `&mut` structures — no locking on the fast path, like a real GPU
//! cache kernel operating on device-local memory. Recency is an intrusive
//! doubly-linked list over a slab, so every operation (including eviction)
//! is O(1).

use frugal_data::Key;
use std::collections::HashMap;

/// Cache admission/eviction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Admit a key iff its *global hotness rank* is below the admission
    /// threshold derived from capacity. No evictions ever happen, matching
    /// a prefilled static cache.
    StaticHot,
    /// Admit everything; evict the least recently used row when full.
    Lru,
}

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Slot {
    key: Key,
    row: Vec<f32>,
    prev: usize,
    next: usize,
}

/// A single GPU's embedding cache.
///
/// # Examples
///
/// ```
/// use frugal_embed::{CachePolicy, GpuCache};
///
/// let mut cache = GpuCache::new(2, 4, CachePolicy::Lru);
/// cache.insert(10, vec![1.0; 4]);
/// cache.insert(20, vec![2.0; 4]);
/// cache.get(&10); // refresh 10
/// cache.insert(30, vec![3.0; 4]); // evicts 20
/// assert!(cache.contains(&10) && !cache.contains(&20));
/// ```
#[derive(Debug, Clone)]
pub struct GpuCache {
    capacity: usize,
    dim: usize,
    policy: CachePolicy,
    map: HashMap<Key, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used slot (NIL when empty).
    head: usize,
    /// Least recently used slot (NIL when empty).
    tail: usize,
    hits: u64,
    misses: u64,
    /// For StaticHot: admit keys `< hot_threshold` (hotness = rank = key in
    /// the Zipf-ranked traces).
    hot_threshold: u64,
}

impl GpuCache {
    /// Creates a cache holding at most `capacity` rows of `dim` floats.
    ///
    /// For [`CachePolicy::StaticHot`] the admission threshold defaults to
    /// `capacity` (callers with sharded key spaces should set it with
    /// [`GpuCache::set_hot_threshold`]).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(capacity: usize, dim: usize, policy: CachePolicy) -> Self {
        assert!(dim > 0, "dim must be positive");
        GpuCache {
            capacity,
            dim,
            policy,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            slots: Vec::with_capacity(capacity.min(1 << 20)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            hits: 0,
            misses: 0,
            hot_threshold: capacity as u64,
        }
    }

    /// Sets the StaticHot admission threshold: keys `< threshold` are
    /// cacheable.
    pub fn set_hot_threshold(&mut self, threshold: u64) {
        self.hot_threshold = threshold;
    }

    /// Maximum number of rows.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of rows.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no rows are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The policy in effect.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// `(hits, misses)` counted by [`GpuCache::get`] and
    /// [`GpuCache::get_mut`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Hit ratio over all lookups (`get` + `get_mut`) so far (0 when
    /// unused).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Looks up `key`, refreshing recency. Returns the cached row.
    pub fn get(&mut self, key: &Key) -> Option<&[f32]> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.touch(idx);
                self.hits += 1;
                Some(self.slots[idx].row.as_slice())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` mutably (for in-cache updates), refreshing recency.
    /// Counts toward [`Self::stats`] exactly like [`Self::get`].
    pub fn get_mut(&mut self, key: &Key) -> Option<&mut [f32]> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.touch(idx);
                self.hits += 1;
                Some(self.slots[idx].row.as_mut_slice())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// True if `key` is cached (does not affect recency or stats).
    pub fn contains(&self, key: &Key) -> bool {
        self.map.contains_key(key)
    }

    /// Whether this cache would admit `key` at all.
    pub fn admits(&self, key: Key) -> bool {
        match self.policy {
            CachePolicy::StaticHot => key < self.hot_threshold,
            CachePolicy::Lru => self.capacity > 0,
        }
    }

    /// Inserts `row` for `key`. See [`InsertOutcome`] for the possible
    /// results; eviction is O(1).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim`.
    pub fn insert(&mut self, key: Key, row: Vec<f32>) -> InsertOutcome {
        assert_eq!(row.len(), self.dim, "row length != dim");
        if !self.admits(key) {
            return InsertOutcome::Rejected(row);
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].row = row;
            self.touch(idx);
            return InsertOutcome::Replaced;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            match self.policy {
                CachePolicy::StaticHot => {
                    // Static caches never exceed their admission set; if the
                    // threshold admits more keys than capacity, reject.
                    return InsertOutcome::Rejected(row);
                }
                CachePolicy::Lru => {
                    let victim = self.tail;
                    debug_assert_ne!(victim, NIL, "full cache must have a tail");
                    self.unlink(victim);
                    let slot = &mut self.slots[victim];
                    let old_key = slot.key;
                    let old_row = std::mem::take(&mut slot.row);
                    self.map.remove(&old_key);
                    self.free.push(victim);
                    evicted = Some((old_key, old_row));
                }
            }
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key,
                    row,
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key,
                    row,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        match evicted {
            Some((k, r)) => InsertOutcome::Evicted(k, r),
            None => InsertOutcome::Inserted,
        }
    }
}

/// Result of a cache insertion.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertOutcome {
    /// Inserted without eviction.
    Inserted,
    /// Replaced an existing row for the same key.
    Replaced,
    /// Inserted; the returned victim row was evicted.
    Evicted(Key, Vec<f32>),
    /// The admission policy rejected the key; the row is handed back.
    Rejected(Vec<f32>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_hot_admits_only_hot_keys() {
        let mut c = GpuCache::new(4, 2, CachePolicy::StaticHot);
        c.set_hot_threshold(100);
        assert_eq!(c.insert(5, vec![1.0, 1.0]), InsertOutcome::Inserted);
        assert!(matches!(
            c.insert(500, vec![2.0, 2.0]),
            InsertOutcome::Rejected(_)
        ));
        assert!(c.contains(&5) && !c.contains(&500));
    }

    #[test]
    fn static_hot_never_evicts() {
        let mut c = GpuCache::new(2, 1, CachePolicy::StaticHot);
        c.set_hot_threshold(u64::MAX - 2);
        assert_eq!(c.insert(1, vec![1.0]), InsertOutcome::Inserted);
        assert_eq!(c.insert(2, vec![2.0]), InsertOutcome::Inserted);
        // Full: further inserts rejected, existing entries untouched.
        assert!(matches!(c.insert(3, vec![3.0]), InsertOutcome::Rejected(_)));
        assert!(c.contains(&1) && c.contains(&2));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = GpuCache::new(2, 1, CachePolicy::Lru);
        c.insert(1, vec![1.0]);
        c.insert(2, vec![2.0]);
        assert!(c.get(&1).is_some()); // 2 is now LRU
        match c.insert(3, vec![3.0]) {
            InsertOutcome::Evicted(k, row) => {
                assert_eq!(k, 2);
                assert_eq!(row, vec![2.0]);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(&1) && c.contains(&3) && !c.contains(&2));
    }

    #[test]
    fn lru_never_exceeds_capacity() {
        let mut c = GpuCache::new(8, 1, CachePolicy::Lru);
        for k in 0..100 {
            c.insert(k, vec![k as f32]);
            assert!(c.len() <= 8);
        }
        // The eight most recent survive.
        for k in 92..100 {
            assert!(c.contains(&k), "missing {k}");
        }
    }

    #[test]
    fn lru_eviction_order_follows_recency_chain() {
        let mut c = GpuCache::new(3, 1, CachePolicy::Lru);
        c.insert(1, vec![1.0]);
        c.insert(2, vec![2.0]);
        c.insert(3, vec![3.0]);
        // Recency now 3 > 2 > 1. Touch 1 and 2 via get_mut/get.
        c.get_mut(&1).unwrap()[0] = 1.5;
        let _ = c.get(&2);
        // Recency 2 > 1 > 3: inserting evicts 3.
        match c.insert(4, vec![4.0]) {
            InsertOutcome::Evicted(k, _) => assert_eq!(k, 3),
            other => panic!("expected eviction, got {other:?}"),
        }
        // And the freed slot is reused without leaking.
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn get_mut_allows_in_cache_update() {
        let mut c = GpuCache::new(2, 2, CachePolicy::Lru);
        c.insert(1, vec![1.0, 1.0]);
        c.get_mut(&1).expect("cached")[0] = 9.0;
        assert_eq!(c.get(&1).unwrap(), &[9.0, 1.0]);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut c = GpuCache::new(2, 1, CachePolicy::Lru);
        c.insert(1, vec![1.0]);
        let _ = c.get(&1);
        let _ = c.get(&2);
        let _ = c.get(&1);
        assert_eq!(c.stats(), (2, 1));
        assert!((c.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn get_mut_counts_hits_and_misses_like_get() {
        let mut c = GpuCache::new(2, 1, CachePolicy::Lru);
        c.insert(1, vec![1.0]);
        assert!(c.get_mut(&1).is_some());
        assert!(c.get_mut(&2).is_none());
        assert!(c.get_mut(&1).is_some());
        assert_eq!(c.stats(), (2, 1), "get_mut must feed the same counters");
        assert!((c.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn replace_same_key() {
        let mut c = GpuCache::new(2, 1, CachePolicy::Lru);
        c.insert(1, vec![1.0]);
        assert_eq!(c.insert(1, vec![5.0]), InsertOutcome::Replaced);
        assert_eq!(c.get(&1).unwrap(), &[5.0]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row length != dim")]
    fn insert_rejects_bad_dim() {
        let mut c = GpuCache::new(2, 3, CachePolicy::Lru);
        c.insert(1, vec![1.0]);
    }

    #[test]
    fn zero_capacity_lru_rejects() {
        let mut c = GpuCache::new(0, 1, CachePolicy::Lru);
        assert!(!c.admits(1));
        assert!(matches!(c.insert(1, vec![1.0]), InsertOutcome::Rejected(_)));
        assert!(c.is_empty());
    }

    #[test]
    fn hit_ratio_zero_when_unused() {
        let c = GpuCache::new(2, 1, CachePolicy::Lru);
        assert_eq!(c.hit_ratio(), 0.0);
        assert_eq!(c.policy(), CachePolicy::Lru);
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn heavy_churn_is_consistent() {
        // Slab + free-list reuse under sustained churn: every lookup must
        // still return the right row.
        let mut c = GpuCache::new(16, 1, CachePolicy::Lru);
        for round in 0..2_000u64 {
            let k = round % 40;
            match c.get(&k) {
                Some(row) => assert_eq!(row[0], k as f32, "round {round}"),
                None => {
                    c.insert(k, vec![k as f32]);
                }
            }
            assert!(c.len() <= 16);
        }
    }
}
