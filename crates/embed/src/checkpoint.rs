//! Checkpointing for the host parameter store.
//!
//! Production embedding training periodically checkpoints the O(100) GB
//! parameter set in host memory. The format here is a simple framed binary
//! layout (magic, version, shape, seed, raw little-endian f32 rows) built
//! on [`bytes`], streamed through any `Read`/`Write` — files, sockets, or
//! in-memory buffers.

use crate::store::HostStore;
use bytes::{Buf, BufMut, BytesMut};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"FRUGALv1";
/// Rows per I/O frame.
const CHUNK_ROWS: usize = 4_096;

/// Errors from loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a Frugal checkpoint, or an unsupported version.
    BadHeader,
    /// The checkpoint's shape does not match the target store.
    ShapeMismatch {
        /// Rows × dim recorded in the checkpoint.
        found: (u64, usize),
        /// Rows × dim of the store being restored.
        expected: (u64, usize),
    },
    /// Data follows the last expected row: the stream is longer than the
    /// header promised (corrupted, concatenated, or from a foreign tool).
    TrailingBytes,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::BadHeader => write!(f, "not a frugal checkpoint"),
            CheckpointError::ShapeMismatch { found, expected } => write!(
                f,
                "checkpoint shape {found:?} does not match store {expected:?}"
            ),
            CheckpointError::TrailingBytes => {
                write!(f, "checkpoint has trailing bytes after the last row")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes a checkpoint of `store` to `w`.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn save_checkpoint<W: Write>(store: &HostStore, mut w: W) -> Result<(), CheckpointError> {
    let mut header = BytesMut::with_capacity(32);
    header.put_slice(MAGIC);
    header.put_u64_le(store.n_keys());
    header.put_u32_le(store.dim() as u32);
    header.put_u64_le(store.seed());
    w.write_all(&header)?;

    let dim = store.dim();
    let mut frame = BytesMut::with_capacity(CHUNK_ROWS * dim * 4);
    let mut row = vec![0.0f32; dim];
    for key in 0..store.n_keys() {
        store.read_row(key, &mut row);
        for &v in &row {
            frame.put_f32_le(v);
        }
        if frame.len() >= CHUNK_ROWS * dim * 4 {
            w.write_all(&frame)?;
            frame.clear();
        }
    }
    if !frame.is_empty() {
        w.write_all(&frame)?;
    }
    w.flush()?;
    Ok(())
}

/// Restores `store` from a checkpoint previously written by
/// [`save_checkpoint`]. The shapes must match.
///
/// # Errors
///
/// Returns [`CheckpointError::BadHeader`] for foreign data,
/// [`CheckpointError::ShapeMismatch`] when the checkpoint was taken from a
/// differently shaped store, and [`CheckpointError::TrailingBytes`] when
/// the stream continues past the last row the header promised. In the
/// trailing-bytes case the store has already been fully overwritten with
/// the (self-consistent) prefix.
pub fn load_checkpoint<R: Read>(store: &HostStore, mut r: R) -> Result<(), CheckpointError> {
    let mut header = [0u8; 28];
    r.read_exact(&mut header)?;
    let mut buf = &header[..];
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CheckpointError::BadHeader);
    }
    let n_keys = buf.get_u64_le();
    let dim = buf.get_u32_le() as usize;
    let _seed = buf.get_u64_le();
    if n_keys != store.n_keys() || dim != store.dim() {
        return Err(CheckpointError::ShapeMismatch {
            found: (n_keys, dim),
            expected: (store.n_keys(), store.dim()),
        });
    }
    let mut frame = vec![0u8; CHUNK_ROWS.min(n_keys as usize) * dim * 4];
    let mut key = 0u64;
    while key < n_keys {
        let rows = CHUNK_ROWS.min((n_keys - key) as usize);
        let bytes = rows * dim * 4;
        r.read_exact(&mut frame[..bytes])?;
        let mut buf = &frame[..bytes];
        for _ in 0..rows {
            store.write_row(key, |row| {
                for v in row.iter_mut() {
                    *v = buf.get_f32_le();
                }
            });
            key += 1;
        }
    }
    // A well-formed stream ends exactly at the last row. Anything further
    // means the header lied about the payload size — surface it rather
    // than silently accepting a corrupted or concatenated stream.
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(()),
        _ => Err(CheckpointError::TrailingBytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_every_row() {
        let store = HostStore::new(1_000, 7, 42);
        store.write_row(123, |row| row[3] = 9.5);
        let mut buf = Vec::new();
        save_checkpoint(&store, &mut buf).unwrap();

        let restored = HostStore::new(1_000, 7, 0); // different seed: different init
        load_checkpoint(&restored, buf.as_slice()).unwrap();
        for k in 0..1_000 {
            assert_eq!(store.row_vec(k), restored.row_vec(k), "key {k}");
        }
    }

    #[test]
    fn rejects_foreign_data() {
        let store = HostStore::new(10, 2, 0);
        let junk = vec![0u8; 64];
        assert!(matches!(
            load_checkpoint(&store, junk.as_slice()),
            Err(CheckpointError::BadHeader)
        ));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let a = HostStore::new(10, 2, 0);
        let mut buf = Vec::new();
        save_checkpoint(&a, &mut buf).unwrap();
        let b = HostStore::new(10, 3, 0);
        match load_checkpoint(&b, buf.as_slice()) {
            Err(CheckpointError::ShapeMismatch { found, expected }) => {
                assert_eq!(found, (10, 2));
                assert_eq!(expected, (10, 3));
            }
            other => panic!("expected shape mismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let a = HostStore::new(100, 4, 1);
        let mut buf = Vec::new();
        save_checkpoint(&a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(matches!(
            load_checkpoint(&a, buf.as_slice()),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let a = HostStore::new(100, 4, 1);
        let mut buf = Vec::new();
        save_checkpoint(&a, &mut buf).unwrap();
        buf.push(0xAB);
        assert!(matches!(
            load_checkpoint(&a, buf.as_slice()),
            Err(CheckpointError::TrailingBytes)
        ));

        // A second checkpoint concatenated onto the first is also caught.
        let mut twice = Vec::new();
        save_checkpoint(&a, &mut twice).unwrap();
        save_checkpoint(&a, &mut twice).unwrap();
        assert!(matches!(
            load_checkpoint(&a, twice.as_slice()),
            Err(CheckpointError::TrailingBytes)
        ));
    }

    #[test]
    fn error_display() {
        let e = CheckpointError::ShapeMismatch {
            found: (1, 2),
            expected: (3, 4),
        };
        assert!(e.to_string().contains("does not match"));
        assert!(CheckpointError::BadHeader
            .to_string()
            .contains("not a frugal"));
        assert!(CheckpointError::TrailingBytes
            .to_string()
            .contains("trailing bytes"));
    }
}
