//! The flush-apply entry point shared by every flush strategy.
//!
//! Background flushing threads (P²F and FIFO) and the write-through leader
//! all funnel through these two helpers, so pending updates meet the host
//! store and the shared optimizer rule in exactly one place. Per-key update
//! order is what bit-equality rests on: both helpers replay each row's
//! updates in the order given, and callers guarantee that order is the
//! serial schedule's (step order for claims, canonical arrival order for a
//! step's merged list).

use crate::rule::UpdateRule;
use crate::store::HostStore;
use frugal_data::Key;
use std::sync::Arc;

/// One claimed key's `(key, start, end)` range into the flat `(step, Δ)`
/// slab a flusher drained from the g-entry store — the strategy's batch
/// view of pending work.
pub type FlushClaim = (Key, usize, usize);

/// Applies a flusher batch: for each claim, replays its `(step, Δ)` slice
/// of `writes` onto the host row through `rule`, in slice (= step) order.
/// Returns the number of rows written.
///
/// Safe without per-row locking because the caller's protocol (the P²F
/// claim + in-flight marker) guarantees at most one flusher holds any key's
/// pending writes at a time.
pub fn apply_claims(
    store: &HostStore,
    rule: &dyn UpdateRule,
    claims: &[FlushClaim],
    writes: &[(u64, Arc<[f32]>)],
) -> u64 {
    for &(key, start, end) in claims {
        store.write_row(key, |row| {
            for (_step, grad) in &writes[start..end] {
                rule.apply(key, row, grad);
            }
        });
    }
    claims.len() as u64
}

/// Applies a step's merged update list synchronously, one row per `(key,
/// Δ)`, in the order given (canonical arrival order) — the write-through
/// leader's path. Routing it through the same `rule` as the background
/// flushers keeps stateful optimizers' `state_snapshot` correct in every
/// mode.
pub fn apply_updates(store: &HostStore, rule: &dyn UpdateRule, updates: &[(Key, Arc<[f32]>)]) {
    for (key, grad) in updates {
        store.write_row(*key, |row| rule.apply(*key, row, grad));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::SgdRule;

    #[test]
    fn claims_replay_slices_in_order() {
        let store = HostStore::new(4, 2, 1);
        let rule = SgdRule::new(1.0);
        let before0 = store.row_vec(0);
        let before3 = store.row_vec(3);
        let writes: Vec<(u64, Arc<[f32]>)> = vec![
            (0, vec![1.0, 0.0].into()),
            (2, vec![0.0, 1.0].into()),
            (1, vec![0.5, 0.5].into()),
        ];
        // Key 0 claims the first two writes, key 3 the last.
        let n = apply_claims(&store, &rule, &[(0, 0, 2), (3, 2, 3)], &writes);
        assert_eq!(n, 2);
        let after0 = store.row_vec(0);
        assert_eq!(after0[0], before0[0] - 1.0);
        assert_eq!(after0[1], before0[1] - 1.0);
        let after3 = store.row_vec(3);
        assert_eq!(after3[0], before3[0] - 0.5);
        // Untouched rows stay put.
        assert_eq!(store.row_vec(1), {
            let s2 = HostStore::new(4, 2, 1);
            s2.row_vec(1)
        });
    }

    #[test]
    fn updates_apply_one_row_each() {
        let store = HostStore::new(4, 2, 1);
        let rule = SgdRule::new(0.5);
        let before = store.row_vec(2);
        apply_updates(&store, &rule, &[(2, vec![2.0, -2.0].into())]);
        let after = store.row_vec(2);
        assert_eq!(after[0], before[0] - 1.0);
        assert_eq!(after[1], before[1] + 1.0);
    }
}
