//! Auto-vectorizable elementwise row kernels.
//!
//! Every hot per-row loop of the flush-apply path — the optimizer steps the
//! flushing threads run, gradient accumulation, and row staging copies —
//! funnels through this module so the compiler sees one canonical,
//! vectorization-friendly shape per operation: a `LANES`-wide inner loop
//! over `chunks_exact` (no bounds checks, no early exits) plus a scalar
//! remainder.
//!
//! # Element-order invariant
//!
//! Each kernel computes element `i` of the output from element `i` of its
//! inputs only, with exactly the scalar operation sequence of the naive
//! loop it replaced (`+`, `*`, `/`, `sqrt` — all IEEE-754
//! correctly-rounded, scalar or SIMD). Elements are mutually independent,
//! so lane grouping cannot change any result bit: routing a path through
//! these kernels preserves bit-equality against the serial oracle. This is
//! load-bearing — the engine's four-way equivalence tests compare
//! parameters with `==`, not a tolerance.

/// Lane width of the unrolled inner loops. Eight f32s = one AVX2 register;
/// narrower targets simply split the chunk, wider ones fuse two.
pub const LANES: usize = 8;

/// Wide lane width for long rows: two AVX2 registers (one AVX-512
/// register) per iteration. Rows at least this wide take the wide inner
/// loop; element independence keeps results bit-identical either way.
pub const LANES_WIDE: usize = 16;

/// Splits `(a, b)` into LANES-aligned heads and a shared-length tail.
#[inline(always)]
fn split2<'a>(
    a: &'a mut [f32],
    b: &'a [f32],
) -> (&'a mut [f32], &'a [f32], &'a mut [f32], &'a [f32]) {
    debug_assert_eq!(a.len(), b.len());
    let head = a.len() - a.len() % LANES;
    let (ah, at) = a.split_at_mut(head);
    let (bh, bt) = b.split_at(head);
    (ah, bh, at, bt)
}

/// `split2` with a LANES_WIDE-aligned head.
#[inline(always)]
fn split2_wide<'a>(
    a: &'a mut [f32],
    b: &'a [f32],
) -> (&'a mut [f32], &'a [f32], &'a mut [f32], &'a [f32]) {
    debug_assert_eq!(a.len(), b.len());
    let head = a.len() - a.len() % LANES_WIDE;
    let (ah, at) = a.split_at_mut(head);
    let (bh, bt) = b.split_at(head);
    (ah, bh, at, bt)
}

/// Wide-lane accumulate: `acc[i] += grad[i]` with a LANES_WIDE inner loop
/// and a LANES/scalar remainder. Bit-identical to [`add`] because each
/// element is independent and uses the same single `+`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn add_wide(acc: &mut [f32], grad: &[f32]) {
    assert_eq!(acc.len(), grad.len(), "gradient length != dim");
    let (ah, gh, at, gt) = split2_wide(acc, grad);
    for (ac, gc) in ah
        .chunks_exact_mut(LANES_WIDE)
        .zip(gh.chunks_exact(LANES_WIDE))
    {
        for i in 0..LANES_WIDE {
            ac[i] += gc[i];
        }
    }
    add_narrow(at, gt);
}

/// Wide-lane SGD step: `row[i] -= lr * grad[i]` over LANES_WIDE chunks.
/// Bit-identical to [`sgd_step`].
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn sgd_step_wide(row: &mut [f32], grad: &[f32], lr: f32) {
    assert_eq!(row.len(), grad.len(), "row/gradient length mismatch");
    let (rh, gh, rt, gt) = split2_wide(row, grad);
    for (rc, gc) in rh
        .chunks_exact_mut(LANES_WIDE)
        .zip(gh.chunks_exact(LANES_WIDE))
    {
        for i in 0..LANES_WIDE {
            rc[i] -= lr * gc[i];
        }
    }
    sgd_step_narrow(rt, gt, lr);
}

/// SGD step: `row[i] -= lr * grad[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn sgd_step(row: &mut [f32], grad: &[f32], lr: f32) {
    assert_eq!(row.len(), grad.len(), "row/gradient length mismatch");
    if row.len() >= LANES_WIDE {
        return sgd_step_wide(row, grad, lr);
    }
    sgd_step_narrow(row, grad, lr);
}

#[inline]
fn sgd_step_narrow(row: &mut [f32], grad: &[f32], lr: f32) {
    let (rh, gh, rt, gt) = split2(row, grad);
    for (rc, gc) in rh.chunks_exact_mut(LANES).zip(gh.chunks_exact(LANES)) {
        for i in 0..LANES {
            rc[i] -= lr * gc[i];
        }
    }
    for (p, &g) in rt.iter_mut().zip(gt) {
        *p -= lr * g;
    }
}

/// Adagrad step: `acc[i] += grad[i]²; row[i] -= lr * grad[i] / (√acc[i] + eps)`.
///
/// The per-element operation order matches the scalar optimizers
/// (`frugal_tensor`-style accumulate-then-step), so a row driven through
/// this kernel stays bit-identical to one driven through the serial
/// reference.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn adagrad_step(row: &mut [f32], acc: &mut [f32], grad: &[f32], lr: f32, eps: f32) {
    assert_eq!(row.len(), grad.len(), "row/gradient length mismatch");
    assert_eq!(row.len(), acc.len(), "row/state length mismatch");
    let head = row.len() - row.len() % LANES;
    let (rh, rt) = row.split_at_mut(head);
    let (ah, at) = acc.split_at_mut(head);
    let (gh, gt) = grad.split_at(head);
    for ((rc, ac), gc) in rh
        .chunks_exact_mut(LANES)
        .zip(ah.chunks_exact_mut(LANES))
        .zip(gh.chunks_exact(LANES))
    {
        for i in 0..LANES {
            ac[i] += gc[i] * gc[i];
            rc[i] -= lr * gc[i] / (ac[i].sqrt() + eps);
        }
    }
    for ((p, a), &g) in rt.iter_mut().zip(at.iter_mut()).zip(gt) {
        *a += g * g;
        *p -= lr * g / (a.sqrt() + eps);
    }
}

/// Accumulate: `acc[i] += grad[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn add(acc: &mut [f32], grad: &[f32]) {
    assert_eq!(acc.len(), grad.len(), "gradient length != dim");
    if acc.len() >= LANES_WIDE {
        return add_wide(acc, grad);
    }
    add_narrow(acc, grad);
}

#[inline]
fn add_narrow(acc: &mut [f32], grad: &[f32]) {
    let (ah, gh, at, gt) = split2(acc, grad);
    for (ac, gc) in ah.chunks_exact_mut(LANES).zip(gh.chunks_exact(LANES)) {
        for i in 0..LANES {
            ac[i] += gc[i];
        }
    }
    for (a, &g) in at.iter_mut().zip(gt) {
        *a += g;
    }
}

/// Scaled accumulate (axpy): `acc[i] += scale * grad[i]`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn add_scaled(acc: &mut [f32], grad: &[f32], scale: f32) {
    assert_eq!(acc.len(), grad.len(), "gradient length != dim");
    let (ah, gh, at, gt) = split2(acc, grad);
    for (ac, gc) in ah.chunks_exact_mut(LANES).zip(gh.chunks_exact(LANES)) {
        for i in 0..LANES {
            ac[i] += scale * gc[i];
        }
    }
    for (a, &g) in at.iter_mut().zip(gt) {
        *a += scale * g;
    }
}

/// Row copy: `dst[i] = src[i]` — the cache-fill / row-staging path.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn copy(dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "row length mismatch");
    dst.copy_from_slice(src);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random f32 in roughly [-1, 1).
    fn val(i: usize, salt: u64) -> f32 {
        let h = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
        ((h >> 40) as f32 / (1u64 << 23) as f32) - 1.0
    }

    /// Lengths that exercise empty, sub-lane, exact-lane, and remainder
    /// paths.
    const LENS: &[usize] = &[0, 1, 3, 7, 8, 9, 16, 31, 32, 33, 100];

    #[test]
    fn sgd_step_matches_scalar_bitwise() {
        for &n in LENS {
            let grad: Vec<f32> = (0..n).map(|i| val(i, 1)).collect();
            let mut a: Vec<f32> = (0..n).map(|i| val(i, 2)).collect();
            let mut b = a.clone();
            sgd_step(&mut a, &grad, 0.137);
            for (p, &g) in b.iter_mut().zip(&grad) {
                *p -= 0.137 * g;
            }
            assert_eq!(a, b, "len {n}");
        }
    }

    #[test]
    fn adagrad_step_matches_scalar_bitwise() {
        for &n in LENS {
            let grad: Vec<f32> = (0..n).map(|i| val(i, 3)).collect();
            let mut row_a: Vec<f32> = (0..n).map(|i| val(i, 4)).collect();
            let mut acc_a: Vec<f32> = (0..n).map(|i| val(i, 5).abs()).collect();
            let mut row_b = row_a.clone();
            let mut acc_b = acc_a.clone();
            adagrad_step(&mut row_a, &mut acc_a, &grad, 0.5, 1e-8);
            for ((p, a), &g) in row_b.iter_mut().zip(acc_b.iter_mut()).zip(&grad) {
                *a += g * g;
                *p -= 0.5 * g / (a.sqrt() + 1e-8);
            }
            assert_eq!(row_a, row_b, "len {n} rows");
            assert_eq!(acc_a, acc_b, "len {n} state");
        }
    }

    #[test]
    fn add_and_add_scaled_match_scalar_bitwise() {
        for &n in LENS {
            let grad: Vec<f32> = (0..n).map(|i| val(i, 6)).collect();
            let mut a: Vec<f32> = (0..n).map(|i| val(i, 7)).collect();
            let mut b = a.clone();
            add(&mut a, &grad);
            for (x, &g) in b.iter_mut().zip(&grad) {
                *x += g;
            }
            assert_eq!(a, b, "add len {n}");
            add_scaled(&mut a, &grad, 0.25);
            for (x, &g) in b.iter_mut().zip(&grad) {
                *x += 0.25 * g;
            }
            assert_eq!(a, b, "add_scaled len {n}");
        }
    }

    #[test]
    fn wide_variants_match_scalar_bitwise() {
        for &n in LENS {
            let grad: Vec<f32> = (0..n).map(|i| val(i, 9)).collect();
            let mut a: Vec<f32> = (0..n).map(|i| val(i, 10)).collect();
            let mut b = a.clone();
            add_wide(&mut a, &grad);
            for (x, &g) in b.iter_mut().zip(&grad) {
                *x += g;
            }
            assert_eq!(a, b, "add_wide len {n}");
            sgd_step_wide(&mut a, &grad, 0.137);
            for (p, &g) in b.iter_mut().zip(&grad) {
                *p -= 0.137 * g;
            }
            assert_eq!(a, b, "sgd_step_wide len {n}");
        }
    }

    #[test]
    fn copy_roundtrips() {
        let src: Vec<f32> = (0..33).map(|i| val(i, 8)).collect();
        let mut dst = vec![0.0; 33];
        copy(&mut dst, &src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sgd_rejects_mismatched_lengths() {
        sgd_step(&mut [0.0, 0.0], &[1.0], 0.1);
    }

    #[test]
    #[should_panic(expected = "row/state length mismatch")]
    fn adagrad_rejects_mismatched_state() {
        adagrad_step(&mut [0.0], &mut [0.0, 0.0], &[1.0], 0.1, 1e-8);
    }
}
