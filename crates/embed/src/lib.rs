//! # frugal-embed — embedding storage substrate
//!
//! The embedding layer dominates embedding-model training (paper §2.1:
//! "over 60% time" in production models). This crate provides its storage:
//!
//! * [`HostStore`] — the complete parameter set in host memory, shared by
//!   all training processes and the flushing threads, with an optional
//!   seqlock *checked mode* that detects consistency violations.
//! * [`GpuCache`] — a per-GPU hot-row cache: a flat row arena with the
//!   admission/eviction strategy behind the [`EvictionPolicy`] trait
//!   (StaticHot, LRU, frequency-aware, and a lookahead-fed Belady oracle).
//! * [`Sharding`] — the key → owner-GPU map and cache-capacity math.
//! * [`UpdateRule`] ([`SgdRule`], [`AdagradRule`]) — thread-safe optimizer
//!   rules the flushing threads apply to the host store, with dense
//!   lock-free per-row state in a [`DenseStateTable`].
//! * [`kernels`] — auto-vectorizable elementwise row kernels every hot
//!   per-row loop (optimizer steps, gradient accumulation, row copies)
//!   routes through.
//! * [`GradAggregator`] — canonical-order per-key gradient summation for
//!   bitwise-reproducible synchronous updates.
//! * [`apply_claims`] / [`apply_updates`] — the flush-apply entry points:
//!   every path that moves pending updates into the [`HostStore`]
//!   (background flushers, the write-through leader) goes through here.
//! * [`save_checkpoint`]/[`load_checkpoint`] — framed binary checkpoints of
//!   the parameter store.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod agg;
mod cache;
mod checkpoint;
mod flush;
pub mod kernels;
pub mod policy;
mod rule;
mod shard;
mod state;
mod store;

pub use agg::GradAggregator;
pub use cache::{CachePolicy, GpuCache, InsertOutcome};
pub use checkpoint::{load_checkpoint, save_checkpoint, CheckpointError};
pub use flush::{apply_claims, apply_updates, FlushClaim};
pub use policy::EvictionPolicy;
pub use rule::{AdagradRule, SgdRule, UpdateRule};
pub use shard::Sharding;
pub use state::DenseStateTable;
pub use store::{initial_value, HostStore};
