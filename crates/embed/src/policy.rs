//! Pluggable cache eviction/admission policies.
//!
//! [`GpuCache`](crate::GpuCache) owns the row arena and the key→slot map;
//! everything *strategic* — recency bookkeeping, admission decisions,
//! victim selection, and future-knowledge tracking — lives behind the
//! [`EvictionPolicy`] trait, mirroring how the engine factors flush
//! behavior behind `FlushStrategy`. The cache drives the policy through
//! narrow callbacks; the policy never touches rows.
//!
//! Four implementations (one per [`CachePolicy`](crate::CachePolicy)
//! variant):
//!
//! * [`StaticHotPolicy`] — admit only keys below the static hotness
//!   threshold, never evict (HugeCTR-style prefilled cache).
//! * [`LruPolicy`] — admit everything, evict the least-recently-used slot.
//! * [`FrequencyAwarePolicy`] — LRU recency for victim selection plus
//!   per-key access frequencies with periodic halving decay; a missing key
//!   is admitted under pressure only when its running frequency beats the
//!   victim's (frequency-aware software caching per Fang et al., in the
//!   spirit of TinyLFU admission).
//! * [`OracleBeladyPolicy`] — Belady's MIN fed real future knowledge: the
//!   engine's s+L lookahead registration doubles as a next-use feed
//!   ([`EvictionPolicy::prepare_step`]), so the policy can evict the slot
//!   whose next use is farthest (or absent), bypass inserts that would be
//!   the farthest themselves, and nominate next-step keys for prefetch
//!   during the P²F stall wait.
//!
//! Caches are single-owner structures (one per trainer thread), so
//! policies are plain `&mut` state: no locks, no atomics.

use frugal_data::{Key, KeyHashMap};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// "No slot" sentinel for the intrusive recency list.
const NIL: usize = usize::MAX;

/// "Never used again" sentinel for oracle next-use distances.
const NEVER: u64 = u64::MAX;

/// The strategic half of a GPU cache: admission, victim selection, and
/// (for lookahead-driven policies) future-knowledge tracking.
///
/// Contract, enforced by [`GpuCache`](crate::GpuCache):
///
/// * `on_hit`/`on_miss` fire on every lookup (`get`/`get_mut`).
/// * `on_insert(key, slot)` fires after `key`'s row lands in a slot that
///   was empty or just vacated by `on_evict`; `on_replace` fires instead
///   when `key` already occupied the slot.
/// * `evict_candidate` is only called with the cache *full*, so
///   `residents[slot]` is the occupying key for every slot; returning
///   `None` rejects the insert (admission bypass).
/// * `on_evict(key, slot)` fires after `evict_candidate` chose `slot`,
///   before the new key is installed there.
/// * `prepare_step(step, keys)`/`begin_step(step)` are the engine-side
///   future feed: ignored by history-driven policies
///   (`uses_lookahead() == false`).
pub trait EvictionPolicy: fmt::Debug + Send {
    /// A lookup for `key` resolved to `slot`.
    fn on_hit(&mut self, key: Key, slot: usize);
    /// A lookup for `key` missed.
    fn on_miss(&mut self, _key: Key) {}
    /// `key`'s row was installed in `slot` (previously empty/vacated).
    fn on_insert(&mut self, key: Key, slot: usize);
    /// `key`'s existing row in `slot` was overwritten.
    fn on_replace(&mut self, key: Key, slot: usize);
    /// `key` was evicted from `slot` (called before the replacement lands).
    fn on_evict(&mut self, key: Key, slot: usize);
    /// Occupancy-independent admission pre-check.
    fn admits(&self, _key: Key) -> bool {
        true
    }
    /// Full cache: pick the victim slot for incoming `key`, or `None` to
    /// reject it. `residents[slot]` is the key occupying `slot`.
    fn evict_candidate(&mut self, key: Key, residents: &[Key]) -> Option<usize>;
    /// StaticHot's admission threshold (no-op elsewhere).
    fn set_hot_threshold(&mut self, _threshold: u64) {}
    /// Future knowledge: the (owner-local) batch keys of `step`, fed as
    /// soon as the engine materializes them (s+L lookahead registration).
    fn prepare_step(&mut self, _step: u64, _keys: &[Key]) {}
    /// The training loop advanced to `step`.
    fn begin_step(&mut self, _step: u64) {}
    /// Whether `prepare_step` feeds are consumed (lets callers skip
    /// building the feed).
    fn uses_lookahead(&self) -> bool {
        false
    }
    /// Whether the policy nominates prefetch fills ([`Self::prefetch_into`]).
    fn wants_prefetch(&self) -> bool {
        false
    }
    /// Appends the keys the policy wants prefetched for `step` (fills to
    /// run while the trainer would otherwise stall). Each step's feed is
    /// handed out once.
    fn prefetch_into(&mut self, _step: u64, _out: &mut Vec<Key>) {}
}

/// Intrusive doubly-linked recency list over cache slots (head = most
/// recent, tail = least recent). O(1) for every operation; storage grows
/// with the slot count, never per-operation.
#[derive(Debug, Default)]
struct RecencyList {
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize,
    tail: usize,
}

impl RecencyList {
    fn new() -> Self {
        RecencyList {
            prev: Vec::new(),
            next: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn ensure(&mut self, slot: usize) {
        if slot >= self.prev.len() {
            self.prev.resize(slot + 1, NIL);
            self.next.resize(slot + 1, NIL);
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.prev[slot], self.next[slot]);
        if prev != NIL {
            self.next[prev] = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.prev[next] = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.ensure(slot);
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    fn tail(&self) -> usize {
        self.tail
    }
}

/// Admit only keys below a static hotness threshold; never evict. With
/// Zipf-ranked key spaces the hottest keys are the numerically smallest,
/// which the threshold encodes (see `Sharding::hot_threshold`).
#[derive(Debug)]
pub struct StaticHotPolicy {
    hot_threshold: u64,
}

impl StaticHotPolicy {
    /// The threshold defaults to `capacity`; sharded callers override it
    /// via `set_hot_threshold`.
    pub fn new(capacity: usize) -> Self {
        StaticHotPolicy {
            hot_threshold: capacity as u64,
        }
    }
}

impl EvictionPolicy for StaticHotPolicy {
    fn on_hit(&mut self, _key: Key, _slot: usize) {}
    fn on_insert(&mut self, _key: Key, _slot: usize) {}
    fn on_replace(&mut self, _key: Key, _slot: usize) {}
    fn on_evict(&mut self, _key: Key, _slot: usize) {}

    fn admits(&self, key: Key) -> bool {
        key < self.hot_threshold
    }

    fn evict_candidate(&mut self, _key: Key, _residents: &[Key]) -> Option<usize> {
        // Static caches never exceed their admission set; if the threshold
        // admits more keys than capacity, reject.
        None
    }

    fn set_hot_threshold(&mut self, threshold: u64) {
        self.hot_threshold = threshold;
    }
}

/// Classic least-recently-used: admit everything (capacity permitting),
/// evict the recency tail.
#[derive(Debug)]
pub struct LruPolicy {
    list: RecencyList,
    capacity: usize,
}

impl LruPolicy {
    /// An LRU policy for a cache of `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        LruPolicy {
            list: RecencyList::new(),
            capacity,
        }
    }
}

impl EvictionPolicy for LruPolicy {
    fn on_hit(&mut self, _key: Key, slot: usize) {
        self.list.touch(slot);
    }

    fn on_insert(&mut self, _key: Key, slot: usize) {
        self.list.push_front(slot);
    }

    fn on_replace(&mut self, _key: Key, slot: usize) {
        self.list.touch(slot);
    }

    fn on_evict(&mut self, _key: Key, slot: usize) {
        self.list.unlink(slot);
    }

    fn admits(&self, _key: Key) -> bool {
        self.capacity > 0
    }

    fn evict_candidate(&mut self, _key: Key, _residents: &[Key]) -> Option<usize> {
        let victim = self.list.tail();
        debug_assert_ne!(victim, NIL, "full cache must have a tail");
        Some(victim)
    }
}

/// LRU recency for victim selection plus per-key access frequencies with
/// periodic halving decay; under pressure a missing key is admitted only
/// when its running frequency strictly beats the victim's.
///
/// Frequencies count *accesses* (hits and misses alike), so a key builds
/// admission credit while still uncached — the mechanism that keeps
/// one-hit wonders from churning a Zipf cache's hot set (Fang et al.;
/// TinyLFU-style admission). Every `decay_every` accesses all counts are
/// halved and zeroes pruned, which both ages out stale popularity and
/// bounds the frequency map.
#[derive(Debug)]
pub struct FrequencyAwarePolicy {
    list: RecencyList,
    freq: KeyHashMap<u32>,
    accesses: u64,
    decay_every: u64,
    capacity: usize,
}

impl FrequencyAwarePolicy {
    /// A frequency-aware policy for a cache of `capacity` slots. The decay
    /// period scales with capacity so small test caches still decay.
    pub fn new(capacity: usize) -> Self {
        FrequencyAwarePolicy {
            list: RecencyList::new(),
            freq: KeyHashMap::default(),
            accesses: 0,
            decay_every: 10 * capacity.max(8) as u64,
            capacity,
        }
    }

    fn bump(&mut self, key: Key) {
        let c = self.freq.entry(key).or_insert(0);
        *c = c.saturating_add(1);
        self.accesses += 1;
        if self.accesses.is_multiple_of(self.decay_every) {
            self.freq.retain(|_, c| {
                *c >>= 1;
                *c > 0
            });
        }
    }

    fn frequency(&self, key: Key) -> u32 {
        self.freq.get(&key).copied().unwrap_or(0)
    }
}

impl EvictionPolicy for FrequencyAwarePolicy {
    fn on_hit(&mut self, key: Key, slot: usize) {
        self.bump(key);
        self.list.touch(slot);
    }

    fn on_miss(&mut self, key: Key) {
        self.bump(key);
    }

    fn on_insert(&mut self, _key: Key, slot: usize) {
        self.list.push_front(slot);
    }

    fn on_replace(&mut self, _key: Key, slot: usize) {
        self.list.touch(slot);
    }

    fn on_evict(&mut self, _key: Key, slot: usize) {
        // Keep the evicted key's frequency: its history is exactly what
        // lets it re-enter later (and what decay is for).
        self.list.unlink(slot);
    }

    fn admits(&self, _key: Key) -> bool {
        self.capacity > 0
    }

    fn evict_candidate(&mut self, key: Key, residents: &[Key]) -> Option<usize> {
        let victim = self.list.tail();
        debug_assert_ne!(victim, NIL, "full cache must have a tail");
        if self.frequency(key) > self.frequency(residents[victim]) {
            Some(victim)
        } else {
            None
        }
    }
}

/// Belady's MIN with admission bypass, fed real future knowledge.
///
/// The engine registers every step's reads `L` steps ahead; the same
/// materialized key lists, filtered to this cache's owner shard, arrive
/// through [`EvictionPolicy::prepare_step`] as per-key next-use queues.
/// Under pressure the policy evicts the resident whose next use is
/// farthest in the future (absent = infinitely far) — and rejects the
/// *incoming* key instead when its own next use is farther than every
/// resident's, which plain evict-only Belady misses.
///
/// The same feed makes the policy prefetch-capable: each step's key list
/// is kept until [`EvictionPolicy::prefetch_into`] hands it out, letting
/// the trainer convert its P²F stall wait into fills for step `s + 1`.
///
/// Next-use queues are consumed lazily: `begin_step(s)` only advances the
/// clock, and entries `< now` are dropped at inspection time. A resident's
/// distance is its first use `≥ now` (its step-`s` use is still ahead of a
/// prefetch decision made during the step-`s` wait); an *incoming* key's
/// distance is its first use `> now`, because the fill consuming it **is**
/// the `now` use. Hits pop their `≤ now` entries eagerly.
#[derive(Debug)]
pub struct OracleBeladyPolicy {
    /// Per-key future use steps, non-decreasing, deduped per step.
    future: KeyHashMap<VecDeque<u64>>,
    /// Per-step feed retained for prefetch nomination.
    plans: BTreeMap<u64, Vec<Key>>,
    now: u64,
    capacity: usize,
}

impl OracleBeladyPolicy {
    /// An oracle policy for a cache of `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        OracleBeladyPolicy {
            future: KeyHashMap::default(),
            plans: BTreeMap::new(),
            now: 0,
            capacity,
        }
    }

    /// First known use at or after `now` (`NEVER` when none), dropping
    /// consumed entries.
    fn next_use_resident(&mut self, key: Key) -> u64 {
        match self.future.get_mut(&key) {
            None => NEVER,
            Some(q) => {
                while q.front().is_some_and(|&s| s < self.now) {
                    q.pop_front();
                }
                match q.front() {
                    Some(&s) => s,
                    None => {
                        self.future.remove(&key);
                        NEVER
                    }
                }
            }
        }
    }

    /// First known use strictly after `now` (`NEVER` when none): the
    /// incoming key's `now` use is consumed by the fill being decided.
    fn next_use_incoming(&mut self, key: Key) -> u64 {
        match self.future.get_mut(&key) {
            None => NEVER,
            Some(q) => {
                while q.front().is_some_and(|&s| s <= self.now) {
                    q.pop_front();
                }
                match q.front() {
                    Some(&s) => s,
                    None => {
                        self.future.remove(&key);
                        NEVER
                    }
                }
            }
        }
    }
}

impl EvictionPolicy for OracleBeladyPolicy {
    fn on_hit(&mut self, key: Key, _slot: usize) {
        // This step's use is consumed; expose the *next* one.
        if let Some(q) = self.future.get_mut(&key) {
            while q.front().is_some_and(|&s| s <= self.now) {
                q.pop_front();
            }
            if q.is_empty() {
                self.future.remove(&key);
            }
        }
    }

    fn on_insert(&mut self, key: Key, _slot: usize) {
        // Uniform with the eviction path: the fill consumes the `now` use.
        let _ = self.next_use_incoming(key);
    }

    fn on_replace(&mut self, _key: Key, _slot: usize) {}
    fn on_evict(&mut self, _key: Key, _slot: usize) {}

    fn admits(&self, _key: Key) -> bool {
        self.capacity > 0
    }

    fn evict_candidate(&mut self, key: Key, residents: &[Key]) -> Option<usize> {
        let incoming = self.next_use_incoming(key);
        if incoming == NEVER {
            // Known-useless (or unknown) future: never displace a resident.
            return None;
        }
        let mut victim = NIL;
        let mut farthest = 0u64;
        for (slot, &resident) in residents.iter().enumerate() {
            let next = self.next_use_resident(resident);
            if next == NEVER {
                return Some(slot);
            }
            if next > farthest {
                farthest = next;
                victim = slot;
            }
        }
        // Belady with bypass: if the incoming key itself has the farthest
        // next use, caching it can only displace a sooner reuse.
        if incoming >= farthest {
            None
        } else {
            Some(victim)
        }
    }

    fn prepare_step(&mut self, step: u64, keys: &[Key]) {
        if step < self.now || keys.is_empty() {
            return;
        }
        let plan = self.plans.entry(step).or_default();
        for &key in keys {
            let q = self.future.entry(key).or_default();
            if q.back() != Some(&step) {
                q.push_back(step);
                plan.push(key);
            }
        }
    }

    fn begin_step(&mut self, step: u64) {
        self.now = step;
        // Drop plans for steps already behind the clock (their prefetch
        // window is gone).
        while let Some((&first, _)) = self.plans.first_key_value() {
            if first < step {
                self.plans.remove(&first);
            } else {
                break;
            }
        }
    }

    fn uses_lookahead(&self) -> bool {
        true
    }

    fn wants_prefetch(&self) -> bool {
        true
    }

    fn prefetch_into(&mut self, step: u64, out: &mut Vec<Key>) {
        if let Some(keys) = self.plans.remove(&step) {
            out.extend(keys);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recency_list_tracks_tail_through_churn() {
        let mut l = RecencyList::new();
        l.push_front(0);
        l.push_front(1);
        l.push_front(2);
        assert_eq!(l.tail(), 0);
        l.touch(0); // order now 0 > 2 > 1
        assert_eq!(l.tail(), 1);
        l.unlink(1);
        assert_eq!(l.tail(), 2);
        l.unlink(2);
        assert_eq!(l.tail(), 0);
        l.unlink(0);
        assert_eq!(l.tail(), NIL);
    }

    #[test]
    fn frequency_admission_requires_strictly_higher_count() {
        let mut p = FrequencyAwarePolicy::new(1);
        p.on_miss(10); // freq[10] = 1
        p.on_insert(10, 0);
        p.on_miss(20); // freq[20] = 1: ties lose
        assert_eq!(p.evict_candidate(20, &[10]), None);
        p.on_miss(20); // freq[20] = 2 > freq[10] = 1
        assert_eq!(p.evict_candidate(20, &[10]), Some(0));
    }

    #[test]
    fn frequency_decay_halves_and_prunes() {
        let mut p = FrequencyAwarePolicy::new(1);
        p.decay_every = 4;
        for _ in 0..3 {
            p.bump(1);
        }
        p.bump(2); // 4th access triggers decay: 1 → 1, 2 → 0 (pruned)
        assert_eq!(p.frequency(1), 1);
        assert_eq!(p.frequency(2), 0);
        assert!(!p.freq.contains_key(&2));
    }

    #[test]
    fn oracle_evicts_farthest_next_use() {
        let mut p = OracleBeladyPolicy::new(2);
        p.prepare_step(1, &[10]);
        p.prepare_step(5, &[20]);
        p.prepare_step(2, &[30]);
        p.begin_step(0);
        // Residents 10 (next 1) and 20 (next 5); incoming 30 (next 2)
        // displaces 20.
        assert_eq!(p.evict_candidate(30, &[10, 20]), Some(1));
    }

    #[test]
    fn oracle_bypasses_farthest_incoming_key() {
        let mut p = OracleBeladyPolicy::new(2);
        p.prepare_step(1, &[10]);
        p.prepare_step(2, &[20]);
        p.prepare_step(9, &[30]);
        p.begin_step(0);
        assert_eq!(p.evict_candidate(30, &[10, 20]), None);
        // Unknown future is treated as farthest of all.
        assert_eq!(p.evict_candidate(40, &[10, 20]), None);
    }

    #[test]
    fn oracle_resident_use_at_now_is_still_ahead() {
        // During the step-s wait, a resident used *at* s must not look
        // dead, while an incoming key's s-use counts as consumed.
        let mut p = OracleBeladyPolicy::new(2);
        p.prepare_step(3, &[10]);
        p.prepare_step(3, &[30]);
        p.prepare_step(4, &[20]);
        p.begin_step(3);
        assert_eq!(p.next_use_resident(10), 3);
        assert_eq!(p.next_use_incoming(30), NEVER);
    }

    #[test]
    fn oracle_hands_out_each_prefetch_plan_once() {
        let mut p = OracleBeladyPolicy::new(4);
        p.prepare_step(2, &[7, 8, 7]); // duplicate key deduped
        let mut out = Vec::new();
        p.prefetch_into(2, &mut out);
        assert_eq!(out, vec![7, 8]);
        out.clear();
        p.prefetch_into(2, &mut out);
        assert!(out.is_empty());
        // Plans behind the clock are discarded.
        p.prepare_step(5, &[9]);
        p.begin_step(6);
        p.prefetch_into(5, &mut out);
        assert!(out.is_empty());
    }
}
