//! Concurrent update rules applied by flushing threads.
//!
//! Unlike [`frugal_tensor::RowOptimizer`] (single-threaded, `&mut self`),
//! flushing threads share one rule across threads, so the trait here takes
//! `&self` and implementations manage their own interior state.

use frugal_data::Key;
use parking_lot::Mutex;
use std::collections::HashMap;

/// A thread-safe per-row update rule.
pub trait UpdateRule: Send + Sync + std::fmt::Debug {
    /// Applies `grad` to `row` in place.
    ///
    /// # Panics
    ///
    /// Implementations may panic if lengths differ.
    fn apply(&self, key: Key, row: &mut [f32], grad: &[f32]);

    /// The base learning rate.
    fn learning_rate(&self) -> f32;

    /// A copy of the per-row optimizer state for `key`, if any. Engines use
    /// this to seed a cache-side optimizer when a row is (re)filled, so the
    /// cached copy keeps evolving exactly like the host copy.
    fn state_snapshot(&self, _key: Key) -> Option<Vec<f32>> {
        None
    }
}

/// Stateless SGD — deterministic regardless of which flushing thread
/// applies which update, which the bit-equality tests rely on.
#[derive(Debug, Clone, Copy)]
pub struct SgdRule {
    lr: f32,
}

impl SgdRule {
    /// Creates SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be > 0");
        SgdRule { lr }
    }
}

impl UpdateRule for SgdRule {
    fn apply(&self, _key: Key, row: &mut [f32], grad: &[f32]) {
        assert_eq!(row.len(), grad.len(), "row/gradient length mismatch");
        for (p, &g) in row.iter_mut().zip(grad) {
            *p -= self.lr * g;
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

const ADAGRAD_SHARDS: usize = 16;

/// Adagrad with sharded, lock-protected per-row state — the production-style
/// sparse optimizer. Per-key serialization is guaranteed upstream by P²F
/// (only one pending flush per key at a time), so shard locks see little
/// contention.
#[derive(Debug)]
pub struct AdagradRule {
    lr: f32,
    eps: f32,
    shards: Vec<Mutex<HashMap<Key, Vec<f32>>>>,
}

impl AdagradRule {
    /// Creates Adagrad with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be > 0");
        AdagradRule {
            lr,
            eps: 1e-8,
            shards: (0..ADAGRAD_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Number of rows with accumulated state (for tests).
    pub fn state_rows(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

impl UpdateRule for AdagradRule {
    fn state_snapshot(&self, key: Key) -> Option<Vec<f32>> {
        self.shards[(key as usize) % ADAGRAD_SHARDS]
            .lock()
            .get(&key)
            .cloned()
    }

    fn apply(&self, key: Key, row: &mut [f32], grad: &[f32]) {
        assert_eq!(row.len(), grad.len(), "row/gradient length mismatch");
        let mut shard = self.shards[(key as usize) % ADAGRAD_SHARDS].lock();
        let acc = shard.entry(key).or_insert_with(|| vec![0.0; row.len()]);
        for ((p, &g), a) in row.iter_mut().zip(grad).zip(acc.iter_mut()) {
            *a += g * g;
            *p -= self.lr * g / (a.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sgd_matches_formula() {
        let rule = SgdRule::new(0.1);
        let mut row = vec![1.0f32, -1.0];
        rule.apply(9, &mut row, &[2.0, 2.0]);
        assert_eq!(row, vec![0.8, -1.2]);
        assert_eq!(rule.learning_rate(), 0.1);
    }

    #[test]
    fn adagrad_decays_step_size() {
        let rule = AdagradRule::new(1.0);
        let mut row = vec![0.0f32];
        rule.apply(5, &mut row, &[1.0]);
        let s1 = -row[0];
        let prev = row[0];
        rule.apply(5, &mut row, &[1.0]);
        let s2 = prev - row[0];
        assert!(s1 > s2);
        assert_eq!(rule.state_rows(), 1);
    }

    #[test]
    fn adagrad_concurrent_different_keys() {
        let rule = Arc::new(AdagradRule::new(0.5));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let rule = Arc::clone(&rule);
                std::thread::spawn(move || {
                    let mut row = vec![0.0f32; 4];
                    for i in 0..1_000 {
                        rule.apply(t * 1_000 + i, &mut row, &[0.1, 0.1, 0.1, 0.1]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rule.state_rows(), 4_000);
    }

    #[test]
    #[should_panic(expected = "learning rate must be > 0")]
    fn rejects_nan_lr() {
        let _ = SgdRule::new(f32::NAN);
    }
}
