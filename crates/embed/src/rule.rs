//! Concurrent update rules applied by flushing threads.
//!
//! Unlike [`frugal_tensor::RowOptimizer`] (single-threaded, `&mut self`),
//! flushing threads share one rule across threads, so the trait here takes
//! `&self` and implementations manage their own interior state. Stateful
//! rules keep that state in a [`DenseStateTable`] — lock-free, preallocated,
//! and sound for the same reason [`crate::HostStore`] is: P²F serializes
//! flushes per key. The elementwise math lives in [`crate::kernels`] so the
//! flush-apply inner loops auto-vectorize.

use crate::kernels;
use crate::state::DenseStateTable;
use frugal_data::Key;

/// A thread-safe per-row update rule.
pub trait UpdateRule: Send + Sync + std::fmt::Debug {
    /// Applies `grad` to `row` in place.
    ///
    /// # Panics
    ///
    /// Implementations may panic if lengths differ.
    fn apply(&self, key: Key, row: &mut [f32], grad: &[f32]);

    /// The base learning rate.
    fn learning_rate(&self) -> f32;

    /// A copy of the per-row optimizer state for `key`, if any. Engines use
    /// this to seed a cache-side optimizer when a row is (re)filled, so the
    /// cached copy keeps evolving exactly like the host copy.
    fn state_snapshot(&self, _key: Key) -> Option<Vec<f32>> {
        None
    }

    /// Number of racing state accesses detected (rules built in checked
    /// mode only; always 0 otherwise). Consistency tests fold this into
    /// the run's race count alongside the host store's.
    fn race_count(&self) -> usize {
        0
    }
}

/// Stateless SGD — deterministic regardless of which flushing thread
/// applies which update, which the bit-equality tests rely on.
#[derive(Debug, Clone, Copy)]
pub struct SgdRule {
    lr: f32,
}

impl SgdRule {
    /// Creates SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be > 0");
        SgdRule { lr }
    }
}

impl UpdateRule for SgdRule {
    fn apply(&self, _key: Key, row: &mut [f32], grad: &[f32]) {
        kernels::sgd_step(row, grad, self.lr);
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adagrad with dense lock-free per-row state — the production-style sparse
/// optimizer. Per-key serialization is guaranteed upstream by P²F (only one
/// pending flush per key at a time), so the state table needs no locks at
/// all; see [`DenseStateTable`] for the soundness argument and checked mode.
#[derive(Debug)]
pub struct AdagradRule {
    lr: f32,
    eps: f32,
    state: DenseStateTable,
}

impl AdagradRule {
    /// Creates Adagrad with learning rate `lr` and preallocated state for
    /// `n_keys` rows of `dim` f32 each.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive, or if `n_keys == 0` or
    /// `dim == 0`.
    pub fn new(lr: f32, n_keys: u64, dim: usize) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be > 0");
        AdagradRule {
            lr,
            eps: 1e-8,
            state: DenseStateTable::new(n_keys, dim),
        }
    }

    /// Like [`AdagradRule::new`] but with race-detecting state (see
    /// [`DenseStateTable::new_checked`]).
    pub fn new_checked(lr: f32, n_keys: u64, dim: usize) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be > 0");
        AdagradRule {
            lr,
            eps: 1e-8,
            state: DenseStateTable::new_checked(n_keys, dim),
        }
    }

    /// Number of rows with accumulated state (for tests).
    pub fn state_rows(&self) -> usize {
        self.state.rows()
    }
}

impl UpdateRule for AdagradRule {
    fn state_snapshot(&self, key: Key) -> Option<Vec<f32>> {
        self.state.snapshot(key)
    }

    fn apply(&self, key: Key, row: &mut [f32], grad: &[f32]) {
        self.state.update(key, |acc| {
            kernels::adagrad_step(row, acc, grad, self.lr, self.eps)
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn race_count(&self) -> usize {
        self.state.race_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sgd_matches_formula() {
        let rule = SgdRule::new(0.1);
        let mut row = vec![1.0f32, -1.0];
        rule.apply(9, &mut row, &[2.0, 2.0]);
        assert_eq!(row, vec![0.8, -1.2]);
        assert_eq!(rule.learning_rate(), 0.1);
    }

    #[test]
    fn adagrad_decays_step_size() {
        let rule = AdagradRule::new(1.0, 16, 1);
        let mut row = vec![0.0f32];
        rule.apply(5, &mut row, &[1.0]);
        let s1 = -row[0];
        let prev = row[0];
        rule.apply(5, &mut row, &[1.0]);
        let s2 = prev - row[0];
        assert!(s1 > s2);
        assert_eq!(rule.state_rows(), 1);
    }

    #[test]
    fn adagrad_matches_serial_optimizer_bitwise() {
        // The shared rule and frugal_tensor's single-threaded Adagrad use
        // the identical formula; the kernel routing must not change a bit.
        use frugal_tensor::RowOptimizer;
        let rule = AdagradRule::new(0.5, 4, 8);
        let mut serial = frugal_tensor::Adagrad::new(0.5);
        let mut row_a: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let mut row_b = row_a.clone();
        for step in 0..10 {
            let grad: Vec<f32> = (0..8).map(|i| (i + step) as f32 * 0.01 - 0.03).collect();
            rule.apply(2, &mut row_a, &grad);
            serial.update_row(2, &mut row_b, &grad);
            assert_eq!(row_a, row_b, "diverged at step {step}");
        }
    }

    #[test]
    fn adagrad_state_snapshot_seeds_serial_optimizer() {
        // Snapshot the shared state mid-stream, seed a fresh serial
        // optimizer with it, and verify both continue identically — the
        // engine does exactly this when (re)filling a cache row.
        use frugal_tensor::RowOptimizer;
        let rule = AdagradRule::new(0.5, 4, 4);
        let mut row = vec![0.2f32, -0.1, 0.4, 0.0];
        rule.apply(1, &mut row, &[0.3, -0.2, 0.1, 0.5]);
        let snap = rule.state_snapshot(1).expect("state after apply");

        let mut serial = frugal_tensor::Adagrad::new(0.5);
        serial.seed_state(1, snap);
        let mut row_b = row.clone();
        rule.apply(1, &mut row, &[0.1, 0.1, -0.4, 0.2]);
        serial.update_row(1, &mut row_b, &[0.1, 0.1, -0.4, 0.2]);
        assert_eq!(row, row_b);
    }

    #[test]
    fn adagrad_snapshot_none_for_untouched_key() {
        let rule = AdagradRule::new(0.5, 8, 4);
        assert_eq!(rule.state_snapshot(3), None);
    }

    #[test]
    fn adagrad_concurrent_different_keys() {
        let rule = Arc::new(AdagradRule::new_checked(0.5, 4_000, 4));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let rule = Arc::clone(&rule);
                std::thread::spawn(move || {
                    let mut row = vec![0.0f32; 4];
                    for i in 0..1_000 {
                        rule.apply(t * 1_000 + i, &mut row, &[0.1, 0.1, 0.1, 0.1]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rule.state_rows(), 4_000);
        assert_eq!(rule.race_count(), 0);
    }

    #[test]
    fn adagrad_checked_detects_same_key_race() {
        // Violate the P²F discipline on purpose: two threads apply to the
        // same key concurrently. Checked mode must observe the overlap.
        let rule = Arc::new(AdagradRule::new_checked(0.5, 4, 256));
        let start = Arc::new(std::sync::Barrier::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (rule, start) = (Arc::clone(&rule), Arc::clone(&start));
                std::thread::spawn(move || {
                    start.wait();
                    let mut row = vec![0.0f32; 256];
                    let grad = vec![0.01f32; 256];
                    let mut i = 0u64;
                    while rule.race_count() == 0 && i < 2_000_000 {
                        rule.apply(1, &mut row, &grad);
                        i += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(rule.race_count() > 0, "checked mode missed the race");
    }

    #[test]
    #[should_panic(expected = "learning rate must be > 0")]
    fn rejects_nan_lr() {
        let _ = SgdRule::new(f32::NAN);
    }
}
