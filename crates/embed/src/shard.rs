//! Key sharding across GPUs.
//!
//! Frugal "pertains to a sharding policy in essence" (paper §5): every key
//! has exactly one owner GPU whose cache may hold it and whose updates are
//! authoritative. The interleaved `key % n` mapping spreads the Zipf-ranked
//! hot keys evenly across GPUs, as HugeCTR's sharded cache does.

use frugal_data::Key;

/// Maps keys to their owning GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sharding {
    n_gpus: usize,
}

impl Sharding {
    /// Creates a sharding over `n_gpus` devices.
    ///
    /// # Panics
    ///
    /// Panics if `n_gpus == 0`.
    pub fn new(n_gpus: usize) -> Self {
        assert!(n_gpus > 0, "need at least one GPU");
        Sharding { n_gpus }
    }

    /// Number of GPUs.
    pub fn n_gpus(&self) -> usize {
        self.n_gpus
    }

    /// The GPU that owns `key`.
    pub fn owner(&self, key: Key) -> usize {
        (key % self.n_gpus as u64) as usize
    }

    /// True if `gpu` owns `key`.
    pub fn is_local(&self, key: Key, gpu: usize) -> bool {
        self.owner(key) == gpu
    }

    /// Per-GPU cache capacity for a total cache `ratio` over `n_keys`
    /// (paper: "the cache size (ratio) is set to 5% of the total
    /// parameters").
    pub fn cache_capacity(&self, n_keys: u64, ratio: f64) -> usize {
        ((n_keys as f64 * ratio) / self.n_gpus as f64).ceil() as usize
    }

    /// StaticHot admission threshold matching [`Self::cache_capacity`]:
    /// the globally hottest `n_keys * ratio` keys (ranks `0..threshold`)
    /// are cacheable; interleaved sharding gives each GPU an equal share.
    pub fn hot_threshold(&self, n_keys: u64, ratio: f64) -> u64 {
        (n_keys as f64 * ratio).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_is_stable_and_balanced() {
        let s = Sharding::new(4);
        for k in 0..100u64 {
            assert_eq!(s.owner(k), (k % 4) as usize);
            assert!(s.is_local(k, s.owner(k)));
        }
        assert_eq!(s.n_gpus(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one GPU")]
    fn rejects_zero_gpus() {
        Sharding::new(0);
    }

    #[test]
    fn capacity_math() {
        let s = Sharding::new(8);
        // 5% of 10M keys over 8 GPUs.
        assert_eq!(s.cache_capacity(10_000_000, 0.05), 62_500);
        assert_eq!(s.hot_threshold(10_000_000, 0.05), 500_000);
    }

    #[test]
    fn hot_keys_spread_across_gpus() {
        let s = Sharding::new(4);
        let threshold = s.hot_threshold(1_000, 0.1); // hottest 100 keys
        let mut per_gpu = [0usize; 4];
        for k in 0..threshold {
            per_gpu[s.owner(k)] += 1;
        }
        for &c in &per_gpu {
            assert_eq!(c, 25);
        }
    }
}
