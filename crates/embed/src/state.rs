//! Dense, preallocated, lock-free optimizer state.
//!
//! Stateful update rules (Adagrad here; Adam would fit the same shape) keep
//! one state row per embedding row. The original implementation held them
//! in sharded `Mutex<HashMap<Key, Vec<f32>>>`, paying a lock acquisition, a
//! hash lookup, and a possible allocation on every flushed row. But the
//! state table has exactly the same access discipline as [`HostStore`]: the
//! P²F algorithm serializes flushes per key (`take_writes` claims a key's
//! pending writes exclusively, and no new flush of that key can start until
//! the claim is applied and the in-flight marker cleared), so no two
//! threads ever touch the same state row concurrently. That makes a flat
//! `UnsafeCell` table sound for the flush-apply path — no locks, no
//! hashing, one predictable offset per key.
//!
//! As with the host store the guarantee comes from an algorithm, not the
//! type system, so the table mirrors [`HostStore`]'s **checked mode**: a
//! per-row seqlock version counter that counts overlapping updates. The
//! engine's consistency tests run checked and assert zero races; the
//! race-injection tests here hammer one row from two threads and assert
//! the counter trips.
//!
//! [`HostStore`]: crate::HostStore

use frugal_data::Key;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Flat per-key optimizer state, `n_keys` rows of `dim` f32, zeros at start.
///
/// # Examples
///
/// ```
/// use frugal_embed::DenseStateTable;
///
/// let table = DenseStateTable::new(100, 4);
/// assert_eq!(table.snapshot(7), None); // untouched rows have no state
/// table.update(7, |acc| acc[0] = 1.5);
/// assert_eq!(table.snapshot(7), Some(vec![1.5, 0.0, 0.0, 0.0]));
/// ```
pub struct DenseStateTable {
    data: Box<[UnsafeCell<f32>]>,
    dim: usize,
    n_keys: u64,
    /// Whether each row has ever been updated. Lets [`Self::snapshot`]
    /// distinguish "no state yet" from "state happens to be zero",
    /// preserving the sparse-map semantics engines rely on when seeding
    /// cache-side optimizers.
    touched: Box<[AtomicU8]>,
    /// Per-row seqlock versions (checked mode only). Odd = update in flight.
    versions: Option<Box<[AtomicU64]>>,
    races: AtomicUsize,
}

// SAFETY: concurrent access discipline is provided by the P²F algorithm —
// a key's state row is only ever touched by the flusher that exclusively
// claimed that key's pending writes, and claims on one key never overlap.
// Checked mode exists to *detect* protocol violations, not prevent them.
unsafe impl Sync for DenseStateTable {}
unsafe impl Send for DenseStateTable {}

impl std::fmt::Debug for DenseStateTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseStateTable")
            .field("n_keys", &self.n_keys)
            .field("dim", &self.dim)
            .field("checked", &self.versions.is_some())
            .field("races", &self.race_count())
            .finish()
    }
}

impl DenseStateTable {
    /// Creates a zeroed table of `n_keys` rows of `dim` f32 each. No race
    /// checking (production mode).
    ///
    /// # Panics
    ///
    /// Panics if `n_keys == 0` or `dim == 0`.
    pub fn new(n_keys: u64, dim: usize) -> Self {
        Self::build(n_keys, dim, false)
    }

    /// Like [`DenseStateTable::new`] but with per-row race detection.
    pub fn new_checked(n_keys: u64, dim: usize) -> Self {
        Self::build(n_keys, dim, true)
    }

    fn build(n_keys: u64, dim: usize, checked: bool) -> Self {
        assert!(n_keys > 0, "state table needs at least one key");
        assert!(dim > 0, "state dimension must be positive");
        let len = n_keys as usize * dim;
        let mut data = Vec::with_capacity(len);
        data.resize_with(len, || UnsafeCell::new(0.0f32));
        let mut touched = Vec::with_capacity(n_keys as usize);
        touched.resize_with(n_keys as usize, || AtomicU8::new(0));
        let versions = checked.then(|| {
            let mut v = Vec::with_capacity(n_keys as usize);
            v.resize_with(n_keys as usize, || AtomicU64::new(0));
            v.into_boxed_slice()
        });
        DenseStateTable {
            data: data.into_boxed_slice(),
            dim,
            n_keys,
            touched: touched.into_boxed_slice(),
            versions,
            races: AtomicUsize::new(0),
        }
    }

    /// State dimension (equals the embedding dimension for Adagrad).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows in the table.
    pub fn n_keys(&self) -> u64 {
        self.n_keys
    }

    /// Number of rows that have been updated at least once.
    pub fn rows(&self) -> usize {
        self.touched
            .iter()
            .filter(|t| t.load(Ordering::Relaxed) != 0)
            .count()
    }

    /// Number of overlapping-update races detected so far (checked mode
    /// only; always 0 otherwise).
    pub fn race_count(&self) -> usize {
        self.races.load(Ordering::Acquire)
    }

    fn row_ptr(&self, key: Key) -> *mut f32 {
        assert!(key < self.n_keys, "key {key} out of range {}", self.n_keys);
        self.data[key as usize * self.dim].get()
    }

    /// Applies `f` to the state row of `key` in place and marks it touched.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn update(&self, key: Key, f: impl FnOnce(&mut [f32])) {
        let ptr = self.row_ptr(key);
        self.touched[key as usize].store(1, Ordering::Release);
        match &self.versions {
            None => {
                // SAFETY: P²F guarantees no concurrent access to this row.
                let row = unsafe { std::slice::from_raw_parts_mut(ptr, self.dim) };
                f(row);
            }
            Some(vers) => {
                let ver = &vers[key as usize];
                let before = ver.fetch_add(1, Ordering::AcqRel);
                if before % 2 == 1 {
                    // Concurrent updater on the same row.
                    self.races.fetch_add(1, Ordering::AcqRel);
                }
                // SAFETY: as above; races are detected, not prevented.
                let row = unsafe { std::slice::from_raw_parts_mut(ptr, self.dim) };
                f(row);
                ver.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// A copy of the state row of `key`, or `None` if it was never updated.
    ///
    /// Races with a concurrent [`Self::update`] of the same row are
    /// detected in checked mode, matching the host store's read path.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn snapshot(&self, key: Key) -> Option<Vec<f32>> {
        let ptr = self.row_ptr(key);
        if self.touched[key as usize].load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut out = vec![0.0; self.dim];
        match &self.versions {
            None => {
                // SAFETY: P²F guarantees no concurrent updater to this row.
                unsafe { std::ptr::copy_nonoverlapping(ptr, out.as_mut_ptr(), self.dim) };
            }
            Some(vers) => {
                let ver = &vers[key as usize];
                let v1 = ver.load(Ordering::Acquire);
                // SAFETY: the copy may race; we detect it below and the
                // data is plain f32 (no invalid bit patterns exist).
                unsafe { std::ptr::copy_nonoverlapping(ptr, out.as_mut_ptr(), self.dim) };
                let v2 = ver.load(Ordering::Acquire);
                if v1 % 2 == 1 || v1 != v2 {
                    self.races.fetch_add(1, Ordering::AcqRel);
                }
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn untouched_rows_have_no_snapshot() {
        let t = DenseStateTable::new(10, 4);
        assert_eq!(t.snapshot(0), None);
        assert_eq!(t.rows(), 0);
    }

    #[test]
    fn update_then_snapshot_roundtrips() {
        let t = DenseStateTable::new(10, 3);
        t.update(4, |acc| {
            acc[0] = 1.0;
            acc[2] = 2.0;
        });
        assert_eq!(t.snapshot(4), Some(vec![1.0, 0.0, 2.0]));
        assert_eq!(t.rows(), 1);
    }

    #[test]
    fn touched_zero_row_still_snapshots() {
        // A row updated to all-zeros must report Some(zeros), not None —
        // the map-based implementation distinguished these too.
        let t = DenseStateTable::new(4, 2);
        t.update(1, |_| {});
        assert_eq!(t.snapshot(1), Some(vec![0.0, 0.0]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_rejects_bad_key() {
        let t = DenseStateTable::new(4, 2);
        t.update(4, |_| {});
    }

    #[test]
    fn unchecked_mode_reports_zero_races() {
        let t = DenseStateTable::new(4, 2);
        t.update(0, |acc| acc[0] = 1.0);
        assert_eq!(t.race_count(), 0);
    }

    #[test]
    fn checked_mode_detects_injected_race() {
        // Two threads hammer the same row; the seqlock must observe an
        // overlap (bounded so a miss fails rather than hangs).
        let t = Arc::new(DenseStateTable::new_checked(4, 256));
        let start = Arc::new(std::sync::Barrier::new(2));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (t, start) = (Arc::clone(&t), Arc::clone(&start));
                std::thread::spawn(move || {
                    start.wait();
                    let mut i = 0u64;
                    while t.race_count() == 0 && i < 3_000_000 {
                        t.update(1, |acc| acc[0] += 1.0);
                        i += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(t.race_count() > 0, "seqlock failed to observe the race");
    }

    #[test]
    fn checked_mode_quiet_when_disjoint() {
        let t = Arc::new(DenseStateTable::new_checked(64, 8));
        let handles: Vec<_> = (0..4u64)
            .map(|th| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        let key = th * 16 + (i % 16);
                        t.update(key, |acc| acc[0] += 1.0);
                        let _ = t.snapshot(key);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.race_count(), 0);
    }

    #[test]
    fn debug_shows_mode() {
        let t = DenseStateTable::new_checked(4, 2);
        let d = format!("{t:?}");
        assert!(d.contains("checked: true"));
    }
}
