//! The host-memory parameter store.
//!
//! This is the "complete set of parameters in host memory" that Frugal's
//! controller manages and exposes to all training processes through shared
//! memory (paper §3.2). Commodity GPUs read it directly with UVA load/store
//! instructions — i.e., concurrently with the flushing threads writing it.
//! The P²F algorithm guarantees those accesses never race on the same row
//! (that is precisely its synchronous-consistency invariant), which is what
//! makes the unsafe shared access here sound.
//!
//! Because that guarantee comes from an algorithm, not the type system, the
//! store offers a **checked mode**: a per-row seqlock version counter that
//! detects any read racing a write of the same row. The consistency tests
//! run engines in checked mode and assert zero races; the failure-injection
//! tests break the P²F wait condition on purpose and assert the counter
//! trips.

use frugal_data::Key;
use frugal_telemetry::{Counter, Telemetry};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic initial value of element `d` of embedding row `key`,
/// uniform in `[-0.05, 0.05]`. Every engine (and the serial reference)
/// initializes rows identically without coordination.
pub fn initial_value(seed: u64, key: Key, d: usize) -> f32 {
    let h = mix(mix(seed, key), d as u64);
    ((h as f64 / u64::MAX as f64) as f32 - 0.5) * 0.1
}

/// The complete parameter set in host memory.
///
/// # Examples
///
/// ```
/// use frugal_embed::HostStore;
///
/// let store = HostStore::new(1_000, 8, 42);
/// let mut row = vec![0.0; 8];
/// store.read_row(3, &mut row);
/// assert!(row.iter().all(|v| v.abs() <= 0.05));
/// ```
pub struct HostStore {
    data: Box<[UnsafeCell<f32>]>,
    dim: usize,
    n_keys: u64,
    /// Per-row seqlock versions (checked mode only). Odd = write in flight.
    versions: Option<Box<[AtomicU64]>>,
    races: AtomicUsize,
    seed: u64,
    /// Telemetry counters `store.row_reads` / `store.row_writes`
    /// (None unless [`HostStore::attach_telemetry`] was called).
    row_reads: Option<Arc<Counter>>,
    row_writes: Option<Arc<Counter>>,
}

// SAFETY: concurrent access discipline is provided by the P²F algorithm
// (no two threads touch the same row at the same time unless the caller
// violates the protocol); checked mode exists to *detect* violations.
unsafe impl Sync for HostStore {}
unsafe impl Send for HostStore {}

impl std::fmt::Debug for HostStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostStore")
            .field("n_keys", &self.n_keys)
            .field("dim", &self.dim)
            .field("checked", &self.versions.is_some())
            .field("races", &self.race_count())
            .finish()
    }
}

impl HostStore {
    /// Creates a store of `n_keys` rows of `dim` f32 each, deterministically
    /// initialized from `seed`. No race checking (production mode).
    ///
    /// # Panics
    ///
    /// Panics if `n_keys == 0` or `dim == 0`.
    pub fn new(n_keys: u64, dim: usize, seed: u64) -> Self {
        Self::build(n_keys, dim, seed, false)
    }

    /// Like [`HostStore::new`] but with per-row race detection enabled.
    pub fn new_checked(n_keys: u64, dim: usize, seed: u64) -> Self {
        Self::build(n_keys, dim, seed, true)
    }

    fn build(n_keys: u64, dim: usize, seed: u64, checked: bool) -> Self {
        assert!(n_keys > 0, "store needs at least one key");
        assert!(dim > 0, "embedding dimension must be positive");
        let len = n_keys as usize * dim;
        let mut data = Vec::with_capacity(len);
        for key in 0..n_keys {
            for d in 0..dim {
                data.push(UnsafeCell::new(initial_value(seed, key, d)));
            }
        }
        let versions = checked.then(|| {
            let mut v = Vec::with_capacity(n_keys as usize);
            v.resize_with(n_keys as usize, || AtomicU64::new(0));
            v.into_boxed_slice()
        });
        HostStore {
            data: data.into_boxed_slice(),
            dim,
            n_keys,
            versions,
            races: AtomicUsize::new(0),
            seed,
            row_reads: None,
            row_writes: None,
        }
    }

    /// Attaches row-traffic counters (`store.row_reads`,
    /// `store.row_writes`) resolved on `telemetry`. Must be called before
    /// the store is shared across threads; a disabled telemetry handle
    /// leaves the counters off (one branch per row access).
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        if let Some(reg) = telemetry.registry() {
            self.row_reads = Some(reg.counter("store.row_reads"));
            self.row_writes = Some(reg.counter("store.row_writes"));
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn n_keys(&self) -> u64 {
        self.n_keys
    }

    /// The initialization seed (lets caches materialize identical rows).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of read/write races detected so far (checked mode only;
    /// always 0 otherwise).
    pub fn race_count(&self) -> usize {
        self.races.load(Ordering::Acquire)
    }

    fn row_ptr(&self, key: Key) -> *mut f32 {
        assert!(key < self.n_keys, "key {key} out of range {}", self.n_keys);
        self.data[key as usize * self.dim].get()
    }

    /// Copies row `key` into `out` (the UVA zero-copy read path).
    ///
    /// In checked mode, a read that races a concurrent [`Self::write_row`]
    /// of the same row increments the race counter.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range or `out.len() != dim`.
    pub fn read_row(&self, key: Key, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "output length != dim");
        let ptr = self.row_ptr(key);
        if let Some(c) = &self.row_reads {
            c.incr();
        }
        match &self.versions {
            None => {
                // SAFETY: P²F guarantees no concurrent writer to this row.
                unsafe { std::ptr::copy_nonoverlapping(ptr, out.as_mut_ptr(), self.dim) };
            }
            Some(vers) => {
                let ver = &vers[key as usize];
                let v1 = ver.load(Ordering::Acquire);
                // SAFETY: the copy itself may race; we detect it below and
                // the data is plain f32 (no invalid bit patterns exist).
                unsafe { std::ptr::copy_nonoverlapping(ptr, out.as_mut_ptr(), self.dim) };
                let v2 = ver.load(Ordering::Acquire);
                if v1 % 2 == 1 || v1 != v2 {
                    self.races.fetch_add(1, Ordering::AcqRel);
                }
            }
        }
    }

    /// Applies `f` to row `key` in place (the flush-apply path).
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn write_row(&self, key: Key, f: impl FnOnce(&mut [f32])) {
        let ptr = self.row_ptr(key);
        if let Some(c) = &self.row_writes {
            c.incr();
        }
        match &self.versions {
            None => {
                // SAFETY: P²F guarantees this row has no concurrent readers
                // or writers while an update is pending on it.
                let row = unsafe { std::slice::from_raw_parts_mut(ptr, self.dim) };
                f(row);
            }
            Some(vers) => {
                let ver = &vers[key as usize];
                let before = ver.fetch_add(1, Ordering::AcqRel);
                if before % 2 == 1 {
                    // Concurrent writer on the same row.
                    self.races.fetch_add(1, Ordering::AcqRel);
                }
                // SAFETY: as above; races are detected, not prevented.
                let row = unsafe { std::slice::from_raw_parts_mut(ptr, self.dim) };
                f(row);
                ver.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Reads a whole row into a fresh vector (convenience for tests).
    pub fn row_vec(&self, key: Key) -> Vec<f32> {
        let mut out = vec![0.0; self.dim];
        self.read_row(key, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn deterministic_initialization() {
        let a = HostStore::new(100, 4, 7);
        let b = HostStore::new(100, 4, 7);
        let c = HostStore::new(100, 4, 8);
        assert_eq!(a.row_vec(42), b.row_vec(42));
        assert_ne!(a.row_vec(42), c.row_vec(42));
        assert_eq!(a.seed(), 7);
    }

    #[test]
    fn initial_values_bounded() {
        let s = HostStore::new(50, 16, 3);
        for k in 0..50 {
            for v in s.row_vec(k) {
                assert!(v.abs() <= 0.05, "init {v} out of range");
            }
        }
    }

    #[test]
    fn write_then_read_roundtrips() {
        let s = HostStore::new(10, 4, 0);
        s.write_row(3, |row| {
            for (i, v) in row.iter_mut().enumerate() {
                *v = i as f32;
            }
        });
        assert_eq!(s.row_vec(3), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_rejects_bad_key() {
        let s = HostStore::new(10, 4, 0);
        let mut out = vec![0.0; 4];
        s.read_row(10, &mut out);
    }

    #[test]
    #[should_panic(expected = "output length != dim")]
    fn read_rejects_bad_dim() {
        let s = HostStore::new(10, 4, 0);
        let mut out = vec![0.0; 3];
        s.read_row(0, &mut out);
    }

    #[test]
    fn unchecked_mode_reports_zero_races() {
        let s = HostStore::new(10, 4, 0);
        s.write_row(0, |r| r[0] = 1.0);
        assert_eq!(s.race_count(), 0);
    }

    #[test]
    fn checked_mode_detects_injected_race() {
        // Hammer one row from a writer and a reader simultaneously; the
        // seqlock must observe at least one overlap.
        let s = Arc::new(HostStore::new_checked(4, 256, 0));
        let start = Arc::new(std::sync::Barrier::new(2));
        let w = {
            let (s, start) = (Arc::clone(&s), Arc::clone(&start));
            std::thread::spawn(move || {
                start.wait();
                let mut i = 0u64;
                // Keep writing until a race is observed (bounded).
                while s.race_count() == 0 && i < 3_000_000 {
                    s.write_row(1, |row| row[0] = i as f32);
                    i += 1;
                }
            })
        };
        let r = {
            let (s, start) = (Arc::clone(&s), Arc::clone(&start));
            std::thread::spawn(move || {
                start.wait();
                let mut buf = vec![0.0; 256];
                let mut i = 0u64;
                while s.race_count() == 0 && i < 3_000_000 {
                    s.read_row(1, &mut buf);
                    i += 1;
                }
            })
        };
        w.join().unwrap();
        r.join().unwrap();
        assert!(s.race_count() > 0, "seqlock failed to observe the race");
    }

    #[test]
    fn checked_mode_quiet_when_disjoint() {
        let s = Arc::new(HostStore::new_checked(64, 8, 0));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut buf = vec![0.0; 8];
                    for i in 0..10_000u64 {
                        let key = t * 16 + (i % 16);
                        s.write_row(key, |row| row[0] += 1.0);
                        s.read_row(key, &mut buf);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.race_count(), 0);
    }

    #[test]
    fn debug_shows_mode() {
        let s = HostStore::new_checked(4, 2, 0);
        let d = format!("{s:?}");
        assert!(d.contains("checked: true"));
    }
}
