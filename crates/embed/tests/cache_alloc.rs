//! The steady-state cache fill path must be allocation-free: once a
//! `GpuCache` has reached capacity and its policy's side structures have
//! seen the working set, sustained miss→fill→evict churn may not allocate.
//! The engine runs this loop on every trainer every step, so a hidden
//! `Vec`/`HashMap` growth here is a per-step tax (and the exact regression
//! the flat-arena rewrite removed: the old `insert(key, slot.to_vec())`
//! call allocated one `Vec` per fill).
//!
//! Own test binary so the `#[global_allocator]` swap cannot perturb other
//! suites.

use frugal_embed::{CachePolicy, GpuCache, InsertOutcome};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A pass-through allocator that counts allocations.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const DIM: usize = 16;
const CAP: usize = 64;
const UNIVERSE: u64 = 256;

/// One churn pass: a strided walk over a fixed key universe 4× the cache
/// capacity — every round misses, fills, and (at capacity) evicts.
/// Returns the number of accepted fills so the work cannot be optimized
/// away.
fn churn(cache: &mut GpuCache, row: &[f32], rounds: u64) -> u64 {
    let mut filled = 0u64;
    for r in 0..rounds {
        for i in 0..UNIVERSE {
            let key = (i * 7 + r) % UNIVERSE;
            if cache.get(&key).is_some() {
                continue;
            }
            if cache.admits(key)
                && !matches!(cache.insert_from_slice(key, row), InsertOutcome::Rejected)
            {
                filled += 1;
            }
        }
    }
    filled
}

#[test]
fn steady_state_fill_loop_never_allocates() {
    let row = vec![1.0f32; DIM];
    for policy in [
        CachePolicy::StaticHot,
        CachePolicy::Lru,
        CachePolicy::FrequencyAware,
    ] {
        let mut cache = GpuCache::new(CAP, DIM, policy);
        cache.set_hot_threshold(CAP as u64);
        // Warm-up: reach capacity and let the policy's side structures
        // (recency list, frequency table) grow to their working-set
        // footprint. Enough rounds that the frequency policy also crosses
        // several decay boundaries before measurement starts.
        churn(&mut cache, &row, 8);
        // Footprint spike: walk a batch of cold keys so the frequency
        // table resizes to its terminal capacity *now*. A table the
        // universe fits snugly (above half its usable capacity) defers
        // exactly one tombstone-triggered resize to whenever erase/insert
        // churn next crosses its load threshold — a moment that depends on
        // the per-process hash seed and would otherwise land in the
        // measured region on some runs.
        for k in 0..10 * UNIVERSE {
            let _ = cache.get(&(UNIVERSE + k));
        }
        churn(&mut cache, &row, 4);
        let before = ALLOCS.load(Ordering::Relaxed);
        let filled = churn(&mut cache, &row, 16);
        let after = ALLOCS.load(Ordering::Relaxed);
        std::hint::black_box(filled);
        assert_eq!(
            after - before,
            0,
            "{policy:?} allocated during steady-state churn ({filled} fills)"
        );
    }
}

#[test]
fn oracle_fill_loop_never_allocates_once_plans_are_fed() {
    // The oracle allocates while *ingesting* lookahead feeds
    // (prepare_step); the fill/evict path itself must still be free. Feed
    // the whole future up front, then measure the per-step loop.
    let row = vec![1.0f32; DIM];
    let steps = 64u64;
    let mut cache = GpuCache::new(CAP, DIM, CachePolicy::OracleBelady);
    let feeds: Vec<Vec<u64>> = (0..steps)
        .map(|s| (0..UNIVERSE).filter(|k| (k + s) % 3 == 0).collect())
        .collect();
    for (s, keys) in feeds.iter().enumerate() {
        cache.prepare_step(s as u64, keys);
    }
    // Warm-up steps fill the arena to capacity and run enough evictions
    // that the key→slot map's deferred tombstone resize (see the churn
    // test) happens before measurement.
    let warm = 8u64;
    for s in 0..warm {
        cache.begin_step(s);
        churn_step(&mut cache, &feeds[s as usize], &row);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    let mut filled = 0u64;
    for s in warm..steps {
        cache.begin_step(s);
        filled += churn_step(&mut cache, &feeds[s as usize], &row);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    std::hint::black_box(filled);
    assert_eq!(
        after - before,
        0,
        "oracle allocated during fed steady-state churn ({filled} fills)"
    );
}

fn churn_step(cache: &mut GpuCache, keys: &[u64], row: &[f32]) -> u64 {
    let mut filled = 0u64;
    for &key in keys {
        if cache.get(&key).is_some() {
            continue;
        }
        if !matches!(cache.insert_from_slice(key, row), InsertOutcome::Rejected) {
            filled += 1;
        }
    }
    filled
}
