//! Model-agreement property tests for the pluggable cache policies.
//!
//! Each policy is checked against an independently-coded naive reference
//! that replays the engine's access discipline (lookup, then fill on
//! miss) over arbitrary key traces:
//!
//! * StaticHot / LRU / FrequencyAware — exact agreement on every hit/miss
//!   decision, final membership, and the hit/miss counters, plus the
//!   capacity invariant `len ≤ capacity` at every step.
//! * OracleBelady — exact hit-count agreement with a from-scratch
//!   Belady-MIN simulator (with admission bypass) that recomputes next
//!   uses by scanning the raw trace, and the optimality property: on any
//!   fully-known trace the oracle's hits are an upper bound on what LRU
//!   and FrequencyAware achieve.
//!
//! The reference models here are deliberately naive (`Vec` scans,
//! recompute-from-trace next uses) so they share no code — and no bugs —
//! with the intrusive-list/queue implementations in `policy.rs`.

use frugal_embed::{CachePolicy, GpuCache};
use proptest::prelude::*;
use std::collections::HashMap;

type Key = u64;

const DIM: usize = 4;

fn row_for(key: Key) -> [f32; DIM] {
    [key as f32; DIM]
}

/// Drive one engine-style access: lookup, then fill on miss. Returns
/// whether the lookup hit.
fn access(cache: &mut GpuCache, key: Key) -> bool {
    if cache.get(&key).is_some() {
        return true;
    }
    if cache.admits(key) {
        let _ = cache.insert_from_slice(key, &row_for(key));
    }
    false
}

// ---------------------------------------------------------------------------
// StaticHot reference: admit below threshold, never evict.
// ---------------------------------------------------------------------------

fn check_static_hot(cap: usize, threshold: u64, trace: &[Key]) -> Result<(), String> {
    let mut cache = GpuCache::new(cap, DIM, CachePolicy::StaticHot);
    cache.set_hot_threshold(threshold);
    let mut resident: Vec<Key> = Vec::new();
    for (i, &key) in trace.iter().enumerate() {
        let got = access(&mut cache, key);
        let want = resident.contains(&key);
        if !want && key < threshold && resident.len() < cap {
            resident.push(key);
        }
        if got != want {
            return Err(format!("op {i}: key {key} hit={got}, model says {want}"));
        }
        if cache.len() > cap {
            return Err(format!("op {i}: len {} > capacity {cap}", cache.len()));
        }
    }
    verify_membership(&cache, &resident, trace)
}

// ---------------------------------------------------------------------------
// LRU reference: Vec ordered front = most recent.
// ---------------------------------------------------------------------------

fn check_lru(cap: usize, trace: &[Key]) -> Result<(), String> {
    let mut cache = GpuCache::new(cap, DIM, CachePolicy::Lru);
    let mut order: Vec<Key> = Vec::new(); // front = MRU
    for (i, &key) in trace.iter().enumerate() {
        let got = access(&mut cache, key);
        let want = order.contains(&key);
        if want {
            order.retain(|&k| k != key);
            order.insert(0, key);
        } else {
            if order.len() == cap {
                order.pop();
            }
            order.insert(0, key);
        }
        if got != want {
            return Err(format!("op {i}: key {key} hit={got}, model says {want}"));
        }
        if cache.len() > cap {
            return Err(format!("op {i}: len {} > capacity {cap}", cache.len()));
        }
    }
    verify_membership(&cache, &order, trace)
}

// ---------------------------------------------------------------------------
// FrequencyAware reference: LRU order + decayed counters, admission only
// when the incoming frequency strictly beats the LRU victim's.
// ---------------------------------------------------------------------------

struct FreqModel {
    cap: usize,
    order: Vec<Key>, // front = MRU
    freq: HashMap<Key, u32>,
    accesses: u64,
    decay_every: u64,
}

impl FreqModel {
    fn new(cap: usize) -> Self {
        FreqModel {
            cap,
            order: Vec::new(),
            freq: HashMap::new(),
            accesses: 0,
            // Must mirror FrequencyAwarePolicy::new.
            decay_every: 10 * cap.max(8) as u64,
        }
    }

    fn bump(&mut self, key: Key) {
        let c = self.freq.entry(key).or_insert(0);
        *c = c.saturating_add(1);
        self.accesses += 1;
        if self.accesses % self.decay_every == 0 {
            self.freq.retain(|_, c| {
                *c >>= 1;
                *c > 0
            });
        }
    }

    fn f(&self, key: Key) -> u32 {
        self.freq.get(&key).copied().unwrap_or(0)
    }

    /// Lookup + fill-on-miss, mirroring the engine discipline.
    fn access(&mut self, key: Key) -> bool {
        let hit = self.order.contains(&key);
        self.bump(key);
        if hit {
            self.order.retain(|&k| k != key);
            self.order.insert(0, key);
            return true;
        }
        if self.order.len() < self.cap {
            self.order.insert(0, key);
        } else {
            let victim = *self.order.last().expect("full cache has a tail");
            if self.f(key) > self.f(victim) {
                self.order.pop();
                self.order.insert(0, key);
            }
        }
        false
    }
}

fn check_freq(cap: usize, trace: &[Key]) -> Result<(), String> {
    let mut cache = GpuCache::new(cap, DIM, CachePolicy::FrequencyAware);
    let mut model = FreqModel::new(cap);
    for (i, &key) in trace.iter().enumerate() {
        let got = access(&mut cache, key);
        let want = model.access(key);
        if got != want {
            return Err(format!("op {i}: key {key} hit={got}, model says {want}"));
        }
        if cache.len() > cap {
            return Err(format!("op {i}: len {} > capacity {cap}", cache.len()));
        }
    }
    verify_membership(&cache, &model.order, trace)
}

// ---------------------------------------------------------------------------
// Belady-MIN reference: recompute next uses by scanning the raw trace.
// ---------------------------------------------------------------------------

/// From-scratch OPT-with-bypass simulator: on a miss with the cache full,
/// evict the farthest-next-use member of `residents ∪ {incoming}` — which
/// bypasses the insert when the incoming key itself is farthest. Next uses
/// are recomputed from the trace at every decision; no queues, no clock.
fn opt_hits(cap: usize, trace: &[Key]) -> u64 {
    let next_use = |from: usize, key: Key| -> usize {
        trace[from..]
            .iter()
            .position(|&t| t == key)
            .map(|d| from + d)
            .unwrap_or(usize::MAX)
    };
    let mut resident: Vec<Key> = Vec::new();
    let mut hits = 0u64;
    for (s, &key) in trace.iter().enumerate() {
        if resident.contains(&key) {
            hits += 1;
            continue;
        }
        if resident.len() < cap {
            resident.push(key);
            continue;
        }
        if cap == 0 {
            continue;
        }
        let incoming = next_use(s + 1, key);
        let (slot, farthest) = resident
            .iter()
            .enumerate()
            .map(|(i, &r)| (i, next_use(s + 1, r)))
            .max_by_key(|&(_, d)| d)
            .expect("nonempty residents");
        if incoming < farthest {
            resident[slot] = key;
        }
    }
    hits
}

/// Replay `trace` (one key per step) through a cache whose oracle was fed
/// the whole trace up front, the way the engine's lookahead registration
/// feeds it. Returns the hit count.
fn oracle_hits(cap: usize, trace: &[Key]) -> u64 {
    let mut cache = GpuCache::new(cap, DIM, CachePolicy::OracleBelady);
    for (s, &key) in trace.iter().enumerate() {
        cache.prepare_step(s as u64, &[key]);
    }
    for (s, &key) in trace.iter().enumerate() {
        cache.begin_step(s as u64);
        access(&mut cache, key);
    }
    cache.stats().0
}

fn online_hits(policy: CachePolicy, cap: usize, trace: &[Key]) -> u64 {
    let mut cache = GpuCache::new(cap, DIM, policy);
    for &key in trace {
        access(&mut cache, key);
    }
    cache.stats().0
}

// ---------------------------------------------------------------------------
// Shared final-state check: membership parity and row integrity.
// ---------------------------------------------------------------------------

fn verify_membership(cache: &GpuCache, resident: &[Key], trace: &[Key]) -> Result<(), String> {
    for &key in trace {
        let want = resident.contains(&key);
        if cache.contains(&key) != want {
            return Err(format!(
                "final membership of key {key}: cache {}, model {want}",
                cache.contains(&key)
            ));
        }
    }
    if cache.len() != resident.len() {
        return Err(format!(
            "final len {} != model len {}",
            cache.len(),
            resident.len()
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn static_hot_matches_model(
        cap in 1usize..6,
        threshold in 0u64..12,
        trace in proptest::collection::vec(0u64..12, 0..200),
    ) {
        if let Err(e) = check_static_hot(cap, threshold, &trace) {
            prop_assert!(false, "{e}");
        }
    }

    #[test]
    fn lru_matches_model(
        cap in 1usize..6,
        trace in proptest::collection::vec(0u64..12, 0..200),
    ) {
        if let Err(e) = check_lru(cap, &trace) {
            prop_assert!(false, "{e}");
        }
    }

    #[test]
    fn frequency_aware_matches_model(
        cap in 1usize..6,
        trace in proptest::collection::vec(0u64..12, 0..200),
    ) {
        if let Err(e) = check_freq(cap, &trace) {
            prop_assert!(false, "{e}");
        }
    }

    #[test]
    fn oracle_matches_belady_min(
        cap in 1usize..6,
        trace in proptest::collection::vec(0u64..10, 0..120),
    ) {
        // Hit-for-hit agreement with the from-scratch OPT simulator. Tie
        // breaks between never-used-again residents may differ, but dead
        // keys can't contribute future hits, so the counts must match.
        let got = oracle_hits(cap, &trace);
        let want = opt_hits(cap, &trace);
        prop_assert_eq!(got, want, "oracle {} vs OPT {} on {:?}", got, want, trace);
    }

    #[test]
    fn oracle_is_an_upper_bound_on_online_policies(
        cap in 1usize..6,
        trace in proptest::collection::vec(0u64..10, 0..120),
    ) {
        // Belady-MIN with bypass is optimal over the whole class of
        // admission/eviction policies, so on a fully-known trace neither
        // online policy may beat it.
        let oracle = oracle_hits(cap, &trace);
        let lru = online_hits(CachePolicy::Lru, cap, &trace);
        let freq = online_hits(CachePolicy::FrequencyAware, cap, &trace);
        prop_assert!(oracle >= lru, "lru {} > oracle {} on {:?}", lru, oracle, trace);
        prop_assert!(oracle >= freq, "freq {} > oracle {} on {:?}", freq, oracle, trace);
    }
}

/// The counters the policies report must match the model-visible
/// hit/miss stream (spot check on a fixed skewed trace).
#[test]
fn stats_count_every_lookup() {
    let trace: Vec<Key> = (0..100).map(|i| (i * i) % 7).collect();
    let mut cache = GpuCache::new(3, DIM, CachePolicy::Lru);
    let mut hits = 0u64;
    for &key in &trace {
        if access(&mut cache, key) {
            hits += 1;
        }
    }
    let (h, m) = cache.stats();
    assert_eq!(h, hits);
    assert_eq!(h + m, trace.len() as u64);
}
