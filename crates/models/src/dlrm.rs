//! DLRM — Facebook's Deep Learning Recommendation Model (paper §4.1).
//!
//! The paper trains DLRM with embedding dimension 32 and a fully connected
//! 512-512-256-1 head. Here the sparse features are mean-pooled into one
//! `dim`-wide vector per sample (the paper's "aggregating them as inputs to
//! DNN") and pushed through a real [`Mlp`] with binary-cross-entropy loss
//! against the trace's synthetic click labels.
//!
//! The MLP is shared across the simulated GPUs; each GPU's dense gradients
//! are stashed during backward and applied once per step in GPU-index order
//! by [`EmbeddingModel::end_step`] — a deterministic stand-in for the dense
//! all-reduce, whose communication cost is modeled via
//! [`EmbeddingModel::dense_param_bytes`].

use frugal_core::{BatchGrads, EmbeddingModel};
use frugal_data::{Key, RecTrace};
use frugal_tensor::{bce_with_logits, LinearGrad, Matrix, Mlp};
use parking_lot::Mutex;

/// DLRM over a recommendation trace.
#[derive(Debug)]
pub struct Dlrm {
    trace: RecTrace,
    mlp: Mutex<Mlp>,
    dense_stash: Mutex<Vec<Option<Vec<LinearGrad>>>>,
    dims: Vec<usize>,
    dense_lr: f32,
    /// When false, skip the real MLP math (gradients become a cheap decay
    /// term) while still reporting full DNN FLOPs to the cost model — used
    /// by large benchmark sweeps where only traffic shape matters.
    compute_dense: bool,
}

impl Dlrm {
    /// Creates a DLRM with the paper's head (`512-512-256-1`) over `trace`.
    pub fn paper(trace: RecTrace, seed: u64) -> Self {
        let dim = trace.spec().embedding_dim as usize;
        Self::new(trace, &[dim, 512, 512, 256, 1], 0.01, seed, true)
    }

    /// Creates a DLRM with explicit MLP widths (`dims[0]` must equal the
    /// trace's embedding dimension, `dims.last()` must be 1).
    ///
    /// # Panics
    ///
    /// Panics if the widths don't satisfy the conditions above.
    pub fn new(
        trace: RecTrace,
        dims: &[usize],
        dense_lr: f32,
        seed: u64,
        compute_dense: bool,
    ) -> Self {
        assert_eq!(
            dims[0],
            trace.spec().embedding_dim as usize,
            "MLP input width must match the embedding dimension"
        );
        assert_eq!(
            *dims.last().expect("non-empty dims"),
            1,
            "CTR head is 1-wide"
        );
        let n = trace.n_gpus();
        Dlrm {
            mlp: Mutex::new(Mlp::new(dims, seed)),
            dense_stash: Mutex::new((0..n).map(|_| None).collect()),
            dims: dims.to_vec(),
            trace,
            dense_lr,
            compute_dense,
        }
    }

    /// Number of MLP layers (Exp #11 deepens this).
    pub fn n_layers(&self) -> usize {
        self.dims.len() - 1
    }

    /// The trace this model trains on.
    pub fn trace(&self) -> &RecTrace {
        &self.trace
    }

    /// Click probabilities for a batch: `rows` holds the embeddings of
    /// `keys` (one group of `n_features` keys per sample), flattened like
    /// [`frugal_core::EmbeddingModel::forward_backward`]'s input.
    ///
    /// # Panics
    ///
    /// Panics if the batch is not a multiple of `n_features`, or if the
    /// model was built with `compute_dense = false`.
    pub fn predict(&self, keys: &[Key], rows: &[f32]) -> Vec<f32> {
        assert!(self.compute_dense, "predict requires real dense math");
        let dim = self.dim();
        assert_eq!(rows.len(), keys.len() * dim, "rows/keys mismatch");
        let nf = self.trace.spec().n_features as usize;
        let b = keys.len() / nf;
        assert_eq!(b * nf, keys.len(), "batch not a multiple of n_features");
        let mut pooled = Matrix::zeros(b, dim);
        for s in 0..b {
            let row = pooled.row_mut(s);
            for f in 0..nf {
                let base = (s * nf + f) * dim;
                for (d, v) in row.iter_mut().enumerate() {
                    *v += rows[base + d];
                }
            }
            for v in row.iter_mut() {
                *v /= nf as f32;
            }
        }
        let mlp = self.mlp.lock();
        let pass = mlp.forward(&pooled);
        pass.output()
            .as_slice()
            .iter()
            .map(|&x| frugal_tensor::sigmoid(x))
            .collect()
    }
}

impl EmbeddingModel for Dlrm {
    fn dim(&self) -> usize {
        self.dims[0]
    }

    fn forward_backward(&self, gpu: usize, step: u64, keys: &[Key], rows: &[f32]) -> BatchGrads {
        let dim = self.dim();
        assert_eq!(rows.len(), keys.len() * dim, "rows/keys mismatch");
        let nf = self.trace.spec().n_features as usize;
        let b = keys.len() / nf;
        assert_eq!(b * nf, keys.len(), "batch not a multiple of n_features");

        if !self.compute_dense {
            // Cheap surrogate: weight-decay-shaped gradients with realistic
            // sparsity/volume; dense math skipped.
            let emb_grads = rows.iter().map(|&v| 0.01 * v).collect();
            return BatchGrads {
                emb_grads,
                loss: 0.0,
            };
        }

        let labels = self.trace.step_batch(step, gpu).labels;
        assert_eq!(labels.len(), b, "trace labels/batch mismatch");

        // Mean-pool each sample's feature embeddings.
        let mut pooled = Matrix::zeros(b, dim);
        for s in 0..b {
            let row = pooled.row_mut(s);
            for f in 0..nf {
                let base = (s * nf + f) * dim;
                for (d, v) in row.iter_mut().enumerate() {
                    *v += rows[base + d];
                }
            }
            for v in row.iter_mut() {
                *v /= nf as f32;
            }
        }

        let mlp = self.mlp.lock();
        let pass = mlp.forward(&pooled);
        let logits: Vec<f32> = pass.output().as_slice().to_vec();
        let (loss, d_logits) = bce_with_logits(&logits, &labels);
        let (dense_grads, d_pooled) = mlp.backward(&pass, &Matrix::from_vec(b, 1, d_logits));
        drop(mlp);
        self.dense_stash.lock()[gpu] = Some(dense_grads);

        // Un-pool: each feature embedding receives d_pooled / n_features.
        let mut emb_grads = vec![0.0f32; rows.len()];
        for s in 0..b {
            let dp = d_pooled.row(s);
            for f in 0..nf {
                let base = (s * nf + f) * dim;
                for (d, &g) in dp.iter().enumerate() {
                    emb_grads[base + d] = g / nf as f32;
                }
            }
        }
        BatchGrads { emb_grads, loss }
    }

    fn end_step(&self, _step: u64) {
        if !self.compute_dense {
            return;
        }
        let mut stash = self.dense_stash.lock();
        let mut mlp = self.mlp.lock();
        // Apply per-GPU dense gradients in GPU index order (the
        // deterministic stand-in for an all-reduce + single update).
        for slot in stash.iter_mut() {
            if let Some(grads) = slot.take() {
                mlp.apply_sgd(&grads, self.dense_lr);
            }
        }
    }

    fn dense_flops_per_sample(&self) -> f64 {
        self.dims
            .windows(2)
            .map(|w| 6.0 * (w[0] * w[1]) as f64)
            .sum()
    }

    fn dense_layers(&self) -> u32 {
        (self.dims.len() - 1) as u32
    }

    fn dense_param_bytes(&self) -> u64 {
        self.dims
            .windows(2)
            .map(|w| (w[0] * w[1] + w[1]) as u64 * 4)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frugal_data::RecDatasetSpec;

    fn small_trace(n_gpus: usize) -> RecTrace {
        let mut spec = RecDatasetSpec::avazu().scaled_to_ids(500);
        spec.embedding_dim = 8;
        RecTrace::new(spec, 16, n_gpus, 7).unwrap()
    }

    #[test]
    fn shapes_and_flops() {
        let m = Dlrm::new(small_trace(1), &[8, 16, 1], 0.01, 1, true);
        assert_eq!(m.dim(), 8);
        assert_eq!(m.n_layers(), 2);
        assert_eq!(m.dense_flops_per_sample(), 6.0 * (8.0 * 16.0 + 16.0));
        assert_eq!(m.dense_param_bytes(), ((8 * 16 + 16) + (16 + 1)) * 4);
        assert_eq!(m.dense_layers(), 2);
    }

    #[test]
    fn forward_backward_produces_aligned_grads() {
        let t = small_trace(1);
        let m = Dlrm::new(t, &[8, 16, 1], 0.01, 1, true);
        let keys = m.trace().step_batch(0, 0).keys;
        let rows = vec![0.01f32; keys.len() * 8];
        let g = m.forward_backward(0, 0, &keys, &rows);
        assert_eq!(g.emb_grads.len(), rows.len());
        assert!(g.loss > 0.0);
        m.end_step(0);
    }

    #[test]
    fn training_reduces_bce() {
        // Full-loop sanity: repeatedly training on the same step's batch
        // must drive the BCE loss down (embeddings + MLP both learn).
        let t = small_trace(1);
        let m = Dlrm::new(t, &[8, 16, 1], 0.05, 3, true);
        let keys = m.trace().step_batch(0, 0).keys;
        let mut rows = vec![0.01f32; keys.len() * 8];
        let first = m.forward_backward(0, 0, &keys, &rows).loss;
        let mut last = first;
        for _ in 0..300 {
            let g = m.forward_backward(0, 0, &keys, &rows);
            last = g.loss;
            for (r, gr) in rows.iter_mut().zip(&g.emb_grads) {
                *r -= 0.5 * gr;
            }
            m.end_step(0);
        }
        assert!(last < first * 0.93, "loss {first} -> {last}");
    }

    #[test]
    fn surrogate_mode_skips_dense() {
        let t = small_trace(1);
        let m = Dlrm::new(t, &[8, 16, 1], 0.01, 1, false);
        let keys = m.trace().step_batch(0, 0).keys;
        let rows = vec![0.5f32; keys.len() * 8];
        let g = m.forward_backward(0, 0, &keys, &rows);
        assert_eq!(g.loss, 0.0);
        assert!((g.emb_grads[0] - 0.005).abs() < 1e-7);
        // Full FLOPs still reported for the cost model.
        assert!(m.dense_flops_per_sample() > 0.0);
    }

    #[test]
    fn predict_outputs_probabilities() {
        let t = small_trace(1);
        let m = Dlrm::new(t, &[8, 16, 1], 0.01, 1, true);
        let keys = m.trace().step_batch(0, 0).keys;
        let rows = vec![0.02f32; keys.len() * 8];
        let probs = m.predict(&keys, &rows);
        assert_eq!(probs.len(), 16);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    #[should_panic(expected = "input width must match")]
    fn rejects_mismatched_input_width() {
        let _ = Dlrm::new(small_trace(1), &[16, 8, 1], 0.01, 1, true);
    }
}
