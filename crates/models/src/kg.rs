//! Knowledge-graph embedding models (paper §4.1 and Exp #11).
//!
//! Four scorers over (head, relation, tail) triples: TransE (the paper's
//! main KG model, dim 400, negative batch 200, margin ranking loss) plus
//! the Exp #11 sensitivity set — DistMult, ComplEx, SimplE.
//!
//! Entity embeddings live in the engines' host store; relation embeddings
//! (a small table — 1.3 k–14.8 k rows) are dense parameters owned by the
//! model, updated once per step in GPU order like DLRM's MLP.
//!
//! Scores follow a *distance* convention (lower = better match), so
//! similarity scorers (DistMult/ComplEx/SimplE) are negated before the
//! margin-ranking loss.

use frugal_core::{BatchGrads, EmbeddingModel};
use frugal_data::{Key, KgTrace};
use frugal_embed::initial_value;
use frugal_tensor::margin_ranking;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Which triple scorer to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KgScorer {
    /// `‖h + r − t‖₁` (Bordes et al.).
    TransE,
    /// `−Σ h∘r∘t` (Yang et al.).
    DistMult,
    /// `−Re⟨h, r, t̄⟩` over complex halves (Trouillon et al.).
    ComplEx,
    /// `−½(⟨h₁, r₁, t₂⟩ + ⟨t₁, r₂, h₂⟩)` over halves (Kazemi & Poole).
    SimplE,
}

impl KgScorer {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            KgScorer::TransE => "TransE",
            KgScorer::DistMult => "DistMult",
            KgScorer::ComplEx => "ComplEx",
            KgScorer::SimplE => "SimplE",
        }
    }

    /// All four scorers, in the order of Fig 18a.
    pub fn all() -> [KgScorer; 4] {
        [
            KgScorer::ComplEx,
            KgScorer::DistMult,
            KgScorer::SimplE,
            KgScorer::TransE,
        ]
    }
}

/// Per-GPU stashed relation gradients: `(relation key, gradient)`.
type RelGrads = Vec<(Key, Vec<f32>)>;

/// A knowledge-graph embedding model over a [`KgTrace`].
#[derive(Debug)]
pub struct KgModel {
    scorer: KgScorer,
    trace: KgTrace,
    dim: usize,
    margin: f32,
    relations: Mutex<Vec<f32>>,
    rel_stash: Mutex<Vec<Option<RelGrads>>>,
    rel_lr: f32,
    compute: bool,
}

impl KgModel {
    /// Creates a model; `compute = false` replaces the scorer math with a
    /// cheap surrogate for large benchmark sweeps (FLOPs still modeled).
    ///
    /// # Panics
    ///
    /// Panics if the scorer needs an even dimension (ComplEx/SimplE) and
    /// the trace's dimension is odd.
    pub fn new(scorer: KgScorer, trace: KgTrace, seed: u64, compute: bool) -> Self {
        let dim = trace.spec().embedding_dim as usize;
        if matches!(scorer, KgScorer::ComplEx | KgScorer::SimplE) {
            assert!(
                dim.is_multiple_of(2),
                "{} needs an even dimension",
                scorer.name()
            );
        }
        let n_rel = trace.spec().n_relations;
        let mut relations = Vec::with_capacity(n_rel as usize * dim);
        for rel in 0..n_rel {
            for d in 0..dim {
                relations.push(initial_value(seed ^ 0x9E37_79B9, rel, d));
            }
        }
        let n_gpus = trace.n_gpus();
        KgModel {
            scorer,
            dim,
            margin: 1.0,
            relations: Mutex::new(relations),
            rel_stash: Mutex::new((0..n_gpus).map(|_| None).collect()),
            rel_lr: 0.05,
            trace,
            compute,
        }
    }

    /// The scorer in use.
    pub fn scorer(&self) -> KgScorer {
        self.scorer
    }

    /// The trace this model trains on.
    pub fn trace(&self) -> &KgTrace {
        &self.trace
    }

    /// Distance score of one triple (lower = better).
    fn score(&self, h: &[f32], r: &[f32], t: &[f32]) -> f32 {
        let d = self.dim;
        let k = d / 2;
        match self.scorer {
            KgScorer::TransE => (0..d).map(|i| (h[i] + r[i] - t[i]).abs()).sum(),
            KgScorer::DistMult => -(0..d).map(|i| h[i] * r[i] * t[i]).sum::<f32>(),
            KgScorer::ComplEx => {
                let mut s = 0.0;
                for i in 0..k {
                    let (hr, hi) = (h[i], h[k + i]);
                    let (rr, ri) = (r[i], r[k + i]);
                    let (tr, ti) = (t[i], t[k + i]);
                    s += hr * rr * tr + hi * ri * tr + hr * ri * ti - hi * rr * ti;
                }
                -s
            }
            KgScorer::SimplE => {
                let mut s = 0.0;
                for i in 0..k {
                    s += h[i] * r[i] * t[k + i] + t[i] * r[k + i] * h[k + i];
                }
                -0.5 * s
            }
        }
    }

    /// Adds `coeff × ∂score/∂(h,r,t)` into the gradient buffers.
    #[allow(clippy::too_many_arguments)]
    fn accumulate(
        &self,
        h: &[f32],
        r: &[f32],
        t: &[f32],
        coeff: f32,
        gh: &mut [f32],
        gr: &mut [f32],
        gt: &mut [f32],
    ) {
        let d = self.dim;
        let k = d / 2;
        match self.scorer {
            KgScorer::TransE => {
                for i in 0..d {
                    let s = (h[i] + r[i] - t[i]).signum();
                    gh[i] += coeff * s;
                    gr[i] += coeff * s;
                    gt[i] -= coeff * s;
                }
            }
            KgScorer::DistMult => {
                for i in 0..d {
                    gh[i] -= coeff * r[i] * t[i];
                    gr[i] -= coeff * h[i] * t[i];
                    gt[i] -= coeff * h[i] * r[i];
                }
            }
            KgScorer::ComplEx => {
                for i in 0..k {
                    let (hr, hi) = (h[i], h[k + i]);
                    let (rr, ri) = (r[i], r[k + i]);
                    let (tr, ti) = (t[i], t[k + i]);
                    gh[i] -= coeff * (rr * tr + ri * ti);
                    gh[k + i] -= coeff * (ri * tr - rr * ti);
                    gr[i] -= coeff * (hr * tr - hi * ti);
                    gr[k + i] -= coeff * (hi * tr + hr * ti);
                    gt[i] -= coeff * (hr * rr + hi * ri);
                    gt[k + i] -= coeff * (hr * ri - hi * rr);
                }
            }
            KgScorer::SimplE => {
                for i in 0..k {
                    gh[i] -= coeff * 0.5 * r[i] * t[k + i];
                    gh[k + i] -= coeff * 0.5 * t[i] * r[k + i];
                    gr[i] -= coeff * 0.5 * h[i] * t[k + i];
                    gr[k + i] -= coeff * 0.5 * t[i] * h[k + i];
                    gt[i] -= coeff * 0.5 * r[k + i] * h[k + i];
                    gt[k + i] -= coeff * 0.5 * h[i] * r[i];
                }
            }
        }
    }
}

impl EmbeddingModel for KgModel {
    fn dim(&self) -> usize {
        self.dim
    }

    fn forward_backward(&self, gpu: usize, step: u64, keys: &[Key], rows: &[f32]) -> BatchGrads {
        let d = self.dim;
        assert_eq!(rows.len(), keys.len() * d, "rows/keys mismatch");
        if !self.compute {
            return BatchGrads {
                emb_grads: rows.iter().map(|&v| 0.01 * v).collect(),
                loss: 0.0,
            };
        }
        let batch = self.trace.step_batch(step, gpu);
        let b = batch.n_triples();
        let m = batch.negatives.len();
        assert_eq!(keys.len(), 2 * b + m, "key layout mismatch");

        let rel_table = self.relations.lock();
        let mut emb_grads = vec![0.0f32; rows.len()];
        let mut rel_grads: HashMap<Key, Vec<f32>> = HashMap::new();
        let mut rel_order: Vec<Key> = Vec::new();
        let mut loss_sum = 0.0f32;

        for i in 0..b {
            let h = &rows[i * d..(i + 1) * d];
            let t = &rows[(b + i) * d..(b + i + 1) * d];
            let rel = batch.relations[i];
            let r = &rel_table[rel as usize * d..(rel as usize + 1) * d];
            let pos = self.score(h, r, t);
            let negs: Vec<f32> = (0..m)
                .map(|j| self.score(h, r, &rows[(2 * b + j) * d..(2 * b + j + 1) * d]))
                .collect();
            let (loss, d_pos, d_negs) = margin_ranking(pos, &negs, self.margin);
            loss_sum += loss;

            let gr = rel_grads.entry(rel).or_insert_with(|| {
                rel_order.push(rel);
                vec![0.0; d]
            });
            if d_pos != 0.0 {
                // Accumulate into scratch buffers: head/tail/negative slices
                // of emb_grads alias the same Vec, so direct splits won't do.
                let (h0, t0) = (i * d, (b + i) * d);
                let mut gh_buf = vec![0.0f32; d];
                let mut gt_buf = vec![0.0f32; d];
                self.accumulate(h, r, t, d_pos, &mut gh_buf, gr, &mut gt_buf);
                for x in 0..d {
                    emb_grads[h0 + x] += gh_buf[x];
                    emb_grads[t0 + x] += gt_buf[x];
                }
            }
            for (j, &dn) in d_negs.iter().enumerate() {
                if dn == 0.0 {
                    continue;
                }
                let neg = &rows[(2 * b + j) * d..(2 * b + j + 1) * d];
                let (h0, n0) = (i * d, (2 * b + j) * d);
                let mut gh_buf = vec![0.0f32; d];
                let mut gn_buf = vec![0.0f32; d];
                self.accumulate(h, r, neg, dn, &mut gh_buf, gr, &mut gn_buf);
                for x in 0..d {
                    emb_grads[h0 + x] += gh_buf[x];
                    emb_grads[n0 + x] += gn_buf[x];
                }
            }
        }
        drop(rel_table);
        let rel_list: Vec<(Key, Vec<f32>)> = rel_order
            .into_iter()
            .map(|rel| {
                let g = rel_grads.remove(&rel).expect("ordered rel present");
                (rel, g)
            })
            .collect();
        self.rel_stash.lock()[gpu] = Some(rel_list);

        BatchGrads {
            emb_grads,
            loss: loss_sum / b.max(1) as f32,
        }
    }

    fn end_step(&self, _step: u64) {
        if !self.compute {
            return;
        }
        let mut stash = self.rel_stash.lock();
        let mut rel_table = self.relations.lock();
        let d = self.dim;
        for slot in stash.iter_mut() {
            if let Some(list) = slot.take() {
                for (rel, grad) in list {
                    let row = &mut rel_table[rel as usize * d..(rel as usize + 1) * d];
                    for (p, &g) in row.iter_mut().zip(&grad) {
                        *p -= self.rel_lr * g;
                    }
                }
            }
        }
    }

    fn dense_flops_per_sample(&self) -> f64 {
        // One positive + m negative scores, each ~8 ops per dimension,
        // doubled for backward.
        let m = self.trace.spec().neg_sample_size as f64;
        16.0 * self.dim as f64 * (m + 1.0)
    }

    fn dense_layers(&self) -> u32 {
        1
    }

    fn dense_param_bytes(&self) -> u64 {
        // Relation gradients synchronized per step: roughly one relation row
        // per positive triple.
        self.trace.batch_per_gpu() as u64 * self.dim as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frugal_data::KgDatasetSpec;

    fn small_trace(dim: u32) -> KgTrace {
        let mut spec = KgDatasetSpec::fb15k().scaled_to_entities(200);
        spec.embedding_dim = dim;
        spec.neg_sample_size = 4;
        KgTrace::new(spec, 3, 1, 5).unwrap()
    }

    fn model(scorer: KgScorer) -> KgModel {
        KgModel::new(scorer, small_trace(6), 3, true)
    }

    /// Finite-difference check of the full margin loss w.r.t. entity rows.
    fn check_gradients(scorer: KgScorer) {
        let m = model(scorer);
        let batch = m.trace().step_batch(0, 0);
        let keys: Vec<Key> = batch.entity_keys().collect();
        let d = m.dim();
        // Pseudo-random but deterministic rows.
        let rows: Vec<f32> = (0..keys.len() * d)
            .map(|i| ((i * 37 + 11) % 17) as f32 / 17.0 - 0.5)
            .collect();
        let loss_of = |rows: &[f32]| {
            let g = m.forward_backward(0, 0, &keys, rows);
            g.loss
        };
        let g = m.forward_backward(0, 0, &keys, &rows);
        let eps = 1e-3f32;
        let b = batch.n_triples() as f32;
        for probe in [0usize, d + 1, rows.len() - 1] {
            let mut rp = rows.clone();
            rp[probe] += eps;
            let mut rm = rows.clone();
            rm[probe] -= eps;
            let numeric = (loss_of(&rp) - loss_of(&rm)) / (2.0 * eps);
            // forward_backward returns mean-over-triples loss but raw
            // per-element grads; normalize.
            let analytic = g.emb_grads[probe] / b;
            assert!(
                (analytic - numeric).abs() < 5e-2,
                "{}: elem {probe}: analytic {analytic} vs numeric {numeric}",
                scorer.name()
            );
        }
    }

    #[test]
    fn transe_gradients() {
        check_gradients(KgScorer::TransE);
    }

    #[test]
    fn distmult_gradients() {
        check_gradients(KgScorer::DistMult);
    }

    #[test]
    fn complex_gradients() {
        check_gradients(KgScorer::ComplEx);
    }

    #[test]
    fn simple_gradients() {
        check_gradients(KgScorer::SimplE);
    }

    #[test]
    fn training_separates_positives_from_negatives() {
        let m = model(KgScorer::TransE);
        let batch = m.trace().step_batch(0, 0);
        let keys: Vec<Key> = batch.entity_keys().collect();
        let d = m.dim();
        let mut rows: Vec<f32> = (0..keys.len() * d)
            .map(|i| ((i * 29 + 3) % 13) as f32 / 13.0 - 0.5)
            .collect();
        let first = m.forward_backward(0, 0, &keys, &rows).loss;
        let mut last = first;
        for _ in 0..80 {
            let g = m.forward_backward(0, 0, &keys, &rows);
            last = g.loss;
            for (r, gr) in rows.iter_mut().zip(&g.emb_grads) {
                *r -= 0.05 * gr;
            }
            m.end_step(0);
        }
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }

    #[test]
    fn surrogate_mode() {
        let m = KgModel::new(KgScorer::TransE, small_trace(6), 3, false);
        let g = m.forward_backward(0, 0, &[1, 2], &[1.0; 12]);
        assert_eq!(g.loss, 0.0);
        assert!((g.emb_grads[0] - 0.01).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "even dimension")]
    fn complex_rejects_odd_dim() {
        let _ = KgModel::new(KgScorer::ComplEx, small_trace(5), 3, true);
    }

    #[test]
    fn scorer_metadata() {
        assert_eq!(KgScorer::all().len(), 4);
        assert_eq!(KgScorer::TransE.name(), "TransE");
        let m = model(KgScorer::DistMult);
        assert_eq!(m.scorer(), KgScorer::DistMult);
        assert!(m.dense_flops_per_sample() > 0.0);
        assert!(m.dense_param_bytes() > 0);
        assert_eq!(m.dense_layers(), 1);
    }
}
