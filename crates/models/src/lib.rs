//! # frugal-models — the embedding models of the paper's evaluation
//!
//! * [`Dlrm`] — Facebook's recommendation model (embedding tables + a
//!   512-512-256-1 MLP head, BCE loss), the REC workload of §4.1.
//! * [`KgModel`] with [`KgScorer`] — TransE (the KG workload) plus the
//!   Exp #11 sensitivity scorers DistMult, ComplEx, and SimplE, trained
//!   with margin-ranking loss over negative samples.
//!
//! Both implement [`frugal_core::EmbeddingModel`], so any engine (Frugal,
//! Frugal-Sync, or the baselines) can train them. [`auc`] and [`hits_at_k`]
//! evaluate the trained models.

#![warn(missing_docs)]

mod dlrm;
mod kg;
mod metrics;

pub use dlrm::Dlrm;
pub use kg::{KgModel, KgScorer};
pub use metrics::{auc, hits_at_k};
