//! Evaluation metrics for the two model families.
//!
//! The paper omits accuracy ("all competitor systems meet the synchronous
//! training consistency", §4.1) because every system trains the same
//! function. These metrics exist for downstream users — and for our tests,
//! which verify that training through Frugal actually improves model
//! quality, not just loss.

/// Area under the ROC curve for binary CTR predictions.
///
/// Computed exactly via the rank-sum formulation with midrank tie
/// handling. Returns 0.5 for degenerate inputs (single-class labels).
///
/// # Panics
///
/// Panics if `scores` and `labels` differ in length.
///
/// # Examples
///
/// ```
/// use frugal_models::auc;
///
/// let perfect = auc(&[0.1, 0.2, 0.8, 0.9], &[0.0, 0.0, 1.0, 1.0]);
/// assert_eq!(perfect, 1.0);
/// ```
pub fn auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Sort by score; assign midranks to ties.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(&ranks)
        .filter(|(&l, _)| l > 0.5)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos as f64 * (n_pos as f64 + 1.0)) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Hits@K for knowledge-graph link prediction: the fraction of test triples
/// whose true tail ranks within the best `k` among `1 + negatives.len()`
/// candidates. `candidate_scores[i]` holds the *distance* scores (lower =
/// better) of triple `i`'s candidates, with the true tail first.
///
/// # Panics
///
/// Panics if `k == 0` or any candidate list is empty.
pub fn hits_at_k(candidate_scores: &[Vec<f32>], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    if candidate_scores.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    for cands in candidate_scores {
        assert!(!cands.is_empty(), "empty candidate list");
        let true_score = cands[0];
        // Rank = 1 + number of candidates strictly better than the truth.
        let better = cands[1..].iter().filter(|&&s| s < true_score).count();
        if better < k {
            hits += 1;
        }
    }
    hits as f64 / candidate_scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        assert_eq!(auc(&[0.1, 0.9], &[0.0, 1.0]), 1.0);
        assert_eq!(auc(&[0.9, 0.1], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        // All scores tied: midranks make AUC exactly 0.5.
        assert_eq!(auc(&[0.5, 0.5, 0.5, 0.5], &[1.0, 0.0, 1.0, 0.0]), 0.5);
    }

    #[test]
    fn auc_degenerate_labels() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[0.1, 0.9], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn auc_partial_ordering() {
        // 3 pos, 3 neg, one inversion: U = 8 of 9.
        let scores = [0.1, 0.2, 0.55, 0.5, 0.6, 0.7];
        let labels = [0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let a = auc(&scores, &labels);
        assert!((a - 8.0 / 9.0).abs() < 1e-9, "auc {a}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn auc_rejects_mismatch() {
        let _ = auc(&[0.1], &[0.0, 1.0]);
    }

    #[test]
    fn hits_at_k_counts_ranks() {
        let cands = vec![
            vec![0.1, 0.5, 0.9], // rank 1
            vec![0.5, 0.1, 0.9], // rank 2
            vec![0.9, 0.1, 0.5], // rank 3
        ];
        assert!((hits_at_k(&cands, 1) - 1.0 / 3.0).abs() < 1e-9);
        assert!((hits_at_k(&cands, 2) - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(hits_at_k(&cands, 3), 1.0);
    }

    #[test]
    fn hits_at_k_empty_is_zero() {
        assert_eq!(hits_at_k(&[], 1), 0.0);
    }
}
