//! # frugal-pq — the paper's two-level concurrent priority queue
//!
//! The P²F algorithm (paper §3.3) keeps one *g-entry* per parameter and
//! orders pending flushes by priority = the next training step that will
//! read the parameter. Flushing threads hammer this queue concurrently with
//! the controller adjusting priorities, so the queue's scalability decides
//! the training stall (Exp #4).
//!
//! * [`TwoLevelPq`] — the paper's design: a priority-index array over
//!   lock-free key sets, O(1) enqueue/dequeue/adjust, with scan-range
//!   compression.
//! * [`TreeHeap`] — the classic binary-heap baseline with O(log N)
//!   operations and lock serialization.
//! * [`PriorityQueue`] — the trait both implement, letting the training
//!   engine swap them (Exp #4's ablation).
//! * [`LockFreeSet`] — the second-level lock-free hash structure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Yield-point instrumentation for the schedule-exploration harness.
///
/// With the `sched` feature this cedes control to `frugal-sched`'s
/// deterministic scheduler (a no-op outside a simulation); without it the
/// macro compiles to nothing. Placed at every shared-memory transition
/// that participates in a cross-thread protocol, so interleavings are
/// enumerable at exactly the granularity the correctness argument uses.
// Defined before the modules so it is textually in scope throughout the
// crate (legacy macro scoping) — no per-module import needed.
macro_rules! sched_point {
    ($label:expr) => {{
        #[cfg(feature = "sched")]
        frugal_sched::yield_point($label);
    }};
}

mod lockfree_set;
mod queue;
mod treeheap;
mod two_level;

pub use lockfree_set::LockFreeSet;
pub use queue::{PqProbes, Priority, PriorityQueue, INFINITE};
pub use treeheap::TreeHeap;
pub use two_level::TwoLevelPq;
