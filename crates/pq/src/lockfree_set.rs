//! A lock-free concurrent set of keys, used as the second level of the
//! two-level priority queue (paper §3.4).
//!
//! The paper uses a "lock-free dynamic scalable hash table" [34] for the
//! g-entries sharing one priority. This implementation keeps the same
//! properties with a simpler structure: a chain of open-addressing segments
//! whose slots are `AtomicU64`s. Segment capacities grow geometrically
//! (64, 128, 256, …), so a set of `n` keys has O(log n) segments; each
//! segment tracks its occupancy so full segments are skipped with one
//! atomic load. Insertion CASes an empty (or tombstoned) slot; when every
//! segment is full, a new segment is appended with a single CAS on the
//! chain — the set grows dynamically without ever taking a lock. Removal
//! tombstones the slot; tombstones are reusable, which bounds memory by the
//! peak population rather than total traffic.

#[cfg(feature = "sched")]
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};

/// Capacity of the first segment; later segments double.
const FIRST_SEGMENT_SLOTS: usize = 64;
/// Cap on individual segment size (beyond this, append same-size segments).
const MAX_SEGMENT_SLOTS: usize = 64 * 1024;

const EMPTY: u64 = 0;
const TOMBSTONE: u64 = u64::MAX;

fn encode(key: u64) -> u64 {
    // Shift keys by one so 0 can mean "empty". Keys of u64::MAX-1 and above
    // are rejected at the API boundary.
    key + 1
}

fn decode(slot: u64) -> u64 {
    slot - 1
}

fn hash(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Segment {
    slots: Box<[AtomicU64]>,
    /// Occupied (non-empty, non-tombstone) slots; heuristic for skip-full.
    occupied: AtomicUsize,
    next: AtomicPtr<Segment>,
}

impl Segment {
    fn new(capacity: usize) -> Box<Self> {
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || AtomicU64::new(EMPTY));
        Box::new(Segment {
            slots: slots.into_boxed_slice(),
            occupied: AtomicUsize::new(0),
            next: AtomicPtr::new(std::ptr::null_mut()),
        })
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// A lock-free, dynamically growing set of `u64` keys.
///
/// The head segment is allocated lazily, so an empty set costs only a few
/// words — important because the priority index holds one set per training
/// step.
///
/// # Counter discipline
///
/// `len` and per-segment `occupied` follow the *conservative counter* rule:
/// increment **before** a key becomes visible (the slot CAS), decrement
/// **after** it stops being visible (the tombstone CAS). Counters may
/// transiently over-count mid-operation, never under-count — so a reader
/// that can find a key via [`Self::contains`] is guaranteed
/// `!is_empty()`, which the P²F wait condition relies on when it treats an
/// empty bucket as "no pending flush at this priority".
pub struct LockFreeSet {
    head: AtomicPtr<Segment>,
    len: AtomicUsize,
    /// Test-only: reverts insert to the historical publish-then-count
    /// order (slot CAS before `len`/`occupied` increments), reopening the
    /// visibility window for the schedule explorer to demonstrate.
    #[cfg(feature = "sched")]
    bug_publish_window: AtomicBool,
}

impl Default for LockFreeSet {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LockFreeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockFreeSet")
            .field("len", &self.len())
            .finish()
    }
}

impl LockFreeSet {
    /// Creates an empty set without allocating any segment.
    pub const fn new() -> Self {
        LockFreeSet {
            head: AtomicPtr::new(std::ptr::null_mut()),
            len: AtomicUsize::new(0),
            #[cfg(feature = "sched")]
            bug_publish_window: AtomicBool::new(false),
        }
    }

    /// Test-only: reverts [`Self::insert`] to the historical
    /// publish-then-count order so the schedule explorer can replay the
    /// occupancy-visibility race it fixes (DESIGN.md §8).
    #[cfg(feature = "sched")]
    pub fn set_bug_publish_window(&self, on: bool) {
        self.bug_publish_window.store(on, Ordering::SeqCst);
    }

    #[cfg(feature = "sched")]
    fn bug_publish_window(&self) -> bool {
        self.bug_publish_window.load(Ordering::Relaxed)
    }

    #[cfg(not(feature = "sched"))]
    fn bug_publish_window(&self) -> bool {
        false
    }

    /// Approximate number of keys currently in the set. Never
    /// under-counts: a key findable by [`Self::contains`] is already
    /// counted. Exact when quiescent.
    pub fn len(&self) -> usize {
        sched_point!("lfs.len.load");
        self.len.load(Ordering::Acquire)
    }

    /// True if the set is (approximately) empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn head_or_install(&self) -> *mut Segment {
        let mut head = self.head.load(Ordering::Acquire);
        if head.is_null() {
            let fresh = Box::into_raw(Segment::new(FIRST_SEGMENT_SLOTS));
            match self.head.compare_exchange(
                std::ptr::null_mut(),
                fresh,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => head = fresh,
                Err(existing) => {
                    // Somebody else installed a head; free ours.
                    // SAFETY: `fresh` was never published.
                    unsafe { drop(Box::from_raw(fresh)) };
                    head = existing;
                }
            }
        }
        head
    }

    /// Tries to claim a free (empty or tombstoned) slot in `seg` for `enc`.
    ///
    /// Occupancy is *reserved* (incremented) before the slot CAS and rolled
    /// back if no slot is claimed, per the conservative counter rule: a
    /// visible key must already be counted, or [`Self::take_any`]'s
    /// skip-full heuristic could skip a segment that holds it.
    fn try_insert_segment(&self, seg: &Segment, enc: u64, key: u64) -> bool {
        let buggy = self.bug_publish_window();
        let cap = seg.capacity();
        if !buggy {
            let prev = seg.occupied.fetch_add(1, Ordering::AcqRel);
            // Leave a little slack so probes stay short near fullness.
            if prev + cap / 16 >= cap {
                seg.occupied.fetch_sub(1, Ordering::AcqRel);
                return false;
            }
            sched_point!("lfs.insert.occupied_reserved");
        } else if seg.occupied.load(Ordering::Acquire) + cap / 16 >= cap {
            return false;
        }
        let start = (hash(key) as usize) % cap;
        for i in 0..cap {
            let slot = &seg.slots[(start + i) % cap];
            let mut cur = slot.load(Ordering::Acquire);
            while cur == EMPTY || cur == TOMBSTONE {
                match slot.compare_exchange_weak(cur, enc, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => {
                        sched_point!("lfs.insert.slot_cas");
                        if buggy {
                            // Historical order: count after publishing.
                            seg.occupied.fetch_add(1, Ordering::AcqRel);
                        }
                        return true;
                    }
                    Err(now) => cur = now,
                }
            }
        }
        if !buggy {
            seg.occupied.fetch_sub(1, Ordering::AcqRel);
        }
        false
    }

    /// Inserts `key`. The caller guarantees `key` is not already present
    /// (the priority-queue layer keeps each g-entry in one slot per bucket).
    ///
    /// # Panics
    ///
    /// Panics if `key >= u64::MAX - 1` (reserved encodings).
    pub fn insert(&self, key: u64) {
        assert!(key < u64::MAX - 1, "key too large (reserved encoding)");
        let enc = encode(key);
        let buggy = self.bug_publish_window();
        if !buggy {
            // Count before the key can become visible (insert cannot fail,
            // so this never rolls back). The historical order — slot CAS
            // first, count after — left a window where `contains(key)` was
            // true while `is_empty()` reported empty, which the P²F wait
            // condition reads as "nothing pending at this priority".
            self.len.fetch_add(1, Ordering::AcqRel);
            sched_point!("lfs.insert.len_published");
        }
        let mut seg_ptr = self.head_or_install();
        loop {
            // SAFETY: segments are never freed while the set is alive.
            let seg = unsafe { &*seg_ptr };
            if self.try_insert_segment(seg, enc, key) {
                if buggy {
                    sched_point!("lfs.insert.bug_window");
                    self.len.fetch_add(1, Ordering::AcqRel);
                }
                return;
            }
            // Segment (effectively) full: walk or append the chain with a
            // doubled capacity, so chains stay O(log n).
            let next = seg.next.load(Ordering::Acquire);
            if next.is_null() {
                let cap = (seg.capacity() * 2).min(MAX_SEGMENT_SLOTS);
                let fresh = Box::into_raw(Segment::new(cap));
                match seg.next.compare_exchange(
                    std::ptr::null_mut(),
                    fresh,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => seg_ptr = fresh,
                    Err(existing) => {
                        // SAFETY: `fresh` was never published.
                        unsafe { drop(Box::from_raw(fresh)) };
                        seg_ptr = existing;
                    }
                }
            } else {
                seg_ptr = next;
            }
        }
    }

    /// Removes `key` if present; returns whether it was found.
    pub fn remove(&self, key: u64) -> bool {
        let enc = encode(key);
        let mut seg_ptr = self.head.load(Ordering::Acquire);
        while !seg_ptr.is_null() {
            // SAFETY: segments are never freed while the set is alive.
            let seg = unsafe { &*seg_ptr };
            let cap = seg.capacity();
            let start = (hash(key) as usize) % cap;
            for i in 0..cap {
                let slot = &seg.slots[(start + i) % cap];
                let cur = slot.load(Ordering::Acquire);
                if cur == enc
                    && slot
                        .compare_exchange(enc, TOMBSTONE, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                {
                    // Conservative counters: decrement only after the key
                    // stopped being visible (the tombstone CAS above).
                    sched_point!("lfs.remove.tombstoned");
                    seg.occupied.fetch_sub(1, Ordering::AcqRel);
                    self.len.fetch_sub(1, Ordering::AcqRel);
                    return true;
                }
                // An EMPTY slot ends this key's probe run in this segment
                // (inserts never skip an empty slot).
                if cur == EMPTY {
                    break;
                }
            }
            seg_ptr = seg.next.load(Ordering::Acquire);
        }
        false
    }

    /// Atomically removes and returns up to `max` keys, appending them to
    /// `out`. Returns how many were taken.
    pub fn take_any(&self, max: usize, out: &mut Vec<u64>) -> usize {
        if max == 0 || self.is_empty() {
            return 0;
        }
        let mut taken = 0;
        let mut seg_ptr = self.head.load(Ordering::Acquire);
        while !seg_ptr.is_null() && taken < max {
            // SAFETY: segments are never freed while the set is alive.
            let seg = unsafe { &*seg_ptr };
            if seg.occupied.load(Ordering::Acquire) > 0 {
                for slot in seg.slots.iter() {
                    if taken >= max {
                        break;
                    }
                    let cur = slot.load(Ordering::Acquire);
                    if cur != EMPTY
                        && cur != TOMBSTONE
                        && slot
                            .compare_exchange(cur, TOMBSTONE, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                    {
                        sched_point!("lfs.take.tombstoned");
                        seg.occupied.fetch_sub(1, Ordering::AcqRel);
                        self.len.fetch_sub(1, Ordering::AcqRel);
                        out.push(decode(cur));
                        taken += 1;
                    }
                }
            }
            seg_ptr = seg.next.load(Ordering::Acquire);
        }
        taken
    }

    /// Non-destructive best-effort peek: some key currently in the set,
    /// or `None` if it looks empty. The key may be removed concurrently
    /// before the caller uses it — provenance/diagnostics only.
    pub fn peek_any(&self) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let mut seg_ptr = self.head.load(Ordering::Acquire);
        while !seg_ptr.is_null() {
            // SAFETY: segments are never freed while the set is alive.
            let seg = unsafe { &*seg_ptr };
            if seg.occupied.load(Ordering::Acquire) > 0 {
                for slot in seg.slots.iter() {
                    let cur = slot.load(Ordering::Acquire);
                    if cur != EMPTY && cur != TOMBSTONE {
                        return Some(decode(cur));
                    }
                }
            }
            seg_ptr = seg.next.load(Ordering::Acquire);
        }
        None
    }

    /// True if `key` is currently present (linearizable at some point during
    /// the call).
    pub fn contains(&self, key: u64) -> bool {
        sched_point!("lfs.contains.scan");
        let enc = encode(key);
        let mut seg_ptr = self.head.load(Ordering::Acquire);
        while !seg_ptr.is_null() {
            // SAFETY: segments are never freed while the set is alive.
            let seg = unsafe { &*seg_ptr };
            let cap = seg.capacity();
            let start = (hash(key) as usize) % cap;
            for i in 0..cap {
                let cur = seg.slots[(start + i) % cap].load(Ordering::Acquire);
                if cur == enc {
                    return true;
                }
                if cur == EMPTY {
                    break;
                }
            }
            seg_ptr = seg.next.load(Ordering::Acquire);
        }
        false
    }
}

impl Drop for LockFreeSet {
    fn drop(&mut self) {
        let mut seg_ptr = *self.head.get_mut();
        while !seg_ptr.is_null() {
            // SAFETY: we have exclusive access in drop; the chain is a
            // singly linked list of Box-allocated segments.
            let seg = unsafe { Box::from_raw(seg_ptr) };
            seg_ptr = seg.next.load(Ordering::Relaxed);
        }
    }
}

// SAFETY: all shared state is atomics; segments are only freed on drop.
unsafe impl Send for LockFreeSet {}
unsafe impl Sync for LockFreeSet {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn peek_any_is_nondestructive() {
        let s = LockFreeSet::new();
        assert_eq!(s.peek_any(), None);
        s.insert(42);
        assert_eq!(s.peek_any(), Some(42));
        assert_eq!(s.peek_any(), Some(42));
        assert_eq!(s.len(), 1);
        s.remove(42);
        assert_eq!(s.peek_any(), None);
    }

    #[test]
    fn insert_remove_contains() {
        let s = LockFreeSet::new();
        assert!(s.is_empty());
        s.insert(42);
        assert!(s.contains(42));
        assert_eq!(s.len(), 1);
        assert!(s.remove(42));
        assert!(!s.contains(42));
        assert!(!s.remove(42));
        assert!(s.is_empty());
    }

    #[test]
    fn key_zero_is_valid() {
        let s = LockFreeSet::new();
        s.insert(0);
        assert!(s.contains(0));
        assert!(s.remove(0));
    }

    #[test]
    #[should_panic(expected = "key too large")]
    fn rejects_reserved_keys() {
        LockFreeSet::new().insert(u64::MAX);
    }

    #[test]
    fn grows_beyond_one_segment() {
        let s = LockFreeSet::new();
        for k in 0..10_000 {
            s.insert(k);
        }
        assert_eq!(s.len(), 10_000);
        for k in 0..10_000 {
            assert!(s.contains(k), "missing {k}");
        }
        for k in 0..10_000 {
            assert!(s.remove(k), "cannot remove {k}");
        }
        assert!(s.is_empty());
    }

    #[test]
    fn large_population_insert_is_not_quadratic() {
        // 200k inserts must complete quickly; with fixed-size segment
        // chains this regresses to O(n^2) and takes minutes.
        let s = LockFreeSet::new();
        let t0 = std::time::Instant::now();
        for k in 0..200_000 {
            s.insert(k);
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "insert too slow: {:?}",
            t0.elapsed()
        );
        assert_eq!(s.len(), 200_000);
    }

    #[test]
    fn tombstones_are_reused() {
        let s = LockFreeSet::new();
        // Churn the same small population far beyond one segment's capacity;
        // if tombstones were not reused this would chain thousands of
        // segments and contains() would slow to a crawl.
        for round in 0..10_000u64 {
            let k = round % 8;
            s.insert(k);
            assert!(s.remove(k));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn take_any_drains() {
        let s = LockFreeSet::new();
        for k in 0..100 {
            s.insert(k);
        }
        let mut out = Vec::new();
        let got = s.take_any(30, &mut out);
        assert_eq!(got, 30);
        assert_eq!(out.len(), 30);
        assert_eq!(s.len(), 70);
        let got = s.take_any(1_000, &mut out);
        assert_eq!(got, 70);
        let mut all = out.clone();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 100, "duplicates or losses in take_any");
    }

    #[test]
    fn take_any_zero_is_noop() {
        let s = LockFreeSet::new();
        s.insert(1);
        let mut out = Vec::new();
        assert_eq!(s.take_any(0, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn concurrent_insert_remove_is_lossless() {
        let s = Arc::new(LockFreeSet::new());
        let threads = 4;
        let per = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..per {
                        s.insert(t * per + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), (threads * per) as usize);

        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut removed = 0;
                    for i in 0..per {
                        if s.remove(t * per + i) {
                            removed += 1;
                        }
                    }
                    removed
                })
            })
            .collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, threads * per);
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_takers_share_without_duplication() {
        let s = Arc::new(LockFreeSet::new());
        for k in 0..4_000 {
            s.insert(k);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        if s.take_any(64, &mut out) == 0 && s.is_empty() {
                            break;
                        }
                    }
                    out
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4_000, "lost or duplicated keys");
    }

    #[test]
    fn debug_is_nonempty() {
        let s = LockFreeSet::new();
        s.insert(3);
        assert!(format!("{s:?}").contains("len"));
    }
}
