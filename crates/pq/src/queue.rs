//! The concurrent priority-queue interface shared by Frugal's two designs.
//!
//! Exp #4 of the paper swaps the PQ implementation inside the full system
//! (two-level PQ vs. tree heap) — this trait is that seam. Priorities are
//! training-step numbers; [`INFINITE`] stands for the paper's ∞ priority
//! ("no pending reads" or "nothing to flush", Equation 1).
//!
//! Entries returned by [`PriorityQueue::dequeue_batch`] may be *stale*:
//! `adjust` inserts into the new bucket before deleting from the old one
//! (the paper's ordering, §3.4), so a concurrent dequeuer can observe the
//! old position. Callers must validate each dequeued `(key, priority)` pair
//! against the authoritative g-entry priority and discard mismatches —
//! exactly what the paper prescribes ("Dequeue operations can identify an
//! inconsistent g-entry by comparing its priority with the priority of the
//! hash table in which it resides").

use frugal_telemetry::{Gauge, Probe, Telemetry};
use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A training-step priority. Smaller = flushed sooner.
pub type Priority = u64;

/// The ∞ priority of Equation (1): entries that no upcoming step reads.
pub const INFINITE: Priority = u64::MAX;

/// Latency probes for the PQ operations on the g-entry critical path
/// (the ops Exp #4a measures). Disabled probes cost one branch per op.
#[derive(Debug, Clone, Default)]
pub struct PqProbes {
    /// Histogram `pq.enqueue_ns`: one [`PriorityQueue::enqueue`] call.
    pub enqueue: Probe,
    /// Histogram `pq.adjust_ns`: one [`PriorityQueue::adjust`] call.
    pub adjust: Probe,
    /// Histogram `pq.dequeue_ns`: one [`PriorityQueue::dequeue_batch`]
    /// call (a whole batch, not per entry).
    pub dequeue: Probe,
    /// Gauge `flush.queue_depth`: the queue's approximate length,
    /// sampled after each dequeue batch (one atomic store per batch).
    pub depth: Option<Arc<Gauge>>,
}

impl PqProbes {
    /// Resolves the probes on `telemetry` (all disabled when telemetry
    /// is off).
    pub fn from_telemetry(telemetry: &Telemetry) -> Self {
        PqProbes {
            enqueue: telemetry.probe("pq.enqueue_ns"),
            adjust: telemetry.probe("pq.adjust_ns"),
            dequeue: telemetry.probe("pq.dequeue_ns"),
            depth: telemetry.registry().map(|r| r.gauge("flush.queue_depth")),
        }
    }

    /// Records the current queue length on the depth gauge, if attached.
    #[inline]
    pub fn sample_depth(&self, len: usize) {
        if let Some(g) = &self.depth {
            g.set(len as i64);
        }
    }
}

/// A concurrent priority queue of g-entry keys.
pub trait PriorityQueue: Send + Sync + Debug {
    /// Inserts `key` with `priority`.
    fn enqueue(&self, key: u64, priority: Priority);

    /// Moves `key` from priority `old` to `new`.
    ///
    /// Implementations must make the key visible at `new` *before* removing
    /// it from `old`, so concurrent readers never miss it entirely.
    fn adjust(&self, key: u64, old: Priority, new: Priority);

    /// Inserts a batch of `(key, priority)` pairs.
    ///
    /// Semantically identical to calling [`Self::enqueue`] per item; the
    /// whole-batch contract is the per-item one: on return every entry is
    /// visible to dequeuers **and** to `top_priority`'s conservative bound.
    /// Mid-call, individual entries may be published without the bound yet
    /// lowered — exactly the window a single `enqueue` has between its
    /// bucket insert and its bound update, so callers that sequence
    /// registration before releasing waiters (the engine's barrier) are
    /// unaffected. Implementations override this to amortize shared-state
    /// updates (one bound CAS per batch instead of per key).
    fn enqueue_batch(&self, items: &[(u64, Priority)]) {
        for &(key, priority) in items {
            self.enqueue(key, priority);
        }
    }

    /// Inserts every key in `keys` at the same `priority` — the
    /// arrival-order registration path of the FIFO flush ablation, where a
    /// whole step's writes enqueue at priority = the step number.
    ///
    /// Semantically identical to calling [`Self::enqueue`] per key (same
    /// visibility contract as [`Self::enqueue_batch`]); implementations
    /// override it to exploit the shared priority — one bucket group and
    /// one bound update for the entire batch.
    fn enqueue_batch_uniform(&self, keys: &[u64], priority: Priority) {
        for &key in keys {
            self.enqueue(key, priority);
        }
    }

    /// Applies a batch of `(key, old, new)` priority moves.
    ///
    /// Per-key ordering follows [`Self::adjust`]: each key is visible at
    /// `new` before it disappears from `old`, so a concurrent dequeuer can
    /// observe at worst a stale copy (discarded by caller-side g-entry
    /// validation), never a missing entry. Batch implementations may
    /// reorder *across* keys (all inserts, then all removes) — the per-key
    /// insert-before-delete invariant is what correctness rests on.
    fn adjust_batch(&self, moves: &[(u64, Priority, Priority)]) {
        for &(key, old, new) in moves {
            self.adjust(key, old, new);
        }
    }

    /// Removes up to `max` entries in (approximately) ascending priority
    /// order, appending `(key, priority)` pairs to `out`. Entries may be
    /// stale; callers validate against the g-entry store.
    fn dequeue_batch(&self, max: usize, out: &mut Vec<(u64, Priority)>);

    /// Like [`Self::dequeue_batch`], but publishes a conservative lower
    /// bound of the extracted entries' priorities into `guard` **before**
    /// each entry leaves the queue.
    ///
    /// This closes the dequeue-to-publish window of the P²F wait
    /// condition: an entry that has left the queue (so `top_priority` no
    /// longer covers it) but whose in-flight marker is not yet published
    /// is invisible to `top > s ∨ ∃ inflight ≤ s`, and a trainer can slip
    /// past it. With this method there is no instant at which an extracted
    /// entry is covered by neither `top_priority` nor `guard`.
    ///
    /// Contract: on return, `guard` holds the minimum priority of the
    /// entries appended to `out` ([`INFINITE`] if none); during the call
    /// it is only ever ≤ that minimum (transiently lower is allowed — the
    /// conservative direction). The caller resets `guard` to [`INFINITE`]
    /// once the batch's writes are applied.
    ///
    /// The default implementation brackets [`Self::dequeue_batch`] with
    /// the strongest guard (0 — "assume the batch could contain
    /// anything"), which is correct for any implementation at the cost of
    /// briefly over-blocking the wait condition. Implementations that can
    /// publish per-bucket (or peeked) priorities should override it.
    fn dequeue_batch_guarded(&self, max: usize, out: &mut Vec<(u64, Priority)>, guard: &AtomicU64) {
        let before = out.len();
        guard.store(0, Ordering::SeqCst);
        self.dequeue_batch(max, out);
        let min = out[before..]
            .iter()
            .map(|&(_, p)| p)
            .min()
            .unwrap_or(INFINITE);
        guard.store(min, Ordering::SeqCst);
    }

    /// A conservative lower bound on the smallest priority present:
    /// never larger than the true minimum, [`INFINITE`] when (apparently)
    /// empty. This is the value the P²F wait condition compares against the
    /// next step number.
    fn top_priority(&self) -> Priority;

    /// Best-effort, non-destructive peek at one entry near the top:
    /// `(key, priority)` for some entry at (or near) the smallest finite
    /// priority, `None` when the queue looks empty or the implementation
    /// cannot name one. Used for stall provenance ("which key is
    /// blocking?"), not for correctness — the entry may be stale by the
    /// time the caller reads it.
    fn peek_top(&self) -> Option<(u64, Priority)> {
        None
    }

    /// Hints the largest finite priority that can currently exist
    /// (`current_step + L` — the scan-range compression of §3.4).
    /// Implementations may ignore it.
    fn set_upper_bound(&self, upper: Priority);

    /// Attaches per-operation latency probes resolved on `telemetry`
    /// (see [`PqProbes`]). Engines call this once, before sharing the
    /// queue across threads. The default implementation ignores it.
    fn attach_telemetry(&mut self, _telemetry: &Telemetry) {}

    /// True if concurrent dequeues serialize on shared state (a global or
    /// near-root lock). A tree heap funnels every dequeue through the root;
    /// the two-level PQ dequeues lock-free. Engines use this to model how
    /// flushing throughput scales with thread count.
    fn dequeue_serializes(&self) -> bool {
        false
    }

    /// Approximate number of entries (including not-yet-collected stale
    /// duplicates in lazy implementations).
    fn len(&self) -> usize;

    /// True if the queue is (approximately) empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
