//! The tree-heap baseline the paper compares against (Exp #4).
//!
//! "The straightforward implementation of a PQ is using a classic binary
//! tree min-heap. However, its performance is suboptimal … O(log N)
//! operation complexity … and limited concurrency caused by near-root
//! contention."
//!
//! This baseline is a binary heap behind one lock with *lazy invalidation*
//! for `adjust` (push the new position; stale copies are filtered by the
//! caller's g-entry validation, the same protocol the two-level PQ uses).
//! A single lock models the serialization that near-root contention imposes
//! on lock-per-node heaps: every operation still passes through the root.

use crate::queue::{PqProbes, Priority, PriorityQueue, INFINITE};
use frugal_telemetry::Telemetry;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Maximum heap depth whose per-level locks we materialize (2^40 entries).
const MAX_LEVELS: usize = 40;

/// A lock-serialized binary min-heap with O(log N) operations.
///
/// # Examples
///
/// ```
/// use frugal_pq::{PriorityQueue, TreeHeap};
///
/// let pq = TreeHeap::new();
/// pq.enqueue(3, 9);
/// pq.enqueue(4, 1);
/// assert_eq!(pq.top_priority(), 1);
/// ```
#[derive(Debug)]
pub struct TreeHeap {
    heap: Mutex<BinaryHeap<Reverse<(Priority, u64)>>>,
    /// One lock per tree level: every sift in a per-node-spinlock heap
    /// acquires O(log N) node locks hand-over-hand. The `BinaryHeap` inside
    /// the mutex gives the *ordering*; these per-level acquisitions
    /// reproduce the lock *traffic* of the paper's baseline, which is where
    /// its O(log N) software cost lives.
    level_locks: Vec<AtomicBool>,
    probes: PqProbes,
}

impl Default for TreeHeap {
    fn default() -> Self {
        TreeHeap {
            heap: Mutex::new(BinaryHeap::new()),
            level_locks: (0..MAX_LEVELS).map(|_| AtomicBool::new(false)).collect(),
            probes: PqProbes::default(),
        }
    }
}

impl TreeHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        TreeHeap::default()
    }

    /// Hand-over-hand per-level lock acquisition for one sift of a heap of
    /// `len` entries (root to leaf).
    fn sift_lock_traffic(&self, len: usize) {
        let levels = (usize::BITS - len.max(1).leading_zeros()) as usize;
        for lock in self.level_locks.iter().take(levels.min(MAX_LEVELS)) {
            while lock
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                std::hint::spin_loop();
            }
            lock.store(false, Ordering::Release);
        }
    }
}

impl PriorityQueue for TreeHeap {
    fn enqueue(&self, key: u64, priority: Priority) {
        let _t = self.probes.enqueue.timer();
        let mut heap = self.heap.lock();
        heap.push(Reverse((priority, key)));
        let len = heap.len();
        drop(heap);
        self.sift_lock_traffic(len);
    }

    fn adjust(&self, key: u64, _old: Priority, new: Priority) {
        // Lazy invalidation: the copy at the old priority becomes stale and
        // is discarded by the caller's validation on dequeue.
        let _t = self.probes.adjust.timer();
        let mut heap = self.heap.lock();
        heap.push(Reverse((new, key)));
        let len = heap.len();
        drop(heap);
        self.sift_lock_traffic(len);
    }

    fn enqueue_batch(&self, items: &[(u64, Priority)]) {
        if items.is_empty() {
            return;
        }
        let _t = self.probes.enqueue.timer();
        let mut heap = self.heap.lock();
        let mut lens = Vec::with_capacity(items.len());
        for &(key, priority) in items {
            heap.push(Reverse((priority, key)));
            lens.push(heap.len());
        }
        drop(heap);
        // One mutex acquisition for the batch, but every push still pays
        // its own O(log N) sift lock traffic — that per-entry cost is the
        // baseline property Exp #4 measures, so batching must not hide it.
        for len in lens {
            self.sift_lock_traffic(len);
        }
    }

    fn adjust_batch(&self, moves: &[(u64, Priority, Priority)]) {
        if moves.is_empty() {
            return;
        }
        let _t = self.probes.adjust.timer();
        let mut heap = self.heap.lock();
        let mut lens = Vec::with_capacity(moves.len());
        for &(key, _, new) in moves {
            // Lazy invalidation, as in `adjust`: stale copies at the old
            // priority are discarded by caller-side validation.
            heap.push(Reverse((new, key)));
            lens.push(heap.len());
        }
        drop(heap);
        for len in lens {
            self.sift_lock_traffic(len);
        }
    }

    fn dequeue_batch(&self, max: usize, out: &mut Vec<(u64, Priority)>) {
        let _t = self.probes.dequeue.timer();
        let mut heap = self.heap.lock();
        let mut pops = 0;
        let len = heap.len();
        for _ in 0..max {
            match heap.pop() {
                Some(Reverse((p, k))) => {
                    out.push((k, p));
                    pops += 1;
                }
                None => break,
            }
        }
        let remaining = heap.len();
        drop(heap);
        self.probes.sample_depth(remaining);
        for _ in 0..pops {
            self.sift_lock_traffic(len);
        }
    }

    fn dequeue_batch_guarded(&self, max: usize, out: &mut Vec<(u64, Priority)>, guard: &AtomicU64) {
        let _t = self.probes.dequeue.timer();
        let mut heap = self.heap.lock();
        // The min-heap pops in ascending order, so the first peek is the
        // whole batch's minimum; publishing it before any pop (still under
        // the lock) leaves no instant at which an extracted entry is
        // covered by neither `top_priority` nor the guard.
        match heap.peek() {
            Some(Reverse((p, _))) => guard.store(*p, Ordering::SeqCst),
            None => guard.store(INFINITE, Ordering::SeqCst),
        }
        let mut pops = 0;
        let len = heap.len();
        for _ in 0..max {
            match heap.pop() {
                Some(Reverse((p, k))) => {
                    out.push((k, p));
                    pops += 1;
                }
                None => break,
            }
        }
        let remaining = heap.len();
        drop(heap);
        self.probes.sample_depth(remaining);
        for _ in 0..pops {
            self.sift_lock_traffic(len);
        }
    }

    fn top_priority(&self) -> Priority {
        self.heap
            .lock()
            .peek()
            .map(|Reverse((p, _))| *p)
            .unwrap_or(INFINITE)
    }

    fn peek_top(&self) -> Option<(u64, Priority)> {
        // Min-heap root is the exact top; skip ∞ entries (they never
        // block a step, so there is nothing to name for provenance).
        self.heap
            .lock()
            .peek()
            .filter(|Reverse((p, _))| *p != INFINITE)
            .map(|Reverse((p, k))| (*k, *p))
    }

    fn set_upper_bound(&self, _upper: Priority) {
        // Scan-range compression is a two-level-PQ concept; nothing to do.
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.probes = PqProbes::from_telemetry(telemetry);
    }

    fn dequeue_serializes(&self) -> bool {
        true // one lock guards the heap; every dequeue passes the root
    }

    fn len(&self) -> usize {
        self.heap.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn orders_by_priority() {
        let pq = TreeHeap::new();
        pq.enqueue(1, 5);
        pq.enqueue(2, 1);
        pq.enqueue(3, 3);
        let mut out = Vec::new();
        pq.dequeue_batch(3, &mut out);
        assert_eq!(out, vec![(2, 1), (3, 3), (1, 5)]);
        assert!(pq.is_empty());
    }

    #[test]
    fn adjust_leaves_stale_ghost() {
        let pq = TreeHeap::new();
        pq.enqueue(7, 2);
        pq.adjust(7, 2, 8);
        // Lazy invalidation: both copies surface; the caller filters by
        // comparing against the g-entry's authoritative priority.
        let mut out = Vec::new();
        pq.dequeue_batch(10, &mut out);
        assert_eq!(out, vec![(7, 2), (7, 8)]);
    }

    #[test]
    fn top_priority_and_infinite() {
        let pq = TreeHeap::new();
        assert_eq!(pq.top_priority(), INFINITE);
        pq.enqueue(1, INFINITE);
        assert_eq!(pq.top_priority(), INFINITE);
        pq.enqueue(2, 4);
        assert_eq!(pq.top_priority(), 4);
    }

    #[test]
    fn peek_top_names_the_root() {
        let pq = TreeHeap::new();
        assert_eq!(pq.peek_top(), None);
        pq.enqueue(9, INFINITE);
        assert_eq!(pq.peek_top(), None, "∞ entries are never blocking");
        pq.enqueue(5, 3);
        assert_eq!(pq.peek_top(), Some((5, 3)));
        assert_eq!(pq.len(), 2, "peek must not consume");
    }

    #[test]
    fn batch_ops_match_sequential() {
        let a = TreeHeap::new();
        let b = TreeHeap::new();
        let items: Vec<(u64, Priority)> = (0..30u64).map(|k| (k, k % 11)).collect();
        for &(k, p) in &items {
            a.enqueue(k, p);
        }
        b.enqueue_batch(&items);
        let moves: Vec<(u64, Priority, Priority)> =
            (0..30u64).map(|k| (k, k % 11, (k + 3) % 11)).collect();
        for &(k, o, n) in &moves {
            a.adjust(k, o, n);
        }
        b.adjust_batch(&moves);
        assert_eq!(a.len(), b.len(), "lazy ghosts counted identically");
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        a.dequeue_batch(usize::MAX, &mut oa);
        b.dequeue_batch(usize::MAX, &mut ob);
        assert_eq!(oa, ob, "identical pop order including stale copies");
    }

    #[test]
    fn concurrent_use_is_safe() {
        let pq = Arc::new(TreeHeap::new());
        let producers: Vec<_> = (0..2u64)
            .map(|t| {
                let pq = Arc::clone(&pq);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        pq.enqueue(t * 1_000 + i, i % 50);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut out = Vec::new();
        pq.dequeue_batch(usize::MAX, &mut out);
        assert_eq!(out.len(), 2_000);
    }
}
