//! The two-level concurrent priority queue (paper §3.4, Figure 7).
//!
//! Level 1 is the *priority index*: an array with one slot per possible
//! priority value — integers `0..=max_step` plus one slot for ∞. Exploiting
//! that priorities form this finite set is what buys O(1) operations instead
//! of the O(log N) of a tree heap. Level 2 is a lock-free set of g-entry
//! keys per slot ([`LockFreeSet`]).
//!
//! *Scan-range compression* (the paper's dequeue optimization) maintains
//! global lower/upper bounds on live finite priorities: the lower bound is
//! raised when a scan proves a prefix empty and lowered (CAS loop) by any
//! insert below it, so it is always conservative; the upper bound is
//! `current_step + L`, set by the controller, since prefetching only looks
//! `L` steps ahead.

use crate::lockfree_set::LockFreeSet;
use crate::queue::{PqProbes, Priority, PriorityQueue, INFINITE};
use frugal_telemetry::Telemetry;
#[cfg(feature = "sched")]
use std::sync::atomic::AtomicBool;
use std::sync::atomic::{fence, AtomicU64, AtomicUsize, Ordering};

/// The paper's two-level concurrent priority queue.
///
/// # Examples
///
/// ```
/// use frugal_pq::{PriorityQueue, TwoLevelPq, INFINITE};
///
/// let pq = TwoLevelPq::new(100);
/// pq.enqueue(7, 3);
/// pq.enqueue(9, INFINITE);
/// assert_eq!(pq.top_priority(), 3);
/// let mut out = Vec::new();
/// pq.dequeue_batch(10, &mut out);
/// assert_eq!(out, vec![(7, 3), (9, INFINITE)]);
/// ```
pub struct TwoLevelPq {
    /// `buckets[p]` for p in `0..=max_step`; `buckets[max_step+1]` is ∞.
    buckets: Vec<LockFreeSet>,
    max_step: u64,
    /// Conservative lower bound of live finite priorities.
    ///
    /// Inserts at or above the bound — the steady-state common case, since
    /// the bound trails the flush frontier — validate it with a *pure
    /// load* and touch nothing, so 8–16 registering trainers do not
    /// invalidate each other's cache line on every enqueue. (An earlier
    /// revision packed an insert epoch into the high bits and CAS-bumped
    /// it on *every* finite insert, making this word a global contention
    /// point that ledger attribution flagged first at 8 trainers.)
    /// Inserts below the bound pull it down with a fetch-min CAS loop;
    /// scan-raises are validated after the fact by a verification rescan
    /// (see [`Self::raise_lower`]) instead of an optimistic epoch check.
    lower: AtomicU64,
    /// Upper bound of live finite priorities (`current_step + L`).
    upper: AtomicU64,
    len: AtomicUsize,
    probes: PqProbes,
    /// Test-only: reverts the scan-raise fix (the verification rescan,
    /// DESIGN.md §8 race 1) so the schedule explorer can replay the
    /// historical race.
    #[cfg(feature = "sched")]
    bug_scan_raise: AtomicBool,
}

impl std::fmt::Debug for TwoLevelPq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoLevelPq")
            .field("max_step", &self.max_step)
            .field("len", &self.len())
            .field("lower", &self.lower.load(Ordering::Relaxed))
            .field("upper", &self.upper.load(Ordering::Relaxed))
            .finish()
    }
}

impl TwoLevelPq {
    /// Creates a queue accepting priorities `0..=max_step` and ∞.
    ///
    /// Allocates `max_step + 2` empty buckets (a few words each; second-level
    /// tables are lazy).
    ///
    /// # Panics
    ///
    /// Panics if `max_step >= 2^32 - 2` (steps fit in 32 bits throughout
    /// the engine — the g-entry store's read windows anchor on a `u32` —
    /// and training runs are far shorter).
    pub fn new(max_step: u64) -> Self {
        assert!(max_step < u32::MAX as u64 - 1, "max_step too large");
        let n = (max_step + 2) as usize;
        let mut buckets = Vec::with_capacity(n);
        buckets.resize_with(n, LockFreeSet::new);
        TwoLevelPq {
            buckets,
            max_step,
            lower: AtomicU64::new(0),
            upper: AtomicU64::new(max_step),
            len: AtomicUsize::new(0),
            probes: PqProbes::default(),
            #[cfg(feature = "sched")]
            bug_scan_raise: AtomicBool::new(false),
        }
    }

    /// Test-only: disables the verification rescan in
    /// [`Self::raise_lower`], reproducing the pre-fix scan-raise race
    /// (DESIGN.md §8 race 1) for replay by the schedule explorer.
    #[cfg(feature = "sched")]
    pub fn set_bug_scan_raise(&self, on: bool) {
        self.bug_scan_raise.store(on, Ordering::SeqCst);
    }

    /// Test-only: reverts every bucket's insert to the historical
    /// publish-then-count order (see
    /// [`LockFreeSet::set_bug_publish_window`]).
    #[cfg(feature = "sched")]
    pub fn set_bug_publish_window(&self, on: bool) {
        for b in &self.buckets {
            b.set_bug_publish_window(on);
        }
    }

    #[cfg(feature = "sched")]
    fn bug_scan_raise(&self) -> bool {
        self.bug_scan_raise.load(Ordering::Relaxed)
    }

    #[cfg(not(feature = "sched"))]
    fn bug_scan_raise(&self) -> bool {
        false
    }

    /// Largest finite priority this queue accepts.
    pub fn max_step(&self) -> u64 {
        self.max_step
    }

    fn bucket_index(&self, p: Priority) -> usize {
        if p == INFINITE {
            (self.max_step + 1) as usize
        } else {
            assert!(
                p <= self.max_step,
                "priority {p} > max_step {}",
                self.max_step
            );
            p as usize
        }
    }

    /// Records a finite insert at priority `p`: pulls the bound down if the
    /// insert landed below it, otherwise validates it with a pure load.
    ///
    /// The caller has already published the entry into its bucket. The
    /// `SeqCst` fence pairs with the one in [`Self::raise_lower`]: the
    /// inserter's order is *publish bucket → fence → load bound*, the
    /// raiser's is *store bound → fence → rescan buckets*. In the total
    /// fence order one of the two runs first, so either the rescan sees
    /// the published entry (and re-lowers the bound), or this load sees
    /// the raised bound (and, since a hidden entry means `p < to`, takes
    /// the CAS path and re-lowers it). Without the fences both sides can
    /// read stale values — the store-buffering anomaly — and a live entry
    /// ends up below the bound, invisible to the P²F wait condition.
    fn note_insert(&self, p: Priority) {
        if p == INFINITE {
            return;
        }
        sched_point!("pq.note_insert");
        fence(Ordering::SeqCst);
        let mut cur = self.lower.load(Ordering::Acquire);
        while p < cur {
            match self
                .lower
                .compare_exchange_weak(cur, p, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
        // p >= bound: the bound already covers this entry, and the common
        // steady-state case (inserts land at or ahead of the flush
        // frontier) writes nothing shared.
    }

    /// Raises the lower bound from the scanned snapshot `seen` to `to`,
    /// then *verifies* the raise with a rescan of the skipped range.
    ///
    /// An entry published after the caller's scan passed its bucket but
    /// before the raise would otherwise be hidden from the P²F wait
    /// condition. Any entry the rescan finds lowers the bound again (via
    /// [`Self::note_insert`]); entries published after the rescan are
    /// covered by their publisher's own `note_insert`, which — thanks to
    /// the paired `SeqCst` fences, see there — must observe the raised
    /// bound. The value-based CAS skips the raise when the bound moved
    /// under the scanner (another raiser won, or an insert lowered it).
    fn raise_lower(&self, seen: u64, to: u64) {
        if to <= seen {
            return;
        }
        sched_point!("pq.raise.cas");
        if self
            .lower
            .compare_exchange(seen, to, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        if self.bug_scan_raise() {
            // Historical code stopped here: no verification rescan, so an
            // insert that raced the caller's scan stayed hidden below the
            // freshly raised bound.
            return;
        }
        fence(Ordering::SeqCst);
        sched_point!("pq.raise.rescan");
        let end = to.min(self.max_step);
        for p in seen..end {
            if !self.buckets[p as usize].is_empty() {
                self.note_insert(p);
                return;
            }
        }
    }

    fn scan_end(&self) -> u64 {
        self.upper.load(Ordering::Acquire).min(self.max_step)
    }

    fn infinity_bucket(&self) -> &LockFreeSet {
        &self.buckets[(self.max_step + 1) as usize]
    }

    /// Shared body of [`PriorityQueue::dequeue_batch`] and
    /// [`PriorityQueue::dequeue_batch_guarded`]. With a `guard`, the
    /// bucket's priority is published into it (monotonically, via
    /// `fetch_min`) *before* any entry is extracted from that bucket, so
    /// extracted-but-unreported entries are always covered by either
    /// `top_priority` or the guard. The ∞ bucket needs no guard: ∞ entries
    /// can never block a step.
    fn dequeue_impl(&self, max: usize, out: &mut Vec<(u64, Priority)>, guard: Option<&AtomicU64>) {
        if max == 0 {
            return;
        }
        let _t = self.probes.dequeue.timer();
        let mut taken = 0;
        let mut keys = Vec::new();
        let seen = self.lower.load(Ordering::Acquire);
        let end = self.scan_end();
        let mut first_live: Option<u64> = None;
        let mut p = seen;
        while p <= end && taken < max {
            sched_point!("pq.dequeue.scan");
            let bucket = &self.buckets[p as usize];
            if !bucket.is_empty() {
                if let Some(g) = guard {
                    g.fetch_min(p, Ordering::AcqRel);
                    sched_point!("pq.dequeue.guard_published");
                }
                keys.clear();
                let got = bucket.take_any(max - taken, &mut keys);
                if got > 0 && first_live.is_none() {
                    first_live = Some(p);
                }
                for &k in &keys {
                    out.push((k, p));
                }
                taken += got;
                // The bucket may still hold entries we could not take this
                // round; do not raise the bound past it.
                if !bucket.is_empty() {
                    first_live = Some(first_live.unwrap_or(p).min(p));
                    break;
                }
            }
            p += 1;
        }
        // Raise the lower bound over the prefix we proved empty (refused if
        // any insert raced the scan).
        match first_live {
            Some(fp) => self.raise_lower(seen, fp),
            None if taken == 0 => self.raise_lower(seen, end.saturating_add(1).min(self.max_step)),
            None => {}
        }
        // Interval ② of the paper's scan: the ∞ bucket.
        if taken < max {
            keys.clear();
            let got = self.infinity_bucket().take_any(max - taken, &mut keys);
            for &k in &keys {
                out.push((k, INFINITE));
            }
            taken += got;
        }
        if taken > 0 {
            self.len.fetch_sub(taken, Ordering::AcqRel);
        }
        self.probes.sample_depth(self.len());
    }
}

impl PriorityQueue for TwoLevelPq {
    fn enqueue(&self, key: u64, priority: Priority) {
        self.probes.enqueue.time(|| {
            // Conservative counter rule (see LockFreeSet): count the entry
            // before it becomes visible, so `len` never under-reports a
            // findable entry.
            sched_point!("pq.enqueue.len");
            self.len.fetch_add(1, Ordering::AcqRel);
            self.buckets[self.bucket_index(priority)].insert(key);
            sched_point!("pq.enqueue.inserted");
            self.note_insert(priority);
        })
    }

    fn adjust(&self, key: u64, old: Priority, new: Priority) {
        if old == new {
            return;
        }
        self.probes.adjust.time(|| {
            // Paper ordering: insert into the new bucket first so dequeuers
            // can never miss the entry, then delete from the old bucket. A
            // dequeuer that grabbed the old copy will fail caller-side
            // validation.
            self.buckets[self.bucket_index(new)].insert(key);
            self.note_insert(new);
            if !self.buckets[self.bucket_index(old)].remove(key) {
                // A dequeuer already took the old copy (and decremented len
                // for it); our insert added a live copy, so account for it.
                self.len.fetch_add(1, Ordering::AcqRel);
            }
        })
    }

    fn enqueue_batch(&self, items: &[(u64, Priority)]) {
        if items.is_empty() {
            return;
        }
        self.probes.enqueue.time(|| {
            // Conservative counter rule, batched: count the whole batch
            // before any entry becomes visible (over-reporting is the safe
            // direction; `len` must never miss a findable entry).
            sched_point!("pq.enqueue_batch.len");
            self.len.fetch_add(items.len(), Ordering::AcqRel);
            let mut min = INFINITE;
            for &(key, priority) in items {
                self.buckets[self.bucket_index(priority)].insert(key);
                sched_point!("pq.enqueue_batch.inserted");
                min = min.min(priority);
            }
            // One bound update for the whole batch: lowering to the batch
            // minimum covers every inserted priority (bound ≤ min ≤ p).
            // A scan-raise racing the inserts is corrected either by its
            // own verification rescan (which sees the published buckets)
            // or by this call's fenced bound check — see `note_insert`.
            self.note_insert(min);
        })
    }

    fn enqueue_batch_uniform(&self, keys: &[u64], priority: Priority) {
        if keys.is_empty() {
            return;
        }
        self.probes.enqueue.time(|| {
            // Same conservative counter rule as `enqueue_batch`: count the
            // whole batch before any entry becomes visible.
            sched_point!("pq.enqueue_batch.len");
            self.len.fetch_add(keys.len(), Ordering::AcqRel);
            let bucket = &self.buckets[self.bucket_index(priority)];
            for &key in keys {
                bucket.insert(key);
                sched_point!("pq.enqueue_batch.inserted");
            }
            // One bucket, so one bound update covers the batch exactly.
            self.note_insert(priority);
        })
    }

    fn adjust_batch(&self, moves: &[(u64, Priority, Priority)]) {
        if moves.is_empty() {
            return;
        }
        self.probes.adjust.time(|| {
            // Paper ordering per key: the new copy is published before the
            // old one is removed. Batching hoists the shared-bound update
            // out of the loop (one CAS per batch); removals run after all
            // inserts, which only widens the stale-copy window dequeuers
            // already tolerate via caller-side validation.
            let mut min = INFINITE;
            for &(key, old, new) in moves {
                if old == new {
                    // No-op move, matching `adjust`: inserting and then
                    // removing in the same bucket would *drop* the entry
                    // (buckets are sets — the insert would not duplicate).
                    continue;
                }
                self.buckets[self.bucket_index(new)].insert(key);
                sched_point!("pq.adjust_batch.inserted");
                min = min.min(new);
            }
            self.note_insert(min);
            for &(key, old, new) in moves {
                if old == new {
                    continue;
                }
                sched_point!("pq.adjust_batch.remove");
                if !self.buckets[self.bucket_index(old)].remove(key) {
                    // A dequeuer already took the old copy (and decremented
                    // len for it); our insert added a live copy.
                    self.len.fetch_add(1, Ordering::AcqRel);
                }
            }
        })
    }

    fn dequeue_batch(&self, max: usize, out: &mut Vec<(u64, Priority)>) {
        self.dequeue_impl(max, out, None);
    }

    fn dequeue_batch_guarded(&self, max: usize, out: &mut Vec<(u64, Priority)>, guard: &AtomicU64) {
        let before = out.len();
        self.dequeue_impl(max, out, Some(guard));
        // Settle the guard at the batch's exact minimum (it is currently ≤
        // that: scanned-but-drained buckets may have pushed it lower).
        // Every extracted entry is already in `out`, so raising back up to
        // the true minimum cannot uncover anything.
        let min = out[before..]
            .iter()
            .map(|&(_, p)| p)
            .min()
            .unwrap_or(INFINITE);
        guard.store(min, Ordering::SeqCst);
    }

    fn top_priority(&self) -> Priority {
        let seen = self.lower.load(Ordering::Acquire);
        let end = self.scan_end();
        let mut p = seen;
        while p <= end {
            sched_point!("pq.top.scan");
            if !self.buckets[p as usize].is_empty() {
                self.raise_lower(seen, p);
                return p;
            }
            p += 1;
        }
        sched_point!("pq.top.raise");
        self.raise_lower(seen, end.saturating_add(1).min(self.max_step));
        INFINITE
    }

    fn peek_top(&self) -> Option<(u64, Priority)> {
        // Provenance-only read: scan the finite buckets from the lower
        // bound and name one member of the first non-empty bucket,
        // without raising the bound or disturbing entries.
        let seen = self.lower.load(Ordering::Acquire);
        let end = self.scan_end();
        let mut p = seen;
        while p <= end {
            if let Some(key) = self.buckets[p as usize].peek_any() {
                return Some((key, p));
            }
            p += 1;
        }
        // ∞ entries never block a step; callers peeking for stall
        // provenance treat "only ∞ left" as nothing to name.
        None
    }

    fn set_upper_bound(&self, upper: Priority) {
        self.upper
            .store(upper.min(self.max_step), Ordering::Release);
    }

    fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        self.probes = PqProbes::from_telemetry(telemetry);
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn enqueue_dequeue_in_priority_order() {
        let pq = TwoLevelPq::new(10);
        pq.enqueue(1, 5);
        pq.enqueue(2, 2);
        pq.enqueue(3, 8);
        let mut out = Vec::new();
        pq.dequeue_batch(3, &mut out);
        let prios: Vec<_> = out.iter().map(|&(_, p)| p).collect();
        assert_eq!(prios, vec![2, 5, 8]);
        assert!(pq.is_empty());
    }

    #[test]
    fn top_priority_tracks_min() {
        let pq = TwoLevelPq::new(100);
        assert_eq!(pq.top_priority(), INFINITE);
        pq.enqueue(1, 30);
        assert_eq!(pq.top_priority(), 30);
        pq.enqueue(2, 10);
        assert_eq!(pq.top_priority(), 10);
        let mut out = Vec::new();
        pq.dequeue_batch(1, &mut out);
        assert_eq!(out, vec![(2, 10)]);
        assert_eq!(pq.top_priority(), 30);
    }

    #[test]
    fn peek_top_is_nondestructive() {
        let pq = TwoLevelPq::new(50);
        assert_eq!(pq.peek_top(), None);
        pq.enqueue(7, INFINITE);
        assert_eq!(pq.peek_top(), None, "∞ entries are never blocking");
        pq.enqueue(3, 4);
        assert_eq!(pq.peek_top(), Some((3, 4)));
        assert_eq!(pq.peek_top(), Some((3, 4)), "peek must not consume");
        assert_eq!(pq.top_priority(), 4);
    }

    #[test]
    fn infinite_entries_dequeue_last() {
        let pq = TwoLevelPq::new(10);
        pq.enqueue(1, INFINITE);
        pq.enqueue(2, 3);
        let mut out = Vec::new();
        pq.dequeue_batch(10, &mut out);
        assert_eq!(out, vec![(2, 3), (1, INFINITE)]);
    }

    #[test]
    fn infinite_does_not_block_top() {
        let pq = TwoLevelPq::new(10);
        pq.enqueue(1, INFINITE);
        // Only ∞ entries: training never blocks (top > any step).
        assert_eq!(pq.top_priority(), INFINITE);
        assert_eq!(pq.len(), 1);
    }

    #[test]
    fn adjust_moves_entry() {
        let pq = TwoLevelPq::new(10);
        pq.enqueue(7, 2);
        pq.adjust(7, 2, 9);
        assert_eq!(pq.top_priority(), 9);
        let mut out = Vec::new();
        pq.dequeue_batch(10, &mut out);
        assert_eq!(out, vec![(7, 9)]);
    }

    #[test]
    fn adjust_from_infinite_reactivates() {
        // The ∞ -> finite transition happens when a parameter with pending
        // writes gets prefetched for an upcoming step.
        let pq = TwoLevelPq::new(10);
        pq.enqueue(4, INFINITE);
        pq.adjust(4, INFINITE, 1);
        assert_eq!(pq.top_priority(), 1);
    }

    #[test]
    fn adjust_same_priority_is_noop() {
        let pq = TwoLevelPq::new(10);
        pq.enqueue(4, 5);
        pq.adjust(4, 5, 5);
        assert_eq!(pq.len(), 1);
        let mut out = Vec::new();
        pq.dequeue_batch(10, &mut out);
        assert_eq!(out, vec![(4, 5)]);
    }

    #[test]
    fn lower_bound_rescinds_on_lower_insert() {
        let pq = TwoLevelPq::new(100);
        pq.enqueue(1, 50);
        let mut out = Vec::new();
        pq.dequeue_batch(1, &mut out); // raises the scan lower bound to 50
        pq.enqueue(2, 10); // must pull the bound back down
        assert_eq!(pq.top_priority(), 10);
        out.clear();
        pq.dequeue_batch(1, &mut out);
        assert_eq!(out, vec![(2, 10)]);
    }

    #[test]
    fn upper_bound_limits_scan_but_infinity_survives() {
        let pq = TwoLevelPq::new(1_000_000);
        pq.set_upper_bound(20);
        pq.enqueue(1, 15);
        pq.enqueue(2, INFINITE);
        assert_eq!(pq.top_priority(), 15);
        let mut out = Vec::new();
        pq.dequeue_batch(10, &mut out);
        assert_eq!(out, vec![(1, 15), (2, INFINITE)]);
    }

    #[test]
    #[should_panic(expected = "> max_step")]
    fn rejects_out_of_range_priority() {
        let pq = TwoLevelPq::new(10);
        pq.enqueue(1, 11);
    }

    #[test]
    fn dequeue_batch_respects_max() {
        let pq = TwoLevelPq::new(10);
        for k in 0..20 {
            pq.enqueue(k, (k % 5) as Priority);
        }
        let mut out = Vec::new();
        pq.dequeue_batch(7, &mut out);
        assert_eq!(out.len(), 7);
        assert_eq!(pq.len(), 13);
        // Must have taken the smallest priorities first.
        assert!(out.iter().all(|&(_, p)| p <= 2));
    }

    #[test]
    fn concurrent_producers_and_flushers_lose_nothing() {
        let pq = Arc::new(TwoLevelPq::new(1_000));
        let producers: Vec<_> = (0..3u64)
            .map(|t| {
                let pq = Arc::clone(&pq);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        pq.enqueue(t * 2_000 + i, i % 1_000);
                    }
                })
            })
            .collect();
        let flushers: Vec<_> = (0..2)
            .map(|_| {
                let pq = Arc::clone(&pq);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut idle = 0;
                    while idle < 1_000 {
                        let before = got.len();
                        pq.dequeue_batch(64, &mut got);
                        if got.len() == before {
                            idle += 1;
                            std::thread::yield_now();
                        } else {
                            idle = 0;
                        }
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = flushers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .map(|(k, _)| k)
            .collect();
        // Drain stragglers.
        let mut rest = Vec::new();
        pq.dequeue_batch(usize::MAX, &mut rest);
        all.extend(rest.iter().map(|&(k, _)| k));
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 6_000, "lost or duplicated entries");
        assert!(pq.is_empty());
    }

    #[test]
    fn enqueue_batch_matches_sequential() {
        let a = TwoLevelPq::new(50);
        let b = TwoLevelPq::new(50);
        let items: Vec<(u64, Priority)> = (0..40u64)
            .map(|k| (k, if k % 7 == 0 { INFINITE } else { k % 13 }))
            .collect();
        for &(k, p) in &items {
            a.enqueue(k, p);
        }
        b.enqueue_batch(&items);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.top_priority(), b.top_priority());
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        a.dequeue_batch(usize::MAX, &mut oa);
        b.dequeue_batch(usize::MAX, &mut ob);
        oa.sort_unstable();
        ob.sort_unstable();
        assert_eq!(oa, ob);
    }

    #[test]
    fn adjust_batch_matches_sequential() {
        let a = TwoLevelPq::new(50);
        let b = TwoLevelPq::new(50);
        for k in 0..20u64 {
            a.enqueue(k, 40);
            b.enqueue(k, 40);
        }
        let moves: Vec<(u64, Priority, Priority)> = (0..20u64)
            .map(|k| {
                (
                    k,
                    40,
                    match k % 3 {
                        0 => k % 5,
                        1 => 40, // no-op move
                        _ => INFINITE,
                    },
                )
            })
            .collect();
        for &(k, o, n) in &moves {
            a.adjust(k, o, n);
        }
        b.adjust_batch(&moves);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.top_priority(), b.top_priority());
        let (mut oa, mut ob) = (Vec::new(), Vec::new());
        a.dequeue_batch(usize::MAX, &mut oa);
        b.dequeue_batch(usize::MAX, &mut ob);
        oa.sort_unstable();
        ob.sort_unstable();
        assert_eq!(oa, ob);
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn enqueue_batch_lowers_bound_after_raise() {
        // The single note_insert(batch-min) must pull a previously raised
        // scan bound back down below every batch entry.
        let pq = TwoLevelPq::new(100);
        pq.enqueue(1, 60);
        let mut out = Vec::new();
        pq.dequeue_batch(1, &mut out); // raises the lower bound to 60
        pq.enqueue_batch(&[(2, 30), (3, 10), (4, 45)]);
        assert_eq!(pq.top_priority(), 10);
        out.clear();
        pq.dequeue_batch(usize::MAX, &mut out);
        assert_eq!(out, vec![(3, 10), (2, 30), (4, 45)]);
    }

    #[test]
    fn concurrent_batch_registration_loses_nothing() {
        // Two "trainers" registering disjoint batches while a flusher
        // drains: every key must surface exactly once (modulo the stale
        // copies adjust_batch leaves, which dedup removes).
        let pq = Arc::new(TwoLevelPq::new(1_000));
        let regs: Vec<_> = (0..2u64)
            .map(|t| {
                let pq = Arc::clone(&pq);
                std::thread::spawn(move || {
                    for round in 0..200u64 {
                        let base = t * 100_000 + round * 100;
                        let items: Vec<(u64, Priority)> =
                            (0..32).map(|i| (base + i, (round + i) % 900)).collect();
                        pq.enqueue_batch(&items);
                        let moves: Vec<(u64, Priority, Priority)> =
                            items.iter().map(|&(k, p)| (k, p, (p + 7) % 900)).collect();
                        pq.adjust_batch(&moves);
                    }
                })
            })
            .collect();
        let flusher = {
            let pq = Arc::clone(&pq);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut idle = 0;
                while idle < 500 {
                    let before = got.len();
                    pq.dequeue_batch(64, &mut got);
                    if got.len() == before {
                        idle += 1;
                        std::thread::yield_now();
                    } else {
                        idle = 0;
                    }
                }
                got
            })
        };
        for r in regs {
            r.join().unwrap();
        }
        let mut keys: Vec<u64> = flusher
            .join()
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let mut rest = Vec::new();
        pq.dequeue_batch(usize::MAX, &mut rest);
        keys.extend(rest.into_iter().map(|(k, _)| k));
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 2 * 200 * 32, "every registered key surfaced");
    }

    #[test]
    fn debug_formats() {
        let pq = TwoLevelPq::new(5);
        pq.enqueue(1, 1);
        let s = format!("{pq:?}");
        assert!(s.contains("TwoLevelPq") && s.contains("len"));
    }
}
