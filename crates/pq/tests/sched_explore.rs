//! Deterministic schedule exploration of the PQ concurrency core
//! (`cargo test -p frugal-pq --features sched --test sched_explore`).
//!
//! Each race has two tests: with the historical code re-enabled behind its
//! test-only flag, the explorer must *find* the violating interleaving and
//! *replay* it from the recorded seed; with the current code, a full
//! seed sweep must report zero violations. The sweeps are seeded and the
//! scheduler is deterministic, so these tests have no flake surface: one
//! seed names one interleaving, forever.

#![cfg(feature = "sched")]

use frugal_pq::{LockFreeSet, PriorityQueue, TwoLevelPq, INFINITE};
use frugal_sched::{explore, replay, yield_point, ExploreConfig, SimBuilder, SimConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn quiet(seeds: std::ops::Range<u64>) -> ExploreConfig {
    ExploreConfig {
        seeds,
        sim: SimConfig::default(),
        announce_failure: false,
    }
}

// ---------------------------------------------------------------------------
// Race: LockFreeSet publish window (insert published the slot before
// counting it, so a key could be visible while `is_empty()` said empty).

fn publish_window_scenario(buggy: bool) -> impl FnMut(&mut SimBuilder) {
    move |sim: &mut SimBuilder| {
        let set = Arc::new(LockFreeSet::new());
        set.set_bug_publish_window(buggy);
        {
            let set = Arc::clone(&set);
            sim.thread("writer", move || set.insert(5));
        }
        {
            let set = Arc::clone(&set);
            sim.thread("reader", move || {
                for _ in 0..4 {
                    // Invariant: a findable key is always counted. The P²F
                    // wait condition treats an empty bucket as "no pending
                    // flush at this priority", so the opposite ordering
                    // admits a step with a pending write.
                    if set.contains(5) {
                        assert!(!set.is_empty(), "key visible but set reports empty");
                    }
                    yield_point("reader.probe");
                }
            });
        }
    }
}

#[test]
fn lfs_publish_window_race_is_found_and_replays() {
    let cfg = quiet(0..1024);
    let outcome = explore(&cfg, publish_window_scenario(true));
    let failure = outcome
        .failure
        .expect("historical publish-window race must be found");
    assert!(failure.failures[0]
        .message
        .contains("key visible but set reports empty"));

    eprintln!("publish-window race: replay seed {}", failure.seed);
    let replayed = replay(failure.seed, &cfg.sim, publish_window_scenario(true));
    assert!(replayed.failed(), "seed {} must replay", failure.seed);
    assert_eq!(replayed.trace, failure.trace);
}

#[test]
fn lfs_count_before_publish_survives_sweep() {
    let outcome = explore(&quiet(0..1024), publish_window_scenario(false));
    assert!(
        outcome.failure.is_none(),
        "count-before-publish order must be race-free: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 1024);
}

// ---------------------------------------------------------------------------
// Race: scan-raise (DESIGN.md §8 race 1). A scanner raising the lower
// bound over a prefix it proved empty can hide an entry inserted into that
// prefix mid-scan. Fix: a fence-paired verification rescan of the skipped
// range after every successful raise (the insert fast path stays a pure
// load — see `TwoLevelPq::note_insert`).

fn scan_raise_scenario(buggy: bool) -> impl FnMut(&mut SimBuilder) {
    move |sim: &mut SimBuilder| {
        let pq = Arc::new(TwoLevelPq::new(8));
        pq.set_bug_scan_raise(buggy);
        // Pre-seeded entry at priority 3 gives the scanner a reason to
        // raise the bound over 0..3 (build phase: not yet scheduled).
        pq.enqueue(100, 3);
        {
            let pq = Arc::clone(&pq);
            sim.thread("scanner", move || {
                pq.top_priority();
            });
        }
        {
            let pq = Arc::clone(&pq);
            sim.thread("inserter", move || pq.enqueue(200, 1));
        }
        let pq = Arc::clone(&pq);
        sim.check("bound is conservative", move || {
            // Both enqueues have returned; the smallest live priority is 1.
            // top_priority must never exceed it (it is exactly what the
            // P²F wait condition compares against the step number).
            let top = pq.top_priority();
            assert!(top <= 1, "scan-raise hid a pending entry: top = {top}");
        });
    }
}

#[test]
fn scan_raise_race_is_found_and_replays() {
    let cfg = quiet(0..4096);
    let outcome = explore(&cfg, scan_raise_scenario(true));
    let failure = outcome
        .failure
        .expect("historical scan-raise race must be found");
    assert!(failure.failures[0]
        .message
        .contains("scan-raise hid a pending entry"));

    eprintln!("scan-raise race: replay seed {}", failure.seed);
    let replayed = replay(failure.seed, &cfg.sim, scan_raise_scenario(true));
    assert!(replayed.failed(), "seed {} must replay", failure.seed);
    assert_eq!(replayed.trace, failure.trace);
}

#[test]
fn rescan_verified_raise_survives_sweep() {
    let outcome = explore(&quiet(0..1024), scan_raise_scenario(false));
    assert!(
        outcome.failure.is_none(),
        "rescan-verified raise must be race-free: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 1024);
}

// ---------------------------------------------------------------------------
// Race: dequeue-to-publish window (found by this harness). Between an
// entry leaving the queue and the flusher publishing its in-flight
// marker, the entry is covered by neither `top_priority` nor the marker.
// Fix: `dequeue_batch_guarded` publishes into the guard *before*
// extraction.

fn dequeue_publish_scenario(guarded: bool) -> impl FnMut(&mut SimBuilder) {
    move |sim: &mut SimBuilder| {
        let pq = Arc::new(TwoLevelPq::new(8));
        pq.enqueue(9, 3);
        let guard = Arc::new(AtomicU64::new(INFINITE));
        let applied = Arc::new(AtomicBool::new(false));
        {
            let pq = Arc::clone(&pq);
            let guard = Arc::clone(&guard);
            let applied = Arc::clone(&applied);
            sim.thread("flusher", move || {
                let mut out = Vec::new();
                if guarded {
                    pq.dequeue_batch_guarded(4, &mut out, &guard);
                } else {
                    // The historical engine ordering: extract first,
                    // publish the marker after.
                    pq.dequeue_batch(4, &mut out);
                    yield_point("flusher.publish_gap");
                    let min = out.iter().map(|&(_, p)| p).min().unwrap_or(INFINITE);
                    guard.store(min, Ordering::SeqCst);
                }
                yield_point("flusher.apply");
                applied.store(true, Ordering::SeqCst);
                guard.store(INFINITE, Ordering::SeqCst);
            });
        }
        {
            let pq = Arc::clone(&pq);
            let guard = Arc::clone(&guard);
            let applied = Arc::clone(&applied);
            sim.thread("trainer", move || {
                for _ in 0..6 {
                    // The P²F wait condition: step s may proceed iff
                    // top > s and no in-flight marker ≤ s. Until the
                    // flush of the priority-3 entry is applied, step 3
                    // must stay blocked — i.e. covered by one of the two.
                    let covered = pq.top_priority().min(guard.load(Ordering::SeqCst));
                    if !applied.load(Ordering::SeqCst) {
                        assert!(
                            covered <= 3,
                            "pending flush invisible to the wait condition"
                        );
                    }
                    yield_point("trainer.recheck");
                }
            });
        }
    }
}

#[test]
fn dequeue_publish_race_is_found_and_replays() {
    let cfg = quiet(0..1024);
    let outcome = explore(&cfg, dequeue_publish_scenario(false));
    let failure = outcome
        .failure
        .expect("dequeue-to-publish race must be found");
    assert!(failure.failures[0]
        .message
        .contains("pending flush invisible"));

    eprintln!("dequeue-to-publish race: replay seed {}", failure.seed);
    let replayed = replay(failure.seed, &cfg.sim, dequeue_publish_scenario(false));
    assert!(replayed.failed(), "seed {} must replay", failure.seed);
    assert_eq!(replayed.trace, failure.trace);
}

#[test]
fn guarded_dequeue_survives_sweep() {
    let outcome = explore(&quiet(0..1024), dequeue_publish_scenario(true));
    assert!(
        outcome.failure.is_none(),
        "guarded dequeue must leave no window: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 1024);
}

// ---------------------------------------------------------------------------
// Batch registration (the sharded-registration engine path). Two hazards:
//
// * `enqueue_batch` defers the bound update to one `note_insert(min)` after
//   all physical inserts, so a concurrent `top_priority` scan may raise the
//   bound *over* an already-inserted entry mid-batch. The engine publishes
//   the batch before the wait condition runs (barrier C), so the contract
//   is conservativeness *after the batch returns* — swept here with a
//   scanner racing the batch at every interior yield point.
// * `adjust_batch` moves entries between set-semantics buckets; insert-new
//   happens before delete-old per key, and old == new moves must be
//   skipped outright (inserting into the bucket the entry already occupies
//   is a no-op, so the delete would drop the only copy).

#[test]
fn enqueue_batch_stays_conservative_under_concurrent_raise() {
    let outcome = explore(&quiet(0..2048), |sim| {
        let pq = Arc::new(TwoLevelPq::new(8));
        // A pre-seeded high entry gives the scanner a reason to raise the
        // bound over the low prefix mid-batch.
        pq.enqueue(900, 5);
        {
            let pq = Arc::clone(&pq);
            // Keys 1 and 65 collide in a gstore shard upstream; here they
            // are simply two entries whose bound update is deferred.
            sim.thread("registrant", move || {
                pq.enqueue_batch(&[(1, 2), (65, 4), (2, 2)]);
            });
        }
        {
            let pq = Arc::clone(&pq);
            sim.thread("scanner", move || {
                for _ in 0..3 {
                    pq.top_priority();
                    yield_point("scanner.between");
                }
            });
        }
        let pq = Arc::clone(&pq);
        sim.check("bound conservative once batch returns", move || {
            let top = pq.top_priority();
            assert!(
                top <= 2,
                "enqueue_batch left the bound above its min: top = {top}"
            );
        });
    });
    assert!(
        outcome.failure.is_none(),
        "deferred note_insert must stay conservative: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 2048);
}

#[test]
fn adjust_batch_loses_no_entries_under_concurrent_drain() {
    let outcome = explore(&quiet(0..2048), |sim| {
        let pq = Arc::new(TwoLevelPq::new(16));
        pq.enqueue(1, 3);
        pq.enqueue(65, 3);
        pq.enqueue(2, 6);
        let drained = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let guard = Arc::new(AtomicU64::new(INFINITE));
        {
            let pq = Arc::clone(&pq);
            // One real move out of a shared bucket, one no-op move (the
            // would-drop case), one move into the scanned range.
            sim.thread("registrant", move || {
                pq.adjust_batch(&[(1, 3, 5), (65, 3, 3), (2, 6, 4)]);
            });
        }
        {
            let pq = Arc::clone(&pq);
            let drained = Arc::clone(&drained);
            let guard = Arc::clone(&guard);
            sim.thread("flusher", move || {
                let mut out = Vec::new();
                pq.dequeue_batch_guarded(8, &mut out, &guard);
                guard.store(INFINITE, Ordering::SeqCst);
                drained.lock().extend(out.into_iter().map(|(k, _)| k));
            });
        }
        let pq = Arc::clone(&pq);
        let drained = Arc::clone(&drained);
        sim.check("every key still reachable", move || {
            let mut keys = drained.lock().clone();
            let mut out = Vec::new();
            pq.dequeue_batch(16, &mut out);
            keys.extend(out.into_iter().map(|(k, _)| k));
            keys.sort_unstable();
            // A mid-move key is legitimately findable in both its old and
            // new bucket (insert-before-delete); duplicates are filtered by
            // caller-side validation upstream. Loss is the bug.
            keys.dedup();
            assert_eq!(keys, vec![1, 2, 65], "adjust_batch lost an entry");
        });
    });
    assert!(
        outcome.failure.is_none(),
        "insert-before-delete batch adjust must lose nothing: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 2048);
}

// ---------------------------------------------------------------------------
// Model check: concurrent set traffic must lose and duplicate nothing.

#[test]
fn lfs_concurrent_traffic_is_linearizable_to_a_set() {
    let outcome = explore(&quiet(0..256), |sim| {
        let set = Arc::new(LockFreeSet::new());
        let taken = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for (name, key) in [("ins-a", 1u64), ("ins-b", 2)] {
            let set = Arc::clone(&set);
            sim.thread(name, move || set.insert(key));
        }
        {
            let set = Arc::clone(&set);
            let taken = Arc::clone(&taken);
            sim.thread("taker", move || {
                let mut out = Vec::new();
                set.take_any(2, &mut out);
                taken.lock().extend(out);
            });
        }
        let set = Arc::clone(&set);
        let taken = Arc::clone(&taken);
        sim.check("no loss, no duplication", move || {
            let mut all = taken.lock().clone();
            for k in [1u64, 2] {
                if set.contains(k) {
                    all.push(k);
                }
            }
            all.sort_unstable();
            assert_eq!(all, vec![1, 2], "keys lost or duplicated");
        });
    });
    assert!(
        outcome.failure.is_none(),
        "set model check failed: {:?}",
        outcome.failure
    );
}
