//! Model-based property tests: the lock-free set against a `HashSet`, and
//! the two-level PQ against a sorted reference, over random op sequences.

use frugal_pq::{LockFreeSet, PriorityQueue, TwoLevelPq, INFINITE};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Remove(u64),
    TakeAny(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..128).prop_map(Op::Insert),
        (0u64..128).prop_map(Op::Remove),
        (0usize..8).prop_map(Op::TakeAny),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lockfree_set_matches_hashset_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let set = LockFreeSet::new();
        let mut model: HashSet<u64> = HashSet::new();
        for op in ops {
            match op {
                Op::Insert(k) => {
                    if !model.contains(&k) {
                        set.insert(k);
                        model.insert(k);
                    }
                }
                Op::Remove(k) => {
                    prop_assert_eq!(set.remove(k), model.remove(&k));
                }
                Op::TakeAny(max) => {
                    let mut out = Vec::new();
                    let got = set.take_any(max, &mut out);
                    prop_assert!(got <= max);
                    for k in out {
                        prop_assert!(model.remove(&k), "took absent key {}", k);
                    }
                }
            }
            prop_assert_eq!(set.len(), model.len());
        }
        for &k in &model {
            prop_assert!(set.contains(k), "model key {} missing", k);
        }
    }

    #[test]
    fn two_level_pq_top_is_sound(
        inserts in proptest::collection::vec((0u64..64, 0u64..33), 1..100),
    ) {
        // top_priority must never exceed the true minimum live priority —
        // the safety direction the P2F wait condition depends on.
        let pq = TwoLevelPq::new(32);
        let mut seen = HashSet::new();
        let mut min_live = INFINITE;
        for &(k, p) in &inserts {
            if seen.insert(k) {
                let p = if p == 32 { INFINITE } else { p };
                pq.enqueue(k, p);
                min_live = min_live.min(p);
            }
        }
        prop_assert!(pq.top_priority() <= min_live);
    }
}
