//! Seed-sweep driver: run a scenario under many schedules, stop at the
//! first violation, and make it replayable.

use crate::sim::{run_schedule, RunOutcome, SimBuilder, SimConfig};
use std::ops::Range;

/// Configuration for a seed sweep.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Seed range to sweep (one schedule per seed).
    pub seeds: Range<u64>,
    /// Per-run limits and policy.
    pub sim: SimConfig,
    /// Print the failing seed and trace to stderr when a violation is
    /// found (so a CI log alone suffices to replay it).
    pub announce_failure: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            seeds: 0..256,
            sim: SimConfig::default(),
            announce_failure: true,
        }
    }
}

/// Result of a seed sweep.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Schedules actually executed (≤ the seed range's length: the sweep
    /// stops at the first failure).
    pub runs: u64,
    /// The first failing run, if any. Its `seed` replays it via [`replay`].
    pub failure: Option<RunOutcome>,
    /// How many runs were aborted for exceeding the step budget. These are
    /// not failures, but a high count means the budget is too small for
    /// the scenario and coverage is degraded.
    pub budget_exceeded_runs: u64,
}

impl ExploreOutcome {
    /// True if some schedule violated a check or panicked a thread.
    pub fn found_violation(&self) -> bool {
        self.failure.is_some()
    }
}

/// Sweeps `cfg.seeds`, building a fresh scenario per seed via `build`, and
/// stops at the first violating schedule.
///
/// The builder closure is `FnMut` because it runs once per seed; scenario
/// state must be created *inside* it so runs stay independent.
pub fn explore(cfg: &ExploreConfig, mut build: impl FnMut(&mut SimBuilder)) -> ExploreOutcome {
    let mut runs = 0;
    let mut budget_exceeded_runs = 0;
    for seed in cfg.seeds.clone() {
        let outcome = run_schedule(seed, &cfg.sim, &mut build);
        runs += 1;
        if outcome.budget_exceeded {
            budget_exceeded_runs += 1;
        }
        if outcome.failed() {
            if cfg.announce_failure {
                eprintln!(
                    "frugal-sched: violation at seed {seed} after {} steps \
                     (replay with frugal_sched::replay({seed}, ..)):",
                    outcome.steps
                );
                for f in &outcome.failures {
                    eprintln!("  [{}] {}", f.thread_name, f.message);
                }
                eprint!("{}", outcome.format_trace());
            }
            return ExploreOutcome {
                runs,
                failure: Some(outcome),
                budget_exceeded_runs,
            };
        }
    }
    ExploreOutcome {
        runs,
        failure: None,
        budget_exceeded_runs,
    }
}

/// Re-executes exactly the schedule that seed `seed` produces under `sim` —
/// the deterministic replay of a failure printed by [`explore`].
pub fn replay(seed: u64, sim: &SimConfig, build: impl FnOnce(&mut SimBuilder)) -> RunOutcome {
    run_schedule(seed, sim, build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::yield_point;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn lost_update(sim: &mut SimBuilder) {
        let cell = Arc::new(AtomicU64::new(0));
        for name in ["a", "b"] {
            let cell = Arc::clone(&cell);
            sim.thread(name, move || {
                let v = cell.load(Ordering::SeqCst);
                yield_point("rmw gap");
                cell.store(v + 1, Ordering::SeqCst);
            });
        }
        let cell = Arc::clone(&cell);
        sim.check("sum", move || {
            assert_eq!(cell.load(Ordering::SeqCst), 2, "lost update");
        });
    }

    #[test]
    fn finds_and_replays_lost_update() {
        let cfg = ExploreConfig {
            announce_failure: false,
            ..ExploreConfig::default()
        };
        let outcome = explore(&cfg, lost_update);
        let failure = outcome.failure.expect("race must be found");
        assert!(failure.failures[0].message.contains("lost update"));

        // The printed seed replays the identical interleaving.
        let replayed = replay(failure.seed, &cfg.sim, lost_update);
        assert!(replayed.failed());
        assert_eq!(replayed.trace, failure.trace);
    }

    #[test]
    fn clean_scenario_sweeps_all_seeds() {
        let cfg = ExploreConfig {
            seeds: 0..40,
            announce_failure: false,
            ..ExploreConfig::default()
        };
        let outcome = explore(&cfg, |sim| {
            let cell = Arc::new(AtomicU64::new(0));
            for name in ["a", "b"] {
                let cell = Arc::clone(&cell);
                sim.thread(name, move || {
                    cell.fetch_add(1, Ordering::SeqCst); // atomic RMW: no race
                    yield_point("after add");
                });
            }
            let cell = Arc::clone(&cell);
            sim.check("sum", move || {
                assert_eq!(cell.load(Ordering::SeqCst), 2);
            });
        });
        assert!(!outcome.found_violation());
        assert_eq!(outcome.runs, 40);
        assert_eq!(outcome.budget_exceeded_runs, 0);
    }
}
