//! # frugal-sched — deterministic schedule exploration for the P²F core
//!
//! The paper's correctness story rests on invariant (2) of §3.3: at step
//! `s` no g-entry has `W ≠ ∅ ∧ s ∈ R`. The structures enforcing it
//! ([`TwoLevelPq`], `LockFreeSet`, the wait-condition path) are lock-free,
//! and the bugs they can have are *schedule-dependent*: a particular
//! interleaving of a handful of atomic operations. Stress loops hit such
//! interleavings by luck; this crate hits them by **enumeration**.
//!
//! The harness is a "loom-lite": no dependencies, no replacement atomics.
//! Code under test is instrumented with explicit yield points
//! ([`yield_point`], cfg-gated behind each crate's `sched` feature), and a
//! scenario's threads run as *virtual threads* — real OS threads of which
//! exactly **one** is runnable at any instant. Every scheduling decision
//! comes from a seeded deterministic policy, so
//!
//! * a run is fully determined by its seed (same seed ⇒ same interleaving
//!   ⇒ same outcome), and
//! * a violation found by [`explore`] is replayed exactly by
//!   [`replay`] with the printed seed.
//!
//! Two policies are provided: uniform random walk over runnable threads,
//! and PCT-style priority scheduling with `d` change points (probabilistic
//! concurrency testing — good at low-depth ordering bugs with few
//! schedules).
//!
//! ```
//! use frugal_sched::{explore, ExploreConfig, SimBuilder};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! // A lost-update race: two threads read-modify-write non-atomically.
//! let outcome = explore(&ExploreConfig::default(), |sim: &mut SimBuilder| {
//!     let cell = Arc::new(AtomicU64::new(0));
//!     for name in ["a", "b"] {
//!         let cell = Arc::clone(&cell);
//!         sim.thread(name, move || {
//!             let v = cell.load(Ordering::SeqCst);
//!             frugal_sched::yield_point("between load and store");
//!             cell.store(v + 1, Ordering::SeqCst);
//!         });
//!     }
//!     let cell = Arc::clone(&cell);
//!     sim.check("no lost update", move || {
//!         assert_eq!(cell.load(Ordering::SeqCst), 2, "lost update");
//!     });
//! });
//! let failure = outcome.failure.expect("the race must be found");
//! assert!(failure.failures[0].message.contains("lost update"));
//! ```
//!
//! [`TwoLevelPq`]: ../frugal_pq/struct.TwoLevelPq.html

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod explore;
mod rng;
mod sim;

pub use explore::{explore, replay, ExploreConfig, ExploreOutcome};
pub use rng::SplitMix64;
pub use sim::{
    run_schedule, yield_point, Policy, RunOutcome, SimBuilder, SimConfig, ThreadFailure, TraceEvent,
};
