//! Deterministic PRNG for schedule decisions.
//!
//! SplitMix64: tiny, statistically solid for this use (picking one of ≤ 8
//! threads per step), and — critically — stable across platforms and
//! releases, so a printed seed replays the same interleaving everywhere.

/// A seeded SplitMix64 generator. Every scheduling decision of a run draws
/// from one of these, which is all the nondeterminism a run has.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at these tiny bounds.
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1_000 {
            assert!(r.next_below(5) < 5);
        }
    }
}
