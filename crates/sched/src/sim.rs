//! The deterministic cooperative scheduler: virtual threads, yield points,
//! and single-schedule execution.
//!
//! A *virtual thread* is a real OS thread that only runs while it holds the
//! execution token. The token moves at **yield points**: instrumented
//! shared-memory transitions inside the code under test (see
//! [`yield_point`]) plus the implicit yields at thread start and exit. The
//! controlling thread hands the token to one runnable thread at a time, in
//! an order fully determined by the seed, so one seed ⇒ one interleaving.
//!
//! Because at most one virtual thread executes between yield points, the
//! harness serializes the execution it explores — data races are exhibited
//! as *orderings* of the instrumented transitions rather than as physical
//! simultaneity. That is exactly the granularity at which the P²F
//! structures' invariants live (every cross-thread protocol step in
//! `LockFreeSet` / `TwoLevelPq` / the wait condition carries a hook).

use crate::rng::SplitMix64;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

/// One executed yield point of a run: which virtual thread passed which
/// instrumentation label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Index of the virtual thread (registration order).
    pub thread: usize,
    /// Name given to [`SimBuilder::thread`].
    pub thread_name: &'static str,
    /// The yield point's label.
    pub label: &'static str,
}

/// A panic captured from a virtual thread or a quiescent check.
#[derive(Debug, Clone)]
pub struct ThreadFailure {
    /// The virtual thread's (or check's) name.
    pub thread_name: &'static str,
    /// The panic payload rendered as text.
    pub message: String,
}

/// Everything observed while executing one schedule.
#[derive(Debug)]
pub struct RunOutcome {
    /// The seed that produced this schedule.
    pub seed: u64,
    /// Number of yield points executed.
    pub steps: u64,
    /// The interleaving, one event per yield point.
    pub trace: Vec<TraceEvent>,
    /// Panics from virtual threads and quiescent checks, in detection order.
    pub failures: Vec<ThreadFailure>,
    /// True if the run hit [`SimConfig::max_steps`] and was aborted into
    /// free-running mode (treated as a livelock, not a violation).
    pub budget_exceeded: bool,
}

impl RunOutcome {
    /// True if any virtual thread or check panicked.
    pub fn failed(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Renders the interleaving as one line per yield point.
    pub fn format_trace(&self) -> String {
        let mut s = String::new();
        for (i, ev) in self.trace.iter().enumerate() {
            s.push_str(&format!(
                "  #{i:<4} {:<12} @ {}\n",
                ev.thread_name, ev.label
            ));
        }
        s
    }
}

/// Scheduling policy for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Uniform random choice among runnable threads at every yield point.
    Random,
    /// PCT-style priority scheduling (Burckhardt et al.): threads get
    /// distinct random priorities; the highest-priority runnable thread
    /// always runs; at `depth - 1` seed-chosen step indices the running
    /// thread's priority drops below all others. Finds any bug of ordering
    /// depth ≤ `depth` with probability ≥ 1/(n·k^(depth-1)) per schedule,
    /// where `n` is the thread count and `k` the program length.
    Pct {
        /// Bug depth to target (number of ordering constraints + 1).
        depth: usize,
        /// Estimate of the scenario's yield-point count `k`; priority
        /// change points are sampled uniformly from `0..steps`. Over- or
        /// under-estimating degrades the detection probability but never
        /// correctness or determinism.
        steps: u64,
    },
}

/// Per-run limits and policy.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Yield-point budget: a schedule still alive after this many yields is
    /// aborted (free-run to completion) and reported as budget-exceeded.
    pub max_steps: u64,
    /// Scheduling policy.
    pub policy: Policy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_steps: 20_000,
            policy: Policy::Random,
        }
    }
}

type ThreadBody = Box<dyn FnOnce() + Send>;
type CheckBody = Box<dyn FnOnce()>;

/// Registers the virtual threads and quiescent checks of one scenario run.
///
/// Scenario state is shared between closures with `Arc`s; every run builds
/// a fresh scenario, so runs are independent.
#[derive(Default)]
pub struct SimBuilder {
    threads: Vec<(&'static str, ThreadBody)>,
    checks: Vec<(&'static str, CheckBody)>,
}

impl std::fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("threads", &self.threads.len())
            .field("checks", &self.checks.len())
            .finish()
    }
}

impl SimBuilder {
    /// Adds a virtual thread running `body` under the scheduler.
    pub fn thread(&mut self, name: &'static str, body: impl FnOnce() + Send + 'static) {
        self.threads.push((name, Box::new(body)));
    }

    /// Adds a check executed on the controller thread after every virtual
    /// thread has finished (quiescence). Panics are recorded as failures of
    /// the run, exactly like virtual-thread panics.
    pub fn check(&mut self, name: &'static str, check: impl FnOnce() + 'static) {
        self.checks.push((name, Box::new(check)));
    }
}

// ---------------------------------------------------------------------------
// Shared scheduler state.

struct SimState {
    /// Which virtual thread holds the execution token (`None`: controller).
    current: Option<usize>,
    alive: Vec<bool>,
    steps: u64,
    trace: Vec<TraceEvent>,
    failures: Vec<ThreadFailure>,
    /// When set, yield points stop blocking and all threads run freely to
    /// completion (budget exhaustion or early-stop teardown).
    free_run: bool,
}

struct SimShared {
    state: Mutex<SimState>,
    cv: Condvar,
    names: Vec<&'static str>,
}

impl SimShared {
    fn lock(&self) -> MutexGuard<'_, SimState> {
        // A virtual thread can only panic *outside* this lock (user code
        // runs between yield points), but be robust anyway.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Handle a virtual thread keeps in TLS while it participates in a run.
#[derive(Clone)]
struct VthreadHandle {
    id: usize,
    shared: Arc<SimShared>,
}

thread_local! {
    static CURRENT_VTHREAD: RefCell<Option<VthreadHandle>> = const { RefCell::new(None) };
}

/// Panic payload used to unwind a virtual thread during teardown (budget
/// exhausted, or another thread already failed). Never recorded as a
/// failure. Unwinding is the only way to stop a thread that free-runs
/// through an instrumented loop.
struct BudgetAbort;

/// Installed once per process: silences the default "thread panicked"
/// stderr report for panics raised *inside a virtual thread* — the harness
/// captures and reports those itself — and delegates everything else to
/// the pre-existing hook. Installing once and never removing keeps this
/// safe under parallel test execution.
fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_vthread = CURRENT_VTHREAD
                .try_with(|c| c.borrow().is_some())
                .unwrap_or(false);
            if !in_vthread {
                prev(info);
            }
        }));
    });
}

/// The instrumentation hook: cedes control to the scheduler when called
/// from a virtual thread, and is a cheap no-op (one TLS load) otherwise.
///
/// Instrumented crates call this behind their `sched` feature at every
/// shared-memory transition that participates in a cross-thread protocol;
/// `label` names the transition in traces.
pub fn yield_point(label: &'static str) {
    let handle = CURRENT_VTHREAD.with(|c| c.borrow().clone());
    if let Some(h) = handle {
        h.yield_at(label);
    }
}

impl VthreadHandle {
    fn yield_at(&self, label: &'static str) {
        let mut st = self.shared.lock();
        if st.free_run {
            drop(st);
            std::panic::panic_any(BudgetAbort);
        }
        st.steps += 1;
        st.trace.push(TraceEvent {
            thread: self.id,
            thread_name: self.shared.names[self.id],
            label,
        });
        st.current = None;
        self.shared.cv.notify_all();
        while st.current != Some(self.id) {
            if st.free_run {
                drop(st);
                std::panic::panic_any(BudgetAbort);
            }
            st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until the scheduler grants the first step. Returns false if
    /// the run was torn down before this thread ever ran.
    fn wait_first_grant(&self) -> bool {
        let mut st = self.shared.lock();
        loop {
            if st.current == Some(self.id) {
                return true;
            }
            if st.free_run {
                return false;
            }
            st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn finish(&self, panic: Option<String>) {
        let mut st = self.shared.lock();
        st.alive[self.id] = false;
        if let Some(message) = panic {
            st.failures.push(ThreadFailure {
                thread_name: self.shared.names[self.id],
                message,
            });
        }
        if st.current == Some(self.id) {
            st.current = None;
        }
        self.shared.cv.notify_all();
    }
}

fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Policies.

enum PolicyState {
    Random,
    Pct {
        /// Current priority per thread; higher runs first.
        prio: Vec<u64>,
        /// Step indices (sorted descending) at which the running thread's
        /// priority is demoted below all others.
        change_points: Vec<u64>,
        /// Counter handing out ever-lower priorities on demotion.
        next_low: u64,
    },
}

impl PolicyState {
    fn new(policy: Policy, n_threads: usize, rng: &mut SplitMix64) -> Self {
        match policy {
            Policy::Random => PolicyState::Random,
            Policy::Pct { depth, steps } => {
                // Distinct random priorities via a seeded shuffle of
                // n..2n, leaving 0..n for demotions.
                let mut prio: Vec<u64> = (0..n_threads as u64)
                    .map(|i| n_threads as u64 + i)
                    .collect();
                for i in (1..prio.len()).rev() {
                    prio.swap(i, rng.next_below(i + 1));
                }
                let mut change_points: Vec<u64> = (0..depth.saturating_sub(1))
                    .map(|_| rng.next_u64() % steps.max(1))
                    .collect();
                change_points.sort_unstable_by(|a, b| b.cmp(a));
                PolicyState::Pct {
                    prio,
                    change_points,
                    next_low: n_threads as u64,
                }
            }
        }
    }

    fn pick(&mut self, runnable: &[usize], step: u64, rng: &mut SplitMix64) -> usize {
        match self {
            PolicyState::Random => runnable[rng.next_below(runnable.len())],
            PolicyState::Pct {
                prio,
                change_points,
                next_low,
            } => {
                let pick = *runnable
                    .iter()
                    .max_by_key(|&&t| prio[t])
                    .expect("runnable is non-empty");
                // (while, not if: duplicate sampled change points collapse
                // into one demotion at this step.)
                while change_points.last() == Some(&step) {
                    change_points.pop();
                    // Demote the thread that would run, strictly below
                    // every priority handed out so far.
                    *next_low = next_low.saturating_sub(1);
                    prio[pick] = *next_low;
                }
                pick
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Single-schedule execution.

/// Executes one schedule of the scenario built by `build`, fully determined
/// by `seed`. See [`crate::explore`] for driving many seeds.
pub fn run_schedule(seed: u64, cfg: &SimConfig, build: impl FnOnce(&mut SimBuilder)) -> RunOutcome {
    let mut builder = SimBuilder::default();
    build(&mut builder);
    let n = builder.threads.len();
    assert!(n > 0, "a scenario needs at least one virtual thread");
    install_quiet_panic_hook();

    let names: Vec<&'static str> = builder.threads.iter().map(|(n, _)| *n).collect();
    let shared = Arc::new(SimShared {
        state: Mutex::new(SimState {
            current: None,
            alive: vec![true; n],
            steps: 0,
            trace: Vec::new(),
            failures: Vec::new(),
            free_run: false,
        }),
        cv: Condvar::new(),
        names,
    });

    let mut rng = SplitMix64::new(seed ^ 0xD1B5_4A32_D192_ED03);
    let mut policy = PolicyState::new(cfg.policy, n, &mut rng);

    let joins: Vec<_> = builder
        .threads
        .into_iter()
        .enumerate()
        .map(|(id, (_, body))| {
            let handle = VthreadHandle {
                id,
                shared: Arc::clone(&shared),
            };
            std::thread::spawn(move || {
                CURRENT_VTHREAD.with(|c| *c.borrow_mut() = Some(handle.clone()));
                let panic = if handle.wait_first_grant() {
                    match catch_unwind(AssertUnwindSafe(body)) {
                        Ok(()) => None,
                        // Teardown unwind, not a violation.
                        Err(p) if p.is::<BudgetAbort>() => None,
                        Err(p) => Some(payload_to_string(p)),
                    }
                } else {
                    None
                };
                CURRENT_VTHREAD.with(|c| *c.borrow_mut() = None);
                handle.finish(panic);
            })
        })
        .collect();

    let mut budget_exceeded = false;
    {
        let mut st = shared.lock();
        loop {
            while st.current.is_some() {
                st = shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            // Stop scheduling as soon as a thread failed: remaining threads
            // free-run to completion so the run can be torn down.
            if !st.failures.is_empty() || st.steps >= cfg.max_steps {
                budget_exceeded = st.failures.is_empty();
                st.free_run = true;
                shared.cv.notify_all();
                break;
            }
            let runnable: Vec<usize> = (0..n).filter(|&t| st.alive[t]).collect();
            if runnable.is_empty() {
                break;
            }
            let pick = policy.pick(&runnable, st.steps, &mut rng);
            st.current = Some(pick);
            shared.cv.notify_all();
        }
    }
    for j in joins {
        let _ = j.join();
    }

    // Quiescence: run the checks on this thread, recording panics.
    let mut st = shared.lock();
    let mut failures = std::mem::take(&mut st.failures);
    let steps = st.steps;
    let trace = std::mem::take(&mut st.trace);
    drop(st);
    if failures.is_empty() && !budget_exceeded {
        for (name, check) in builder.checks {
            if let Err(p) = catch_unwind(AssertUnwindSafe(check)) {
                failures.push(ThreadFailure {
                    thread_name: name,
                    message: payload_to_string(p),
                });
                break;
            }
        }
    }

    RunOutcome {
        seed,
        steps,
        trace,
        failures,
        budget_exceeded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn two_step_scenario(log: &Arc<Mutex<Vec<&'static str>>>, sim: &mut SimBuilder) {
        for name in ["t0", "t1"] {
            let log = Arc::clone(log);
            sim.thread(name, move || {
                log.lock().unwrap().push(name);
                yield_point("mid");
                log.lock().unwrap().push(name);
            });
        }
    }

    #[test]
    fn same_seed_same_trace() {
        for seed in 0..32 {
            let log_a = Arc::new(Mutex::new(Vec::new()));
            let a = run_schedule(seed, &SimConfig::default(), |sim| {
                two_step_scenario(&log_a, sim)
            });
            let log_b = Arc::new(Mutex::new(Vec::new()));
            let b = run_schedule(seed, &SimConfig::default(), |sim| {
                two_step_scenario(&log_b, sim)
            });
            assert_eq!(a.trace, b.trace, "seed {seed}");
            assert_eq!(*log_a.lock().unwrap(), *log_b.lock().unwrap());
        }
    }

    #[test]
    fn different_seeds_reach_different_interleavings() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..64 {
            let log = Arc::new(Mutex::new(Vec::new()));
            run_schedule(seed, &SimConfig::default(), |sim| {
                two_step_scenario(&log, sim)
            });
            seen.insert(log.lock().unwrap().clone());
        }
        // 2 threads × 1 yield each: several distinct interleavings exist
        // and random exploration must reach more than one.
        assert!(seen.len() > 1, "exploration stuck on one interleaving");
    }

    #[test]
    fn virtual_thread_panic_is_captured() {
        let out = run_schedule(0, &SimConfig::default(), |sim| {
            sim.thread("bad", || panic!("boom {}", 42));
            sim.thread("good", || yield_point("ok"));
        });
        assert!(out.failed());
        assert_eq!(out.failures[0].thread_name, "bad");
        assert!(out.failures[0].message.contains("boom 42"));
    }

    #[test]
    fn quiescent_check_runs_after_threads() {
        let counter = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&counter);
        let c2 = Arc::clone(&counter);
        let out = run_schedule(1, &SimConfig::default(), move |sim| {
            let c = Arc::clone(&c);
            sim.thread("inc", move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
            let c = Arc::clone(&c2);
            sim.check("saw increment", move || {
                assert_eq!(c.load(Ordering::SeqCst), 1);
            });
        });
        assert!(!out.failed(), "{:?}", out.failures);
    }

    #[test]
    fn budget_exhaustion_aborts_cleanly() {
        let out = run_schedule(
            3,
            &SimConfig {
                max_steps: 50,
                policy: Policy::Random,
            },
            |sim| {
                sim.thread("spinner", || loop {
                    yield_point("spin");
                });
            },
        );
        assert!(out.budget_exceeded);
        assert!(!out.failed());
    }

    #[test]
    fn pct_policy_is_deterministic() {
        let cfg = SimConfig {
            max_steps: 1_000,
            policy: Policy::Pct { depth: 3, steps: 8 },
        };
        let log_a = Arc::new(Mutex::new(Vec::new()));
        let a = run_schedule(9, &cfg, |sim| two_step_scenario(&log_a, sim));
        let log_b = Arc::new(Mutex::new(Vec::new()));
        let b = run_schedule(9, &cfg, |sim| two_step_scenario(&log_b, sim));
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn trace_formats_with_labels() {
        let out = run_schedule(0, &SimConfig::default(), |sim| {
            sim.thread("only", || yield_point("landmark"));
        });
        let s = out.format_trace();
        assert!(s.contains("only") && s.contains("landmark"));
    }

    #[test]
    fn yield_point_outside_simulation_is_noop() {
        yield_point("not in a run"); // must not block or panic
    }
}
