//! End-to-end tests of the schedule explorer on model races: the harness
//! must find known bugs, replay them from the printed seed, and stay
//! silent on correct code.

use frugal_sched::{explore, replay, yield_point, ExploreConfig, Policy, SimBuilder, SimConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A publish-window model of the LockFreeSet bug shape: writer publishes
/// data, yields, then raises the "ready" flag — a reader observing
/// `ready && !data` mid-window is the violation.
fn publish_window(buggy: bool) -> impl FnMut(&mut SimBuilder) {
    move |sim: &mut SimBuilder| {
        let data = Arc::new(AtomicBool::new(false));
        let ready = Arc::new(AtomicBool::new(false));
        {
            let data = Arc::clone(&data);
            let ready = Arc::clone(&ready);
            sim.thread("writer", move || {
                if buggy {
                    data.store(true, Ordering::SeqCst);
                    yield_point("published data");
                    ready.store(true, Ordering::SeqCst);
                } else {
                    ready.store(true, Ordering::SeqCst);
                    yield_point("announced");
                    data.store(true, Ordering::SeqCst);
                }
            });
        }
        {
            let data = Arc::clone(&data);
            let ready = Arc::clone(&ready);
            sim.thread("reader", move || {
                yield_point("probe");
                // Violation shape: the key is visible but the emptiness
                // signal says nothing is there.
                let d = data.load(Ordering::SeqCst);
                let r = ready.load(Ordering::SeqCst);
                assert!(!d || r, "visible but not counted");
            });
        }
    }
}

#[test]
fn finds_publish_window_race() {
    let cfg = ExploreConfig {
        announce_failure: false,
        ..ExploreConfig::default()
    };
    let outcome = explore(&cfg, publish_window(true));
    let failure = outcome.failure.expect("publish-window race must be found");
    assert!(failure.failures[0]
        .message
        .contains("visible but not counted"));

    // Deterministic replay from the recorded seed.
    let replayed = replay(failure.seed, &cfg.sim, publish_window(true));
    assert!(replayed.failed());
    assert_eq!(replayed.trace, failure.trace);
}

#[test]
fn fixed_publish_order_survives_sweep() {
    let cfg = ExploreConfig {
        seeds: 0..512,
        announce_failure: false,
        ..ExploreConfig::default()
    };
    let outcome = explore(&cfg, publish_window(false));
    assert!(
        !outcome.found_violation(),
        "fixed ordering must pass: {:?}",
        outcome.failure
    );
    assert_eq!(outcome.runs, 512);
}

#[test]
fn pct_policy_finds_the_race_too() {
    let cfg = ExploreConfig {
        sim: SimConfig {
            policy: Policy::Pct { depth: 3, steps: 8 },
            ..SimConfig::default()
        },
        announce_failure: false,
        ..ExploreConfig::default()
    };
    let outcome = explore(&cfg, publish_window(true));
    assert!(outcome.found_violation(), "PCT sweep must find the race");
}

#[test]
fn three_thread_counter_torn_increment() {
    // Classic depth-2 bug with three contenders: non-atomic increments.
    let cfg = ExploreConfig {
        announce_failure: false,
        ..ExploreConfig::default()
    };
    let outcome = explore(&cfg, |sim| {
        let cell = Arc::new(AtomicU64::new(0));
        for name in ["a", "b", "c"] {
            let cell = Arc::clone(&cell);
            sim.thread(name, move || {
                let v = cell.load(Ordering::SeqCst);
                yield_point("gap");
                cell.store(v + 1, Ordering::SeqCst);
            });
        }
        let cell = Arc::clone(&cell);
        sim.check("no lost increments", move || {
            assert_eq!(cell.load(Ordering::SeqCst), 3, "lost update");
        });
    });
    assert!(outcome.found_violation());
}

#[test]
fn replay_is_stable_across_many_invocations() {
    // The determinism contract the CI job leans on: a seed names one
    // interleaving, forever.
    let sim = SimConfig::default();
    let reference = replay(17, &sim, publish_window(true));
    for _ in 0..10 {
        let again = replay(17, &sim, publish_window(true));
        assert_eq!(again.trace, reference.trace);
        assert_eq!(again.failed(), reference.failed());
    }
}
