//! Per-iteration time decomposition.
//!
//! [`IterBreakdown`] carries the exact categories the paper uses in its
//! motivation (Fig 3c) and technique analysis (Fig 12): collective
//! communication, host DRAM access, GPU cache access, and "other" (DNN
//! compute etc.), plus the training-process *stall* that Exp #2/#4 measure.

use crate::time::Nanos;

/// Time spent in each phase of one training iteration.
///
/// # Examples
///
/// ```
/// use frugal_sim::{IterBreakdown, Nanos};
///
/// let mut it = IterBreakdown::default();
/// it.comm += Nanos::from_millis(3);
/// it.other += Nanos::from_millis(1);
/// assert_eq!(it.total(), Nanos::from_millis(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IterBreakdown {
    /// Collective communication on the critical path (all_to_all of keys and
    /// embeddings) — "comm." in Fig 3c.
    pub comm: Nanos,
    /// Host memory access for cache misses / parameter reads — "host DRAM".
    pub host_dram: Nanos,
    /// Local GPU cache access (query + update) — "cache".
    pub cache: Nanos,
    /// Everything else: DNN compute, sampling, optimizer — "other".
    pub other: Nanos,
    /// Foreground stall waiting for flushing (write-through drain or the
    /// P²F wait condition). Measured wall time in the real engines.
    pub stall: Nanos,
}

impl IterBreakdown {
    /// Total iteration time.
    pub fn total(&self) -> Nanos {
        self.comm + self.host_dram + self.cache + self.other + self.stall
    }

    /// Element-wise sum with another breakdown.
    pub fn merged(&self, rhs: &IterBreakdown) -> IterBreakdown {
        IterBreakdown {
            comm: self.comm + rhs.comm,
            host_dram: self.host_dram + rhs.host_dram,
            cache: self.cache + rhs.cache,
            other: self.other + rhs.other,
            stall: self.stall + rhs.stall,
        }
    }
}

/// Aggregate statistics over the iterations of a training run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    iters: Vec<IterBreakdown>,
    samples_per_iter: u64,
}

impl RunStats {
    /// Creates empty statistics for a run processing `samples_per_iter`
    /// samples (summed across all GPUs) per iteration.
    pub fn new(samples_per_iter: u64) -> Self {
        RunStats {
            iters: Vec::new(),
            samples_per_iter,
        }
    }

    /// Records one iteration.
    pub fn push(&mut self, it: IterBreakdown) {
        self.iters.push(it);
    }

    /// Number of recorded iterations.
    pub fn len(&self) -> usize {
        self.iters.len()
    }

    /// True if no iterations were recorded.
    pub fn is_empty(&self) -> bool {
        self.iters.is_empty()
    }

    /// The recorded iterations.
    pub fn iters(&self) -> &[IterBreakdown] {
        &self.iters
    }

    /// Samples processed per iteration (all GPUs).
    pub fn samples_per_iter(&self) -> u64 {
        self.samples_per_iter
    }

    /// Element-wise mean breakdown of the recorded iterations.
    ///
    /// Returns the default (all-zero) breakdown if nothing was recorded.
    pub fn mean(&self) -> IterBreakdown {
        if self.iters.is_empty() {
            return IterBreakdown::default();
        }
        let n = self.iters.len() as u64;
        let sum = self
            .iters
            .iter()
            .fold(IterBreakdown::default(), |acc, it| acc.merged(it));
        IterBreakdown {
            comm: sum.comm / n,
            host_dram: sum.host_dram / n,
            cache: sum.cache / n,
            other: sum.other / n,
            stall: sum.stall / n,
        }
    }

    /// Mean per-iteration stall time.
    pub fn mean_stall(&self) -> Nanos {
        self.mean().stall
    }

    /// Nearest-rank percentile (`0 < q <= 1`) of total iteration time —
    /// `total_percentile(0.5)` is the median iteration. Tail iterations
    /// dominate perceived training speed, so benches report p95/p99
    /// alongside means. Returns zero if nothing was recorded.
    pub fn total_percentile(&self, q: f64) -> Nanos {
        Self::percentile(self.iters.iter().map(|it| it.total()).collect(), q)
    }

    /// Nearest-rank percentile (`0 < q <= 1`) of per-iteration stall time
    /// (the Exp #2/#4 metric, `trainer.p2f_wait_ns` in telemetry terms).
    /// Returns zero if nothing was recorded.
    pub fn stall_percentile(&self, q: f64) -> Nanos {
        Self::percentile(self.iters.iter().map(|it| it.stall).collect(), q)
    }

    fn percentile(mut values: Vec<Nanos>, q: f64) -> Nanos {
        assert!(q > 0.0 && q <= 1.0, "percentile q must be in (0, 1]");
        if values.is_empty() {
            return Nanos::ZERO;
        }
        values.sort();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        values[rank - 1]
    }

    /// End-to-end training throughput in samples/second: the paper's
    /// headline metric ("all throughputs refer to samples per second").
    pub fn throughput(&self) -> f64 {
        let total: Nanos = self.iters.iter().map(|it| it.total()).sum();
        if total.is_zero() {
            return 0.0;
        }
        (self.samples_per_iter * self.iters.len() as u64) as f64 / total.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn it(ms: [u64; 5]) -> IterBreakdown {
        IterBreakdown {
            comm: Nanos::from_millis(ms[0]),
            host_dram: Nanos::from_millis(ms[1]),
            cache: Nanos::from_millis(ms[2]),
            other: Nanos::from_millis(ms[3]),
            stall: Nanos::from_millis(ms[4]),
        }
    }

    #[test]
    fn total_sums_all_phases() {
        assert_eq!(it([1, 2, 3, 4, 5]).total(), Nanos::from_millis(15));
    }

    #[test]
    fn merged_is_elementwise() {
        let m = it([1, 2, 3, 4, 5]).merged(&it([5, 4, 3, 2, 1]));
        assert_eq!(m, it([6, 6, 6, 6, 6]));
    }

    #[test]
    fn mean_of_two_iters() {
        let mut s = RunStats::new(1024);
        s.push(it([2, 0, 0, 0, 0]));
        s.push(it([4, 0, 0, 0, 0]));
        assert_eq!(s.mean().comm, Nanos::from_millis(3));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn mean_of_empty_run_is_zero() {
        let s = RunStats::new(1024);
        assert_eq!(s.mean(), IterBreakdown::default());
        assert_eq!(s.throughput(), 0.0);
    }

    #[test]
    fn throughput_is_samples_over_time() {
        let mut s = RunStats::new(1_000);
        s.push(it([0, 0, 0, 10, 0])); // 10 ms
        s.push(it([0, 0, 0, 10, 0])); // 10 ms
                                      // 2000 samples / 20 ms = 100k samples/s
        assert!((s.throughput() - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut s = RunStats::new(1);
        for ms in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            s.push(it([0, 0, 0, ms, ms / 10]));
        }
        assert_eq!(s.total_percentile(0.5), Nanos::from_millis(55)); // 50 + 5 stall
        assert_eq!(s.total_percentile(0.95), Nanos::from_millis(110));
        assert_eq!(s.total_percentile(0.99), Nanos::from_millis(110));
        assert_eq!(s.total_percentile(1.0), Nanos::from_millis(110));
        assert_eq!(s.stall_percentile(0.5), Nanos::from_millis(5));
        assert_eq!(s.stall_percentile(0.99), Nanos::from_millis(10));
    }

    #[test]
    fn percentiles_of_empty_run_are_zero() {
        let s = RunStats::new(1);
        assert_eq!(s.total_percentile(0.99), Nanos::ZERO);
        assert_eq!(s.stall_percentile(0.5), Nanos::ZERO);
    }

    #[test]
    #[should_panic(expected = "percentile q must be in (0, 1]")]
    fn percentile_rejects_bad_quantile() {
        let s = RunStats::new(1);
        let _ = s.total_percentile(0.0);
    }

    #[test]
    fn mean_stall_tracks_stall_only() {
        let mut s = RunStats::new(1);
        s.push(it([9, 9, 9, 9, 4]));
        s.push(it([0, 0, 0, 0, 2]));
        assert_eq!(s.mean_stall(), Nanos::from_millis(3));
    }
}
