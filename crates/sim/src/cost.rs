//! The hardware cost model.
//!
//! Every latency the real system would spend on GPU kernels, PCIe transfers,
//! or host DRAM is computed here as simulated [`Nanos`]. The constants in
//! [`CostParams`] are calibrated against the numbers the paper reports:
//!
//! * Fig 3b — all_to_all bandwidth on commodity GPUs is ~54 % of datacenter
//!   GPUs, both saturating in the single-digit GB/s range.
//! * Fig 10 — UVA host-memory access is 3.1–3.4× lower latency than the
//!   CPU-involved path across batch sizes.
//! * Exp #1 — UVM page-granularity access is two orders of magnitude slower
//!   (4 KiB pages moved for ~512 B embeddings).
//! * Fig 3a/3c — HugeCTR on 4×RTX 3090 loses up to 37 % throughput versus
//!   4×A30, with 54–72 % of the gap in collective communication.
//!
//! Absolute values are estimates for the paper's testbed; what the model
//! preserves is the *structure*: which path pays fixed CPU dispatch latency,
//! which path crosses the root complex twice, which path moves whole pages.

use crate::time::Nanos;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};

/// Tunable constants of the cost model. See the module docs for calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Peak effective all_to_all bandwidth with PCIe P2P, GB/s per GPU.
    pub a2a_peak_p2p_gbps: f64,
    /// Transfer size at which P2P all_to_all reaches half its peak, bytes.
    pub a2a_half_p2p_bytes: f64,
    /// Peak effective all_to_all bandwidth when bounced on host memory
    /// (no P2P), GB/s per GPU. Fig 3b: ≈54 % of the P2P figure.
    pub a2a_peak_bounce_gbps: f64,
    /// Half-saturation size for the bounced path, bytes (larger: the bounce
    /// buffer adds per-message cost, so saturation needs bigger transfers).
    pub a2a_half_bounce_bytes: f64,
    /// Fixed setup latency of one collective, microseconds (P2P path).
    pub a2a_base_p2p_us: f64,
    /// Fixed setup latency of one collective on the bounced path,
    /// microseconds; higher because the CPU must coordinate the bounce.
    pub a2a_base_bounce_us: f64,

    /// Fixed software latency of a CPU-involved transfer, microseconds
    /// (driver call, kernel launch, staging setup).
    pub cpu_dispatch_us: f64,
    /// CPU cost to gather/scatter one random row on host DRAM, nanoseconds.
    pub cpu_row_ns: f64,
    /// Effective DMA (cudaMemcpy) bandwidth GPU↔host, GB/s.
    pub dma_gbps: f64,

    /// Fixed latency of a UVA zero-copy kernel, microseconds.
    pub uva_base_us: f64,
    /// Effective bandwidth of UVA random row gathers from host DRAM, GB/s.
    /// (Massively parallel GPU loads hide latency; calibrated so the
    /// UVA-vs-CPU ratio lands in the paper's 3.1–3.4× band.)
    pub uva_gather_gbps: f64,

    /// Fixed launch cost of a GPU cache kernel, microseconds.
    pub cache_base_us: f64,
    /// Per-row GPU cache *query* cost, nanoseconds (hash probe).
    pub cache_query_row_ns: f64,
    /// Per-row *local* GPU cache insert/refill cost, nanoseconds (bucket
    /// locking, eviction bookkeeping on the owner GPU itself).
    pub cache_update_row_ns: f64,

    /// UVM page size in bytes (CUDA unified memory migrates 4 KiB pages).
    pub uvm_page_bytes: f64,
    /// Cost per UVM page fault + migration, microseconds. High because the
    /// embedding working set far exceeds device memory, so random accesses
    /// thrash (fault + migrate + dirty-page writeback + TLB shootdown per touched page).
    pub uvm_page_fault_us: f64,

    /// Fraction of peak FP32 throughput a dense MLP actually achieves.
    pub dnn_utilization: f64,
    /// Fixed kernel-launch overhead per DNN layer, microseconds.
    pub dnn_layer_launch_us: f64,

    /// Fixed per-iteration framework overhead of a PyTorch-style stack,
    /// microseconds (Python dispatch, autograd graph, data loading).
    pub fw_fixed_nocache_us: f64,
    /// Fixed per-iteration overhead of a HugeCTR-style cached pipeline on
    /// commodity GPUs, microseconds: without P2P, every pipeline stage is
    /// CPU-coordinated (bucketing rounds, bounce-buffer management).
    pub fw_fixed_cached_us: f64,
    /// Fixed per-iteration overhead of the cached pipeline on datacenter
    /// GPUs, microseconds: NCCL P2P collectives and GPU-side cache kernels
    /// keep the CPU out of the loop.
    pub fw_fixed_cached_p2p_us: f64,
    /// Fixed per-iteration overhead of Frugal's lean runtime, microseconds.
    pub fw_fixed_frugal_us: f64,
    /// Per-unique-row CPU software cost of the no-cache path, nanoseconds
    /// (framework-level gather/scatter, sparse-optimizer bookkeeping). Runs
    /// on the shared CPU service pool, so it stops scaling with GPU count —
    /// the paper's Exp #8 plateau.
    pub fw_row_nocache_ns: f64,
    /// Per-unique-row CPU software cost of the cached pipeline on commodity
    /// GPUs, nanoseconds (bucket keys, reorder — Fig 2b ➊➎).
    pub fw_row_cached_ns: f64,
    /// Per-unique-row cost of the cached pipeline with P2P (GPU-side
    /// bucketing), nanoseconds.
    pub fw_row_cached_p2p_ns: f64,
    /// Per-row cost of the *coordinated* multi-GPU cache update when P2P is
    /// available, nanoseconds (gradients reach the owner's cache directly).
    pub cache_coord_row_p2p_ns: f64,
    /// Per-row cost of the coordinated cache update when traffic bounces
    /// through the CPU (commodity GPUs), nanoseconds. The dominant cost of
    /// HugeCTR on commodity hardware (Fig 12's cache segment).
    pub cache_coord_row_bounce_ns: f64,
    /// CPU worker threads servicing framework row operations; shared across
    /// all GPUs.
    pub cpu_service_threads: f64,
    /// Per-row cost of a *synchronous* write-through flush burst,
    /// nanoseconds: latency-bound, serialized writes on the critical path
    /// (the "long stall" Frugal-Sync suffers, §3.1/Exp #2).
    pub sync_flush_row_ns: f64,
    /// Reference cost of registering one g-entry update on the paper's
    /// controller, nanoseconds, independent of embedding width (queue ops,
    /// R/W-set bookkeeping). Calibrated to Fig 11a.
    pub gentry_base_ns: f64,
    /// Additional per-byte cost of a g-entry update (staging the gradient),
    /// nanoseconds per byte — why KG (dim 400) registration costs tens of
    /// ms (Fig 11a) while REC (dim 32) stays in the single-digit ms.
    pub gentry_byte_ns: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            a2a_peak_p2p_gbps: 4.6,
            a2a_half_p2p_bytes: 1.5e6,
            a2a_peak_bounce_gbps: 2.5,
            a2a_half_bounce_bytes: 2.5e6,
            a2a_base_p2p_us: 12.0,
            a2a_base_bounce_us: 25.0,
            cpu_dispatch_us: 35.0,
            cpu_row_ns: 90.0,
            dma_gbps: 26.0,
            uva_base_us: 11.0,
            uva_gather_gbps: 4.5,
            cache_base_us: 8.0,
            cache_query_row_ns: 20.0,
            cache_update_row_ns: 500.0,
            uvm_page_bytes: 4096.0,
            uvm_page_fault_us: 60.0,
            dnn_utilization: 0.30,
            dnn_layer_launch_us: 10.0,
            fw_fixed_nocache_us: 3_000.0,
            fw_fixed_cached_us: 6_000.0,
            fw_fixed_cached_p2p_us: 1_000.0,
            fw_fixed_frugal_us: 500.0,
            fw_row_nocache_ns: 8_000.0,
            fw_row_cached_ns: 2_000.0,
            fw_row_cached_p2p_ns: 400.0,
            cache_coord_row_p2p_ns: 2_000.0,
            cache_coord_row_bounce_ns: 12_000.0,
            cpu_service_threads: 8.0,
            sync_flush_row_ns: 2_000.0,
            gentry_base_ns: 100.0,
            gentry_byte_ns: 0.3,
        }
    }
}

/// How a GPU reaches parameters resident in host memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostPath {
    /// CPU software stages rows into a buffer and DMAs them to the GPU
    /// (what PyTorch/HugeCTR must do on commodity GPUs — paper Fig 2b ➊➎).
    CpuInvolved,
    /// The GPU kernel load/stores host memory directly via UVA, zero-copy
    /// and CPU-bypassing (Frugal's read path — paper §3.1 ➂).
    Uva,
    /// CUDA unified memory: page faults migrate whole 4 KiB pages
    /// (the PyTorch-UVM baseline of Exp #1).
    Uvm,
}

/// The calibrated cost model for one server [`Topology`].
///
/// # Examples
///
/// ```
/// use frugal_sim::{CostModel, Topology};
///
/// let commodity = CostModel::new(Topology::commodity(4));
/// let datacenter = CostModel::new(Topology::datacenter(4));
/// // Fig 3b: bounced all_to_all reaches ~54 % of the P2P bandwidth.
/// let s = 100 << 20;
/// let ratio = commodity.all_to_all_bandwidth_gbps(s)
///     / datacenter.all_to_all_bandwidth_gbps(s);
/// assert!((0.45..0.65).contains(&ratio));
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    topo: Topology,
    params: CostParams,
}

impl CostModel {
    /// Builds a cost model with default calibration for `topo`.
    pub fn new(topo: Topology) -> Self {
        CostModel {
            topo,
            params: CostParams::default(),
        }
    }

    /// Builds a cost model with explicit parameters.
    pub fn with_params(topo: Topology, params: CostParams) -> Self {
        CostModel { topo, params }
    }

    /// The topology this model describes.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The calibration constants.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Effective per-stream bandwidth when `concurrent` GPUs share the root
    /// complex: `min(path, root/concurrent)`. This is the mechanism behind
    /// the scalability plateau of cache-less systems (Exp #8).
    fn contended_gbps(&self, path_gbps: f64, concurrent: usize) -> f64 {
        let shared = self.topo.host().root_complex_gbps / concurrent.max(1) as f64;
        path_gbps.min(shared)
    }

    fn bulk(bytes: u64, gbps: f64) -> Nanos {
        Nanos::from_secs_f64(bytes as f64 / (gbps * 1e9))
    }

    /// Time for one `all_to_all` where each GPU exchanges `per_gpu_bytes`
    /// in total with its peers. Uses the P2P path on datacenter topologies
    /// and the host-bounce path on commodity ones.
    ///
    /// Returns [`Nanos::ZERO`] on single-GPU topologies (nothing to
    /// exchange).
    pub fn all_to_all(&self, per_gpu_bytes: u64) -> Nanos {
        let n = self.topo.n_gpus();
        if n <= 1 {
            return Nanos::ZERO;
        }
        let p = &self.params;
        let (base_us, bw) = if self.topo.supports_p2p() {
            (
                p.a2a_base_p2p_us,
                self.a2a_eff_gbps(per_gpu_bytes, p.a2a_peak_p2p_gbps, p.a2a_half_p2p_bytes),
            )
        } else {
            // Bounced traffic crosses the root complex twice (GPU→host,
            // host→GPU), so it is the aggregate 2·n·S that contends there.
            let curve = self.a2a_eff_gbps(
                per_gpu_bytes,
                p.a2a_peak_bounce_gbps,
                p.a2a_half_bounce_bytes,
            );
            let root_cap = self.topo.host().root_complex_gbps / (2.0 * n as f64);
            (p.a2a_base_bounce_us, curve.min(root_cap))
        };
        Nanos::from_micros_f64(base_us) + Self::bulk(per_gpu_bytes, bw)
    }

    /// The effective all_to_all bandwidth in GB/s for a given per-GPU
    /// transfer size — the quantity plotted in Fig 3b.
    pub fn all_to_all_bandwidth_gbps(&self, per_gpu_bytes: u64) -> f64 {
        let t = self.all_to_all(per_gpu_bytes);
        if t.is_zero() {
            return f64::INFINITY;
        }
        per_gpu_bytes as f64 / 1e9 / t.as_secs_f64()
    }

    fn a2a_eff_gbps(&self, bytes: u64, peak: f64, half: f64) -> f64 {
        let s = bytes as f64;
        peak * s / (s + half)
    }

    /// Time for a GPU to read `rows` random embedding rows of `row_bytes`
    /// each from host memory through `path`, while `concurrent` GPUs do the
    /// same (root-complex contention applies to bulk transfer components).
    pub fn host_read(&self, path: HostPath, rows: u64, row_bytes: u64, concurrent: usize) -> Nanos {
        let p = &self.params;
        let bytes = rows * row_bytes;
        match path {
            HostPath::CpuInvolved => {
                // dispatch + CPU gathers rows into a staging buffer + DMA.
                let gather = Nanos::from_secs_f64(rows as f64 * p.cpu_row_ns * 1e-9);
                let dma = Self::bulk(bytes, self.contended_gbps(p.dma_gbps, concurrent));
                Nanos::from_micros_f64(p.cpu_dispatch_us) + gather + dma
            }
            HostPath::Uva => {
                let bw = self.contended_gbps(p.uva_gather_gbps, concurrent);
                Nanos::from_micros_f64(p.uva_base_us) + Self::bulk(bytes, bw)
            }
            HostPath::Uvm => {
                // Each random row faults its own page: rows × (fault + page
                // transfer). Paper Exp #1: "two orders of magnitude slower".
                let page = Nanos::from_micros_f64(p.uvm_page_fault_us)
                    + Self::bulk(
                        p.uvm_page_bytes as u64,
                        self.contended_gbps(p.dma_gbps, concurrent),
                    );
                page * rows
            }
        }
    }

    /// Time to write `rows` updated rows back to host memory through `path`.
    /// Writes mirror reads: the CPU-involved path stages and DMAs out, UVA
    /// stores go straight to DRAM, UVM dirties pages that must migrate back.
    pub fn host_write(
        &self,
        path: HostPath,
        rows: u64,
        row_bytes: u64,
        concurrent: usize,
    ) -> Nanos {
        // Symmetric with reads in this model; the real asymmetries (write
        // combining, page dirtying) are second-order for the paper's story.
        self.host_read(path, rows, row_bytes, concurrent)
    }

    /// Time for the host CPU itself to apply `rows` optimizer updates of
    /// `row_bytes` each onto the parameter store in DRAM (read-modify-write).
    /// This is the per-row cost of a flush operation.
    pub fn host_apply_update(&self, rows: u64, row_bytes: u64) -> Nanos {
        let p = &self.params;
        let rmw = Nanos::from_secs_f64(rows as f64 * 2.0 * p.cpu_row_ns * 1e-9);
        let dram = Self::bulk(2 * rows * row_bytes, self.topo.host().dram_bw_gbps);
        rmw + dram
    }

    /// Time for a GPU-cache kernel that queries `rows` keys.
    pub fn cache_query(&self, rows: u64) -> Nanos {
        let p = &self.params;
        Nanos::from_micros_f64(p.cache_base_us)
            + Nanos::from_secs_f64(rows as f64 * p.cache_query_row_ns * 1e-9)
    }

    /// Time for a GPU-cache kernel that inserts/updates `rows` keys.
    pub fn cache_update(&self, rows: u64) -> Nanos {
        let p = &self.params;
        Nanos::from_micros_f64(p.cache_base_us)
            + Nanos::from_secs_f64(rows as f64 * p.cache_update_row_ns * 1e-9)
    }

    /// Per-iteration framework software time of a no-cache (PyTorch-style)
    /// engine that touched `total_rows` unique rows across all GPUs. The
    /// row work runs on the shared CPU service pool, which is what makes
    /// cache-less systems stop scaling past a few GPUs (Exp #8).
    pub fn framework_nocache(&self, total_rows: u64) -> Nanos {
        let p = &self.params;
        Nanos::from_micros_f64(p.fw_fixed_nocache_us)
            + Nanos::from_secs_f64(
                total_rows as f64 * p.fw_row_nocache_ns * 1e-9 / p.cpu_service_threads,
            )
    }

    /// Per-iteration framework software time of a cached (HugeCTR-style)
    /// engine that routed `total_rows` unique rows (bucketing + reorder).
    pub fn framework_cached(&self, total_rows: u64) -> Nanos {
        let p = &self.params;
        let (fixed_us, row_ns) = if self.topo.supports_p2p() {
            (p.fw_fixed_cached_p2p_us, p.fw_row_cached_p2p_ns)
        } else {
            (p.fw_fixed_cached_us, p.fw_row_cached_ns)
        };
        Nanos::from_micros_f64(fixed_us)
            + Nanos::from_secs_f64(total_rows as f64 * row_ns * 1e-9 / p.cpu_service_threads)
    }

    /// Reference-machine cost of registering one g-entry update whose
    /// gradient is `row_bytes` wide, in nanoseconds. Engines divide their
    /// *measured* registration time by the host-calibration ratio against
    /// this reference, so runs on any machine report reference-machine
    /// numbers while preserving measured relative effects (e.g. tree-heap
    /// vs two-level PQ).
    pub fn gentry_op_reference_ns(&self, row_bytes: u64) -> f64 {
        self.params.gentry_base_ns + self.params.gentry_byte_ns * row_bytes as f64
    }

    /// Per-iteration fixed overhead of Frugal's runtime (its per-row work —
    /// g-entry registration — is real code and is measured, not modeled).
    pub fn framework_frugal(&self) -> Nanos {
        Nanos::from_micros_f64(self.params.fw_fixed_frugal_us)
    }

    /// Stall of a synchronous write-through flush of `total_rows` updates
    /// from `n_gpus` GPUs: per-GPU dispatch plus latency-bound serialized
    /// row writes (no background overlap — that is Frugal-Sync's defect).
    pub fn sync_flush(&self, total_rows: u64, n_gpus: usize) -> Nanos {
        let p = &self.params;
        Nanos::from_micros_f64(p.cpu_dispatch_us * n_gpus as f64)
            + Nanos::from_secs_f64(total_rows as f64 * p.sync_flush_row_ns * 1e-9)
    }

    /// Time for the coordinated multi-GPU cache update of `total_rows` rows
    /// per step: every owner's cached copy must receive the other GPUs'
    /// gradient contributions. Direct peer writes with P2P; CPU-bounced
    /// without — the dominant cost of HugeCTR's cache on commodity GPUs.
    pub fn cache_coordinated_update(&self, total_rows: u64) -> Nanos {
        let p = &self.params;
        let per_row = if self.topo.supports_p2p() {
            p.cache_coord_row_p2p_ns
        } else {
            p.cache_coord_row_bounce_ns
        };
        Nanos::from_micros_f64(p.cache_base_us)
            + Nanos::from_secs_f64(total_rows as f64 * per_row * 1e-9 / p.cpu_service_threads)
    }

    /// Forward+backward time of a dense DNN costing `flops` floating-point
    /// operations across `layers` layers, on this topology's GPU.
    pub fn dnn_time(&self, flops: f64, layers: u32) -> Nanos {
        let p = &self.params;
        let gpu = self.topo.gpu_spec();
        let eff = gpu.fp32_tflops * 1e12 * p.dnn_utilization;
        Nanos::from_secs_f64(flops / eff)
            + Nanos::from_micros_f64(p.dnn_layer_launch_us * layers as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commodity4() -> CostModel {
        CostModel::new(Topology::commodity(4))
    }

    fn datacenter4() -> CostModel {
        CostModel::new(Topology::datacenter(4))
    }

    #[test]
    fn fig3b_bandwidth_gap() {
        // Commodity all_to_all lands at ~54 % of datacenter at large sizes
        // (paper: "the all_to_all communication bandwidth on commodity GPUs
        // is only 54 % of that on datacenter GPUs").
        let s = 100u64 << 20;
        let c = commodity4().all_to_all_bandwidth_gbps(s);
        let d = datacenter4().all_to_all_bandwidth_gbps(s);
        let ratio = c / d;
        assert!((0.48..0.62).contains(&ratio), "ratio {ratio}");
        // Absolute magnitudes in the single-digit GB/s regime of Fig 3b.
        assert!((1.5..4.0).contains(&c), "commodity {c}");
        assert!((3.0..5.0).contains(&d), "datacenter {d}");
    }

    #[test]
    fn fig3b_bandwidth_rises_with_size() {
        let m = commodity4();
        let small = m.all_to_all_bandwidth_gbps(1 << 20);
        let large = m.all_to_all_bandwidth_gbps(100 << 20);
        assert!(large > 2.0 * small, "small {small} large {large}");
    }

    #[test]
    fn fig10_uva_vs_cpu_ratio() {
        // Paper Fig 10: "UVA-enabled access lowers the host memory access
        // latency by 3.1-3.4x" across batch sizes 128..2048, dim 32.
        let m = commodity4();
        for batch in [128u64, 512, 1024, 1536, 2048] {
            let cpu = m.host_read(HostPath::CpuInvolved, batch, 128, 1);
            let uva = m.host_read(HostPath::Uva, batch, 128, 1);
            let ratio = cpu.as_secs_f64() / uva.as_secs_f64();
            assert!((2.8..3.8).contains(&ratio), "batch {batch}: ratio {ratio}");
        }
    }

    #[test]
    fn fig10_absolute_magnitudes() {
        // Fig 10's y-axis tops out around 250 µs at batch 2048.
        let m = commodity4();
        let cpu = m.host_read(HostPath::CpuInvolved, 2048, 128, 1);
        assert!((150.0..350.0).contains(&cpu.as_micros_f64()), "cpu {}", cpu);
    }

    #[test]
    fn uvm_is_two_orders_slower_than_uva() {
        // Exp #1: PyTorch-UVM is "two orders of magnitude slower" because a
        // 4 KiB page moves per ~512 B embedding.
        let m = commodity4();
        let uva = m.host_read(HostPath::Uva, 2048, 128, 1);
        let uvm = m.host_read(HostPath::Uvm, 2048, 128, 1);
        let ratio = uvm.as_secs_f64() / uva.as_secs_f64();
        assert!(ratio > 100.0, "ratio {ratio}");
    }

    #[test]
    fn root_complex_contention_caps_bandwidth() {
        let m = CostModel::new(Topology::commodity(8));
        let alone = m.host_read(HostPath::CpuInvolved, 100_000, 128, 1);
        let crowded = m.host_read(HostPath::CpuInvolved, 100_000, 128, 8);
        assert!(crowded > alone);
        // With 8 concurrent streams the DMA leg is root-limited: 72/8 = 9 GB/s.
        let got = m.contended_gbps(26.0, 8);
        assert!((got - 9.0).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn single_gpu_all_to_all_is_free() {
        let m = CostModel::new(Topology::commodity(1));
        assert_eq!(m.all_to_all(1 << 20), Nanos::ZERO);
        assert!(m.all_to_all_bandwidth_gbps(1 << 20).is_infinite());
    }

    #[test]
    fn cache_update_costlier_than_query() {
        let m = commodity4();
        assert!(m.cache_update(50_000) > m.cache_query(50_000));
    }

    #[test]
    fn dnn_scales_with_flops_and_hardware() {
        let c = commodity4();
        let d = datacenter4();
        let f = 1e10;
        assert!(c.dnn_time(2.0 * f, 4) > c.dnn_time(f, 4));
        // RTX 3090 has higher FP32 TFLOPS than A30, so it computes faster.
        assert!(c.dnn_time(f, 4) < d.dnn_time(f, 4));
    }

    #[test]
    fn host_apply_update_scales_linearly() {
        let m = commodity4();
        let one = m.host_apply_update(1_000, 128);
        let ten = m.host_apply_update(10_000, 128);
        let ratio = ten.as_secs_f64() / one.as_secs_f64();
        assert!((9.0..11.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn write_mirrors_read() {
        let m = commodity4();
        assert_eq!(
            m.host_write(HostPath::Uva, 512, 128, 2),
            m.host_read(HostPath::Uva, 512, 128, 2)
        );
    }
}
