//! GPU device specifications.
//!
//! Encodes Table 1 of the paper plus the two additional devices used in the
//! evaluation testbed (RTX 3090, A30). The distinction that drives the whole
//! paper is captured by two capability flags:
//!
//! * [`GpuSpec::p2p`] — PCIe peer-to-peer. Datacenter GPUs have it; commodity
//!   30/40-series GPUs do not, so every GPU↔GPU transfer must bounce on host
//!   memory with CPU coordination (paper §2.2, Figure 1).
//! * [`GpuSpec::uva_peer`] — whether UVA load/store may target *other GPUs'*
//!   memory. Commodity GPUs only support UVA to host memory
//!   ([`GpuSpec::uva_host`], paper §2.3).

use serde::{Deserialize, Serialize};

/// Market segment of a GPU, which determines its communication capabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuClass {
    /// Datacenter parts (A30, A100): PCIe P2P and unrestricted UVA.
    Datacenter,
    /// Commodity parts (RTX 3090/4090): no P2P, UVA to host memory only.
    Commodity,
}

/// Static description of one GPU device.
///
/// # Examples
///
/// ```
/// use frugal_sim::GpuSpec;
///
/// let gpu = GpuSpec::rtx4090();
/// let a100 = GpuSpec::a100();
/// // Table 1: the RTX 4090 is ~5.4x more cost-effective per FP32 TFLOP.
/// assert!(a100.dollars_per_fp32_tflop() / gpu.dollars_per_fp32_tflop() > 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"RTX 3090"`.
    pub name: String,
    /// Market segment.
    pub class: GpuClass,
    /// Peak FP32 tensor throughput in TFLOPS.
    pub fp32_tflops: f64,
    /// Peak FP16 tensor throughput in TFLOPS.
    pub fp16_tflops: f64,
    /// Device memory capacity in GiB.
    pub mem_gib: f64,
    /// Device memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Host link bandwidth in GB/s (unidirectional PCIe 4.0 x16 unless the
    /// part has NVLink, in which case the NVLink figure from Table 1).
    pub link_gbps: f64,
    /// Street price in USD (paper §4.5 uses $5,885/A30 and $1,310/RTX 3090).
    pub price_usd: f64,
    /// PCIe peer-to-peer supported.
    pub p2p: bool,
    /// UVA load/store to host memory supported.
    pub uva_host: bool,
    /// UVA load/store to peer GPU memory supported.
    pub uva_peer: bool,
}

impl GpuSpec {
    /// NVIDIA RTX 3090 — the commodity GPU of the paper's testbed (§4.1).
    pub fn rtx3090() -> Self {
        GpuSpec {
            name: "RTX 3090".to_owned(),
            class: GpuClass::Commodity,
            fp32_tflops: 35.6,
            fp16_tflops: 142.0,
            mem_gib: 24.0,
            mem_bw_gbps: 936.0,
            link_gbps: 32.0, // PCIe 4.0 x16 unidirectional
            price_usd: 1_310.0,
            p2p: false,
            uva_host: true,
            uva_peer: false,
        }
    }

    /// NVIDIA RTX 4090 — the commodity GPU of Table 1.
    pub fn rtx4090() -> Self {
        GpuSpec {
            name: "RTX 4090".to_owned(),
            class: GpuClass::Commodity,
            fp32_tflops: 83.0,
            fp16_tflops: 330.0,
            mem_gib: 24.0,
            mem_bw_gbps: 1_008.0,
            link_gbps: 32.0,
            price_usd: 1_600.0,
            p2p: false,
            uva_host: true,
            uva_peer: false,
        }
    }

    /// NVIDIA A30 — the datacenter GPU of the paper's testbed (§4.1, Exp #9).
    pub fn a30() -> Self {
        GpuSpec {
            name: "A30".to_owned(),
            class: GpuClass::Datacenter,
            fp32_tflops: 10.3,
            fp16_tflops: 165.0,
            mem_gib: 24.0,
            mem_bw_gbps: 933.0,
            link_gbps: 32.0, // same PCIe 4.0 x16 link as the 3090 (paper §2.4)
            price_usd: 5_885.0,
            p2p: true,
            uva_host: true,
            uva_peer: true,
        }
    }

    /// NVIDIA A100 (SXM) — the datacenter GPU of Table 1.
    pub fn a100() -> Self {
        GpuSpec {
            name: "A100".to_owned(),
            class: GpuClass::Datacenter,
            fp32_tflops: 156.0, // Table 1 lists the TF32 tensor figure
            fp16_tflops: 312.0,
            mem_gib: 80.0,
            mem_bw_gbps: 2_039.0,
            link_gbps: 900.0, // NVLink, Table 1
            price_usd: 16_000.0,
            p2p: true,
            uva_host: true,
            uva_peer: true,
        }
    }

    /// Cost-performance ratio in dollars per FP32 TFLOP (Table 1, last row).
    pub fn dollars_per_fp32_tflop(&self) -> f64 {
        self.price_usd / self.fp32_tflops
    }

    /// True if this part is a commodity GPU.
    pub fn is_commodity(&self) -> bool {
        self.class == GpuClass::Commodity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_cost_performance_ratio() {
        // Table 1: A100 at 103 $/TFLOPS, RTX 4090 at 19 $/TFLOPS.
        let a100 = GpuSpec::a100();
        let g4090 = GpuSpec::rtx4090();
        assert!((a100.dollars_per_fp32_tflop() - 102.6).abs() < 1.0);
        assert!((g4090.dollars_per_fp32_tflop() - 19.3).abs() < 1.0);
        // "cost-performance ratio of RTX 4090 is 5.4x that of A100"
        let ratio = a100.dollars_per_fp32_tflop() / g4090.dollars_per_fp32_tflop();
        assert!((5.0..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn commodity_gpus_lack_p2p_and_peer_uva() {
        for g in [GpuSpec::rtx3090(), GpuSpec::rtx4090()] {
            assert!(g.is_commodity());
            assert!(!g.p2p);
            assert!(g.uva_host, "commodity GPUs retain host-only UVA");
            assert!(!g.uva_peer);
        }
    }

    #[test]
    fn datacenter_gpus_have_full_capabilities() {
        for g in [GpuSpec::a30(), GpuSpec::a100()] {
            assert!(!g.is_commodity());
            assert!(g.p2p && g.uva_host && g.uva_peer);
        }
    }

    #[test]
    fn testbed_prices_match_exp9() {
        assert_eq!(GpuSpec::a30().price_usd, 5_885.0);
        assert_eq!(GpuSpec::rtx3090().price_usd, 1_310.0);
        // Exp #9: price ratio underpins the 4.0-4.3x cost-effectiveness claim.
        let ratio = GpuSpec::a30().price_usd / GpuSpec::rtx3090().price_usd;
        assert!((4.0..5.0).contains(&ratio));
    }

    #[test]
    fn clone_and_eq() {
        let g = GpuSpec::rtx3090();
        assert_eq!(g.clone(), g);
        assert_ne!(GpuSpec::a30(), g);
    }
}
