//! # frugal-sim — hardware substrate for the Frugal reproduction
//!
//! The Frugal paper (ASPLOS '25) evaluates an embedding-model training
//! runtime on servers full of commodity GPUs. This crate replaces that
//! hardware with a deterministic, calibrated cost model:
//!
//! * [`GpuSpec`] — device presets (RTX 3090/4090, A30, A100) including the
//!   capability flags the paper's argument rests on (PCIe P2P, UVA scope).
//! * [`Topology`] — a server of `n` identical GPUs behind one root complex.
//! * [`CostModel`] — latencies for every hardware operation a training
//!   engine performs: all_to_all collectives (P2P vs host-bounced),
//!   host-memory access (CPU-involved vs UVA vs UVM paging), GPU cache
//!   kernels, and DNN compute.
//! * [`IterBreakdown`]/[`RunStats`] — the per-iteration time decomposition
//!   used by the paper's Figures 3c and 12, and throughput accounting.
//!
//! Simulated time is a distinct type, [`Nanos`], so modeled hardware time
//! can never silently mix with measured wall-clock software time.
//!
//! # Examples
//!
//! ```
//! use frugal_sim::{CostModel, HostPath, Topology};
//!
//! // Compare the cache-miss path of the two GPU classes.
//! let commodity = CostModel::new(Topology::commodity(4));
//! let cpu = commodity.host_read(HostPath::CpuInvolved, 2048, 128, 1);
//! let uva = commodity.host_read(HostPath::Uva, 2048, 128, 1);
//! assert!(cpu.as_secs_f64() / uva.as_secs_f64() > 3.0); // paper Fig 10
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod breakdown;
mod cost;
mod gpu;
mod time;
mod topology;

pub use breakdown::{IterBreakdown, RunStats};
pub use cost::{CostModel, CostParams, HostPath};
pub use gpu::{GpuClass, GpuSpec};
pub use time::Nanos;
pub use topology::{HostSpec, Topology, TopologyError};
