//! Simulated time.
//!
//! All hardware costs in the simulator are expressed as [`Nanos`], a newtype
//! over a nanosecond count. Keeping simulated time distinct from
//! [`std::time::Duration`] makes it impossible to accidentally mix *modeled*
//! hardware time with *measured* wall-clock software time; engines convert
//! explicitly at the reporting boundary.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use frugal_sim::Nanos;
///
/// let transfer = Nanos::from_micros(250);
/// let compute = Nanos::from_millis(2);
/// assert_eq!((transfer + compute).as_nanos(), 2_250_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(u64);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a span from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, saturating negative values to
    /// zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Nanos((s.max(0.0) * 1e9).round() as u64)
    }

    /// Creates a span from fractional microseconds, saturating negative
    /// values to zero.
    pub fn from_micros_f64(us: f64) -> Self {
        Nanos((us.max(0.0) * 1e3).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two spans.
    pub fn max(self, rhs: Nanos) -> Nanos {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two spans.
    pub fn min(self, rhs: Nanos) -> Nanos {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// True if this span is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Mul<f64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: f64) -> Nanos {
        Nanos::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<Nanos> for std::time::Duration {
    fn from(n: Nanos) -> Self {
        std::time::Duration::from_nanos(n.as_nanos())
    }
}

impl From<std::time::Duration> for Nanos {
    fn from(d: std::time::Duration) -> Self {
        Nanos(d.as_nanos() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_micros(1), Nanos::from_nanos(1_000));
        assert_eq!(Nanos::from_millis(1), Nanos::from_micros(1_000));
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1_000));
        assert_eq!(Nanos::from_secs_f64(0.5), Nanos::from_millis(500));
        assert_eq!(Nanos::from_micros_f64(1.5), Nanos::from_nanos(1_500));
    }

    #[test]
    fn negative_float_saturates_to_zero() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_micros_f64(-3.5), Nanos::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos::from_micros(3);
        let b = Nanos::from_micros(2);
        assert_eq!(a + b, Nanos::from_micros(5));
        assert_eq!(a - b, Nanos::from_micros(1));
        assert_eq!(a * 2, Nanos::from_micros(6));
        assert_eq!(a / 3, Nanos::from_micros(1));
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn float_scaling() {
        let a = Nanos::from_micros(10);
        assert_eq!(a * 2.5, Nanos::from_micros(25));
    }

    #[test]
    fn sum_of_spans() {
        let total: Nanos = (1..=4).map(Nanos::from_micros).sum();
        assert_eq!(total, Nanos::from_micros(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Nanos::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn duration_roundtrip() {
        let n = Nanos::from_micros(1234);
        let d: std::time::Duration = n.into();
        assert_eq!(Nanos::from(d), n);
    }

    #[test]
    fn accumulation() {
        let mut t = Nanos::ZERO;
        t += Nanos::from_nanos(7);
        t += Nanos::from_nanos(5);
        assert_eq!(t.as_nanos(), 12);
        t -= Nanos::from_nanos(2);
        assert_eq!(t.as_nanos(), 10);
    }
}
