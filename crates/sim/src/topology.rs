//! Server topology: GPUs, PCIe links, the CPU root complex, and host DRAM.
//!
//! Mirrors the paper's testbed (§4.1): a dual-socket server where every GPU
//! hangs off the CPU root complex via its own PCIe 4.0 x16 link. The root
//! complex is the shared bottleneck the paper blames for the scalability
//! plateau of cache-less systems (Exp #8) and for bounced communication.

use crate::gpu::GpuSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Host-side (CPU + DRAM) characteristics of the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Aggregate host DRAM bandwidth in GB/s available to I/O.
    pub dram_bw_gbps: f64,
    /// Aggregate bandwidth of the CPU root complex in GB/s. All GPU↔host
    /// traffic shares this resource.
    pub root_complex_gbps: f64,
    /// Fixed software latency in microseconds for a CPU-coordinated transfer
    /// (driver call, kernel launch, memcpy setup). Paper §2.4 calls this the
    /// "CPU involvement overhead".
    pub cpu_dispatch_us: f64,
    /// CPU time to gather/scatter one random embedding row on host memory,
    /// in nanoseconds (pointer chase + cacheline fill).
    pub cpu_row_ns: f64,
    /// Effective CPU memcpy bandwidth in GB/s for staging copies.
    pub cpu_memcpy_gbps: f64,
    /// CPU cores available to the training runtime (trainers, controller,
    /// flushing threads). The paper's testbed has two 16-core sockets.
    pub cpu_cores: usize,
}

impl Default for HostSpec {
    fn default() -> Self {
        // Two Intel Gold 6130 sockets, 1.5 TB DRAM (paper §4.1), derated to
        // sustainable I/O figures.
        HostSpec {
            dram_bw_gbps: 85.0,
            root_complex_gbps: 72.0,
            cpu_dispatch_us: 35.0,
            cpu_row_ns: 80.0,
            cpu_memcpy_gbps: 10.0,
            cpu_cores: 32,
        }
    }
}

/// Errors from building an invalid [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A topology needs at least one GPU.
    NoGpus,
    /// All GPUs in one server must be the same model (the paper's testbeds
    /// are homogeneous; mixed fleets would need per-pair link modeling).
    MixedGpus,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoGpus => write!(f, "topology requires at least one GPU"),
            TopologyError::MixedGpus => {
                write!(f, "topology requires a homogeneous set of GPUs")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A single server: `n` identical GPUs behind one CPU root complex.
///
/// # Examples
///
/// ```
/// use frugal_sim::Topology;
///
/// let commodity = Topology::commodity(8);
/// assert_eq!(commodity.n_gpus(), 8);
/// assert!(!commodity.supports_p2p());
///
/// let datacenter = Topology::datacenter(4);
/// assert!(datacenter.supports_p2p());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    gpus: Vec<GpuSpec>,
    host: HostSpec,
}

impl Topology {
    /// Builds a homogeneous topology of `n` copies of `gpu`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoGpus`] if `n == 0`.
    pub fn homogeneous(gpu: GpuSpec, n: usize) -> Result<Self, TopologyError> {
        if n == 0 {
            return Err(TopologyError::NoGpus);
        }
        Ok(Topology {
            gpus: vec![gpu; n],
            host: HostSpec::default(),
        })
    }

    /// Builds a heterogeneous topology from an explicit GPU list.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoGpus`] for an empty list and
    /// [`TopologyError::MixedGpus`] if the GPUs are not all identical.
    pub fn new(gpus: Vec<GpuSpec>, host: HostSpec) -> Result<Self, TopologyError> {
        if gpus.is_empty() {
            return Err(TopologyError::NoGpus);
        }
        if gpus.windows(2).any(|w| w[0] != w[1]) {
            return Err(TopologyError::MixedGpus);
        }
        Ok(Topology { gpus, host })
    }

    /// The paper's commodity testbed: `n` RTX 3090s (§4.1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn commodity(n: usize) -> Self {
        Self::homogeneous(GpuSpec::rtx3090(), n).expect("n > 0")
    }

    /// The paper's datacenter comparison testbed: `n` A30s (Exp #9).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn datacenter(n: usize) -> Self {
        Self::homogeneous(GpuSpec::a30(), n).expect("n > 0")
    }

    /// Number of GPUs in the server.
    pub fn n_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// The spec of GPU `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.n_gpus()`.
    pub fn gpu(&self, i: usize) -> &GpuSpec {
        &self.gpus[i]
    }

    /// The common GPU spec (topologies are homogeneous).
    pub fn gpu_spec(&self) -> &GpuSpec {
        &self.gpus[0]
    }

    /// Host characteristics.
    pub fn host(&self) -> &HostSpec {
        &self.host
    }

    /// Replaces the host spec (builder-style).
    pub fn with_host(mut self, host: HostSpec) -> Self {
        self.host = host;
        self
    }

    /// True iff every GPU supports PCIe peer-to-peer, i.e. collectives can
    /// move data directly between devices without bouncing on host memory.
    pub fn supports_p2p(&self) -> bool {
        self.gpus.iter().all(|g| g.p2p)
    }

    /// True iff GPUs can issue UVA load/stores straight into host memory.
    pub fn supports_host_uva(&self) -> bool {
        self.gpus.iter().all(|g| g.uva_host)
    }

    /// Total hardware price of the GPUs, in USD (Exp #9 cost efficiency).
    pub fn gpu_price_usd(&self) -> f64 {
        self.gpus.iter().map(|g| g.price_usd).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_rejects_zero() {
        assert_eq!(
            Topology::homogeneous(GpuSpec::rtx3090(), 0).unwrap_err(),
            TopologyError::NoGpus
        );
    }

    #[test]
    fn new_rejects_mixed() {
        let err = Topology::new(
            vec![GpuSpec::rtx3090(), GpuSpec::a30()],
            HostSpec::default(),
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::MixedGpus);
    }

    #[test]
    fn new_rejects_empty() {
        assert_eq!(
            Topology::new(vec![], HostSpec::default()).unwrap_err(),
            TopologyError::NoGpus
        );
    }

    #[test]
    fn capability_flags() {
        assert!(!Topology::commodity(4).supports_p2p());
        assert!(Topology::commodity(4).supports_host_uva());
        assert!(Topology::datacenter(4).supports_p2p());
    }

    #[test]
    fn price_sums() {
        let t = Topology::commodity(4);
        assert_eq!(t.gpu_price_usd(), 4.0 * 1_310.0);
    }

    #[test]
    fn accessors() {
        let t = Topology::datacenter(2);
        assert_eq!(t.n_gpus(), 2);
        assert_eq!(t.gpu(1).name, "A30");
        assert_eq!(t.gpu_spec().name, "A30");
        assert!(t.host().root_complex_gbps > 0.0);
    }

    #[test]
    fn with_host_overrides() {
        let h = HostSpec {
            root_complex_gbps: 1.0,
            ..Default::default()
        };
        let t = Topology::commodity(2).with_host(h.clone());
        assert_eq!(t.host(), &h);
    }

    #[test]
    fn error_display() {
        assert!(TopologyError::NoGpus.to_string().contains("at least one"));
        assert!(TopologyError::MixedGpus.to_string().contains("homogeneous"));
    }
}
